//! Cross-crate fault-injection properties.
//!
//! The paper shipped chips with faulty cores as degraded parts
//! (Table IV) and averaged 128 bench samples per reported number
//! (§III-A) precisely because real measurement campaigns are fallible.
//! These tests pin the reproduction's fault layer end to end: degraded
//! chips still halt with silent disabled tiles, injected monitor faults
//! are deterministic, the watchdog reports hangs as structured errors,
//! and the sweep runner isolates any single killed grid point.

use piton::arch::config::ChipConfig;
use piton::arch::error::PitonError;
use piton::arch::isa::{Instruction, Opcode, Reg};
use piton::arch::units::Watts;
use piton::arch::TileId;
use piton::board::fault::FaultPlan;
use piton::board::monitor::MonitorChannel;
use piton::board::Quality;
use piton::characterization::runner;
use piton::sim::{HangKind, Machine, Program};
use proptest::prelude::*;

/// A self-terminating loop: count register 1 up to `n`, then fall off
/// the end of the program.
fn counting_program(n: i64) -> Program {
    Program::from_instructions(vec![
        Instruction::movi(Reg::new(1), 0),
        Instruction::movi(Reg::new(2), n),
        Instruction::movi(Reg::new(3), 1),
        Instruction::alu(Opcode::Add, Reg::new(1), Reg::new(1), Reg::new(3)),
        Instruction::branch(Opcode::Bne, Reg::new(1), Reg::new(2), 3),
    ])
}

/// A loop that never terminates.
fn infinite_loop() -> Program {
    Program::from_instructions(vec![
        Instruction::movi(Reg::new(1), 1),
        Instruction::branch(Opcode::Beq, Reg::new(0), Reg::new(0), 1),
    ])
}

#[test]
fn watchdog_reports_timeouts_through_the_facade() {
    let mut m = Machine::new(&ChipConfig::default());
    m.load_thread(TileId::new(0), 0, infinite_loop());
    let report = m.run_until_halted_watched(5_000, 1_000).unwrap_err();
    assert_eq!(report.kind, HangKind::Timeout);
    let e: PitonError = report.into();
    assert!(e.is_transient(), "{e}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any Table IV faulty-core mask yields a chip that still halts,
    /// with zero retirement on disabled tiles and full progress on the
    /// enabled ones.
    #[test]
    fn any_masked_chip_halts_with_silent_disabled_tiles(mask in 0u32..(1 << 25)) {
        let mut m = Machine::new(&ChipConfig::default());
        m.apply_core_mask(mask);
        let p = counting_program(40);
        m.load_on_tiles(25, 0, &p);
        prop_assert!(m.run_until_halted(2_000_000), "degraded chip must halt");
        for t in 0..25u32 {
            let retired = m.core(TileId::new(t as usize)).retired();
            if mask & (1 << t) != 0 {
                prop_assert_eq!(retired, 0, "disabled tile{} retired work", t);
            } else {
                prop_assert!(retired > 40, "enabled tile{} barely ran", t);
            }
        }
        prop_assert_eq!(m.disabled_cores(), mask.count_ones() as usize);
    }

    /// The injected monitor-fault stream is a pure function of
    /// (plan seed, channel seed): two identically-seeded channels agree
    /// sample for sample, including their quality tallies.
    #[test]
    fn monitor_faults_are_deterministic(
        seed in proptest::strategy::any::<u64>(),
        power_mw in 100.0f64..5_000.0,
    ) {
        let plan = FaultPlan {
            seed,
            drop_rate: 0.10,
            stuck_rate: 0.10,
            glitch_rate: 0.10,
            brownout: None,
            sabotage: Vec::new(),
            crash: Vec::new(),
        };
        let truth = Watts(power_mw / 1e3);
        let run = || {
            let mut chan = MonitorChannel::piton_board(7);
            chan.attach_faults(&plan);
            let mut q = Quality::default();
            let samples: Vec<Option<Watts>> =
                (0..64).map(|_| chan.sample_with_retry(truth, &mut q)).collect();
            (samples, q)
        };
        let (a, qa) = run();
        let (b, qb) = run();
        prop_assert_eq!(a, b);
        prop_assert_eq!(qa, qb);
        prop_assert_eq!(qa.kept + qa.dropped, 64);
    }

    /// One killed grid point never takes down the sweep: every other
    /// point completes with the same value at every jobs level, and the
    /// killed point reports a panic after all retries.
    #[test]
    fn try_sweep_isolates_any_single_kill(kill in 0usize..16, jobs in 1usize..5) {
        let run = |jobs: usize| {
            runner::try_sweep(
                jobs,
                (0u64..16).collect::<Vec<_>>(),
                runner::RetryPolicy::default(),
                |i, &x, _attempt| {
                    assert!(i != kill, "injected grid-point fault");
                    Ok::<u64, PitonError>(x * 3)
                },
            )
        };
        let reference = run(1);
        let parallel = run(jobs);
        prop_assert_eq!(&reference, &parallel);
        for (i, r) in reference.iter().enumerate() {
            if i == kill {
                let e = r.as_ref().unwrap_err();
                prop_assert_eq!(e.attempts, 3);
                prop_assert!(e.to_string().contains("injected grid-point fault"), "{}", e);
            } else {
                prop_assert_eq!(*r.as_ref().unwrap(), i as u64 * 3);
            }
        }
    }

    /// Flaky points recover by retry: failing the first N attempts
    /// (N < max) still produces a complete sweep with no holes.
    #[test]
    fn flaky_points_recover_within_the_retry_budget(
        flaky in 0usize..12,
        failing in 0u32..3,
    ) {
        let results = runner::try_sweep(
            3,
            (0u64..12).collect::<Vec<_>>(),
            runner::RetryPolicy::default(),
            move |i, &x, attempt| {
                if i == flaky && attempt < failing {
                    return Err(PitonError::transient("injected flaky grid point"));
                }
                Ok(x + u64::from(attempt))
            },
        );
        for (i, r) in results.iter().enumerate() {
            let v = *r.as_ref().unwrap();
            let expected = if i == flaky { i as u64 + u64::from(failing) } else { i as u64 };
            prop_assert_eq!(v, expected);
        }
    }
}
