//! Request-level conformance suite for the `piton-serve` daemon.
//!
//! Drives an in-process [`Server`] over real Unix sockets and pins the
//! cache contract down at the protocol level:
//!
//! * a cold request computes and caches every grid point;
//! * an identical re-request is answered **entirely** from cache
//!   (zero points computed, asserted via the `serve.*` counters) and
//!   its frame stream is byte-identical to the cold one;
//! * any context change — fidelity, backend, fault effects — is a
//!   full miss;
//! * overlapping grids hit exactly the intersection;
//! * malformed requests produce a structured error frame and leave
//!   the daemon serving;
//! * concurrent interleaved clients see exactly the responses serial
//!   execution produces.
//!
//! Everything runs the `scaling` section at a tiny custom fidelity so
//! the whole suite computes milliseconds of simulation, not minutes.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

use piton::characterization::serve::frames::Frame;
use piton::characterization::serve::{Server, ServerConfig, ServerHandle};

/// Tiny custom fidelity used by every request in this suite.
const FIDELITY: &str = "s=2,c=500,w=2000";

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "piton-serve-conformance-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn spawn_server(dir: &Path) -> ServerHandle {
    let config = ServerConfig::new(dir.join("serve.sock"), dir.join("cache"))
        .with_jobs(2)
        .with_shard_points(4);
    Server::bind(config).expect("bind").spawn()
}

/// Sends one request line and returns the raw frame bytes up to and
/// including the terminal frame, plus the decoded frames.
fn roundtrip(socket: &Path, request: &str) -> (Vec<u8>, Vec<Frame>) {
    let mut stream = UnixStream::connect(socket).expect("connect");
    stream
        .write_all(format!("{request}\n").as_bytes())
        .expect("write request");
    read_response(&mut BufReader::new(stream))
}

/// Reads frames off an existing connection until the terminal frame.
fn read_response(reader: &mut BufReader<UnixStream>) -> (Vec<u8>, Vec<Frame>) {
    let mut raw = Vec::new();
    let mut frames = Vec::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read frame");
        assert_ne!(n, 0, "daemon hung up mid-response");
        raw.extend_from_slice(line.as_bytes());
        let frame = Frame::decode(line.as_bytes()).expect("frame decodes");
        let done = matches!(
            frame,
            Frame::Done { .. }
                | Frame::Error { .. }
                | Frame::Pong { .. }
                | Frame::Metrics { .. }
                | Frame::Bye
        );
        frames.push(frame);
        if done {
            break;
        }
    }
    (raw, frames)
}

fn run_request(section: &str, grid: &str) -> String {
    format!(r#"{{"op":"run","section":"{section}","grid":"{grid}","fidelity":"{FIDELITY}"}}"#)
}

/// Result payloads of a response stream, keyed by index.
fn payloads(frames: &[Frame]) -> Vec<(u64, String)> {
    frames
        .iter()
        .filter_map(|f| match f {
            Frame::Result { index, payload, .. } => Some((*index, payload.render())),
            _ => None,
        })
        .collect()
}

#[test]
fn warm_rerequest_serves_from_cache_byte_identically() {
    let dir = temp_dir("warm");
    let server = spawn_server(&dir);
    let req = run_request("scaling", "0-9");

    let (cold_bytes, cold_frames) = roundtrip(server.socket(), &req);
    let computed_cold = server.counters().value("serve.points_computed");
    let hits_cold = server.counters().value("serve.cache_hits");
    assert_eq!(computed_cold, 10, "cold request computes the full grid");
    assert_eq!(hits_cold, 0, "nothing cached before the first request");
    assert_eq!(payloads(&cold_frames).len(), 10);

    let (warm_bytes, _) = roundtrip(server.socket(), &req);
    assert_eq!(
        server.counters().value("serve.points_computed"),
        computed_cold,
        "warm request computes zero points"
    );
    assert_eq!(
        server.counters().value("serve.cache_hits"),
        10,
        "warm request is served entirely from cache"
    );
    assert_eq!(
        cold_bytes, warm_bytes,
        "cold and warm responses are byte-identical"
    );

    server.stop().expect("clean stop");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn any_context_change_is_a_full_miss() {
    let dir = temp_dir("context");
    let server = spawn_server(&dir);

    roundtrip(server.socket(), &run_request("scaling", "0-4"));
    let base = server.counters().value("serve.points_computed");
    assert_eq!(base, 5);

    // Same section and grid, different fidelity / fault effects: the
    // context string differs, so every point is recomputed.
    for (tag, request) in [
        (
            "fidelity",
            r#"{"op":"run","section":"scaling","grid":"0-4","fidelity":"s=3,c=500,w=2000"}"#
                .to_owned(),
        ),
        (
            "fault",
            format!(
                r#"{{"op":"run","section":"scaling","grid":"0-4","fidelity":"{FIDELITY}","fault":"seed=9,drop=0.25"}}"#
            ),
        ),
    ] {
        let before = server.counters().value("serve.points_computed");
        let hits_before = server.counters().value("serve.cache_hits");
        let (_, frames) = roundtrip(server.socket(), &request);
        assert_eq!(payloads(&frames).len(), 5, "{tag}");
        assert_eq!(
            server.counters().value("serve.points_computed") - before,
            5,
            "{tag}: full miss"
        );
        assert_eq!(
            server.counters().value("serve.cache_hits"),
            hits_before,
            "{tag}: no cross-context hits"
        );
    }

    server.stop().expect("clean stop");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overlapping_grids_hit_exactly_the_intersection() {
    let dir = temp_dir("overlap");
    let server = spawn_server(&dir);

    let (_, first) = roundtrip(server.socket(), &run_request("scaling", "0-9"));
    assert_eq!(server.counters().value("serve.points_computed"), 10);

    // 5-14 overlaps 0-9 on exactly {5..=9}: five hits, five computes.
    let (_, second) = roundtrip(server.socket(), &run_request("scaling", "5-14"));
    assert_eq!(server.counters().value("serve.points_computed"), 15);
    assert_eq!(server.counters().value("serve.cache_hits"), 5);

    // The shared points carry identical payloads in both streams.
    let first: std::collections::HashMap<u64, String> = payloads(&first).into_iter().collect();
    for (index, payload) in payloads(&second) {
        if let Some(cached) = first.get(&index) {
            assert_eq!(&payload, cached, "index {index}");
        }
    }

    server.stop().expect("clean stop");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_requests_get_error_frames_and_the_daemon_stays_up() {
    let dir = temp_dir("malformed");
    let server = spawn_server(&dir);

    let stream = UnixStream::connect(server.socket()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    for bad in [
        "this is not json",
        "{}",
        r#"{"op":"run"}"#,
        r#"{"op":"run","section":"scaling","grid":"9-2"}"#,
        r#"{"op":"run","section":"noc","backend":"analytic"}"#,
    ] {
        writer.write_all(format!("{bad}\n").as_bytes()).unwrap();
        let (_, frames) = read_response(&mut reader);
        assert!(
            matches!(frames.as_slice(), [Frame::Error { .. }]),
            "{bad}: {frames:?}"
        );
    }
    // Same connection still serves well-formed requests afterwards.
    writer.write_all(b"{\"op\":\"ping\"}\n").unwrap();
    let (_, frames) = read_response(&mut reader);
    assert!(matches!(frames.as_slice(), [Frame::Pong { .. }]));
    assert_eq!(server.counters().value("serve.errors"), 5);
    assert_eq!(server.counters().value("serve.points_computed"), 0);

    server.stop().expect("clean stop");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_interleaved_clients_match_serial_execution() {
    let requests: Vec<String> = vec![
        run_request("scaling", "0-7"),
        run_request("scaling", "4-11"),
        run_request("scaling", "0-3,10-13"),
        run_request("scaling", "2,5,8,11"),
    ];

    // Serial reference: one fresh daemon, requests one at a time.
    let serial_dir = temp_dir("serial");
    let serial = spawn_server(&serial_dir);
    let expected: Vec<Vec<u8>> = requests
        .iter()
        .map(|r| roundtrip(serial.socket(), r).0)
        .collect();
    serial.stop().expect("clean stop");

    // Concurrent: a fresh daemon, all requests in flight at once from
    // separate connections.
    let conc_dir = temp_dir("concurrent");
    let server = spawn_server(&conc_dir);
    let socket = server.socket().to_path_buf();
    let got: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .map(|r| {
                let socket = socket.clone();
                scope.spawn(move || roundtrip(&socket, r).0)
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, (want, have)) in expected.iter().zip(&got).enumerate() {
        assert_eq!(
            want, have,
            "request {i} must match its serial response byte-for-byte"
        );
    }
    // Whatever the interleaving, the union of work is bounded by the
    // serial union (14 distinct points) plus benign duplicate computes
    // of racing shards — and every distinct point was computed.
    let computed = server.counters().value("serve.points_computed");
    assert!(computed >= 14, "computed {computed}");

    server.stop().expect("clean stop");
    let _ = std::fs::remove_dir_all(&serial_dir);
    let _ = std::fs::remove_dir_all(&conc_dir);
}

#[test]
fn cache_persists_across_daemon_restarts() {
    let dir = temp_dir("restart");
    let req = run_request("scaling", "0-9");

    let first = spawn_server(&dir);
    let (cold_bytes, _) = roundtrip(first.socket(), &req);
    assert_eq!(first.counters().value("serve.points_computed"), 10);
    first.stop().expect("clean stop");

    // A brand-new daemon over the same cache directory answers the
    // same request without computing anything.
    let second = spawn_server(&dir);
    let (warm_bytes, _) = roundtrip(second.socket(), &req);
    assert_eq!(second.counters().value("serve.points_computed"), 0);
    assert_eq!(second.counters().value("serve.cache_hits"), 10);
    assert_eq!(cold_bytes, warm_bytes);

    second.stop().expect("clean stop");
    let _ = std::fs::remove_dir_all(&dir);
}
