//! Conformance property tests of the closed-loop DVFS/thermal
//! governor: the four invariants its module contract promises
//! (`piton::power::governor`), pinned over randomized die corners,
//! rails, temperatures and brownout sags.
//!
//! 1. **Capability bound** — a chosen frequency never exceeds the V/F
//!    capability curve at the decision's junction temperature.
//! 2. **Monotone** — from identical controller state, a hotter die
//!    never yields a higher frequency (the throttle policies; the
//!    energy frontier deliberately trades frequency against leakage).
//! 3. **Fixed point** — constant temperature and load converge to one
//!    operating point that then never moves.
//! 4. **Determinism** — bit-identical to the independently-derived
//!    step-by-step [`Reference`] controller (compiled in like
//!    `Machine::run_naive`), and to a lockstepped twin of itself.
//!
//! Shrunk inputs are pinned in `tests/common` (the vendored proptest
//! does not replay `*.proptest-regressions`) and replayed as plain
//! tests at the bottom.

use proptest::prelude::*;

use piton::arch::units::{Hertz, Volts};
use piton::power::governor::{idle_window, Governor, GovernorConfig, Reference};
use piton::power::vf::VfSolver;
use piton::power::{Calibration, ChipCorner, PowerModel, TechModel};

mod common;

const POLICIES: [GovernorConfig; 3] = [
    GovernorConfig::ThrottleOnBoot,
    GovernorConfig::RaceToHalt,
    GovernorConfig::EnergyFrontier,
];

fn solver(speed: f64, leakage: f64, dynamic: f64) -> VfSolver {
    VfSolver::new(
        PowerModel::new(
            Calibration::piton_hpca18(),
            TechModel::ibm32soi(),
            ChipCorner {
                speed,
                leakage,
                dynamic,
            },
        ),
        20.0,
    )
}

fn grid_vdd(step: u32) -> Volts {
    Volts(0.8 + 0.05 * f64::from(step))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariant 1: whatever the policy decides, the chosen frequency
    /// respects the capability curve of the chosen rail at the
    /// temperature that drove the decision.
    #[test]
    fn chosen_frequency_never_exceeds_capability(
        corner in (0.9f64..1.1, 0.8f64..1.5, 0.9f64..1.15),
        vdd_step in 0u32..9,
        start_mhz in 60.0f64..700.0,
        temps in collection::vec(20.0f64..130.0, 1..20),
        policy_pick in 0usize..3,
    ) {
        let policy = POLICIES[policy_pick];
        let s = solver(corner.0, corner.1, corner.2);
        let mut g = Governor::new(policy, s, grid_vdd(vdd_step), Hertz::from_mhz(start_mhz));
        let w = idle_window(10_000);
        for &t in &temps {
            let c = g.step(t, &w);
            let cap = g.solver().capability(c.vdd, t);
            prop_assert!(
                c.freq.0 <= cap.0 + 1e-9,
                "{policy}: chose {} above capability {} at t={t}",
                c.freq,
                cap
            );
        }
    }

    /// Invariant 2: for the thermal-throttle policies, stepping the
    /// same controller state with a hotter junction never yields a
    /// higher frequency.
    #[test]
    fn hotter_die_never_raises_the_chosen_frequency(
        corner in (0.9f64..1.1, 0.8f64..1.5, 0.9f64..1.15),
        vdd_step in 0u32..9,
        start_mhz in 60.0f64..700.0,
        t_cool in 20.0f64..130.0,
        dt in 0.0f64..40.0,
        policy_pick in 0usize..2,
    ) {
        let policy = POLICIES[policy_pick];
        let s = solver(corner.0, corner.1, corner.2);
        let vdd = grid_vdd(vdd_step);
        let f0 = Hertz::from_mhz(start_mhz);
        let w = idle_window(10_000);
        let mut cool = Governor::new(policy, s.clone(), vdd, f0);
        let mut hot = Governor::new(policy, s, vdd, f0);
        let a = cool.step(t_cool, &w);
        let b = hot.step(t_cool + dt, &w);
        prop_assert!(
            a.freq.0 >= b.freq.0,
            "{policy}: hotter die got faster: {} at {t_cool} vs {} at {}",
            a.freq,
            b.freq,
            t_cool + dt
        );
    }

    /// Invariant 3: under constant junction temperature and a constant
    /// activity window, the loop reaches an operating point it never
    /// leaves.
    #[test]
    fn constant_conditions_converge_to_a_fixed_point(
        corner in (0.9f64..1.1, 0.8f64..1.5, 0.9f64..1.15),
        vdd_step in 0u32..9,
        start_mhz in 60.0f64..700.0,
        t in 20.0f64..130.0,
        policy_pick in 0usize..3,
    ) {
        let policy = POLICIES[policy_pick];
        let s = solver(corner.0, corner.1, corner.2);
        let mut g = Governor::new(policy, s, grid_vdd(vdd_step), Hertz::from_mhz(start_mhz));
        let w = idle_window(10_000);
        // The longest possible transient is one full ladder walk.
        for _ in 0..200 {
            g.step(t, &w);
        }
        let held = g.step(t, &w);
        for k in 0..8 {
            let again = g.step(t, &w);
            prop_assert_eq!(
                again,
                held,
                "{} left its fixed point at settle step {} (t={})",
                policy,
                k,
                t
            );
        }
    }

    /// Invariant 4: the production controller, a lockstepped twin of
    /// itself, and the independently-derived reference controller make
    /// identical decisions on arbitrary temperature/brownout
    /// trajectories.
    #[test]
    fn production_twin_and_reference_controllers_agree(
        corner in (0.9f64..1.1, 0.8f64..1.5, 0.9f64..1.15),
        vdd_step in 0u32..9,
        start_mhz in 60.0f64..700.0,
        steps in collection::vec((20.0f64..130.0, 0u8..2), 1..24),
        policy_pick in 0usize..3,
    ) {
        let policy = POLICIES[policy_pick];
        let s = solver(corner.0, corner.1, corner.2);
        let vdd = grid_vdd(vdd_step);
        let f0 = Hertz::from_mhz(start_mhz);
        let mut prod = Governor::new(policy, s.clone(), vdd, f0);
        let mut twin = Governor::new(policy, s.clone(), vdd, f0);
        let mut refc = Reference::new(policy, s, vdd, f0);
        let w = idle_window(10_000);
        for (k, &(t, sag_bit)) in steps.iter().enumerate() {
            let sag = if sag_bit == 1 { 0.9 } else { 1.0 };
            let a = prod.step_sagged(t, &w, sag);
            let b = twin.step_sagged(t, &w, sag);
            let c = refc.step_sagged(t, &w, sag);
            prop_assert_eq!(a, b, "{} twin diverged at step {}", policy, k);
            prop_assert_eq!(a, c, "{} reference diverged at step {} (t={})", policy, k, t);
        }
    }
}

/// Replays the pinned shrink input (see `tests/common`): the junction
/// exactly at the boot limit with the controller on the ladder's bottom
/// rung. `t >= limit` must throttle (and saturate at index 0, not
/// underflow), stay within capability, and agree with the reference —
/// for every policy.
#[test]
fn pinned_limit_boundary_at_the_ladder_base() {
    let vdd = Volts(common::pinned::GOVERNOR_VDD);
    let f0 = Hertz::from_mhz(common::pinned::GOVERNOR_START_MHZ);
    let t = common::pinned::GOVERNOR_T_LIMIT;
    for policy in POLICIES {
        let s = solver(1.0, 1.49, 1.0);
        let mut g = Governor::new(policy, s.clone(), vdd, f0);
        let mut r = Reference::new(policy, s, vdd, f0);
        let w = idle_window(10_000);
        for k in 0..4 {
            let a = g.step(t, &w);
            let b = r.step_sagged(t, &w, 1.0);
            assert_eq!(a, b, "{policy} diverged at pinned step {k}");
            assert!(
                a.thermally_limited,
                "{policy}: at the limit exactly, the step must count as throttled"
            );
            assert!(a.freq.0 <= g.solver().capability(a.vdd, t).0 + 1e-9);
        }
    }
}
