//! Smoke coverage for the pieces the benchmark harness relies on, plus
//! facade-level API checks a downstream user would hit first.

use piton::arch::units::{Volts, Watts};
use piton::board::system::PitonSystem;
use piton::characterization::experiments::{ablations, Fidelity};
use piton::characterization::report::Table;
use piton::power::vf::PllLadder;
use piton::power::{OperatingPoint, PowerModel};
use piton::sim::events::ActivityCounters;

#[test]
fn facade_reexports_compose() {
    // A downstream user can assemble the whole stack from the facade.
    let mut sys = PitonSystem::reference_chip_2();
    let m = sys.measure(8);
    assert!(m.total.mean > Watts(1.0));
    let model: &PowerModel = sys.power_model();
    let idle = ActivityCounters {
        cycles: 10_000,
        ..Default::default()
    };
    let p = model.power(&idle, OperatingPoint::table_iii());
    assert!(p.vdd > Watts(0.0) && p.vcs > Watts(0.0) && p.vio > Watts(0.0));
}

#[test]
fn pll_ladder_covers_the_whole_figure_9_range() {
    let ladder = PllLadder::piton();
    for mhz in [150.0, 285.74, 414.33, 514.33, 621.49, 700.0] {
        let (q, next) = ladder.quantize(piton::arch::units::Hertz::from_mhz(mhz));
        assert!(q.as_mhz() <= mhz && next.as_mhz() > mhz, "{mhz} MHz");
    }
}

#[test]
fn vf_solver_is_deterministic_across_runs() {
    use piton::characterization::experiments::vf_sweep;
    let a = vf_sweep::run();
    let b = vf_sweep::run();
    for (ca, cb) in a.chips.iter().zip(&b.chips) {
        for (pa, pb) in ca.points.iter().zip(&cb.points) {
            assert_eq!(pa.freq, pb.freq);
            assert_eq!(pa.thermally_limited, pb.thermally_limited);
        }
    }
}

#[test]
fn execution_drafting_saves_at_full_scale_too() {
    let r = ablations::execution_drafting(Fidelity::quick());
    let saving = 100.0 * (r.undrafted_w - r.drafted_w) / r.undrafted_w;
    // The ExecD paper reports single-digit-percent core-power savings;
    // at chip level ours lands in the low single digits.
    assert!(
        (0.1..10.0).contains(&saving),
        "drafting saving {saving:.2}%"
    );
}

#[test]
fn csv_and_render_agree_on_row_counts() {
    use piton::characterization::experiments::noc_energy;
    let r = noc_energy::run(Fidelity {
        samples: 4,
        chunk_cycles: 1_000,
        warmup_cycles: 4_000,
        jobs: 2,
        fault: None,
        governor: piton::power::GovernorConfig::Off,
        journal: None,
        backend: piton::arch::config::Backend::Cycle,
    });
    let csv = r.to_csv();
    // header + 4 patterns x 9 hop points
    assert_eq!(csv.lines().count(), 1 + 4 * 9);
}

#[test]
fn tables_handle_unicode_and_width() {
    let mut t = Table::new("π");
    t.header(["α", "β"]);
    t.row(["1", "2"]);
    let s = t.render();
    assert!(s.contains("π"));
    assert!(s.contains("| 1"));
}

#[test]
fn voltage_sweep_monotonic_for_all_named_chips() {
    // The board-level sweep: idle power must rise with VDD for every
    // reference die at a fixed frequency.
    for mut sys in [
        PitonSystem::reference_chip_1(),
        PitonSystem::reference_chip_2(),
        PitonSystem::reference_chip_3(),
    ] {
        sys.set_chunk_cycles(1_000);
        let mut prev = Watts(0.0);
        for mv in [800, 1000, 1200] {
            sys.set_vdd_tracked(Volts(f64::from(mv) / 1000.0));
            let p = sys.measure_idle_power().mean;
            assert!(p > prev, "non-monotonic at {mv} mV");
            prev = p;
        }
    }
}
