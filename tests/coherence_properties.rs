//! Property tests of the coherent memory system: arbitrary interleaved
//! load/store/CAS sequences across tiles must stay coherent and agree
//! with a flat reference memory.

use proptest::prelude::*;

use piton::arch::config::ChipConfig;
use piton::arch::topology::TileId;
use piton::sim::events::ActivityCounters;
use piton::sim::memsys::MemorySystem;

mod common;

#[derive(Debug, Clone)]
enum Op {
    Load {
        tile: usize,
        addr: u64,
    },
    Store {
        tile: usize,
        addr: u64,
        value: u64,
    },
    Cas {
        tile: usize,
        addr: u64,
        expected: u64,
        new: u64,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // A small address pool maximizes conflict/sharing pressure.
    let addr = prop_oneof![
        (0u64..16).prop_map(|k| 0x1000 + k * 8),
        (0u64..8).prop_map(|k| 0x1000 + k * 2048), // L1-set aliases
        (0u64..4).prop_map(|k| 0x80_0000 + k * 64),
    ];
    let tile = 0usize..25;
    prop_oneof![
        (tile.clone(), addr.clone()).prop_map(|(tile, addr)| Op::Load { tile, addr }),
        (tile.clone(), addr.clone(), any::<u64>()).prop_map(|(tile, addr, value)| Op::Store {
            tile,
            addr,
            value
        }),
        (tile, addr, 0u64..4, any::<u64>()).prop_map(|(tile, addr, expected, new)| Op::Cas {
            tile,
            addr,
            expected,
            new
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Loads always return the latest architecturally-written value, and
    /// MESI invariants hold at every step.
    #[test]
    fn memory_system_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut sys = MemorySystem::new(&ChipConfig::piton());
        let mut reference = std::collections::HashMap::<u64, u64>::new();
        let mut act = ActivityCounters::default();
        let mut now = 0u64;

        for op in &ops {
            match *op {
                Op::Load { tile, addr } => {
                    let out = sys.load(TileId::new(tile), addr, now, &mut act);
                    let expected = reference.get(&(addr & !7)).copied().unwrap_or(0);
                    prop_assert_eq!(out.value, expected, "load at {:#x}", addr);
                    now += out.latency + 1;
                }
                Op::Store { tile, addr, value } => {
                    let lat = sys.store_drain(TileId::new(tile), addr, value, now, &mut act);
                    reference.insert(addr & !7, value);
                    now += lat + 1;
                }
                Op::Cas { tile, addr, expected, new } => {
                    let before = reference.get(&(addr & !7)).copied().unwrap_or(0);
                    let (old, lat) = sys.cas(TileId::new(tile), addr, expected, new, now, &mut act);
                    prop_assert_eq!(old, before);
                    if before == expected {
                        reference.insert(addr & !7, new);
                    }
                    now += lat + 1;
                }
            }
            // MESI invariant on every touched line.
            let addr = match *op {
                Op::Load { addr, .. } | Op::Store { addr, .. } | Op::Cas { addr, .. } => addr,
            };
            prop_assert!(sys.coherence_ok(addr), "coherence violated at {:#x}", addr);
        }
    }

    /// Load latencies always fall in the architected ladder.
    #[test]
    fn load_latencies_fall_in_the_ladder(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let mut sys = MemorySystem::new(&ChipConfig::piton());
        let mut act = ActivityCounters::default();
        let mut now = 0u64;
        for op in &ops {
            if let Op::Load { tile, addr } = *op {
                let out = sys.load(TileId::new(tile), addr, now, &mut act);
                // L1 hit (3), L1.5 hit (8), L2 hit 34..52 plus up to
                // two extra round trips when a dirty copy is fetched
                // from its owner, or an off-chip miss (>= 424).
                prop_assert!(
                    out.latency == 3
                        || out.latency == 8
                        || (34..=90).contains(&out.latency)
                        || out.latency >= 424,
                    "odd latency {} at {:#x}",
                    out.latency,
                    addr
                );
                now += out.latency + 1;
            } else if let Op::Store { tile, addr, value } = *op {
                now += sys.store_drain(TileId::new(tile), addr, value, now, &mut act) + 1;
            }
        }
    }

    /// DRAM accounting: exactly two device accesses per off-chip demand
    /// request (32-bit interface), regardless of access pattern.
    #[test]
    fn dram_accesses_are_twice_offchip_demand(seeds in proptest::collection::vec(any::<u64>(), 1..40)) {
        let mut sys = MemorySystem::new(&ChipConfig::piton());
        let mut act = ActivityCounters::default();
        let mut now = 0;
        for (i, s) in seeds.iter().enumerate() {
            let addr = 0x100_0000 + (s % 4096) * 64;
            let out = sys.load(TileId::new(i % 25), addr, now, &mut act);
            now += out.latency + 1;
        }
        // Write-backs also touch DRAM, but only misses consume
        // offchip_requests through the blocking path; each costs 2.
        prop_assert!(act.dram_accesses >= 2 * act.offchip_requests);
        prop_assert_eq!(act.l2_misses, act.offchip_requests);
    }
}

/// Explicit replay of the shrunk input recorded in
/// `tests/coherence_properties.proptest-regressions`:
///
/// ```text
/// ops = [Store { tile: 3, addr: 8388800, value: 0 }, Load { tile: 14, addr: 8388800 }]
/// ```
///
/// The vendored proptest stub does not replay regression files, so the
/// recorded input is pinned (in `common::pinned`, shared with the
/// regression file) and replayed as a plain test: a store of zero from
/// tile 3 into the 0x80_0000 region must be observed by a remote load
/// from tile 14 — a stored zero exercises the directory state exactly
/// like any other value even though the loaded value matches the
/// never-written default.
#[test]
fn regression_remote_load_observes_stored_zero() {
    let mut sys = MemorySystem::new(&ChipConfig::piton());
    let mut act = ActivityCounters::default();
    let mut now = 0u64;
    let addr = common::pinned::COHERENCE_ADDR; // 0x80_0040

    let lat = sys.store_drain(
        TileId::new(common::pinned::COHERENCE_STORE_TILE),
        addr,
        0,
        now,
        &mut act,
    );
    assert!(sys.coherence_ok(addr), "coherence violated after store");
    now += lat + 1;

    let out = sys.load(
        TileId::new(common::pinned::COHERENCE_LOAD_TILE),
        addr,
        now,
        &mut act,
    );
    assert_eq!(out.value, 0, "remote load must see the stored value");
    assert!(sys.coherence_ok(addr), "coherence violated after load");
}
