//! Helpers shared across the root integration-test suite: golden-file
//! comparison with `PITON_BLESS=1` regeneration, and the hand-pinned
//! proptest shrink inputs replayed as plain tests (the vendored
//! proptest stub does not replay `*.proptest-regressions` files, so
//! each recorded input lives here once instead of being copy-pasted
//! into every suite that replays it).
//!
//! Each integration-test binary compiles its own copy of this module
//! (`mod common;`), so helpers unused by a given binary are expected.
#![allow(dead_code)]

use std::path::PathBuf;

/// Shrunk proptest inputs recorded in `tests/*.proptest-regressions`,
/// pinned as constants so the replaying tests and the regression files
/// stay in sync from one place.
pub mod pinned {
    /// `coherence_properties`: `Store { tile: 3, addr: 8388800, value: 0 }`
    /// then `Load { tile: 14, addr: 8388800 }` — a stored zero must be
    /// observed remotely even though it equals the never-written default.
    pub const COHERENCE_STORE_TILE: usize = 3;
    /// See [`COHERENCE_STORE_TILE`].
    pub const COHERENCE_LOAD_TILE: usize = 14;
    /// See [`COHERENCE_STORE_TILE`] (address 0x80_0040).
    pub const COHERENCE_ADDR: u64 = 8_388_800;
    /// `measurement_properties`: `p_mw = 1417.6274120739997, eff = 0.0`
    /// — the thermal transient must converge even with a dead fan.
    pub const THERMAL_P_MW: f64 = 1_417.627_412_073_999_7;
    /// See [`THERMAL_P_MW`].
    pub const THERMAL_FAN_EFFECTIVENESS: f64 = 0.0;
    /// `model_properties`: the leakiest corner a hair under the thermal
    /// knee — the shrunk capability-monotonicity input, where IR drop
    /// is steepest and a sign slip in the derate flips the curve.
    pub const VF_MONOTONE_LEAKAGE: f64 = 1.49;
    /// See [`VF_MONOTONE_LEAKAGE`].
    pub const VF_MONOTONE_T_J: f64 = 94.99;
    /// `governor_properties`: junction exactly at the boot limit
    /// (95.0 °C) with the PLL-ladder-base start frequency — the
    /// boundary between the hot and hold control branches at the
    /// saturating bottom rung, where an off-by-one survives any random
    /// sweep that misses exact equality.
    pub const GOVERNOR_T_LIMIT: f64 = 95.0;
    /// See [`GOVERNOR_T_LIMIT`].
    pub const GOVERNOR_VDD: f64 = 0.8;
    /// See [`GOVERNOR_T_LIMIT`] (the `PllLadder::piton` base step).
    pub const GOVERNOR_START_MHZ: f64 = 50.0;
    /// `model_properties`: the analytic calibrate→predict round trip
    /// at identity scale with a pure +2.5 pJ shift on every
    /// coefficient — a fit that re-normalized coefficients (instead of
    /// recovering the plant) still matches the unshifted reference
    /// here, so only genuine recovery passes.
    pub const ANALYTIC_PLANT_SCALE: f64 = 1.0;
    /// See [`ANALYTIC_PLANT_SCALE`].
    pub const ANALYTIC_PLANT_SHIFT_PJ: f64 = 2.5;
    /// See [`ANALYTIC_PLANT_SCALE`] (xorshift seed for the probe rates).
    pub const ANALYTIC_PLANT_SEED: u64 = 0xA11C;
}

/// Path of a committed golden fixture.
pub fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the committed fixture `tests/golden/<name>`.
///
/// With `PITON_BLESS=1` in the environment the fixture is rewritten
/// instead and the test passes — the regeneration path after an
/// intentional output change. On mismatch, panics with a readable
/// first-difference report (line number, expected/actual lines, and
/// the bless instructions).
pub fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("PITON_BLESS").is_some() {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create tests/golden");
        }
        std::fs::write(&path, actual)
            .unwrap_or_else(|e| panic!("blessing {}: {e}", path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with PITON_BLESS=1",
            path.display()
        )
    });
    if expected == actual {
        return;
    }
    let mut exp_lines = expected.lines();
    let mut act_lines = actual.lines();
    let mut line_no = 1usize;
    loop {
        match (exp_lines.next(), act_lines.next()) {
            (Some(e), Some(a)) if e == a => line_no += 1,
            (e, a) => {
                panic!(
                    "golden mismatch against {} at line {line_no}:\n\
                     expected: {}\n\
                     actual:   {}\n\
                     (re-run with PITON_BLESS=1 to accept the new output)",
                    path.display(),
                    e.unwrap_or("<end of fixture>"),
                    a.unwrap_or("<end of output>"),
                );
            }
        }
    }
}
