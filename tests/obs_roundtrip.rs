//! Round-trip property tests for the observability layer: trace
//! events through their JSONL encoding, fault plans through their spec
//! rendering, and run manifests through their JSON document.

// The vendored `proptest!` macro is a token-muncher; keep each
// invocation to a single property so expansion stays within the
// default recursion limit.
#![recursion_limit = "256"]

use proptest::prelude::*;

use piton::board::fault::{Brownout, CrashPoint, FaultPlan, Sabotage, SabotageKind};
use piton::obs::manifest::{
    CalibrationRecord, HoleRecord, JournalStats, RunManifest, SectionRecord,
};
use piton::obs::metrics::Histogram;
use piton::obs::trace::{
    decode_jsonl, encode_jsonl, CacheKind, CacheLevel, EngineMode, TraceEvent,
};
use piton::obs::MetricsSnapshot;

/// Decodes one trace event from raw random words — every variant and
/// every enum value is reachable, with full-range integer payloads.
fn event_from_words(tag: u64, a: u64, b: u64, c: u64) -> TraceEvent {
    const OPS: [&str; 5] = ["Add", "Sdivx", "Ldx", "Casx", "Membar"];
    const LEVELS: [CacheLevel; 5] = [
        CacheLevel::L1I,
        CacheLevel::L1D,
        CacheLevel::L15,
        CacheLevel::L2,
        CacheLevel::Memory,
    ];
    const KINDS: [CacheKind; 6] = [
        CacheKind::Hit,
        CacheKind::Fill,
        CacheKind::Upgrade,
        CacheKind::Invalidate,
        CacheKind::Writeback,
        CacheKind::Atomic,
    ];
    const MODES: [EngineMode; 3] = [EngineMode::Calendar, EngineMode::Dense, EngineMode::Naive];
    const POLICIES: [&str; 3] = ["throttle-on-boot", "race-to-halt", "energy-frontier"];
    match tag % 6 {
        0 => TraceEvent::Retire {
            cycle: a,
            tile: (b % 25) as u32,
            thread: (b >> 32) as u32 % 2,
            op: OPS[c as usize % OPS.len()].to_owned(),
            pc: c,
        },
        1 => TraceEvent::Cache {
            cycle: a,
            tile: (b % 25) as u32,
            level: LEVELS[b as usize % LEVELS.len()],
            kind: KINDS[(b >> 8) as usize % KINDS.len()],
            addr: c,
        },
        2 => TraceEvent::NocHop {
            cycle: a,
            noc: (b % 3) as u32,
            from: (b >> 8) as u32 % 25,
            to: (b >> 16) as u32 % 25,
            flits: (b >> 24) as u32 % 8,
        },
        3 => TraceEvent::Adc {
            channel: a,
            sample: b,
            microwatts: c as i64,
        },
        4 => TraceEvent::Engine {
            cycle: a,
            mode: MODES[b as usize % MODES.len()],
        },
        _ => TraceEvent::Governor {
            cycle: a,
            khz: b,
            millicelsius: c as i64,
            policy: POLICIES[b as usize % POLICIES.len()].to_owned(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is the identity on arbitrary event sequences,
    /// including extreme u64/i64 payloads.
    #[test]
    fn trace_jsonl_round_trips(
        words in proptest::collection::vec(
            (
                proptest::strategy::any::<u64>(),
                proptest::strategy::any::<u64>(),
                proptest::strategy::any::<u64>(),
                proptest::strategy::any::<u64>(),
            ),
            0..40,
        ),
    ) {
        let events: Vec<TraceEvent> = words
            .iter()
            .map(|&(tag, a, b, c)| event_from_words(tag, a, b, c))
            .collect();
        let doc = encode_jsonl(&events);
        let back = decode_jsonl(&doc).expect("encoded stream must decode");
        prop_assert_eq!(back, events);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `FaultPlan::parse(&plan.render())` reconstructs the plan exactly
    /// (bitwise f64 rates included — `Display` round-trips shortest
    /// form).
    #[test]
    fn fault_plan_spec_round_trips(
        seed in proptest::strategy::any::<u64>(),
        rates in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
        zero_mask in 0u8..8,
        brownout in (0u8..2, 0usize..512, 1usize..64, 0.0f64..1.0),
        sabotage in proptest::collection::vec(
            (0u8..2, 0usize..3, 0usize..64, 1u32..6),
            0..4,
        ),
        crash in proptest::collection::vec((0usize..3, 0usize..64), 0..3),
    ) {
        const SECTIONS: [&str; 3] = ["epi", "noc", "scaling"];
        let zeroed = |bit: u8, r: f64| if zero_mask & bit != 0 { 0.0 } else { r };
        let plan = FaultPlan {
            seed,
            drop_rate: zeroed(1, rates.0),
            stuck_rate: zeroed(2, rates.1),
            glitch_rate: zeroed(4, rates.2),
            brownout: (brownout.0 == 1).then_some(Brownout {
                start_sample: brownout.1,
                samples: brownout.2,
                factor: brownout.3,
            }),
            sabotage: sabotage
                .iter()
                .map(|&(kind, section, index, attempts)| Sabotage {
                    section: SECTIONS[section].to_owned(),
                    index,
                    kind: if kind == 0 {
                        SabotageKind::Kill
                    } else {
                        SabotageKind::Flaky { failing_attempts: attempts }
                    },
                })
                .collect(),
            crash: crash
                .iter()
                .map(|&(section, index)| CrashPoint {
                    section: SECTIONS[section].to_owned(),
                    index,
                })
                .collect(),
        };
        let spec = plan.render();
        let back = FaultPlan::parse(&spec)
            .unwrap_or_else(|e| panic!("rendered spec {spec:?} must parse: {e}"));
        prop_assert_eq!(back, plan);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Run manifests round-trip through their JSON document with
    /// arbitrary metrics payloads.
    #[test]
    fn run_manifest_round_trips(
        jobs in 1usize..64,
        wall in (0.0f64..10_000.0, 0.0f64..10_000.0),
        counters in proptest::collection::vec(
            (0usize..6, proptest::strategy::any::<u64>()),
            0..6,
        ),
        observations in proptest::collection::vec(proptest::strategy::any::<u64>(), 1..20),
        hole_count in 0usize..3,
        with_fault in 0u8..2,
    ) {
        const NAMES: [&str; 6] = [
            "engine.steps",
            "engine.calendar_pops",
            "sweep.retries",
            "sweep.holes",
            "monitor.kept",
            "monitor.dropped",
        ];
        let mut metrics = MetricsSnapshot::default();
        for &(name, value) in &counters {
            let slot = metrics.counters.entry(NAMES[name].to_owned()).or_insert(0);
            *slot = slot.wrapping_add(value);
        }
        metrics.gauges.insert("bench.temp_c".to_owned(), wall.1);
        let mut h = Histogram::default();
        for &v in &observations {
            h.observe(v);
        }
        metrics.histograms.insert("engine.issue_duty".to_owned(), h);

        let manifest = RunManifest {
            fidelity: "quick".to_owned(),
            jobs,
            fault_plan: (with_fault == 1)
                .then(|| FaultPlan::with_seed(jobs as u64).render()),
            fault_effects: (with_fault == 1)
                .then(|| FaultPlan::with_seed(jobs as u64).render()),
            governor: (jobs % 2 == 1).then(|| "throttle-on-boot".to_owned()),
            backend: (jobs % 4 == 0).then(|| "analytic".to_owned()),
            journal: (jobs % 3 == 0).then(|| JournalStats {
                served: jobs as u64,
                appended: 46 - jobs as u64 % 47,
                recovered: jobs as u64,
                torn: u64::from(with_fault),
            }),
            calibration: (jobs % 4 == 0).then(|| CalibrationRecord {
                probes: 100 + jobs as u64,
                residuals: vec![
                    ("VDD".to_owned(), wall.1 / 1e4, wall.1 / 2e4),
                    ("VCS".to_owned(), wall.0 / 1e4, wall.0 / 2e4),
                ],
                worst: (with_fault == 1)
                    .then(|| ("idle".to_owned(), "VIO".to_owned(), wall.1 / 1e4)),
                coefficients: vec![
                    ("vdd.core_active".to_owned(), wall.0),
                    ("vcs.l2_read".to_owned(), wall.1),
                ],
            }),
            total_wall_s: wall.0,
            sections: vec![SectionRecord {
                title: "Figure 11 — energy per instruction".to_owned(),
                wall_s: wall.0,
                busy_s: wall.1,
                sweeps: 1,
                points: 46,
            }],
            holes: (0..hole_count)
                .map(|i| HoleRecord {
                    section: "noc".to_owned(),
                    index: i,
                    point: format!("point {i}"),
                    attempts: 3,
                    error: "injected".to_owned(),
                })
                .collect(),
            metrics,
        };
        let doc = manifest.to_json();
        let back = RunManifest::from_json(&doc)
            .unwrap_or_else(|e| panic!("manifest must parse back: {e}"));
        prop_assert_eq!(back, manifest);
    }
}

/// A representative manifest with every optional block populated, used
/// by the torn-input robustness tests below.
fn dense_manifest() -> RunManifest {
    let mut metrics = MetricsSnapshot::default();
    metrics.counters.insert("journal.served".to_owned(), 104);
    metrics
        .gauges
        .insert("watchdog.chunk_cycles".to_owned(), 1000.0);
    let mut h = Histogram::default();
    h.observe(7);
    metrics.histograms.insert("engine.issue_duty".to_owned(), h);
    RunManifest {
        fidelity: "quick".to_owned(),
        jobs: 4,
        fault_plan: Some("seed=7,drop=0.25,kill=epi:3,crash=noc:1".to_owned()),
        fault_effects: Some("seed=7,drop=0.25,kill=epi:3".to_owned()),
        governor: Some("race-to-halt".to_owned()),
        backend: Some("both".to_owned()),
        journal: Some(JournalStats {
            served: 104,
            appended: 20,
            recovered: 104,
            torn: 69,
        }),
        calibration: Some(CalibrationRecord {
            probes: 111,
            residuals: vec![("VDD".to_owned(), 0.0014, 0.0001)],
            worst: Some(("idle".to_owned(), "vio".to_owned(), 0.0167)),
            coefficients: vec![("vdd.clock".to_owned(), 42.5)],
        }),
        total_wall_s: 3.25,
        sections: vec![SectionRecord {
            title: "Figure 12 - NoC energy per flit".to_owned(),
            wall_s: 0.5,
            busy_s: 1.75,
            sweeps: 1,
            points: 36,
        }],
        holes: vec![HoleRecord {
            section: "epi".to_owned(),
            index: 3,
            point: "add/Random".to_owned(),
            attempts: 3,
            error: "injected kill".to_owned(),
        }],
        metrics,
    }
}

/// The decode path must be total over torn input: truncating a valid
/// manifest at *every* byte offset yields a structured `PitonError` —
/// never a panic, never a silently-accepted partial document.
#[test]
fn manifest_decode_rejects_every_truncation() {
    let doc = dense_manifest().to_json();
    // Stop before the closing brace: dropping only the trailing
    // newline still leaves a complete document, which must decode.
    for cut in 0..doc.trim_end().len() {
        let torn = String::from_utf8_lossy(&doc.as_bytes()[..cut]);
        assert!(
            RunManifest::from_json(&torn).is_err(),
            "truncation at byte {cut} must not decode: {torn:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary single-byte corruption of a valid manifest never
    /// panics the decoder: it either still round-trips (the byte landed
    /// in an equivalent encoding) or fails with a structured error.
    #[test]
    fn corrupted_manifest_never_panics(
        offset in proptest::strategy::any::<u64>(),
        byte in proptest::strategy::any::<u64>(),
    ) {
        let mut bytes = dense_manifest().to_json().into_bytes();
        let len = bytes.len() as u64;
        bytes[(offset % len) as usize] = (byte % 256) as u8;
        let doc = String::from_utf8_lossy(&bytes).into_owned();
        // Totality is the property: no panic, structured result.
        let _ = RunManifest::from_json(&doc);
    }
}

// ---------------------------------------------------------------------------
// piton-serve wire codec: request grammar and response frames.
// ---------------------------------------------------------------------------

use piton::arch::request::GridSpec;
use piton::characterization::journal::point_key;
use piton::characterization::serve::frames::{Frame, FrameHole};
use piton::obs::json::Value;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Grid specs render canonically: building a spec from an
    /// arbitrary index set, rendering, and parsing reconstructs the
    /// spec exactly, and the re-render is stable.
    #[test]
    fn grid_spec_round_trips_canonically(
        indices in proptest::collection::vec(0usize..4096, 1..48),
    ) {
        let spec = GridSpec::from_indices(&indices);
        let rendered = spec.render();
        let back = GridSpec::parse(&rendered)
            .unwrap_or_else(|e| panic!("rendered spec {rendered:?} must parse: {e}"));
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.render(), rendered);
        // The spec selects exactly the deduped index set.
        let mut expect: Vec<usize> = indices.clone();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(spec.resolve(4096).unwrap(), expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parsing arbitrary grid-spec strings is total: structured result
    /// or error, never a panic — and whatever parses re-renders to a
    /// form that parses back to the same spec.
    #[test]
    fn grid_spec_parse_is_total(
        chars in proptest::collection::vec(0usize..14, 0..24),
    ) {
        const ALPHABET: [char; 14] =
            ['0', '1', '2', '3', '4', '5', '6', '7', '8', '9', ',', '-', 'a', 'l'];
        let spec: String = chars.iter().map(|&c| ALPHABET[c]).collect();
        if let Ok(parsed) = GridSpec::parse(&spec) {
            let rendered = parsed.render();
            prop_assert_eq!(GridSpec::parse(&rendered).unwrap(), parsed);
        }
    }
}

/// Decodes one response frame from raw random words — every frame
/// kind, with and without optional fields, with full-range keys.
fn frame_from_words(tag: u64, a: u64, b: u64, c: u64) -> Frame {
    let id = a.is_multiple_of(2).then(|| format!("req-{b}"));
    match tag % 7 {
        0 => Frame::Hello {
            id,
            section: "scaling".to_owned(),
            context: format!("piton/0.1.0|fidelity=quick|effects=none|backend=cycle#{c}"),
            points: b,
        },
        1 => Frame::Result {
            section: "noc".to_owned(),
            index: a,
            key: b,
            payload: Value::Float((c % 4096) as f64 / 8.0),
        },
        2 => Frame::Done {
            id,
            section: "design_space".to_owned(),
            points: a,
            holes: (0..b % 4)
                .map(|i| FrameHole {
                    index: c.wrapping_add(i),
                    attempts: (i % 5) as u32,
                    error: format!("injected fault {i}"),
                })
                .collect(),
        },
        3 => Frame::Error {
            message: format!("unknown section \"sec-{c}\""),
        },
        4 => Frame::Pong {
            version: format!("{}.{}.{}", a % 10, b % 10, c % 10),
        },
        5 => Frame::Metrics {
            counters: vec![
                ("serve.cache_hits".to_owned(), a),
                ("serve.points_computed".to_owned(), b),
            ],
        },
        _ => Frame::Bye,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is the identity on every frame kind, including
    /// extreme u64 keys and counts.
    #[test]
    fn serve_frames_round_trip(
        words in proptest::collection::vec(
            (
                proptest::strategy::any::<u64>(),
                proptest::strategy::any::<u64>(),
                proptest::strategy::any::<u64>(),
                proptest::strategy::any::<u64>(),
            ),
            1..24,
        ),
    ) {
        for &(tag, a, b, c) in &words {
            let frame = frame_from_words(tag, a, b, c);
            let line = frame.encode();
            prop_assert_eq!(Frame::decode(line.as_bytes()).unwrap(), frame);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The frame checksum makes decode total and tamper-evident:
    /// truncating an encoded frame at *every* byte offset fails with a
    /// structured error, and arbitrary single-byte corruption either
    /// errors or (when the byte is unchanged) still decodes equal —
    /// never panics, never yields a different frame.
    #[test]
    fn serve_frame_truncation_and_corruption_are_detected(
        tag in proptest::strategy::any::<u64>(),
        a in proptest::strategy::any::<u64>(),
        b in proptest::strategy::any::<u64>(),
        c in proptest::strategy::any::<u64>(),
        offset in proptest::strategy::any::<u64>(),
        byte in proptest::strategy::any::<u64>(),
    ) {
        let frame = frame_from_words(tag, a, b, c);
        let line = frame.encode();
        let bytes = line.trim_end().as_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(Frame::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
        let mut corrupt = bytes.to_vec();
        let at = (offset % corrupt.len() as u64) as usize;
        corrupt[at] = (byte % 256) as u8;
        if let Ok(back) = Frame::decode(&corrupt) {
            prop_assert_eq!(back, frame);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cache-key collision sanity: distinct (section, index, context)
    /// triples map to pairwise-distinct content keys, so a cache hit
    /// can only ever serve the exact requested point.
    #[test]
    fn serve_cache_keys_separate_distinct_points(
        sections in proptest::collection::vec(0usize..3, 2..24),
        indices in proptest::collection::vec(0usize..200_000, 2..24),
        contexts in proptest::collection::vec(0usize..4, 2..24),
    ) {
        const SECTIONS: [&str; 3] = ["noc", "scaling", "design_space"];
        const CONTEXTS: [&str; 4] = [
            "piton/0.1.0|fidelity=quick|effects=none|backend=cycle",
            "piton/0.1.0|fidelity=full|effects=none|backend=cycle",
            "piton/0.1.0|fidelity=quick|effects=seed=7,drop=0.25|backend=cycle",
            "piton/0.1.0|fidelity=quick|effects=none|backend=analytic",
        ];
        let mut triples: Vec<(&str, usize, &str)> = sections
            .iter()
            .zip(&indices)
            .zip(&contexts)
            .map(|((&s, &i), &ctx)| (SECTIONS[s], i, CONTEXTS[ctx]))
            .collect();
        triples.sort_unstable();
        triples.dedup();
        let keys: Vec<u64> = triples
            .iter()
            .map(|&(s, i, ctx)| point_key(ctx, s, i))
            .collect();
        for x in 0..keys.len() {
            for y in (x + 1)..keys.len() {
                prop_assert_ne!(
                    keys[x], keys[y],
                    "collision: {:?} vs {:?}", triples[x], triples[y]
                );
            }
        }
    }
}
