//! Round-trip property tests for the observability layer: trace
//! events through their JSONL encoding, fault plans through their spec
//! rendering, and run manifests through their JSON document.

// The vendored `proptest!` macro is a token-muncher; keep each
// invocation to a single property so expansion stays within the
// default recursion limit.
#![recursion_limit = "256"]

use proptest::prelude::*;

use piton::board::fault::{Brownout, FaultPlan, Sabotage, SabotageKind};
use piton::obs::manifest::{HoleRecord, RunManifest, SectionRecord};
use piton::obs::metrics::Histogram;
use piton::obs::trace::{
    decode_jsonl, encode_jsonl, CacheKind, CacheLevel, EngineMode, TraceEvent,
};
use piton::obs::MetricsSnapshot;

/// Decodes one trace event from raw random words — every variant and
/// every enum value is reachable, with full-range integer payloads.
fn event_from_words(tag: u64, a: u64, b: u64, c: u64) -> TraceEvent {
    const OPS: [&str; 5] = ["Add", "Sdivx", "Ldx", "Casx", "Membar"];
    const LEVELS: [CacheLevel; 5] = [
        CacheLevel::L1I,
        CacheLevel::L1D,
        CacheLevel::L15,
        CacheLevel::L2,
        CacheLevel::Memory,
    ];
    const KINDS: [CacheKind; 6] = [
        CacheKind::Hit,
        CacheKind::Fill,
        CacheKind::Upgrade,
        CacheKind::Invalidate,
        CacheKind::Writeback,
        CacheKind::Atomic,
    ];
    const MODES: [EngineMode; 3] = [EngineMode::Calendar, EngineMode::Dense, EngineMode::Naive];
    const POLICIES: [&str; 3] = ["throttle-on-boot", "race-to-halt", "energy-frontier"];
    match tag % 6 {
        0 => TraceEvent::Retire {
            cycle: a,
            tile: (b % 25) as u32,
            thread: (b >> 32) as u32 % 2,
            op: OPS[c as usize % OPS.len()].to_owned(),
            pc: c,
        },
        1 => TraceEvent::Cache {
            cycle: a,
            tile: (b % 25) as u32,
            level: LEVELS[b as usize % LEVELS.len()],
            kind: KINDS[(b >> 8) as usize % KINDS.len()],
            addr: c,
        },
        2 => TraceEvent::NocHop {
            cycle: a,
            noc: (b % 3) as u32,
            from: (b >> 8) as u32 % 25,
            to: (b >> 16) as u32 % 25,
            flits: (b >> 24) as u32 % 8,
        },
        3 => TraceEvent::Adc {
            channel: a,
            sample: b,
            microwatts: c as i64,
        },
        4 => TraceEvent::Engine {
            cycle: a,
            mode: MODES[b as usize % MODES.len()],
        },
        _ => TraceEvent::Governor {
            cycle: a,
            khz: b,
            millicelsius: c as i64,
            policy: POLICIES[b as usize % POLICIES.len()].to_owned(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is the identity on arbitrary event sequences,
    /// including extreme u64/i64 payloads.
    #[test]
    fn trace_jsonl_round_trips(
        words in proptest::collection::vec(
            (
                proptest::strategy::any::<u64>(),
                proptest::strategy::any::<u64>(),
                proptest::strategy::any::<u64>(),
                proptest::strategy::any::<u64>(),
            ),
            0..40,
        ),
    ) {
        let events: Vec<TraceEvent> = words
            .iter()
            .map(|&(tag, a, b, c)| event_from_words(tag, a, b, c))
            .collect();
        let doc = encode_jsonl(&events);
        let back = decode_jsonl(&doc).expect("encoded stream must decode");
        prop_assert_eq!(back, events);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `FaultPlan::parse(&plan.render())` reconstructs the plan exactly
    /// (bitwise f64 rates included — `Display` round-trips shortest
    /// form).
    #[test]
    fn fault_plan_spec_round_trips(
        seed in proptest::strategy::any::<u64>(),
        rates in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
        zero_mask in 0u8..8,
        brownout in (0u8..2, 0usize..512, 1usize..64, 0.0f64..1.0),
        sabotage in proptest::collection::vec(
            (0u8..2, 0usize..3, 0usize..64, 1u32..6),
            0..4,
        ),
    ) {
        const SECTIONS: [&str; 3] = ["epi", "noc", "scaling"];
        let zeroed = |bit: u8, r: f64| if zero_mask & bit != 0 { 0.0 } else { r };
        let plan = FaultPlan {
            seed,
            drop_rate: zeroed(1, rates.0),
            stuck_rate: zeroed(2, rates.1),
            glitch_rate: zeroed(4, rates.2),
            brownout: (brownout.0 == 1).then_some(Brownout {
                start_sample: brownout.1,
                samples: brownout.2,
                factor: brownout.3,
            }),
            sabotage: sabotage
                .iter()
                .map(|&(kind, section, index, attempts)| Sabotage {
                    section: SECTIONS[section].to_owned(),
                    index,
                    kind: if kind == 0 {
                        SabotageKind::Kill
                    } else {
                        SabotageKind::Flaky { failing_attempts: attempts }
                    },
                })
                .collect(),
        };
        let spec = plan.render();
        let back = FaultPlan::parse(&spec)
            .unwrap_or_else(|e| panic!("rendered spec {spec:?} must parse: {e}"));
        prop_assert_eq!(back, plan);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Run manifests round-trip through their JSON document with
    /// arbitrary metrics payloads.
    #[test]
    fn run_manifest_round_trips(
        jobs in 1usize..64,
        wall in (0.0f64..10_000.0, 0.0f64..10_000.0),
        counters in proptest::collection::vec(
            (0usize..6, proptest::strategy::any::<u64>()),
            0..6,
        ),
        observations in proptest::collection::vec(proptest::strategy::any::<u64>(), 1..20),
        hole_count in 0usize..3,
        with_fault in 0u8..2,
    ) {
        const NAMES: [&str; 6] = [
            "engine.steps",
            "engine.calendar_pops",
            "sweep.retries",
            "sweep.holes",
            "monitor.kept",
            "monitor.dropped",
        ];
        let mut metrics = MetricsSnapshot::default();
        for &(name, value) in &counters {
            let slot = metrics.counters.entry(NAMES[name].to_owned()).or_insert(0);
            *slot = slot.wrapping_add(value);
        }
        metrics.gauges.insert("bench.temp_c".to_owned(), wall.1);
        let mut h = Histogram::default();
        for &v in &observations {
            h.observe(v);
        }
        metrics.histograms.insert("engine.issue_duty".to_owned(), h);

        let manifest = RunManifest {
            fidelity: "quick".to_owned(),
            jobs,
            fault_plan: (with_fault == 1)
                .then(|| FaultPlan::with_seed(jobs as u64).render()),
            governor: (jobs % 2 == 1).then(|| "throttle-on-boot".to_owned()),
            total_wall_s: wall.0,
            sections: vec![SectionRecord {
                title: "Figure 11 — energy per instruction".to_owned(),
                wall_s: wall.0,
                busy_s: wall.1,
                sweeps: 1,
                points: 46,
            }],
            holes: (0..hole_count)
                .map(|i| HoleRecord {
                    section: "noc".to_owned(),
                    index: i,
                    point: format!("point {i}"),
                    attempts: 3,
                    error: "injected".to_owned(),
                })
                .collect(),
            metrics,
        };
        let doc = manifest.to_json();
        let back = RunManifest::from_json(&doc)
            .unwrap_or_else(|e| panic!("manifest must parse back: {e}"));
        prop_assert_eq!(back, manifest);
    }
}
