//! Property tests of the measurement methodology and the power/thermal
//! models.

use proptest::prelude::*;

use piton::arch::isa::Opcode;
use piton::arch::units::{Hertz, Seconds, Volts, Watts};
use piton::characterization::measure::{energy_per_op_nj, epi_pj, linear_fit};
use piton::power::model::{OperatingPoint, PowerModel};
use piton::power::thermal::{Cooling, ThermalModel};
use piton::sim::events::ActivityCounters;

mod common;

proptest! {
    /// The EPI formula inverts: injecting ΔP computed from a chosen EPI
    /// recovers that EPI exactly.
    #[test]
    fn epi_formula_round_trips(epi_target in 1.0f64..2000.0, latency in 1u64..100) {
        let f = Hertz::from_mhz(500.05);
        let idle = Watts(2.0153);
        let dp = epi_target * 1e-12 * 25.0 * f.0 / latency as f64;
        let measured = epi_pj(idle + Watts(dp), idle, f, latency);
        prop_assert!((measured - epi_target).abs() / epi_target < 1e-9);
    }

    /// Energy-per-op is linear in power delta and inversely linear in
    /// completed operations.
    #[test]
    fn energy_per_op_scales(dp in 0.01f64..2.0, ops in 1u64..1_000_000) {
        let e1 = energy_per_op_nj(Watts(2.0 + dp), Watts(2.0), Seconds(1.0), ops);
        let e2 = energy_per_op_nj(Watts(2.0 + 2.0 * dp), Watts(2.0), Seconds(1.0), ops);
        let e3 = energy_per_op_nj(Watts(2.0 + dp), Watts(2.0), Seconds(1.0), ops * 2);
        prop_assert!((e2 - 2.0 * e1).abs() < 1e-9 * e1.abs().max(1.0));
        prop_assert!((e3 - e1 / 2.0).abs() < 1e-9 * e1.abs().max(1.0));
    }

    /// Linear fit recovers arbitrary lines through noiseless points.
    #[test]
    fn linear_fit_is_exact_on_lines(a in -100.0f64..100.0, b in -50.0f64..50.0) {
        let pts: Vec<(f64, f64)> = (0..10).map(|x| (f64::from(x), a + b * f64::from(x))).collect();
        let (fa, fb) = linear_fit(&pts).unwrap();
        prop_assert!((fa - a).abs() < 1e-6);
        prop_assert!((fb - b).abs() < 1e-6);
    }

    /// Chip power is monotone in frequency, voltage, temperature and
    /// activity.
    #[test]
    fn power_model_is_monotone(
        mhz in 100.0f64..700.0,
        vdd_mv in 800u32..1200,
        t_c in 20.0f64..90.0,
        adds in 0u64..10_000_000,
    ) {
        let model = PowerModel::nominal();
        let mut act = ActivityCounters {
            cycles: 1_000_000,
            ..Default::default()
        };
        act.issues[Opcode::Add.index()] = adds;
        act.operand_activity[Opcode::Add.index()] = adds as f64 * 0.5;

        let op = OperatingPoint::table_iii()
            .with_freq(Hertz::from_mhz(mhz))
            .with_vdd_tracked(Volts(f64::from(vdd_mv) / 1000.0))
            .with_junction(t_c);
        let p = model.power(&act, op).total();

        // More activity never reduces power.
        let mut more = act.clone();
        more.issues[Opcode::Add.index()] += 1_000;
        more.operand_activity[Opcode::Add.index()] += 500.0;
        prop_assert!(model.power(&more, op).total().0 >= p.0);

        // Hotter junction never reduces power (leakage growth).
        let hotter = op.with_junction(t_c + 10.0);
        prop_assert!(model.power(&act, hotter).total().0 >= p.0);

        // Higher frequency never reduces power (same activity window).
        let faster = op.with_freq(Hertz::from_mhz(mhz + 50.0));
        prop_assert!(model.power(&act, faster).total().0 >= p.0);
    }

    /// The thermal transient never overshoots the steady state from
    /// below and always converges toward it.
    #[test]
    fn thermal_transient_converges(p_mw in 100.0f64..3_000.0, eff in 0.0f64..1.0) {
        let p = Watts(p_mw / 1e3);
        let mut t = ThermalModel::new(Cooling::BarePackageFan { effectiveness: eff }, 20.0);
        let (j_ss, s_ss) = t.steady_state(p);
        let mut prev_gap = f64::MAX;
        for _ in 0..300 {
            t.step(p, Seconds(5.0));
            let gap = (t.junction_c() - j_ss).abs();
            prop_assert!(gap <= prev_gap + 1e-6, "diverging transient");
            prev_gap = gap;
            prop_assert!(t.junction_c() <= j_ss + 0.5);
            prop_assert!(t.surface_c() <= s_ss + 0.5);
        }
        prop_assert!((t.junction_c() - j_ss).abs() < 1.0);
    }

    /// Static power split preserves the rail sum under voltage scaling
    /// direction: raising either rail's voltage raises that rail's
    /// leakage only.
    #[test]
    fn static_power_is_voltage_monotone(vdd_mv in 800u32..1200) {
        let model = PowerModel::nominal();
        let vdd = Volts(f64::from(vdd_mv) / 1000.0);
        let base = OperatingPoint::table_iii();
        let swept = base.with_vdd_tracked(vdd);
        let p_base = model.static_power(base);
        let p_swept = model.static_power(swept);
        if vdd.0 > 1.0 {
            prop_assert!(p_swept.vdd.0 >= p_base.vdd.0);
            prop_assert!(p_swept.vcs.0 >= p_base.vcs.0);
        } else {
            prop_assert!(p_swept.vdd.0 <= p_base.vdd.0);
            prop_assert!(p_swept.vcs.0 <= p_base.vcs.0);
        }
    }
}

/// Explicit replay of the shrunk input recorded in
/// `tests/measurement_properties.proptest-regressions`:
///
/// ```text
/// p_mw = 1417.6274120739997, eff = 0.0
/// ```
///
/// The vendored proptest stub does not replay regression files, so the
/// recorded input is pinned (in `common::pinned`, shared with the
/// regression file) and replayed as a plain test: with a completely
/// ineffective fan (effectiveness = 0), the thermal transient must
/// still converge monotonically to the (much hotter) steady state and
/// never overshoot it from below.
#[test]
fn regression_thermal_transient_converges_with_dead_fan() {
    let p = Watts(common::pinned::THERMAL_P_MW / 1e3);
    let mut t = ThermalModel::new(
        Cooling::BarePackageFan {
            effectiveness: common::pinned::THERMAL_FAN_EFFECTIVENESS,
        },
        20.0,
    );
    let (j_ss, s_ss) = t.steady_state(p);
    let mut prev_gap = f64::MAX;
    for _ in 0..300 {
        t.step(p, Seconds(5.0));
        let gap = (t.junction_c() - j_ss).abs();
        assert!(gap <= prev_gap + 1e-6, "diverging transient");
        prev_gap = gap;
        assert!(t.junction_c() <= j_ss + 0.5);
        assert!(t.surface_c() <= s_ss + 0.5);
    }
    assert!((t.junction_c() - j_ss).abs() < 1.0);
}
