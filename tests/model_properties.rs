//! Property tests of the cache, memory and monitor building blocks.

use proptest::prelude::*;

use piton::arch::config::CacheConfig;
use piton::arch::units::Watts;
use piton::board::monitor::{MeasurementWindow, MonitorChannel};
use piton::sim::cache::{LineState, SetAssocCache};
use piton::sim::mem::Memory;

proptest! {
    /// LRU invariant: after any insertion sequence, the most recently
    /// inserted `associativity` distinct lines of a set are resident.
    #[test]
    fn lru_keeps_the_most_recent_ways(lines in proptest::collection::vec(0u64..32, 1..64)) {
        // Single-set cache: 4 ways of 16 B.
        let mut c = SetAssocCache::new(CacheConfig::new(64, 4, 16));
        for (t, &line) in lines.iter().enumerate() {
            // All addresses map to set 0 (only one set exists).
            c.insert(line * 16, LineState::Shared, t as u64);
        }
        // Most recent distinct lines (up to 4) must be present.
        let mut seen = Vec::new();
        for &line in lines.iter().rev() {
            if !seen.contains(&line) {
                seen.push(line);
            }
            if seen.len() == 4 {
                break;
            }
        }
        for &line in &seen {
            prop_assert_eq!(
                c.peek(line * 16),
                Some(LineState::Shared),
                "recent line {} evicted",
                line
            );
        }
        prop_assert!(c.valid_lines() <= 4);
    }

    /// Functional memory: the last write to each word wins, CAS included.
    #[test]
    fn memory_last_write_wins(ops in proptest::collection::vec((0u64..64, any::<u64>(), any::<bool>()), 1..200)) {
        let mut m = Memory::new();
        let mut model = std::collections::HashMap::new();
        for (slot, value, use_cas) in ops {
            let addr = 0x100 + slot * 8;
            if use_cas {
                let current = model.get(&addr).copied().unwrap_or(0);
                let old = m.compare_and_swap(addr, current, value);
                prop_assert_eq!(old, current);
                model.insert(addr, value);
            } else {
                m.write(addr, value);
                model.insert(addr, value);
            }
        }
        for (addr, value) in model {
            prop_assert_eq!(m.read(addr), value);
        }
    }

    /// Monitor sampling is unbiased within its noise floor for any
    /// power level and seed.
    #[test]
    fn monitor_is_unbiased(power_mw in 10.0f64..6_000.0, seed in 0u64..1_000) {
        let truth = Watts(power_mw / 1e3);
        let mut chan = MonitorChannel::piton_board(seed);
        let w: MeasurementWindow = (0..512).map(|_| chan.sample(truth)).collect();
        let bias = (w.mean().unwrap().0 - truth.0).abs();
        // 512 samples: standard error ≈ σ/√512; allow 6 standard errors.
        let sigma = 1.5e-3 + 5.0e-4 * truth.0 + 0.5e-3; // + LSB slack
        prop_assert!(bias < 6.0 * sigma / (512f64).sqrt() + 0.3e-3, "bias {bias}");
        prop_assert!(w.stddev().unwrap().0 > 0.0);
    }

    /// Measurement windows aggregate linearly: splitting the samples
    /// into two windows and pooling the means equals the single-window
    /// mean.
    #[test]
    fn window_means_pool(samples in proptest::collection::vec(0.5f64..4.0, 2..64)) {
        prop_assume!(samples.len() % 2 == 0);
        let all: MeasurementWindow = samples.iter().map(|&w| Watts(w)).collect();
        let half = samples.len() / 2;
        let a: MeasurementWindow = samples[..half].iter().map(|&w| Watts(w)).collect();
        let b: MeasurementWindow = samples[half..].iter().map(|&w| Watts(w)).collect();
        let pooled = (a.mean().unwrap().0 + b.mean().unwrap().0) / 2.0;
        prop_assert!((pooled - all.mean().unwrap().0).abs() < 1e-12);
    }
}
