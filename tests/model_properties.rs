//! Property tests of the cache, memory and monitor building blocks,
//! plus the analog models the DVFS governor closes its loop over: the
//! V/F capability curve and the package RC network.

use proptest::prelude::*;

use piton::arch::config::CacheConfig;
use piton::arch::units::{Seconds, Volts, Watts};
use piton::board::monitor::{MeasurementWindow, MonitorChannel};
use piton::power::thermal::{Cooling, ThermalModel, ThermalStep};
use piton::power::vf::VfSolver;
use piton::power::{Calibration, ChipCorner, PowerModel, TechModel};
use piton::sim::cache::{LineState, SetAssocCache};
use piton::sim::mem::Memory;

mod common;

fn vf_solver(speed: f64, leakage: f64, dynamic: f64) -> VfSolver {
    VfSolver::new(
        PowerModel::new(
            Calibration::piton_hpca18(),
            TechModel::ibm32soi(),
            ChipCorner {
                speed,
                leakage,
                dynamic,
            },
        ),
        20.0,
    )
}

/// Asserts the analog capability curve never dips as VDD rises across
/// the Figure 9 grid at a fixed junction temperature.
fn assert_capability_monotone_in_vdd(solver: &VfSolver, t_j: f64) {
    let mut prev = 0.0f64;
    for i in 0..=8u32 {
        let vdd = Volts(0.8 + 0.05 * f64::from(i));
        let f = solver.capability(vdd, t_j).0;
        assert!(
            f >= prev - 1e-6,
            "capability dipped at {:.2} V, t={t_j}: {f} < {prev}",
            vdd.0
        );
        prev = f;
    }
}

proptest! {
    /// LRU invariant: after any insertion sequence, the most recently
    /// inserted `associativity` distinct lines of a set are resident.
    #[test]
    fn lru_keeps_the_most_recent_ways(lines in proptest::collection::vec(0u64..32, 1..64)) {
        // Single-set cache: 4 ways of 16 B.
        let mut c = SetAssocCache::new(CacheConfig::new(64, 4, 16));
        for (t, &line) in lines.iter().enumerate() {
            // All addresses map to set 0 (only one set exists).
            c.insert(line * 16, LineState::Shared, t as u64);
        }
        // Most recent distinct lines (up to 4) must be present.
        let mut seen = Vec::new();
        for &line in lines.iter().rev() {
            if !seen.contains(&line) {
                seen.push(line);
            }
            if seen.len() == 4 {
                break;
            }
        }
        for &line in &seen {
            prop_assert_eq!(
                c.peek(line * 16),
                Some(LineState::Shared),
                "recent line {} evicted",
                line
            );
        }
        prop_assert!(c.valid_lines() <= 4);
    }

    /// Functional memory: the last write to each word wins, CAS included.
    #[test]
    fn memory_last_write_wins(ops in proptest::collection::vec((0u64..64, any::<u64>(), any::<bool>()), 1..200)) {
        let mut m = Memory::new();
        let mut model = std::collections::HashMap::new();
        for (slot, value, use_cas) in ops {
            let addr = 0x100 + slot * 8;
            if use_cas {
                let current = model.get(&addr).copied().unwrap_or(0);
                let old = m.compare_and_swap(addr, current, value);
                prop_assert_eq!(old, current);
                model.insert(addr, value);
            } else {
                m.write(addr, value);
                model.insert(addr, value);
            }
        }
        for (addr, value) in model {
            prop_assert_eq!(m.read(addr), value);
        }
    }

    /// Monitor sampling is unbiased within its noise floor for any
    /// power level and seed.
    #[test]
    fn monitor_is_unbiased(power_mw in 10.0f64..6_000.0, seed in 0u64..1_000) {
        let truth = Watts(power_mw / 1e3);
        let mut chan = MonitorChannel::piton_board(seed);
        let w: MeasurementWindow = (0..512).map(|_| chan.sample(truth)).collect();
        let bias = (w.mean().unwrap().0 - truth.0).abs();
        // 512 samples: standard error ≈ σ/√512; allow 6 standard errors.
        let sigma = 1.5e-3 + 5.0e-4 * truth.0 + 0.5e-3; // + LSB slack
        prop_assert!(bias < 6.0 * sigma / (512f64).sqrt() + 0.3e-3, "bias {bias}");
        prop_assert!(w.stddev().unwrap().0 > 0.0);
    }

    /// Measurement windows aggregate linearly: splitting the samples
    /// into two windows and pooling the means equals the single-window
    /// mean.
    #[test]
    fn window_means_pool(samples in proptest::collection::vec(0.5f64..4.0, 2..64)) {
        prop_assume!(samples.len() % 2 == 0);
        let all: MeasurementWindow = samples.iter().map(|&w| Watts(w)).collect();
        let half = samples.len() / 2;
        let a: MeasurementWindow = samples[..half].iter().map(|&w| Watts(w)).collect();
        let b: MeasurementWindow = samples[half..].iter().map(|&w| Watts(w)).collect();
        let pooled = (a.mean().unwrap().0 + b.mean().unwrap().0) / 2.0;
        prop_assert!((pooled - all.mean().unwrap().0).abs() < 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// V/F capability is monotone nondecreasing in VDD at any fixed
    /// junction temperature up to the thermal knee (the boot limit) —
    /// more voltage never costs analog frequency before heat enters
    /// the picture.
    #[test]
    fn capability_is_monotone_in_vdd_below_the_knee(
        corner in (0.9f64..1.1, 0.8f64..1.5, 0.9f64..1.15),
        t_j in 20.0f64..95.0,
    ) {
        let s = vf_solver(corner.0, corner.1, corner.2);
        assert_capability_monotone_in_vdd(&s, t_j);
    }

    /// RC step response under constant power is monotone rising and
    /// bounded between ambient and the closed-form steady state — the
    /// integrator can neither overshoot nor undershoot the network it
    /// discretizes.
    #[test]
    fn rc_step_response_is_bounded_and_monotone(
        p_mw in 10.0f64..20_000.0,
        eff in 0.0f64..1.0,
        dt in 0.05f64..4.0,
    ) {
        let p = Watts(p_mw / 1e3);
        let mut m = ThermalModel::new(Cooling::BarePackageFan { effectiveness: eff }, 20.0);
        let (steady_j, _) = m.steady_state(p);
        let stepper = ThermalStep::new(dt);
        let mut last = m.junction_c();
        for _ in 0..300 {
            let (j, s_c) = stepper.advance(&mut m, p);
            prop_assert!(j >= 20.0 - 1e-9 && s_c >= 20.0 - 1e-9, "fell below ambient");
            prop_assert!(j <= steady_j + 1e-6, "junction {j} overshot steady state {steady_j}");
            prop_assert!(j >= last - 1e-9, "step response not monotone: {j} < {last}");
            last = j;
        }
    }

    /// Cooling an unpowered die from a settled hot junction is monotone
    /// decreasing and never undershoots ambient.
    #[test]
    fn cooling_curve_is_monotone_decreasing(
        t_hot in 30.0f64..120.0,
        eff in 0.0f64..1.0,
        dt in 0.05f64..4.0,
    ) {
        let mut m = ThermalModel::new(Cooling::BarePackageFan { effectiveness: eff }, 20.0);
        m.settle_to_junction(t_hot);
        let stepper = ThermalStep::new(dt);
        let mut last = m.junction_c();
        for _ in 0..300 {
            let (j, _) = stepper.advance(&mut m, Watts(0.0));
            prop_assert!(j >= 20.0 - 1e-9, "cooled below ambient: {j}");
            prop_assert!(j <= last + 1e-9, "cooling not monotone: {j} > {last}");
            last = j;
        }
    }
}

/// Replays the pinned shrink input of the capability-monotonicity
/// property (see `tests/common`): the leakiest corner a hair under the
/// knee, where IR drop bites hardest.
#[test]
fn capability_monotone_pinned_replay() {
    let s = vf_solver(1.0, common::pinned::VF_MONOTONE_LEAKAGE, 1.0);
    assert_capability_monotone_in_vdd(&s, common::pinned::VF_MONOTONE_T_J);
}

/// The thermal-camera example's cooldown (same constants as
/// `examples/thermal_camera.rs::cooldown_trajectory`: §IV-J rig settled
/// at 80 °C, unpowered, twelve 5 s steps) must match a raw
/// `ThermalModel::step` integration exactly — `ThermalStep` is a
/// packaging of the crate's RC path, not a second integrator.
#[test]
fn thermal_camera_cooldown_matches_a_raw_rc_integration() {
    let rig = || {
        let mut m = ThermalModel::new(Cooling::BarePackageFan { effectiveness: 0.5 }, 20.0);
        m.settle_to_junction(80.0);
        m
    };
    let mut via_stepper = rig();
    let trajectory = ThermalStep::new(5.0).trajectory(&mut via_stepper, &[Watts(0.0); 12]);
    assert_eq!(trajectory.len(), 12);

    let mut raw = rig();
    for (k, &(junction_c, surface_c)) in trajectory.iter().enumerate() {
        raw.step(Watts(0.0), Seconds(5.0));
        assert_eq!(
            (raw.junction_c(), raw.surface_c()),
            (junction_c, surface_c),
            "trajectories diverged at step {k}"
        );
    }
    // And it genuinely cools: strictly below the start, above ambient.
    let (last_j, _) = *trajectory.last().unwrap();
    assert!((20.0..80.0).contains(&last_j), "final junction {last_j}");
}

// --- Analytic fast-path model properties -------------------------------

use piton::characterization::analytic::battery::{self, Probe, ProbeKind};
use piton::characterization::analytic::features::{self, Features};
use piton::characterization::analytic::AnalyticModel;
use piton::power::OperatingPoint;

/// A random per-cycle rate profile: every feature in `[0, 2)` per
/// cycle, with the cycle rate pinned at 1 (rates are per-cycle by
/// definition) and the drafted-issue rate zeroed so the VDD clamp in
/// [`AnalyticModel::dynamic_nominal_pj`] stays out of play for the
/// linearity properties.
fn rate_profile() -> impl Strategy<Value = Features> {
    (
        proptest::collection::vec(
            0.0f64..2.0,
            features::VDD_FEATURES..features::VDD_FEATURES + 1,
        ),
        proptest::collection::vec(
            0.0f64..2.0,
            features::VCS_FEATURES..features::VCS_FEATURES + 1,
        ),
        proptest::collection::vec(
            0.0f64..2.0,
            features::VIO_FEATURES..features::VIO_FEATURES + 1,
        ),
    )
        .prop_map(|(vdd, vcs, vio)| {
            let mut f = Features { vdd, vcs, vio };
            f.vdd[features::CYCLES] = 1.0;
            f.vdd[features::DRAFTED] = 0.0;
            f
        })
}

/// Synthesizes `n` calibration probes whose measured dynamic power is
/// generated *by the planted model* — rates from a seeded xorshift so
/// the battery has full column support.
fn synthetic_probes(planted: &AnalyticModel, n: usize, seed: u64) -> Vec<Probe> {
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64*: deterministic, dependency-free driver noise.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    };
    let corner = ChipCorner::typical();
    (0..n)
        .map(|i| {
            let mut rates = Features::zero();
            for x in rates
                .vdd
                .iter_mut()
                .chain(&mut rates.vcs)
                .chain(&mut rates.vio)
            {
                *x = 2.0 * next();
            }
            rates.vdd[features::CYCLES] = 1.0;
            // A small drafted-issue rate keeps the column observable
            // without ever driving the (clamped) VDD sum negative.
            rates.vdd[features::DRAFTED] = 0.1 * next();
            let op =
                OperatingPoint::table_iii().with_vdd_tracked(Volts(0.85 + 0.05 * (i % 7) as f64));
            let (pj_vdd, pj_vcs, pj_vio) = planted.dynamic_nominal_pj(&rates);
            let scales = planted.dynamic_scales(op, corner);
            let f_hz = 1.0 / op.freq.period().0;
            Probe {
                kind: ProbeKind::Idle,
                rates,
                op,
                corner,
                dynamic_w: [
                    pj_vdd * scales[0] * f_hz * 1e-12,
                    pj_vcs * scales[1] * f_hz * 1e-12,
                    pj_vio * scales[2] * f_hz * 1e-12,
                ],
            }
        })
        .collect()
}

/// Plants a perturbed reference model, fits against probes the plant
/// generated, and asserts the fit recovers every coefficient.
fn assert_fit_recovers_planted(scale: f64, shift_pj: f64, seed: u64) {
    let reference = AnalyticModel::reference();
    let perturb = |v: &[f64]| -> Vec<f64> { v.iter().map(|c| c * scale + shift_pj).collect() };
    let planted = AnalyticModel::fitted(
        perturb(&reference.vdd_pj),
        perturb(&reference.vcs_pj),
        perturb(&reference.vio_pj),
    );
    let probes = synthetic_probes(&planted, 96, seed);
    let (fitted, report) = battery::fit(&probes).expect("full-support battery fits");
    for (rail, (got, want)) in [
        (&fitted.vdd_pj, &planted.vdd_pj),
        (&fitted.vcs_pj, &planted.vcs_pj),
        (&fitted.vio_pj, &planted.vio_pj),
    ]
    .into_iter()
    .enumerate()
    {
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            // The tiny Tikhonov damping (`FIT_LAMBDA`) biases weakly
            // observed columns by a few 1e-3 absolute; a fit that
            // re-normalized or swapped coefficients misses by orders
            // of magnitude more than this.
            assert!(
                (g - w).abs() <= 5e-3 * (w.abs() + 1.0),
                "rail {rail} coefficient {i}: fitted {g} vs planted {w}"
            );
        }
    }
    for r in &report.residuals {
        assert!(r.max_rel < 1e-6, "noise-free fit left residuals: {r:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Analytic rail power is finite and non-negative for any rate
    /// profile and operating point — leakage floors it, the VDD clamp
    /// guards the drafted-issue credit.
    #[test]
    fn analytic_power_is_nonnegative_and_finite(
        rates in rate_profile(),
        vdd in 0.8f64..1.2,
        t_j in 20.0f64..110.0,
        drafted in 0.0f64..4.0,
    ) {
        let mut rates = rates;
        rates.vdd[features::DRAFTED] = drafted;
        let m = AnalyticModel::reference();
        let op = OperatingPoint::table_iii()
            .with_vdd_tracked(Volts(vdd))
            .with_junction(t_j);
        let p = m.power(&rates, op, ChipCorner::typical());
        for w in [p.vdd, p.vcs, p.vio] {
            prop_assert!(w.0.is_finite() && w.0 >= 0.0, "rail power {w:?}");
        }
    }

    /// Total analytic power is monotone non-decreasing in VDD at fixed
    /// work and frequency: both the dynamic voltage scale and the
    /// leakage curves rise with voltage.
    #[test]
    fn analytic_power_is_monotone_in_vdd(
        rates in rate_profile(),
        t_j in 20.0f64..95.0,
    ) {
        let m = AnalyticModel::reference();
        let mut prev = 0.0f64;
        for i in 0..=8u32 {
            let vdd = Volts(0.8 + 0.05 * f64::from(i));
            let op = OperatingPoint::table_iii()
                .with_vdd_tracked(vdd)
                .with_junction(t_j);
            let total = m.power(&rates, op, ChipCorner::typical()).total_with_io().0;
            prop_assert!(
                total >= prev - 1e-12,
                "power dipped at {:.2} V: {total} < {prev}",
                vdd.0
            );
            prev = total;
        }
    }

    /// Dynamic energy is additive across workload mixes: blending two
    /// rate profiles blends their nominal energies, per rail — the
    /// property the design-space mix table is built on.
    #[test]
    fn analytic_dynamic_energy_is_additive_across_mixes(
        a in rate_profile(),
        b in rate_profile(),
        k in 0.0f64..2.0,
    ) {
        let m = AnalyticModel::reference();
        let mut mix = a.clone();
        mix.add_scaled(&b, k);
        let pa = m.dynamic_nominal_pj(&a);
        let pb = m.dynamic_nominal_pj(&b);
        let pm = m.dynamic_nominal_pj(&mix);
        for (got, want) in [
            (pm.0, pa.0 + k * pb.0),
            (pm.1, pa.1 + k * pb.1),
            (pm.2, pa.2 + k * pb.2),
        ] {
            prop_assert!(
                (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                "mix energy {got} != {want}"
            );
        }
    }

    /// Calibrate→predict round trip: fitting against probes generated
    /// by a planted model recovers the planted coefficients.
    #[test]
    fn analytic_fit_recovers_a_planted_model(
        scale in 0.5f64..1.5,
        shift_pj in 0.0f64..5.0,
        seed in 1u64..1_000,
    ) {
        assert_fit_recovers_planted(scale, shift_pj, seed);
    }
}

/// Replays the pinned round-trip input (see `tests/common`): identity
/// scale with a pure shift, where a fit that silently re-normalizes
/// coefficients would still match the reference but not the plant.
#[test]
fn analytic_fit_round_trip_pinned_replay() {
    assert_fit_recovers_planted(
        common::pinned::ANALYTIC_PLANT_SCALE,
        common::pinned::ANALYTIC_PLANT_SHIFT_PJ,
        common::pinned::ANALYTIC_PLANT_SEED,
    );
}

/// A rank-deficient battery — every probe sees the same rate profile —
/// must be refused as a degenerate fit, not silently regularized into
/// an arbitrary coefficient split.
#[test]
fn analytic_fit_refuses_a_rank_deficient_battery() {
    let planted = AnalyticModel::reference();
    let one = synthetic_probes(&planted, 1, common::pinned::ANALYTIC_PLANT_SEED)
        .pop()
        .unwrap();
    let copies: Vec<Probe> = (0..96).map(|_| one.clone()).collect();
    let err = battery::fit(&copies).expect_err("identical probes cannot identify 68 coefficients");
    assert!(
        matches!(err, piton::arch::error::PitonError::DegenerateFit { .. }),
        "{err:?}"
    );
}
