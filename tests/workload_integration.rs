//! End-to-end workload runs spanning assembler, simulator and machine.

use piton::arch::config::ChipConfig;
use piton::arch::isa::Opcode;
use piton::arch::topology::TileId;
use piton::sim::machine::Machine;
use piton::workloads::micro::{
    hist_layout, hist_program, load_microbenchmark, Microbenchmark, RunLength, ThreadsPerCore,
};
use piton::workloads::spec::{spec_kernel, table_ix_benchmarks};

fn machine() -> Machine {
    Machine::new(&ChipConfig::piton())
}

#[test]
fn hist_is_correct_at_many_thread_counts() {
    for &threads in &[1usize, 3, 8, 25, 50] {
        let mut m = machine();
        for t in 0..threads {
            let (core, slot) = (t % 25, t / 25);
            m.load_thread(
                TileId::new(core),
                slot,
                hist_program(t, threads, RunLength::Iterations(1)),
            );
        }
        assert!(
            m.run_until_halted(120_000_000),
            "{threads} threads did not finish"
        );
        let total: u64 = (0..hist_layout::BUCKETS)
            .map(|b| m.memsys().peek_mem(hist_layout::bucket_addr(b)))
            .sum();
        // Each thread processes floor(N/threads) elements; the division
        // remainder is dropped, like the paper's fixed per-thread slices.
        let per_thread = (hist_layout::INPUT_ELEMENTS as usize / threads).max(1) as u64;
        assert_eq!(
            total,
            per_thread * threads as u64,
            "{threads} threads lost updates"
        );
    }
}

#[test]
fn all_fifty_threads_run_hp_and_issue_continuously() {
    let mut m = machine();
    load_microbenchmark(
        &mut m,
        Microbenchmark::Hp,
        50,
        ThreadsPerCore::Two,
        RunLength::Forever,
    );
    m.run(60_000);
    let act = m.counters();
    // Every core dual-threaded and issuing nearly every cycle.
    let issue_rate = act.total_issues() as f64 / (25.0 * act.cycles as f64);
    assert!(issue_rate > 0.7, "issue rate {issue_rate}");
    assert!(act.dual_thread_cycles > act.cycles / 2);
    // HP touches the memory system (the mixed threads).
    assert!(act.l1d_reads > 0 && act.sb_enqueues > 0);
}

#[test]
fn spec_kernels_execute_their_declared_mixes() {
    for bench in table_ix_benchmarks() {
        let mut m = machine();
        m.load_thread(TileId::new(0), 0, spec_kernel(&bench.profile));
        m.run(400_000);
        let act = m.counters();
        let total = act.total_issues() as f64;
        let loads = act.issues[Opcode::Ldx.index()] as f64;
        let declared_loads =
            (bench.profile.l1_load_pct + bench.profile.l2_load_pct + bench.profile.mem_load_pct)
                / 100.0;
        let measured = loads / total;
        assert!(
            (measured - declared_loads).abs() < 0.12,
            "{}: load share {measured:.3} vs declared {declared_loads:.3}",
            bench.name
        );
        // Stores present when declared.
        if bench.profile.store_pct > 1.0 {
            assert!(act.issues[Opcode::Stx.index()] > 0, "{}", bench.name);
        }
    }
}

#[test]
fn spec_kernel_programs_fit_the_l1i() {
    let cfg = ChipConfig::piton();
    for bench in table_ix_benchmarks() {
        let p = spec_kernel(&bench.profile);
        assert!(
            p.fits_in(cfg.l1i.size_bytes),
            "{}: {} bytes",
            bench.name,
            p.code_bytes()
        );
    }
}

#[test]
fn determinism_same_workload_same_counters() {
    let run = || {
        let mut m = machine();
        load_microbenchmark(
            &mut m,
            Microbenchmark::Hist,
            16,
            ThreadsPerCore::Two,
            RunLength::Forever,
        );
        m.run(80_000);
        m.counters().clone()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "simulation must be deterministic");
}

#[test]
fn epi_tests_cover_every_figure_11_case() {
    use piton::workloads::epi::{epi_test, EpiCase};
    for case in EpiCase::figure_11() {
        for pattern in piton::arch::isa::OperandPattern::ALL {
            let mut m = machine();
            m.load_thread(TileId::new(0), 0, epi_test(case, pattern, 0));
            m.run(20_000);
            assert!(
                m.counters().total_issues() > 100,
                "{} {:?} barely ran",
                case.label(),
                pattern
            );
        }
    }
}
