//! Edge-case behaviour of the whole-chip machine: fast-forward
//! equivalence, eviction storms, chipset queueing, and scheduler
//! fairness.

use piton::arch::config::ChipConfig;
use piton::arch::isa::{Instruction, Opcode, Reg};
use piton::arch::topology::TileId;
use piton::sim::cache::{LineState, SetAssocCache};
use piton::sim::chipset::MemoryPath;
use piton::sim::events::ActivityCounters;
use piton::sim::machine::Machine;
use piton::sim::memsys::MemorySystem;
use piton::sim::program::Program;
use piton::workloads::asm::Assembler;

#[test]
fn run_in_chunks_equals_run_at_once() {
    let build = || {
        let mut m = Machine::new(&ChipConfig::piton());
        let mut asm = Assembler::new();
        asm.movi(Reg::new(1), 0x9000);
        asm.label("loop");
        asm.ldx(Reg::new(2), Reg::new(1), 0);
        asm.alu(Opcode::Add, Reg::new(1), Reg::new(1), Reg::new(2));
        asm.jump("loop");
        m.load_thread(TileId::new(0), 0, asm.assemble());
        m.load_thread(TileId::new(7), 0, asm.assemble());
        m
    };
    let mut whole = build();
    whole.run(50_000);

    let mut chunked = build();
    for _ in 0..50 {
        chunked.run(1_000);
    }
    assert_eq!(whole.now(), chunked.now());
    assert_eq!(whole.counters(), chunked.counters());
}

#[test]
fn cache_survives_an_eviction_storm() {
    // Fill far past capacity and verify the invariant: never more valid
    // lines than ways × sets, and the most recent fills survive.
    let mut c = SetAssocCache::new(piton::arch::config::CacheConfig::new(1024, 2, 16));
    for k in 0..10_000u64 {
        c.insert(k * 16, LineState::Shared, k);
    }
    assert!(c.valid_lines() <= 64);
    // The last fill in each set must still be resident.
    assert_eq!(c.peek(9_999 * 16), Some(LineState::Shared));
}

#[test]
fn l2_capacity_eviction_invalidates_private_copies() {
    // One L2 slice is 64 KB / 4-way / 64 B = 256 sets. Aliasing 5+
    // lines to the same set of the same home slice forces an L2
    // eviction whose victim must vanish from the requester's L1.5 too
    // (inclusive hierarchy).
    let mut cfg = ChipConfig::piton();
    cfg.slice_mapping = piton::arch::config::SliceMapping::High;
    let mut sys = MemorySystem::new(&cfg);
    let mut act = ActivityCounters::default();
    let t0 = TileId::new(0);
    // Home region of tile0 under high mapping; 16 KB stride = same L2 set.
    let addrs: Vec<u64> = (0..6u64).map(|k| 0x40 + k * 16 * 1024).collect();
    let mut now = 0;
    for &a in &addrs {
        let out = sys.load(t0, a, now, &mut act);
        now += out.latency + 1;
    }
    // With 6 > 4 ways, at least one early line was evicted from the L2
    // and must have been purged from the L1.5 as well.
    let resident: usize = addrs
        .iter()
        .filter(|&&a| sys.l15_state(t0, a).is_some())
        .count();
    assert!(
        resident <= 4,
        "inclusive eviction failed: {resident} resident"
    );
    // The last line is definitely still resident everywhere.
    assert!(sys.l15_state(t0, *addrs.last().unwrap()).is_some());
}

#[test]
fn memory_path_services_in_fifo_order() {
    let mut path = MemoryPath::new();
    let mut act = ActivityCounters::default();
    // Three requests arriving at different times: completion order must
    // follow arrival order, each no earlier than base latency.
    let l1 = path.access(0, &mut act);
    let l2 = path.access(100, &mut act);
    let l3 = path.access(5_000, &mut act);
    let done1 = l1;
    let done2 = 100 + l2;
    let done3 = 5_000 + l3;
    assert!(done1 < done2, "{done1} {done2}");
    assert!(done2 < done3);
    assert!(
        l3 < 420,
        "third request arrived after idle, must be unqueued"
    );
    assert_eq!(path.serviced_requests(), 3);
}

#[test]
fn scheduler_is_fair_between_two_spinning_threads() {
    // Two identical infinite integer loops on one core must retire
    // within 1% of each other over a long window.
    let mut m = Machine::new(&ChipConfig::piton());
    let spin = |tag: u64| {
        let mut asm = Assembler::new();
        asm.movi(Reg::new(1), tag as i64);
        asm.label("loop");
        asm.alu(Opcode::Add, Reg::new(2), Reg::new(1), Reg::new(2));
        asm.jump("loop");
        asm.assemble()
    };
    m.load_thread(TileId::new(0), 0, spin(1));
    m.load_thread(TileId::new(0), 1, spin(2));
    m.run(100_000);
    let r0 = m.core(TileId::new(0)).retired();
    assert!(r0 > 80_000, "core nearly fully issuing: {r0}");
    // Register r2 accumulates per thread; both made similar progress.
    let a = m.core(TileId::new(0)).reg(0, Reg::new(2));
    let b = m.core(TileId::new(0)).reg(1, Reg::new(2));
    let ratio = a as f64 / b as f64 / 0.5; // b's tag is 2: b ≈ 2 × iterations
    assert!((0.95..1.05).contains(&ratio), "unfair: {a} vs {b}");
}

#[test]
fn membar_with_empty_buffer_is_cheap() {
    let mut m = Machine::new(&ChipConfig::piton());
    let p = Program::from_instructions(vec![
        Instruction::membar(),
        Instruction::membar(),
        Instruction::halt(),
    ]);
    m.load_thread(TileId::new(0), 0, p);
    assert!(m.run_until_halted(1_000));
    // With nothing to drain, each membar occupies only its base latency.
    let occ = m.counters().occupancy_cycles[Opcode::Membar.index()];
    assert!(
        occ <= 2 * Opcode::Membar.base_latency(),
        "membar occupancy {occ}"
    );
}

#[test]
fn halted_chip_fast_forwards_instantly() {
    let mut m = Machine::new(&ChipConfig::piton());
    m.load_thread(
        TileId::new(0),
        0,
        Program::from_instructions(vec![Instruction::halt()]),
    );
    assert!(m.run_until_halted(10));
    let before = m.counters().cycles;
    let t0 = std::time::Instant::now();
    m.run(50_000_000); // dead cycles: must be skipped, not simulated
    assert!(t0.elapsed().as_millis() < 500, "fast-forward too slow");
    assert_eq!(m.counters().cycles, before + 50_000_000);
}

/// A heavily-degraded die must not ping-pong engine modes: fused-off
/// cores (the paper's Table IV 24-core parts) and cores that halt
/// mid-run leave the dense poll set — and with it the issue-duty
/// denominator — at the next batch barrier. Two saturated survivors
/// among 23 dead tiles then keep the dense engine engaged for the
/// whole run (exactly one calendar→dense handover), where an
/// entry-fixed 25-lane denominator would read ~2/25 duty and bounce
/// back to the calendar indefinitely. Counters stay bit-identical to
/// the naive engine throughout.
#[test]
fn fused_off_and_halted_cores_leave_the_issue_duty_denominator() {
    let saturated = || {
        let mut asm = Assembler::new();
        asm.movi(Reg::new(1), 0x0F0F);
        asm.label("loop");
        for _ in 0..16 {
            asm.alu(Opcode::Add, Reg::new(2), Reg::new(1), Reg::new(2));
        }
        asm.jump("loop");
        asm.assemble()
    };
    let short_lived = |len: usize| {
        let mut asm = Assembler::new();
        asm.movi(Reg::new(1), 3);
        for _ in 0..len {
            asm.alu(Opcode::Add, Reg::new(2), Reg::new(2), Reg::new(1));
        }
        asm.halt();
        asm.assemble()
    };
    // Tiles 0..=9 fused off; 6 staggered short-lived cores halt early;
    // tiles 12 and 24 run saturated loops forever.
    let mask = 0x3FF;
    let build = || {
        let mut m = Machine::new(&ChipConfig::piton());
        m.apply_core_mask(mask);
        for (i, tile) in (14..20).enumerate() {
            m.load_thread(TileId::new(tile), 0, short_lived(200 + 100 * i));
        }
        m.load_thread(TileId::new(12), 0, saturated());
        m.load_thread(TileId::new(24), 0, saturated());
        m
    };
    let mut event = build();
    event.run(200_000);
    let mut naive = build();
    naive.run_naive(200_000);
    assert_eq!(event.now(), naive.now());
    assert_eq!(event.counters(), naive.counters());

    let em = event.engine_metrics();
    assert!(
        em.batched_cycles > 0,
        "a saturated survivor pair must engage the batched dense engine"
    );
    assert_eq!(
        em.handovers, 1,
        "survivors must hold dense mode: fused-off/halted cores may not \
         re-inflate the issue-duty denominator (got {} handovers)",
        em.handovers
    );
}

#[test]
fn store_to_same_line_from_two_tiles_ping_pongs_ownership() {
    let mut sys = MemorySystem::new(&ChipConfig::piton());
    let mut act = ActivityCounters::default();
    let a = 0x6000;
    let t1 = TileId::new(2);
    let t2 = TileId::new(17);
    let mut now = 0;
    for round in 0..6 {
        let (writer, value) = if round % 2 == 0 {
            (t1, round)
        } else {
            (t2, round)
        };
        now += sys.store_drain(writer, a, value, now, &mut act) + 1;
        assert!(sys.coherence_ok(a));
        assert_eq!(sys.peek_mem(a), value);
    }
    // Each ownership transfer invalidates the previous owner.
    assert!(
        act.invalidations >= 5,
        "invalidations {}",
        act.invalidations
    );
}

#[test]
fn casx_lock_is_never_starved_across_the_chip() {
    // All 25 tiles increment one shared counter under a casx lock; the
    // final count proves no update was lost and no thread starved.
    let mut m = Machine::new(&ChipConfig::piton());
    for t in 0..25 {
        let mut asm = Assembler::new();
        asm.movi(Reg::new(1), 0xA000); // lock
        asm.movi(Reg::new(2), 0xA040); // counter
        asm.movi(Reg::new(6), 1);
        asm.movi(Reg::new(5), 4); // iterations
        asm.label("acquire");
        asm.movi(Reg::new(3), 1);
        asm.casx(Reg::new(3), Reg::new(1), Reg::G0);
        asm.branch_to(Opcode::Bne, Reg::new(3), Reg::G0, "acquire");
        asm.ldx(Reg::new(4), Reg::new(2), 0);
        asm.alu(Opcode::Add, Reg::new(4), Reg::new(4), Reg::new(6));
        asm.stx(Reg::new(4), Reg::new(2), 0);
        asm.membar();
        asm.stx(Reg::G0, Reg::new(1), 0);
        asm.membar();
        asm.alu(Opcode::Sub, Reg::new(5), Reg::new(5), Reg::new(6));
        asm.branch_to(Opcode::Bne, Reg::new(5), Reg::G0, "acquire");
        asm.halt();
        m.load_thread(TileId::new(t), 0, asm.assemble());
    }
    assert!(m.run_until_halted(20_000_000), "lock protocol deadlocked");
    assert_eq!(m.memsys().peek_mem(0xA040), 100, "lost increments");
}

/// The movi/add/branch spin loop used by the governed-run tests: every
/// thread retires forever, so only the step budget ends the run.
fn governed_spin_loop() -> Program {
    Program::from_instructions(vec![
        Instruction::movi(Reg::new(1), 0x5555),
        Instruction::alu(Opcode::Add, Reg::new(2), Reg::new(1), Reg::new(1)),
        Instruction::branch(Opcode::Beq, Reg::G0, Reg::G0, 1),
    ])
}

/// Governor × fault plan: a mid-run brownout sags the rails *and* the
/// capability curve the governor consults, so `RaceToHalt` must drop
/// off its pre-sag operating point for exactly the browned-out control
/// steps and race back up once the supply recovers.
#[test]
fn governor_throttles_through_a_brownout_and_recovers() {
    use piton::arch::units::{Hertz, Seconds, Volts};
    use piton::board::fault::{Brownout, FaultPlan};
    use piton::board::system::PitonSystem;
    use piton::power::governor::{Governor, GovernorConfig};
    use piton::power::vf::VfSolver;

    let mut sys = PitonSystem::reference_chip_2();
    sys.set_chunk_cycles(1_000);
    sys.inject_faults(&FaultPlan {
        seed: 1,
        drop_rate: 0.0,
        stuck_rate: 0.0,
        glitch_rate: 0.0,
        // Control steps 2, 3 and 4 see the rails at 85 %.
        brownout: Some(Brownout {
            start_sample: 2,
            samples: 3,
            factor: 0.85,
        }),
        sabotage: vec![],
        crash: vec![],
    });
    sys.machine_mut()
        .load_on_tiles(25, 0, &governed_spin_loop());
    let solver = VfSolver::new(sys.power_model().clone(), 20.0);
    let mut gov = Governor::new(
        GovernorConfig::RaceToHalt,
        solver,
        Volts(1.0),
        Hertz::from_mhz(500.05),
    );
    let run = sys.run_governed(&mut gov, 8, Some(Seconds(0.01)));
    assert_eq!(run.samples.len(), 8, "spin loop must survive all steps");
    // Sagged steps run at the 0.85 V capability — well below the
    // healthy-rail choice on either side of the window.
    assert!(
        run.samples[2].freq.0 < run.samples[1].freq.0,
        "brownout onset did not throttle: {} vs {}",
        run.samples[2].freq,
        run.samples[1].freq
    );
    assert!(
        run.samples[6].freq.0 > run.samples[4].freq.0,
        "supply recovery did not restore frequency: {} vs {}",
        run.samples[6].freq,
        run.samples[4].freq
    );
}

/// Governor × fused silicon: a core fused off via the yield mask never
/// executes, so it must contribute no activity to the power the
/// closed loop feeds its thermal model — the 24-core die runs strictly
/// cooler than the full chip at the same held operating point.
#[test]
fn fused_off_core_adds_no_heat_to_the_governed_loop() {
    use piton::arch::units::{Hertz, Seconds, Volts};
    use piton::board::system::{GovernedRun, PitonSystem};
    use piton::power::governor::{Governor, GovernorConfig};
    use piton::power::vf::VfSolver;

    let governed = |fuse_mask: u32| -> GovernedRun {
        let mut sys = PitonSystem::reference_chip_2();
        sys.set_chunk_cycles(5_000);
        sys.set_core_mask(fuse_mask);
        sys.machine_mut()
            .load_on_tiles(25, 0, &governed_spin_loop());
        let solver = VfSolver::new(sys.power_model().clone(), 20.0);
        let mut gov = Governor::new(
            GovernorConfig::ThrottleOnBoot,
            solver,
            Volts(1.0),
            Hertz::from_mhz(500.05),
        );
        sys.run_governed(&mut gov, 6, Some(Seconds(1.0)))
    };
    let full = governed(0);
    let fused = governed(1 << 12); // fuse the centre tile
                                   // Premise: at 1.0 V under the heat sink neither die approaches the
                                   // boot limit, so both loops hold the boot setpoint throughout and
                                   // the thermal trajectories differ only through activity.
    assert_eq!(full.throttled_steps, 0, "full die unexpectedly throttled");
    assert_eq!(fused.throttled_steps, 0, "fused die unexpectedly throttled");
    for (k, (a, b)) in fused.samples.iter().zip(full.samples.iter()).enumerate() {
        assert_eq!(a.freq, b.freq, "operating points diverged at step {k}");
        assert!(
            a.power.0 < b.power.0,
            "step {k}: fused die power {} not below full die {}",
            a.power,
            b.power
        );
        assert!(
            a.junction_c < b.junction_c,
            "step {k}: fused die junction {} °C not below full die {} °C",
            a.junction_c,
            b.junction_c
        );
    }
}

/// Governor × watchdog: after a governed run, a firing watchdog names
/// the clock the governor held — the first question a hang triage asks
/// is "how fast was the chip actually running?".
#[test]
fn watchdog_report_carries_the_governed_clock() {
    use piton::arch::units::{Hertz, Seconds, Volts};
    use piton::board::system::PitonSystem;
    use piton::power::governor::{Governor, GovernorConfig};
    use piton::power::vf::VfSolver;

    let mut sys = PitonSystem::reference_chip_2();
    sys.set_chunk_cycles(1_000);
    sys.machine_mut()
        .load_on_tiles(25, 0, &governed_spin_loop());
    let solver = VfSolver::new(sys.power_model().clone(), 20.0);
    let mut gov = Governor::new(
        GovernorConfig::RaceToHalt,
        solver,
        Volts(1.0),
        Hertz::from_mhz(500.05),
    );
    sys.run_governed(&mut gov, 4, Some(Seconds(0.01)));
    let report = sys
        .machine_mut()
        .run_until_halted_watched(3_000, 10_000)
        .unwrap_err();
    let expected_khz = (gov.frequency().0 / 1_000.0).round() as u64;
    assert_eq!(
        report.governed_khz,
        Some(expected_khz),
        "report must carry the governor's held clock"
    );
    let rendered = report.to_string();
    assert!(
        rendered.contains("governor held"),
        "rendered report missing the governed clock: {rendered}"
    );
}
