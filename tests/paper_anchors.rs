//! End-to-end checks of the paper's headline numbers, exercised through
//! the full stack (workload → simulator → power model → virtual bench →
//! measurement methodology).

use piton::arch::config::ChipConfig;
use piton::arch::isa::Opcode;
use piton::arch::units::Volts;
use piton::board::population::{ChipPopulation, NamedChip};
use piton::board::system::PitonSystem;
use piton::characterization::experiments::{mem_latency, noc_energy, vf_sweep, Fidelity};
use piton::sim::chipset::round_trip_cycles;

#[test]
fn table_v_static_and_idle() {
    let mut sys = PitonSystem::reference_chip_2();
    let s = sys.measure_static_power();
    let i = sys.measure_idle_power();
    assert!((s.mean.as_mw() - 389.3).abs() < 25.0, "static {s}");
    assert!((i.mean.as_mw() - 2015.3).abs() < 30.0, "idle {i}");
    // Chip #3's row from §IV-H.
    let mut sys3 = PitonSystem::reference_chip_3();
    let i3 = sys3.measure_idle_power();
    assert!((i3.mean.as_mw() - 1906.2).abs() < 40.0, "chip3 idle {i3}");
}

#[test]
fn table_iv_yield_counts() {
    let counts = ChipPopulation::piton_run().test_campaign(32);
    assert_eq!(counts.good, 19);
    assert_eq!(counts.unstable_deterministic, 7);
    assert_eq!(counts.bad_vcs_short, 4);
    assert_eq!(counts.bad_vdd_short, 1);
    assert_eq!(counts.unstable_nondeterministic, 1);
    assert!((counts.percent(counts.good) - 59.4).abs() < 0.1);
}

#[test]
fn figure_15_path_and_table_vii_miss_latency() {
    assert_eq!(round_trip_cycles(), 395);
    let r = mem_latency::run();
    assert!((424..450).contains(&r.measured_ldx_miss_cycles));
}

#[test]
fn figure_9_shape_three_chips() {
    let r = vf_sweep::run();
    let c1 = r.chip(NamedChip::Chip1);
    let c2 = r.chip(NamedChip::Chip2);
    let c3 = r.chip(NamedChip::Chip3);
    // Monotone rise for the typical chips.
    for c in [c2, c3] {
        for w in c.points.windows(2) {
            assert!(w[1].freq.0 >= w[0].freq.0 * 0.99);
        }
    }
    // Chip #1 leads cold, throttles hot.
    assert!(c1.points[0].freq.0 > c2.points[0].freq.0);
    assert!(c1.points.last().unwrap().thermally_limited);
    // Chip #2 near the paper's 514.33 MHz anchor at 1.0 V.
    let at_nominal = c2
        .points
        .iter()
        .find(|p| (p.vdd - Volts(1.0)).abs() < Volts(1e-9))
        .unwrap();
    let dev = (at_nominal.freq.as_mhz() - 514.33).abs() / 514.33;
    assert!(dev < 0.15, "{} MHz", at_nominal.freq.as_mhz());
}

#[test]
fn figure_12_trendlines() {
    let r = noc_energy::run(Fidelity::quick());
    for (label, paper) in noc_energy::paper_reference() {
        let measured = r.series_for(label).unwrap().pj_per_hop;
        let dev = (measured - paper).abs() / paper;
        assert!(dev < 0.35, "{label}: {measured:.2} vs {paper}");
    }
}

#[test]
fn epi_formula_three_adds_per_load_through_the_full_stack() {
    use piton::characterization::experiments::epi;
    use piton::workloads::epi::EpiCase;

    let r = epi::run_cases(
        &[EpiCase::Plain(Opcode::Add), EpiCase::Load],
        Fidelity::quick(),
    );
    let add = r
        .row("add")
        .unwrap()
        .at(piton::arch::isa::OperandPattern::Random)
        .unwrap();
    let ldx = r
        .row("ldx")
        .unwrap()
        .at(piton::arch::isa::OperandPattern::Random)
        .unwrap();
    let ratio = ldx.value / add.value;
    assert!((2.2..=3.8).contains(&ratio), "ratio {ratio}");
    // Absolute anchor: Table VII's 286.46 pJ within 25%.
    assert!((ldx.value - 286.46).abs() / 286.46 < 0.25, "{}", ldx.value);
}

#[test]
fn aggregate_l2_and_area_match_table_i_and_figure_8() {
    let cfg = ChipConfig::piton();
    assert_eq!(cfg.l2_total_bytes(), 1_638_400);
    let chip = piton::arch::floorplan::AreaBreakdown::piton(piton::arch::floorplan::Level::Chip);
    assert!((chip.total_area_mm2() - 35.975_52).abs() < 1e-6);
}
