//! The parallel sweep runner must never change results: every
//! experiment collects grid points by index, so rendered tables and CSV
//! exports are byte-identical at every `jobs` level. These tests pin
//! that guarantee — any accidental order- or thread-dependence in an
//! experiment shows up as a byte diff here.

use piton::board::fault::{self, FaultPlan};
use piton::characterization::experiments::{core_scaling, epi, noc_energy, Fidelity};

/// A deliberately tiny fidelity: determinism does not depend on sample
/// counts, so keep the simulated work minimal.
fn tiny(jobs: usize) -> Fidelity {
    Fidelity {
        samples: 4,
        chunk_cycles: 1_000,
        warmup_cycles: 4_000,
        jobs,
        fault: None,
        governor: piton::power::GovernorConfig::Off,
        journal: None,
        backend: piton::arch::config::Backend::Cycle,
    }
}

#[test]
fn noc_energy_is_byte_identical_across_jobs_levels() {
    let serial = noc_energy::run(tiny(1));
    let parallel = noc_energy::run(tiny(4));
    assert_eq!(serial.render(), parallel.render());
    assert_eq!(serial.to_csv(), parallel.to_csv());
}

#[test]
fn epi_is_byte_identical_across_jobs_levels() {
    let serial = epi::run(tiny(1));
    let parallel = epi::run(tiny(8));
    assert_eq!(serial.render(), parallel.render());
    assert_eq!(serial.to_csv(), parallel.to_csv());
}

#[test]
fn core_scaling_is_byte_identical_across_jobs_levels() {
    let cores = [1usize, 9, 25];
    let serial = core_scaling::run_with_cores(&cores, tiny(1));
    let parallel = core_scaling::run_with_cores(&cores, tiny(3));
    assert_eq!(serial.render(), parallel.render());
}

/// The durable-sweep contract: a run resumed from *any* completed
/// prefix of a write-ahead journal — including one with a torn
/// trailing record — renders byte-identically to an uninterrupted,
/// journal-free run, at a different jobs level than the original.
#[test]
fn resume_from_any_completed_prefix_is_byte_identical() {
    use piton::characterization::journal::{self, Journal};

    let baseline = noc_energy::run(tiny(1)).render();

    let mut path = std::env::temp_dir();
    path.push(format!("piton-determinism-journal-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let token = journal::register(Journal::open(&path, "determinism-ctx").unwrap());
    let journaled = noc_energy::run(tiny(4).with_journal(token));
    assert_eq!(journaled.render(), baseline);
    let stats = journal::resolve(token).lock().unwrap().stats();
    assert_eq!(stats.appended, 4 * 9, "every noc grid point journaled");

    // Truncate the journal at assorted byte offsets — a crash
    // mid-append leaves exactly such files — and resume at jobs=1.
    let full = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    for cut in [full.len() / 3, full.len() / 2, full.len() - 11] {
        let mut partial = std::env::temp_dir();
        partial.push(format!(
            "piton-determinism-journal-{}-cut{cut}",
            std::process::id()
        ));
        std::fs::write(&partial, &full[..cut]).unwrap();
        let token = journal::register(Journal::open(&partial, "determinism-ctx").unwrap());
        let resumed = noc_energy::run(tiny(1).with_journal(token));
        assert_eq!(resumed.render(), baseline, "cut={cut}");
        let stats = journal::resolve(token).lock().unwrap().stats();
        assert_eq!(
            stats.served + stats.appended,
            4 * 9,
            "served and recomputed points must cover the grid (cut={cut})"
        );
        assert!(stats.served > 0, "some points must be served (cut={cut})");
        let _ = std::fs::remove_file(&partial);
    }
}

/// A killed grid point must neither abort the sweep nor perturb any
/// other point: the holed table is byte-identical at every jobs level,
/// and every line that is not part of the hole matches the fault-free
/// run exactly.
#[test]
fn injected_kill_holes_identically_at_every_jobs_level() {
    let token = fault::register(FaultPlan::parse("seed=7,kill=epi:3").unwrap());
    let serial = epi::run(tiny(1).with_fault(token));
    let parallel = epi::run(tiny(8).with_fault(token));
    assert_eq!(serial.render(), parallel.render());
    assert_eq!(serial.holes.len(), 1);
    assert_eq!(serial.holes[0].attempts, 3);
    assert!(serial.render().contains('✗'), "hole must be marked");

    // The kill plan injects no monitor faults, so all surviving lines
    // must match the fault-free output byte for byte.
    let clean = epi::run(tiny(1)).render();
    let clean_lines: std::collections::HashSet<&str> = clean.lines().collect();
    for line in serial.render().lines() {
        assert!(
            line.is_empty() || line.contains('✗') || clean_lines.contains(line),
            "unexpected divergence on non-holed line: {line:?}"
        );
    }
}
