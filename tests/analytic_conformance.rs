//! Conformance suite for the analytic fast-path backend: the cycle
//! engine is the oracle, and every figure the analytic backend can
//! reproduce must land within its committed relative-error budget
//! (`piton::characterization::analytic::compare::budget_for`) at quick
//! fidelity.
//!
//! One calibration is shared across the whole binary (the probe
//! battery is the expensive part), and each figure gets its own test
//! so a regression names the figure — and its first worst point — in
//! the failure message.

use std::sync::OnceLock;

use piton::characterization::analytic::{self, compare, Calibrated};
use piton::characterization::experiments::{
    core_scaling, design_space, epi, mt_vs_mc, noc_energy, static_idle, thermal, Fidelity,
};

mod common;

/// The `reproduce quick` core grid (Figure 13).
const QUICK_CORES: [usize; 7] = [1, 5, 9, 13, 17, 21, 25];
/// The `reproduce quick` thread grid (Figure 14).
const QUICK_THREADS: [usize; 3] = [8, 16, 24];

/// One calibration for the whole test binary.
fn calibrated() -> &'static Calibrated {
    static CAL: OnceLock<Calibrated> = OnceLock::new();
    CAL.get_or_init(|| {
        analytic::calibrate(Fidelity::quick()).expect("calibration at quick fidelity")
    })
}

/// Asserts a figure landed within its budget, naming the first worst
/// point (label, analytic value, oracle value) on failure.
fn assert_within_budget(c: &compare::FigureComparison) {
    assert!(!c.points.is_empty(), "{}: nothing was compared", c.figure);
    let w = c.worst().expect("non-empty comparison has a worst point");
    assert!(
        c.within_budget(),
        "{}: max relative error {:.3}% exceeds the committed {:.1}% budget\n\
         worst point: {} — analytic {:.6} vs cycle oracle {:.6}",
        c.figure,
        c.max_rel() * 100.0,
        c.budget * 100.0,
        w.label,
        w.analytic,
        w.cycle,
    );
}

#[test]
fn calibration_fit_is_healthy() {
    let cal = calibrated();
    assert_eq!(cal.report.probes, cal.probes.len());
    for r in &cal.report.residuals {
        assert!(
            r.max_rel < 0.05,
            "a rail fit residual blew past 5%: {:?}",
            cal.report.residuals
        );
        assert!(r.mean_rel <= r.max_rel);
    }
    assert!(cal.report.worst.is_some());
}

#[test]
fn figure_10_and_table_v_within_budget() {
    let cycle = static_idle::run(Fidelity::quick());
    for c in compare::compare_static_idle(&cycle, calibrated()) {
        assert_within_budget(&c);
    }
}

#[test]
fn figure_11_within_budget() {
    let cycle = epi::run(Fidelity::quick());
    assert_within_budget(&compare::compare_epi(&cycle, calibrated()));
}

#[test]
fn figure_12_within_budget() {
    let cycle = noc_energy::run(Fidelity::quick());
    assert_within_budget(&compare::compare_noc(&cycle, calibrated()));
}

#[test]
fn figure_13_within_budget() {
    let cycle = core_scaling::run_with_cores(&QUICK_CORES, Fidelity::quick());
    assert_within_budget(&compare::compare_core_scaling(&cycle, calibrated()));
}

#[test]
fn figure_14_within_budget() {
    let cycle = mt_vs_mc::run_with_threads(&QUICK_THREADS, Fidelity::quick());
    assert_within_budget(&compare::compare_mt_vs_mc(&cycle, calibrated()));
}

#[test]
fn figure_17_within_budget() {
    let cycle = thermal::run_thermal_power(Fidelity::quick());
    assert_within_budget(&compare::compare_thermal(&cycle, calibrated()));
}

#[test]
fn design_space_oracle_within_budget() {
    assert_within_budget(&design_space::cycle_oracle(calibrated(), Fidelity::quick()));
}

/// The mega-sweep completes every point and its stride sample is
/// pinned byte-for-byte (regenerate with `PITON_BLESS=1` after an
/// intentional model change).
#[test]
fn design_space_snapshot() {
    let r = design_space::run(calibrated(), Fidelity::quick());
    assert!(r.holes.is_empty(), "fault-free sweep left holes");
    assert_eq!(r.evaluated(), r.grid.len());
    common::assert_matches_golden("design_space.txt", &r.render());
}

/// Every experiment module is classified as either covered by the
/// analytic backend or deliberately cycle-only — a new module must be
/// placed in one of the two lists.
#[test]
fn coverage_classifies_every_experiment_module() {
    const MODULES: [&str; 15] = [
        "ablations",
        "area",
        "core_scaling",
        "design_space",
        "epi",
        "governor",
        "mem_latency",
        "memory_energy",
        "mt_vs_mc",
        "noc_energy",
        "specint",
        "static_idle",
        "thermal",
        "vf_sweep",
        "yield_stats",
    ];
    let (covered, uncovered) = compare::coverage();
    let base = |s: &str| s.split([' ', '(']).next().unwrap().to_owned();
    let classified: std::collections::BTreeSet<String> =
        covered.iter().chain(&uncovered).map(|s| base(s)).collect();
    for m in MODULES {
        assert!(
            classified.contains(m),
            "experiment module {m:?} is neither covered nor cycle-only in compare::coverage()"
        );
    }
    for c in classified {
        assert!(
            MODULES.contains(&c.as_str()),
            "coverage() names {c:?}, which is not an experiment module"
        );
    }
}
