//! Property tests of the mesh topology and NoC accounting.

use proptest::prelude::*;

use piton::arch::topology::{Mesh, TileId, TilePitch};
use piton::sim::events::ActivityCounters;
use piton::sim::noc::{coupling_transitions, hamming, NocFabric, NocId};

proptest! {
    /// Dimension-ordered next_hop always reaches the destination in
    /// exactly the Manhattan distance, and the route's turn flag matches
    /// the geometry.
    #[test]
    fn routes_deliver_in_manhattan_hops(a in 0usize..25, b in 0usize..25) {
        let mesh = Mesh::piton();
        let (from, to) = (TileId::new(a), TileId::new(b));
        let route = mesh.route(from, to);
        prop_assert_eq!(route.hops, mesh.coord(from).manhattan(mesh.coord(to)));

        let mut at = from;
        let mut steps = 0;
        let mut turned = false;
        let mut moved_y = false;
        while let Some(next) = mesh.next_hop(at, to) {
            let (ca, cn) = (mesh.coord(at), mesh.coord(next));
            prop_assert_eq!(ca.manhattan(cn), 1, "non-adjacent hop");
            if cn.y != ca.y {
                moved_y = true;
            } else {
                prop_assert!(!moved_y, "X move after Y move breaks dimension order");
            }
            if moved_y && cn.x != ca.x {
                turned = true;
            }
            at = next;
            steps += 1;
            prop_assert!(steps <= 8, "route too long");
        }
        let _ = turned;
        prop_assert_eq!(at, to);
        prop_assert_eq!(steps, route.hops);
        prop_assert_eq!(route.latency_cycles(), (route.hops + usize::from(route.turns)) as u64);
    }

    /// Wire length is non-negative, symmetric in endpoints, and bounded
    /// by the chip diagonal.
    #[test]
    fn wire_lengths_are_sane(a in 0usize..25, b in 0usize..25) {
        let mesh = Mesh::piton();
        let fwd = mesh.route(TileId::new(a), TileId::new(b)).wire_length_mm(TilePitch::PITON);
        let rev = mesh.route(TileId::new(b), TileId::new(a)).wire_length_mm(TilePitch::PITON);
        prop_assert!((fwd - rev).abs() < 1e-12);
        prop_assert!(fwd >= 0.0);
        prop_assert!(fwd <= 4.0 * 1.144_52 + 4.0 * 1.053 + 1e-9);
    }

    /// Hamming switching is bounded by 64 bits and symmetric; coupling
    /// transitions never exceed 63 and vanish without switching.
    #[test]
    fn switching_bounds(prev in any::<u64>(), cur in any::<u64>()) {
        let h = hamming(prev, cur);
        prop_assert!(h <= 64);
        prop_assert_eq!(h, hamming(cur, prev));
        let c = coupling_transitions(prev, cur);
        prop_assert!(c <= 63);
        if h == 0 {
            prop_assert_eq!(c, 0);
        }
        // Coupling needs at least two toggles in opposite directions.
        if h < 2 {
            prop_assert_eq!(c, 0);
        }
    }

    /// Per-packet link accounting: flit-hops is exactly
    /// flits × hops (or flits for local delivery), and total switching
    /// is bounded by 64 bits per flit-hop.
    #[test]
    fn noc_accounting_is_exact(
        src in 0usize..25,
        dst in 0usize..25,
        flits in proptest::collection::vec(any::<u64>(), 1..8)
    ) {
        let mesh = Mesh::piton();
        let mut noc = NocFabric::new(mesh.clone());
        let mut act = ActivityCounters::default();
        let route = mesh.route(TileId::new(src), TileId::new(dst));
        noc.send(NocId::Noc1, TileId::new(src), TileId::new(dst), &flits, &mut act);
        let expected_hops = if route.hops == 0 {
            flits.len() as u64
        } else {
            (flits.len() * route.hops) as u64
        };
        prop_assert_eq!(act.noc_flit_hops, expected_hops);
        prop_assert!(act.noc_bit_switches <= 64 * act.noc_flit_hops);
        prop_assert_eq!(act.noc_packets, 1);
    }

    /// Sending the same flit twice in a row switches nothing the second
    /// time (wire state is remembered per link).
    #[test]
    fn repeated_flits_do_not_switch(src in 0usize..25, dst in 0usize..25, flit in any::<u64>()) {
        prop_assume!(src != dst);
        let mut noc = NocFabric::new(Mesh::piton());
        let mut act = ActivityCounters::default();
        noc.send(NocId::Noc2, TileId::new(src), TileId::new(dst), &[flit], &mut act);
        let after_first = act.noc_bit_switches;
        noc.send(NocId::Noc2, TileId::new(src), TileId::new(dst), &[flit], &mut act);
        prop_assert_eq!(act.noc_bit_switches, after_first);
    }
}
