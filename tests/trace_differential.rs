//! Golden-trace differential harness: the event-driven cycle engine
//! (`Machine::run`) and the reference per-cycle engine
//! (`Machine::run_naive`) must produce *identical* structured trace
//! streams over randomized programs — and when they don't, the
//! differential must localize the first divergent event to a cycle and
//! a tile, which is how an engine-equivalence failure gets bisected
//! (see `trace_diff --desync=N` for the interactive version of the
//! same harness).
//!
//! Engine-mode events are masked out of every comparison: the two
//! engines legitimately schedule themselves differently.
//!
//! The `golden_trace_*` tests additionally pin one representative
//! program per experiment family byte-for-byte against committed JSONL
//! fixtures in `tests/golden/` (`PITON_BLESS=1` regenerates).

use piton::arch::config::ChipConfig;
use piton::arch::isa::{Instruction, Opcode, Reg};
use piton::arch::topology::TileId;
use piton::obs::diff::first_divergence;
use piton::obs::trace::{self, encode_jsonl, TraceSpec};
use piton::sim::machine::{Machine, SwitchPattern};
use piton::sim::program::Program;
use piton::sim::testprog;
use proptest::prelude::*;

mod common;

fn machine() -> Machine {
    Machine::new(&ChipConfig::default())
}

fn diff_spec() -> TraceSpec {
    TraceSpec::parse("retire,cache,noc").expect("static spec")
}

/// Captures the full trace of `body` on a fresh machine.
fn capture_run(spec: &TraceSpec, body: impl FnOnce(&mut Machine)) -> Vec<piton::obs::TraceEvent> {
    let (_, events) = trace::capture(spec, || {
        let mut m = machine();
        body(&mut m);
    });
    events
}

/// Differentially traces the standard randomized placement for a seed
/// pool on both engines and returns the streams.
fn differential(
    seeds: &[u64],
    slots: usize,
    chunks: &[u64],
    skew: u64,
) -> (Vec<piton::obs::TraceEvent>, Vec<piton::obs::TraceEvent>) {
    let placement = testprog::placement(seeds, slots);
    let spec = diff_spec();
    let load = |m: &mut Machine| {
        for &(tile, thread, ref program) in &placement {
            m.load_thread(TileId::new(tile), thread, program.clone());
        }
    };
    let event = capture_run(&spec, |m| {
        load(m);
        m.set_calendar_skew(skew);
        for &chunk in chunks {
            m.run(chunk);
        }
    });
    let naive = capture_run(&spec, |m| {
        load(m);
        for &chunk in chunks {
            m.run_naive(chunk);
        }
    });
    (event, naive)
}

#[test]
fn engines_produce_identical_traces_on_randomized_programs() {
    for (pool, seeds) in [
        vec![0xC0FF_EE00u64, 0xBAD_CAB1E],
        vec![7, 1234, 0xFFFF_FFFF_FFFF_FFFF],
        vec![0x5EED_0001, 0x5EED_0002, 0x5EED_0003, 0x5EED_0004],
    ]
    .into_iter()
    .enumerate()
    {
        let (event, naive) = differential(&seeds, 6 + pool, &[500, 2_000, 1_500], 0);
        assert!(
            !event.is_empty(),
            "seed pool {pool}: programs emitted no events — the differential is vacuous"
        );
        if let Some(d) = first_divergence(&event, &naive) {
            panic!("seed pool {pool}: engines diverged\n{d}");
        }
    }
}

/// A deliberately-desynced pair (calendar wakeups delayed one cycle)
/// must produce a divergence report naming the first divergent event's
/// cycle and tile. The program keeps issue duty sparse (`sdivx`
/// chains, 72-cycle occupancy) so the event engine stays in calendar
/// mode, where the skew applies.
#[test]
fn desynced_engines_report_first_divergent_cycle_and_tile() {
    let sparse = Program::from_instructions(vec![
        Instruction::movi(Reg::new(1), 1_000_003),
        Instruction::movi(Reg::new(2), 3),
        Instruction::alu(Opcode::Sdivx, Reg::new(3), Reg::new(1), Reg::new(2)),
        Instruction::alu(Opcode::Sdivx, Reg::new(4), Reg::new(3), Reg::new(2)),
        Instruction::branch(Opcode::Beq, Reg::new(0), Reg::new(0), 2),
    ]);
    let spec = diff_spec();
    let load = |m: &mut Machine| {
        m.load_thread(TileId::new(6), 0, sparse.clone());
        m.load_thread(TileId::new(18), 0, sparse.clone());
    };
    let event = capture_run(&spec, |m| {
        load(m);
        m.set_calendar_skew(1);
        m.run(4_000);
    });
    let naive = capture_run(&spec, |m| {
        load(m);
        m.run_naive(4_000);
    });
    let d =
        first_divergence(&event, &naive).expect("a skewed calendar must desynchronize the engines");
    let msg = d.to_string();
    assert!(
        msg.contains("first divergent event: cycle"),
        "report must name the divergent cycle:\n{msg}"
    );
    let cycle = d.cycle().expect("divergent event carries a cycle");
    let entity = d.entity().expect("divergent event carries a tile");
    assert!(
        msg.contains(&format!("cycle {cycle}")) && msg.contains(&entity.to_string()),
        "report must carry cycle {cycle} and tile {entity}:\n{msg}"
    );
    assert!(
        entity == 6 || entity == 18,
        "divergence must land on a loaded tile, got {entity}"
    );
}

/// Tile filtering: a `tile=N` spec keeps only that tile's events.
#[test]
fn tile_filter_narrows_the_stream() {
    let spec = TraceSpec::parse("retire,tile=6").expect("static spec");
    let sparse = Program::from_instructions(vec![
        Instruction::movi(Reg::new(1), 41),
        Instruction::alu(Opcode::Add, Reg::new(1), Reg::new(1), Reg::new(1)),
    ]);
    let events = capture_run(&spec, |m| {
        m.load_thread(TileId::new(6), 0, sparse.clone());
        m.load_thread(TileId::new(7), 0, sparse.clone());
        m.run(200);
    });
    assert!(!events.is_empty());
    assert!(events.iter().all(|e| e.entity() == Some(6)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every engine path must be mutually bit-identical on randomized
    /// workloads: the naive reference, the traced scalar-dense sweep,
    /// the batched dense engine (`dense_threads = 1`) and the
    /// tile-parallel batched engine. Mixed programs per tile, a core
    /// mask applied mid-run and a governed clock are all in play, and
    /// the batch accounting (batched cycles, barrier count,
    /// effect-buffer high-water mark) must itself be deterministic
    /// across worker counts and consistent with the cycles driven.
    #[test]
    fn engines_agree_across_batched_and_tile_parallel_paths(
        seeds in proptest::collection::vec(any::<u64>(), 1..4),
        slots in 4usize..10,
        workers in 2usize..4,
        mask in 0u32..(1 << 25),
        khz_raw in 0u64..600_000,
        chunks in proptest::collection::vec(500u64..4_000, 2..5),
    ) {
        let placement = testprog::placement(&seeds, slots);
        // Below 100 MHz the draw means "ungoverned".
        let khz = (khz_raw >= 100_000).then_some(khz_raw);
        let drive = |m: &mut Machine, naive: bool| {
            for &(tile, thread, ref program) in &placement {
                m.load_thread(TileId::new(tile), thread, program.clone());
            }
            m.set_governed_khz(khz);
            for (i, &chunk) in chunks.iter().enumerate() {
                if i == 1 {
                    m.apply_core_mask(mask);
                }
                if naive {
                    m.run_naive(chunk);
                } else {
                    m.run(chunk);
                }
            }
        };
        let mut naive = machine();
        drive(&mut naive, true);

        let mut batched = machine();
        batched.set_dense_threads(1);
        drive(&mut batched, false);

        let mut parallel = machine();
        parallel.set_dense_threads(workers);
        drive(&mut parallel, false);

        let spec = TraceSpec::parse("governor").expect("static spec");
        let mut traced_slot = None;
        trace::capture(&spec, || {
            let mut m = machine();
            drive(&mut m, false);
            traced_slot = Some(m);
        });
        let traced = traced_slot.expect("traced run completed");

        prop_assert_eq!(batched.now(), naive.now());
        prop_assert_eq!(batched.counters(), naive.counters());
        prop_assert_eq!(parallel.counters(), naive.counters());
        prop_assert_eq!(traced.counters(), naive.counters());
        prop_assert_eq!(batched.retired(), naive.retired());
        prop_assert_eq!(parallel.retired(), naive.retired());

        // Batch accounting: deterministic across worker counts, and
        // the modal cycle attribution must cover the run exactly.
        let total: u64 = chunks.iter().sum();
        let b = batched.engine_metrics();
        let p = parallel.engine_metrics();
        prop_assert_eq!(b.event_cycles + b.dense_cycles + b.batched_cycles, total);
        prop_assert_eq!(b.dense_cycles, 0); // untraced runs never take the scalar sweep
        prop_assert_eq!(b.batched_cycles, p.batched_cycles);
        prop_assert_eq!(b.batches, p.batches);
        prop_assert_eq!(b.record_hwm, p.record_hwm);
        prop_assert!(b.batches == 0 || b.batched_cycles > 0, "batches without batched cycles");
        let t = traced.engine_metrics();
        prop_assert_eq!(t.batched_cycles, 0); // traced runs take the scalar sweep
        prop_assert_eq!(t.event_cycles + t.dense_cycles, total);
    }
}

// --- Golden trace fixtures: one representative program per ---
// --- experiment family, pinned byte-for-byte.               ---

fn assert_golden_trace(name: &str, events: &[piton::obs::TraceEvent]) {
    assert!(!events.is_empty(), "{name}: empty trace pins nothing");
    common::assert_matches_golden(name, &encode_jsonl(events));
}

/// EPI family (Figure 11): a single-tile ALU kernel — retirement
/// stream only.
#[test]
fn golden_trace_epi_family() {
    let program = Program::from_instructions(vec![
        Instruction::movi(Reg::new(1), 7),
        Instruction::movi(Reg::new(2), 9),
        Instruction::alu(Opcode::Add, Reg::new(3), Reg::new(1), Reg::new(2)),
        Instruction::alu(Opcode::Mulx, Reg::new(3), Reg::new(3), Reg::new(2)),
        Instruction::alu(Opcode::Sdivx, Reg::new(4), Reg::new(3), Reg::new(1)),
        Instruction::halt(),
    ]);
    let spec = TraceSpec::parse("retire").expect("static spec");
    let events = capture_run(&spec, |m| {
        m.load_thread(TileId::new(12), 0, program);
        m.run(500);
    });
    assert_golden_trace("trace_epi.jsonl", &events);
}

/// Memory-system family (Table VII): cross-tile store/load coherence
/// traffic — cache transitions plus the NoC hops that carry them.
#[test]
fn golden_trace_memory_family() {
    let store_side = Program::from_instructions(vec![
        Instruction::movi(Reg::new(1), 0x80_0000),
        Instruction::movi(Reg::new(2), 77),
        Instruction::stx(Reg::new(2), Reg::new(1), 64),
        Instruction::membar(),
        Instruction::halt(),
    ]);
    let load_side = Program::from_instructions(vec![
        Instruction::movi(Reg::new(1), 0x80_0000),
        Instruction::ldx(Reg::new(3), Reg::new(1), 64),
        Instruction::ldx(Reg::new(4), Reg::new(1), 64),
        Instruction::halt(),
    ]);
    let spec = TraceSpec::parse("cache,noc").expect("static spec");
    let events = capture_run(&spec, |m| {
        m.load_thread(TileId::new(3), 0, store_side);
        m.run(600);
        m.load_thread(TileId::new(14), 0, load_side);
        m.run(600);
    });
    assert_golden_trace("trace_memory.jsonl", &events);
}

/// NoC family (Figure 12): the Figure 12 invalidation-traffic pattern
/// generator — pure flit-hop stream.
#[test]
fn golden_trace_noc_family() {
    let spec = TraceSpec::parse("noc").expect("static spec");
    let events = capture_run(&spec, |m| {
        m.run_invalidation_traffic(TileId::new(2), SwitchPattern::Fsw, 47 * 4);
    });
    assert_golden_trace("trace_noc.jsonl", &events);
}

/// Governor family (closed-loop Figure 9): a preheated Chip #1 die
/// forces `ThrottleOnBoot` down the PLL ladder — every operating-point
/// transition lands in the trace as a `governor` event carrying the
/// held frequency and the junction temperature that forced it.
#[test]
fn golden_trace_governor_family() {
    use piton::arch::units::{Hertz, Seconds, Volts};
    use piton::board::system::PitonSystem;
    use piton::power::governor::{Governor, GovernorConfig};
    use piton::power::vf::{VfSolver, T_JUNCTION_LIMIT_C};

    let spec = TraceSpec::parse("governor").expect("static spec");
    let (_, events) = trace::capture(&spec, || {
        let mut sys = PitonSystem::reference_chip_1();
        sys.set_chunk_cycles(1_000);
        sys.thermal_mut()
            .settle_to_junction(T_JUNCTION_LIMIT_C + 6.0);
        let hot_loop = Program::from_instructions(vec![
            Instruction::movi(Reg::new(1), 0x5555),
            Instruction::alu(Opcode::Add, Reg::new(2), Reg::new(1), Reg::new(1)),
            Instruction::branch(Opcode::Beq, Reg::G0, Reg::G0, 1),
        ]);
        sys.machine_mut().load_on_tiles(25, 0, &hot_loop);
        let solver = VfSolver::new(sys.power_model().clone(), 20.0);
        let mut gov = Governor::new(
            GovernorConfig::ThrottleOnBoot,
            solver,
            Volts(1.0),
            Hertz::from_mhz(500.05),
        );
        let run = sys.run_governed(&mut gov, 8, Some(Seconds(0.05)));
        assert!(run.throttled_steps > 0, "preheated die must throttle");
    });
    assert!(
        events
            .iter()
            .all(|e| matches!(e, piton::obs::TraceEvent::Governor { .. })),
        "a governor-only spec must pass nothing else"
    );
    assert_golden_trace("trace_governor.jsonl", &events);
}

/// Scaling/multithreading family (Figures 13/14): the standard
/// randomized placement across many tiles and both threads, all
/// subsystems traced.
#[test]
fn golden_trace_scaling_family() {
    let seeds = [0x5CA1_AB1Eu64, 0xD15C_0B01];
    let placement = testprog::placement(&seeds, 8);
    let spec = TraceSpec::parse("retire,cache,noc").expect("static spec");
    let events = capture_run(&spec, |m| {
        for &(tile, thread, ref program) in &placement {
            m.load_thread(TileId::new(tile), thread, program.clone());
        }
        m.run(800);
    });
    assert_golden_trace("trace_scaling.jsonl", &events);
}
