//! Golden snapshot tests: the rendered tables and figures the paper
//! reproduction prints, pinned byte-for-byte at quick fidelity against
//! committed fixtures in `tests/golden/`.
//!
//! The experiment pipeline is deterministic (seeded monitors, fixed
//! grids, jobs-independent ordering), so any diff here is a real
//! output change. After an intentional change, regenerate with:
//!
//! ```text
//! PITON_BLESS=1 cargo test --test golden_reports
//! git diff tests/golden/   # review what changed
//! ```

use piton::characterization::experiments::{
    core_scaling, epi, governor, mt_vs_mc, noc_energy, specint, yield_stats, Fidelity,
};

mod common;

/// The `reproduce quick` core grid (Figure 13).
const QUICK_CORES: [usize; 7] = [1, 5, 9, 13, 17, 21, 25];
/// The `reproduce quick` thread grid (Figure 14).
const QUICK_THREADS: [usize; 3] = [8, 16, 24];

#[test]
fn table_iv_chip_testing_statistics() {
    common::assert_matches_golden("table4_yield.txt", &yield_stats::run().render());
}

#[test]
fn table_ix_specint() {
    common::assert_matches_golden(
        "table9_specint.txt",
        &specint::run(Fidelity::quick()).render(),
    );
}

#[test]
fn figure_11_energy_per_instruction() {
    let r = epi::run(Fidelity::quick());
    assert!(r.holes.is_empty(), "unexpected holes: {:?}", r.holes);
    common::assert_matches_golden("figure11_epi.txt", &r.render());
}

#[test]
fn figure_12_noc_energy_per_flit() {
    let r = noc_energy::run(Fidelity::quick());
    assert!(r.holes.is_empty(), "unexpected holes: {:?}", r.holes);
    common::assert_matches_golden("figure12_noc.txt", &r.render());
}

#[test]
fn figure_13_power_scaling() {
    let r = core_scaling::run_with_cores(&QUICK_CORES, Fidelity::quick());
    assert!(r.holes.is_empty(), "unexpected holes: {:?}", r.holes);
    common::assert_matches_golden("figure13_scaling.txt", &r.render());
}

#[test]
fn figure_14_mt_vs_mc() {
    common::assert_matches_golden(
        "figure14_mt_mc.txt",
        &mt_vs_mc::run_with_threads(&QUICK_THREADS, Fidelity::quick()).render(),
    );
}

#[test]
fn figure_9_closed_loop_throttle_boundary() {
    common::assert_matches_golden(
        "figure9_governor_boundary.txt",
        &governor::run_throttle_boundary(Fidelity::quick()).render(),
    );
}

#[test]
fn figure_18_closed_loop_hysteresis() {
    common::assert_matches_golden(
        "figure18_governor_hysteresis.txt",
        &governor::run_hysteresis(64, 1.0, Fidelity::quick()).render(),
    );
}

#[test]
fn energy_frontier_race() {
    common::assert_matches_golden(
        "energy_frontier.txt",
        &governor::run_energy_frontier(Fidelity::quick()).render(),
    );
}
