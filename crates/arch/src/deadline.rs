//! Cooperative per-attempt deadline budgets.
//!
//! The sweep runner gives each grid-point attempt a wall-clock budget
//! (`RetryPolicy::timeout` in the core crate); a wedged point should
//! degrade into a retry or an explicit hole instead of stalling the
//! whole campaign. Nothing in the workspace can preempt an arbitrary
//! closure — `#![forbid(unsafe_code)]` rules out thread cancellation —
//! so the budget is *cooperative*: the runner arms a thread-local
//! deadline before invoking the point closure, and the long-running
//! loops underneath it (the board's warm-up and sampling loops, the
//! simulator's watched run loop) poll [`check`] at natural chunk
//! boundaries. A blown budget surfaces as the transient
//! [`PitonError::DeadlineExceeded`], which the retry machinery already
//! knows how to handle.
//!
//! The deadline is per-thread, matching the runner's
//! one-point-per-worker execution model, and is always cleared by the
//! runner after the attempt returns — callers never observe a stale
//! deadline from a previous point.
//!
//! # Examples
//!
//! ```
//! use std::time::{Duration, Instant};
//!
//! use piton_arch::deadline;
//!
//! // No deadline armed: checks always pass.
//! assert!(deadline::check("idle loop").is_ok());
//!
//! // An already-expired deadline trips the next check.
//! deadline::arm(Instant::now() - Duration::from_millis(1));
//! assert!(deadline::exceeded());
//! let err = deadline::check("warm-up").unwrap_err();
//! assert!(err.is_transient());
//! deadline::disarm();
//! assert!(deadline::check("warm-up").is_ok());
//! ```

use std::cell::Cell;
use std::time::Instant;

use crate::error::PitonError;

thread_local! {
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Arm this thread's deadline. Subsequent [`check`]/[`exceeded`] calls
/// on the same thread fail once `at` has passed. Replaces any
/// previously armed deadline.
pub fn arm(at: Instant) {
    DEADLINE.with(|d| d.set(Some(at)));
}

/// Clear this thread's deadline; [`check`] passes unconditionally
/// until the next [`arm`].
pub fn disarm() {
    DEADLINE.with(|d| d.set(None));
}

/// Whether this thread's armed deadline (if any) has passed.
#[must_use]
pub fn exceeded() -> bool {
    DEADLINE
        .with(|d| d.get())
        .is_some_and(|at| Instant::now() >= at)
}

/// Poll the deadline from inside a long-running loop. Returns the
/// transient [`PitonError::DeadlineExceeded`] naming `what` once the
/// armed deadline has passed; always `Ok` when no deadline is armed.
pub fn check(what: &str) -> Result<(), PitonError> {
    if exceeded() {
        Err(PitonError::deadline(what))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use std::time::{Duration, Instant};

    use super::*;

    #[test]
    fn unarmed_thread_never_trips() {
        disarm();
        assert!(!exceeded());
        assert!(check("anything").is_ok());
    }

    #[test]
    fn expired_deadline_trips_and_disarm_recovers() {
        arm(Instant::now() - Duration::from_millis(1));
        assert!(exceeded());
        let err = check("sampling loop").unwrap_err();
        assert!(
            matches!(err, PitonError::DeadlineExceeded { ref what } if what == "sampling loop")
        );
        assert!(err.is_transient());
        disarm();
        assert!(check("sampling loop").is_ok());
    }

    #[test]
    fn future_deadline_passes_until_reached() {
        arm(Instant::now() + Duration::from_secs(3600));
        assert!(!exceeded());
        assert!(check("warm-up").is_ok());
        disarm();
    }

    #[test]
    fn deadlines_are_thread_local() {
        arm(Instant::now() - Duration::from_millis(1));
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(!exceeded());
                assert!(check("other thread").is_ok());
            });
        });
        disarm();
    }
}
