//! Place-and-route area database — the data behind Figure 8.
//!
//! The paper computes its area breakdown "directly from the place and
//! route tool": the standard cells and SRAM macros of each major block
//! are summed, while filler cells, clock-tree buffers and timing
//! optimization buffers are categorized separately, and unutilized area is
//! the floorplan area minus the sum of cell areas. We reproduce that
//! database here: every block stores its *absolute* area in mm² and the
//! percentages of Figure 8 are derived, never hard-coded.
//!
//! # Examples
//!
//! ```
//! use piton_arch::floorplan::{AreaBreakdown, Level};
//!
//! let tile = AreaBreakdown::piton(Level::Tile);
//! let core_pct = tile.percent("Core").unwrap();
//! assert!((core_pct - 47.0).abs() < 0.01); // Figure 8: core is 47% of a tile
//! assert!((tile.check_sum_error_percent()).abs() < 0.05);
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

/// Hierarchy level of an area breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Level {
    /// Whole chip (total 35.97552 mm²).
    Chip,
    /// One tile (total 1.17459 mm²).
    Tile,
    /// One core (total 0.55205 mm²).
    Core,
}

impl Level {
    /// Floorplanned total area of this level in mm² (Figure 8 captions).
    #[must_use]
    pub fn total_area_mm2(self) -> f64 {
        match self {
            Level::Chip => 35.975_52,
            Level::Tile => 1.174_59,
            Level::Core => 0.552_05,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Level::Chip => "chip",
            Level::Tile => "tile",
            Level::Core => "core",
        };
        f.write_str(name)
    }
}

/// One named block with its summed cell area.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaBlock {
    /// Block name as labelled in Figure 8.
    pub name: String,
    /// Summed standard-cell + SRAM-macro area in mm².
    pub area_mm2: f64,
}

/// An area breakdown at one hierarchy level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    level: Level,
    blocks: Vec<AreaBlock>,
}

/// Figure 8 block fractions, stored as (name, fraction-of-total).
///
/// The database keeps absolute areas; these constants are the published
/// percentages from which the absolute areas were back-computed, recorded
/// here so the provenance is explicit.
const CHIP_BLOCKS: &[(&str, f64)] = &[
    ("Tile0", 3.27),
    ("Tile 1-24", 78.37),
    ("Chip Bridge", 0.12),
    ("Clock Circuitry", 0.26),
    ("I/O Cells", 3.75),
    ("ORAM", 2.73),
    ("Timing Opt Buffers", 0.07),
    ("Filler", 9.32),
    ("Unutilized", 2.12),
];

const TILE_BLOCKS: &[(&str, f64)] = &[
    ("L2 Cache", 22.16),
    ("L1.5 Cache", 7.62),
    ("NoC1 Router", 0.98),
    ("NoC2 Router", 0.95),
    ("NoC3 Router", 0.95),
    ("FPU", 2.64),
    ("MITTS", 0.17),
    ("JTAG", 0.10),
    ("Config Regs", 0.05),
    ("Core", 47.00),
    ("Clock Tree", 0.01),
    ("Timing Opt Buffers", 0.34),
    ("Filler", 16.32),
    ("Unutilized", 0.73),
];

const CORE_BLOCKS: &[(&str, f64)] = &[
    ("Fetch", 17.52),
    ("Load/Store", 22.33),
    ("Execute", 2.38),
    ("Integer RF", 16.81),
    ("Trap Logic", 6.42),
    ("Multiply", 1.53),
    ("FP Front-End", 1.85),
    ("Config Regs", 0.11),
    ("CCX Buffers", 0.06),
    ("Clock Tree", 0.13),
    ("Timing Opt Buffers", 3.83),
    ("Filler", 26.13),
    ("Unutilized", 0.90),
];

impl AreaBreakdown {
    /// The Piton breakdown at the requested level (Figure 8).
    #[must_use]
    pub fn piton(level: Level) -> Self {
        let table = match level {
            Level::Chip => CHIP_BLOCKS,
            Level::Tile => TILE_BLOCKS,
            Level::Core => CORE_BLOCKS,
        };
        let total = level.total_area_mm2();
        let blocks = table
            .iter()
            .map(|&(name, pct)| AreaBlock {
                name: name.to_owned(),
                area_mm2: total * pct / 100.0,
            })
            .collect();
        Self { level, blocks }
    }

    /// The hierarchy level.
    #[must_use]
    pub fn level(&self) -> Level {
        self.level
    }

    /// The blocks, in Figure 8 order.
    #[must_use]
    pub fn blocks(&self) -> &[AreaBlock] {
        &self.blocks
    }

    /// Floorplanned total area in mm².
    #[must_use]
    pub fn total_area_mm2(&self) -> f64 {
        self.level.total_area_mm2()
    }

    /// Absolute area of a named block, if present.
    #[must_use]
    pub fn area_mm2(&self, name: &str) -> Option<f64> {
        self.blocks
            .iter()
            .find(|b| b.name == name)
            .map(|b| b.area_mm2)
    }

    /// Percentage of the level total occupied by a named block — the
    /// numbers printed in Figure 8.
    #[must_use]
    pub fn percent(&self, name: &str) -> Option<f64> {
        self.area_mm2(name)
            .map(|a| 100.0 * a / self.total_area_mm2())
    }

    /// Difference between 100% and the sum of block percentages, in
    /// percentage points. Should be ≈ 0; the published figure rounds to
    /// two decimals so a few hundredths of slack remain.
    #[must_use]
    pub fn check_sum_error_percent(&self) -> f64 {
        let sum: f64 = self.blocks.iter().map(|b| b.area_mm2).sum();
        100.0 * (1.0 - sum / self.total_area_mm2())
    }

    /// Combined NoC router percentage of this level (the paper's "NoC
    /// routers are small" observation); `None` if the level has no
    /// routers.
    #[must_use]
    pub fn noc_router_percent(&self) -> Option<f64> {
        let total: f64 = self
            .blocks
            .iter()
            .filter(|b| b.name.starts_with("NoC"))
            .map(|b| b.area_mm2)
            .sum();
        if total == 0.0 {
            None
        } else {
            Some(100.0 * total / self.total_area_mm2())
        }
    }
}

/// Convenience: all three Figure 8 panels.
#[must_use]
pub fn figure_8() -> [AreaBreakdown; 3] {
    [
        AreaBreakdown::piton(Level::Chip),
        AreaBreakdown::piton(Level::Tile),
        AreaBreakdown::piton(Level::Core),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_figure_captions() {
        assert!((Level::Chip.total_area_mm2() - 35.975_52).abs() < 1e-9);
        assert!((Level::Tile.total_area_mm2() - 1.174_59).abs() < 1e-9);
        assert!((Level::Core.total_area_mm2() - 0.552_05).abs() < 1e-9);
    }

    #[test]
    fn percentages_round_trip() {
        let chip = AreaBreakdown::piton(Level::Chip);
        assert!((chip.percent("Tile 1-24").unwrap() - 78.37).abs() < 1e-9);
        let tile = AreaBreakdown::piton(Level::Tile);
        assert!((tile.percent("L2 Cache").unwrap() - 22.16).abs() < 1e-9);
        let core = AreaBreakdown::piton(Level::Core);
        assert!((core.percent("Load/Store").unwrap() - 22.33).abs() < 1e-9);
    }

    #[test]
    fn sums_are_complete() {
        for level in [Level::Chip, Level::Tile, Level::Core] {
            let b = AreaBreakdown::piton(level);
            assert!(
                b.check_sum_error_percent().abs() < 0.05,
                "{level} sum error {}",
                b.check_sum_error_percent()
            );
        }
    }

    #[test]
    fn noc_routers_are_small() {
        // The context for §IV-G's "NoC energy is low" insight: all three
        // routers together are < 3% of a tile.
        let tile = AreaBreakdown::piton(Level::Tile);
        let pct = tile.noc_router_percent().unwrap();
        assert!((pct - 2.88).abs() < 0.01);
        assert!(AreaBreakdown::piton(Level::Core)
            .noc_router_percent()
            .is_none());
    }

    #[test]
    fn tile_areas_consistent_with_chip() {
        // 24 identical tiles occupy 78.37% of the chip; one tile is
        // therefore ~1.1746 mm², matching the tile-level total.
        let chip = AreaBreakdown::piton(Level::Chip);
        let per_tile = chip.area_mm2("Tile 1-24").unwrap() / 24.0;
        let tile_total = Level::Tile.total_area_mm2();
        assert!(
            (per_tile - tile_total).abs() / tile_total < 0.01,
            "per-tile {per_tile} vs floorplan {tile_total}"
        );
    }

    #[test]
    fn unknown_block_is_none() {
        assert!(AreaBreakdown::piton(Level::Chip).area_mm2("GPU").is_none());
    }

    #[test]
    fn figure_8_has_three_panels() {
        let panels = figure_8();
        assert_eq!(panels[0].level(), Level::Chip);
        assert_eq!(panels[1].level(), Level::Tile);
        assert_eq!(panels[2].level(), Level::Core);
    }
}
