//! The simulated SPARC-V9-like instruction set.
//!
//! Piton's core is a modified OpenSPARC T1: single-issue, six-stage,
//! in-order, with two-way fine-grained multithreading. The EPI study of
//! §IV-E characterizes exactly the instruction classes modelled here, with
//! the latencies of Table VI. We keep the set small but *functional* —
//! instructions execute over real 64-bit values, because the paper's key
//! finding is that **operand values have a large impact on EPI** and we
//! want that effect to emerge from actual datapath bit activity.
//!
//! # Examples
//!
//! ```
//! use piton_arch::isa::{Instruction, Opcode, Reg};
//!
//! let add = Instruction::alu(Opcode::Add, Reg::new(1), Reg::new(2), Reg::new(3));
//! assert_eq!(add.opcode.base_latency(), 1);
//! assert_eq!(Opcode::Sdivx.base_latency(), 72); // Table VI
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

/// Architectural integer or floating-point register index.
///
/// Register 0 of the integer file is hardwired to zero (`%g0`), as in
/// SPARC.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural registers in each file.
    pub const COUNT: usize = 32;

    /// The hardwired-zero integer register `%g0`.
    pub const G0: Reg = Reg(0);

    /// Creates a register index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        assert!(index < Self::COUNT as u8, "register index out of range");
        Self(index)
    }

    /// Returns the raw index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%r{}", self.0)
    }
}

/// Broad instruction class, matching the grouping of Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrClass {
    /// 64-bit integer ALU operations.
    Integer,
    /// Double-precision floating point.
    FpDouble,
    /// Single-precision floating point.
    FpSingle,
    /// Loads, stores, atomics.
    Memory,
    /// Branches.
    Control,
    /// `nop` and other pipeline-only instructions.
    Misc,
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            InstrClass::Integer => "Integer",
            InstrClass::FpDouble => "FP DP",
            InstrClass::FpSingle => "FP SP",
            InstrClass::Memory => "Mem.",
            InstrClass::Control => "Control",
            InstrClass::Misc => "Misc",
        };
        f.write_str(name)
    }
}

/// Operation code of the simulated instruction set.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opcode {
    /// No operation.
    #[default]
    Nop,
    /// Bitwise AND (64-bit).
    And,
    /// Integer add (64-bit).
    Add,
    /// Integer subtract (64-bit); used by loop counters.
    Sub,
    /// Integer multiply (64-bit), 11-cycle latency.
    Mulx,
    /// Integer divide (64-bit), 72-cycle latency.
    Sdivx,
    /// FP add, double precision.
    Faddd,
    /// FP multiply, double precision.
    Fmuld,
    /// FP divide, double precision.
    Fdivd,
    /// FP add, single precision.
    Fadds,
    /// FP multiply, single precision.
    Fmuls,
    /// FP divide, single precision.
    Fdivs,
    /// Load extended (64-bit).
    Ldx,
    /// Store extended (64-bit); goes through the 8-entry store buffer.
    Stx,
    /// Compare-and-swap extended (64-bit atomic); used for locks.
    Casx,
    /// Branch if rs1 == rs2.
    Beq,
    /// Branch if rs1 != rs2.
    Bne,
    /// Move immediate into a register (models SPARC `sethi`/`or` pairs).
    Movi,
    /// Memory barrier; drains the store buffer.
    Membar,
    /// Stop the executing thread (test harness control, not SPARC).
    Halt,
}

impl Opcode {
    /// Number of distinct opcodes.
    pub const COUNT: usize = 20;

    /// Stable dense index of this opcode, for per-opcode counter arrays.
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// All opcodes, in a stable presentation order.
    pub const ALL: [Opcode; 20] = [
        Opcode::Nop,
        Opcode::And,
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mulx,
        Opcode::Sdivx,
        Opcode::Faddd,
        Opcode::Fmuld,
        Opcode::Fdivd,
        Opcode::Fadds,
        Opcode::Fmuls,
        Opcode::Fdivs,
        Opcode::Ldx,
        Opcode::Stx,
        Opcode::Casx,
        Opcode::Beq,
        Opcode::Bne,
        Opcode::Movi,
        Opcode::Membar,
        Opcode::Halt,
    ];

    /// The instruction class used for grouping results in Figure 11.
    #[must_use]
    pub fn class(self) -> InstrClass {
        match self {
            Opcode::Nop | Opcode::Membar | Opcode::Halt => InstrClass::Misc,
            Opcode::And
            | Opcode::Add
            | Opcode::Sub
            | Opcode::Mulx
            | Opcode::Sdivx
            | Opcode::Movi => InstrClass::Integer,
            Opcode::Faddd | Opcode::Fmuld | Opcode::Fdivd => InstrClass::FpDouble,
            Opcode::Fadds | Opcode::Fmuls | Opcode::Fdivs => InstrClass::FpSingle,
            Opcode::Ldx | Opcode::Stx | Opcode::Casx => InstrClass::Memory,
            Opcode::Beq | Opcode::Bne => InstrClass::Control,
        }
    }

    /// Best-case occupancy latency in core clock cycles (Table VI).
    ///
    /// For memory instructions this is the L1-hit latency; misses add the
    /// memory-system latency on top. For branches it is the
    /// taken/not-taken pipeline latency of 3 cycles.
    #[must_use]
    pub fn base_latency(self) -> u64 {
        match self {
            Opcode::Nop | Opcode::And | Opcode::Add | Opcode::Sub | Opcode::Movi => 1,
            Opcode::Mulx => 11,
            Opcode::Sdivx => 72,
            Opcode::Faddd | Opcode::Fadds => 22,
            Opcode::Fmuld | Opcode::Fmuls => 25,
            Opcode::Fdivd => 79,
            Opcode::Fdivs => 50,
            Opcode::Ldx => 3,
            Opcode::Stx => 10,
            Opcode::Casx => 24,
            Opcode::Beq | Opcode::Bne => 3,
            Opcode::Membar => 4,
            Opcode::Halt => 1,
        }
    }

    /// Whether the instruction reads data operands whose values influence
    /// datapath switching energy (the min/random/max study of Figure 11).
    #[must_use]
    pub fn has_value_operands(self) -> bool {
        !matches!(
            self,
            Opcode::Nop | Opcode::Membar | Opcode::Halt | Opcode::Movi
        )
    }

    /// Whether this opcode accesses the data memory system.
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, Opcode::Ldx | Opcode::Stx | Opcode::Casx)
    }

    /// Whether this opcode is a conditional branch.
    #[must_use]
    pub fn is_branch(self) -> bool {
        matches!(self, Opcode::Beq | Opcode::Bne)
    }

    /// Whether this opcode uses the floating-point unit.
    #[must_use]
    pub fn is_fp(self) -> bool {
        matches!(self.class(), InstrClass::FpDouble | InstrClass::FpSingle)
    }

    /// The mnemonic as printed in the paper's figures.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Nop => "nop",
            Opcode::And => "and",
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mulx => "mulx",
            Opcode::Sdivx => "sdivx",
            Opcode::Faddd => "faddd",
            Opcode::Fmuld => "fmuld",
            Opcode::Fdivd => "fdivd",
            Opcode::Fadds => "fadds",
            Opcode::Fmuls => "fmuls",
            Opcode::Fdivs => "fdivs",
            Opcode::Ldx => "ldx",
            Opcode::Stx => "stx",
            Opcode::Casx => "casx",
            Opcode::Beq => "beq",
            Opcode::Bne => "bne",
            Opcode::Movi => "movi",
            Opcode::Membar => "membar",
            Opcode::Halt => "halt",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One decoded instruction.
///
/// The encoding is deliberately uniform (a compound struct rather than an
/// enum of shapes) because the simulator's decode stage treats all
/// instructions identically; unused fields are zero.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    /// Operation.
    pub opcode: Opcode,
    /// Destination register.
    pub rd: Reg,
    /// First source register.
    pub rs1: Reg,
    /// Second source register.
    pub rs2: Reg,
    /// Immediate: address offset for memory ops, value for `movi`,
    /// branch target (absolute instruction index) for branches.
    pub imm: i64,
}

impl Instruction {
    /// Architectural size of one instruction in bytes (SPARC fixed 4-byte
    /// encoding); used for I-cache footprint modelling.
    pub const SIZE_BYTES: u64 = 4;

    /// A `nop`.
    #[must_use]
    pub fn nop() -> Self {
        Self::default()
    }

    /// A three-register ALU or FP operation `rd = rs1 op rs2`.
    #[must_use]
    pub fn alu(opcode: Opcode, rd: Reg, rs1: Reg, rs2: Reg) -> Self {
        Self {
            opcode,
            rd,
            rs1,
            rs2,
            imm: 0,
        }
    }

    /// `movi rd, imm` — load a 64-bit immediate.
    #[must_use]
    pub fn movi(rd: Reg, value: i64) -> Self {
        Self {
            opcode: Opcode::Movi,
            rd,
            imm: value,
            ..Self::default()
        }
    }

    /// `ldx rd, [rs1 + offset]`.
    #[must_use]
    pub fn ldx(rd: Reg, base: Reg, offset: i64) -> Self {
        Self {
            opcode: Opcode::Ldx,
            rd,
            rs1: base,
            imm: offset,
            ..Self::default()
        }
    }

    /// `stx rs2, [rs1 + offset]`.
    #[must_use]
    pub fn stx(src: Reg, base: Reg, offset: i64) -> Self {
        Self {
            opcode: Opcode::Stx,
            rs1: base,
            rs2: src,
            imm: offset,
            ..Self::default()
        }
    }

    /// `casx [rs1], rs2, rd` — if `mem[rs1] == rs2` then swap with `rd`;
    /// `rd` receives the old memory value either way.
    #[must_use]
    pub fn casx(rd: Reg, addr: Reg, expected: Reg) -> Self {
        Self {
            opcode: Opcode::Casx,
            rd,
            rs1: addr,
            rs2: expected,
            ..Self::default()
        }
    }

    /// A conditional branch comparing `rs1` and `rs2`, targeting the
    /// absolute instruction index `target`.
    #[must_use]
    pub fn branch(opcode: Opcode, rs1: Reg, rs2: Reg, target: usize) -> Self {
        assert!(opcode.is_branch(), "branch() requires a branch opcode");
        Self {
            opcode,
            rs1,
            rs2,
            imm: target as i64,
            ..Self::default()
        }
    }

    /// Memory barrier: drains the store buffer.
    #[must_use]
    pub fn membar() -> Self {
        Self {
            opcode: Opcode::Membar,
            ..Self::default()
        }
    }

    /// Stops the executing thread.
    #[must_use]
    pub fn halt() -> Self {
        Self {
            opcode: Opcode::Halt,
            ..Self::default()
        }
    }

    /// Branch target as an instruction index.
    ///
    /// # Panics
    ///
    /// Panics if the instruction is not a branch.
    #[must_use]
    pub fn branch_target(&self) -> usize {
        assert!(self.opcode.is_branch(), "not a branch: {}", self.opcode);
        self.imm as usize
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.opcode {
            Opcode::Nop | Opcode::Membar | Opcode::Halt => write!(f, "{}", self.opcode),
            Opcode::Movi => write!(f, "movi {}, {:#x}", self.rd, self.imm),
            Opcode::Ldx => write!(f, "ldx {}, [{} + {:#x}]", self.rd, self.rs1, self.imm),
            Opcode::Stx => write!(f, "stx {}, [{} + {:#x}]", self.rs2, self.rs1, self.imm),
            Opcode::Casx => write!(f, "casx [{}], {}, {}", self.rs1, self.rs2, self.rd),
            Opcode::Beq | Opcode::Bne => {
                write!(
                    f,
                    "{} {}, {}, @{}",
                    self.opcode, self.rs1, self.rs2, self.imm
                )
            }
            _ => write!(f, "{} {}, {}, {}", self.opcode, self.rd, self.rs1, self.rs2),
        }
    }
}

/// Operand value pattern used in the EPI study (Figure 11).
///
/// "Minimum" drives all datapath bits to zero, "maximum" to the all-ones
/// 64-bit pattern, and "random" to uniformly random values — the three
/// series the paper reports for every instruction with input operands.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperandPattern {
    /// All operand bits zero.
    Minimum,
    /// Uniformly random operand bits (the default measurement condition).
    #[default]
    Random,
    /// All operand bits one.
    Maximum,
}

impl OperandPattern {
    /// The three patterns in the paper's presentation order.
    pub const ALL: [OperandPattern; 3] = [
        OperandPattern::Minimum,
        OperandPattern::Random,
        OperandPattern::Maximum,
    ];
}

impl fmt::Display for OperandPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OperandPattern::Minimum => "minimum",
            OperandPattern::Random => "random",
            OperandPattern::Maximum => "maximum",
        };
        f.write_str(name)
    }
}

/// Table VI of the paper: the latencies used in the EPI calculations.
///
/// Returned as `(label, latency)` rows exactly as printed.
#[must_use]
pub fn table_vi_latencies() -> Vec<(&'static str, u64)> {
    vec![
        ("nop", Opcode::Nop.base_latency()),
        ("and", Opcode::And.base_latency()),
        ("add", Opcode::Add.base_latency()),
        ("mulx", Opcode::Mulx.base_latency()),
        ("sdivx", Opcode::Sdivx.base_latency()),
        ("faddd", Opcode::Faddd.base_latency()),
        ("fmuld", Opcode::Fmuld.base_latency()),
        ("fdivd", Opcode::Fdivd.base_latency()),
        ("fadds", Opcode::Fadds.base_latency()),
        ("fmuls", Opcode::Fmuls.base_latency()),
        ("fdivs", Opcode::Fdivs.base_latency()),
        ("ldx (L1/L1.5 hit)", Opcode::Ldx.base_latency()),
        ("stx stb full", Opcode::Stx.base_latency()),
        ("stx stb space", Opcode::Stx.base_latency()),
        ("beq taken", Opcode::Beq.base_latency()),
        ("bne nottaken", Opcode::Bne.base_latency()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_vi_matches_paper() {
        assert_eq!(Opcode::Nop.base_latency(), 1);
        assert_eq!(Opcode::And.base_latency(), 1);
        assert_eq!(Opcode::Add.base_latency(), 1);
        assert_eq!(Opcode::Mulx.base_latency(), 11);
        assert_eq!(Opcode::Sdivx.base_latency(), 72);
        assert_eq!(Opcode::Faddd.base_latency(), 22);
        assert_eq!(Opcode::Fmuld.base_latency(), 25);
        assert_eq!(Opcode::Fdivd.base_latency(), 79);
        assert_eq!(Opcode::Fadds.base_latency(), 22);
        assert_eq!(Opcode::Fmuls.base_latency(), 25);
        assert_eq!(Opcode::Fdivs.base_latency(), 50);
        assert_eq!(Opcode::Ldx.base_latency(), 3);
        assert_eq!(Opcode::Stx.base_latency(), 10);
        assert_eq!(Opcode::Beq.base_latency(), 3);
        assert_eq!(Opcode::Bne.base_latency(), 3);
    }

    #[test]
    fn classes_match_figure_11_grouping() {
        assert_eq!(Opcode::Add.class(), InstrClass::Integer);
        assert_eq!(Opcode::Faddd.class(), InstrClass::FpDouble);
        assert_eq!(Opcode::Fmuls.class(), InstrClass::FpSingle);
        assert_eq!(Opcode::Ldx.class(), InstrClass::Memory);
        assert_eq!(Opcode::Beq.class(), InstrClass::Control);
        assert_eq!(Opcode::Nop.class(), InstrClass::Misc);
    }

    #[test]
    fn operand_sensitivity_flags() {
        assert!(!Opcode::Nop.has_value_operands());
        assert!(Opcode::Add.has_value_operands());
        assert!(Opcode::Ldx.has_value_operands());
        assert!(!Opcode::Movi.has_value_operands());
    }

    #[test]
    fn reg_zero_is_g0() {
        assert_eq!(Reg::G0.index(), 0);
        assert_eq!(Reg::new(5).index(), 5);
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    fn builders_fill_fields() {
        let i = Instruction::ldx(Reg::new(1), Reg::new(2), 0x40);
        assert_eq!(i.opcode, Opcode::Ldx);
        assert_eq!(i.rd, Reg::new(1));
        assert_eq!(i.rs1, Reg::new(2));
        assert_eq!(i.imm, 0x40);

        let b = Instruction::branch(Opcode::Bne, Reg::new(1), Reg::G0, 7);
        assert_eq!(b.branch_target(), 7);
    }

    #[test]
    #[should_panic(expected = "branch opcode")]
    fn non_branch_opcode_in_branch_builder_panics() {
        let _ = Instruction::branch(Opcode::Add, Reg::G0, Reg::G0, 0);
    }

    #[test]
    fn display_is_readable() {
        let i = Instruction::alu(Opcode::Add, Reg::new(3), Reg::new(1), Reg::new(2));
        assert_eq!(i.to_string(), "add %r3, %r1, %r2");
        assert_eq!(Instruction::nop().to_string(), "nop");
        assert_eq!(
            Instruction::stx(Reg::new(4), Reg::new(5), 8).to_string(),
            "stx %r4, [%r5 + 0x8]"
        );
    }

    #[test]
    fn table_vi_has_all_sixteen_rows() {
        assert_eq!(table_vi_latencies().len(), 16);
    }
}
