//! The 5×5 2D-mesh tile topology and dimension-ordered routing geometry.
//!
//! Piton arranges 25 tiles in a 5×5 mesh interconnected by three physical
//! 64-bit networks-on-chip. Routing is dimension-ordered (X first, then
//! Y), wormhole, with a one-cycle-per-hop latency and an additional cycle
//! for turns (§II of the paper). The physical tile pitch — 1.14452 mm in X
//! and 1.053 mm in Y — sets the wire length each hop drives and therefore
//! the per-hop link energy studied in §IV-G.
//!
//! # Examples
//!
//! ```
//! use piton_arch::topology::{Mesh, TileId};
//!
//! let mesh = Mesh::piton();
//! // The paper's NoC study: tile0 -> tile1 is one hop, tile0 -> tile9 is
//! // five hops (4 in X would overflow the row; 4 east + 1 south).
//! assert_eq!(mesh.route(TileId::new(0), TileId::new(1)).hops, 1);
//! assert_eq!(mesh.route(TileId::new(0), TileId::new(9)).hops, 5);
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a tile on the chip, in row-major order.
///
/// Tile 0 is the north-west corner and also hosts the chip-bridge
/// connection to the off-chip chipset.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TileId(usize);

impl TileId {
    /// Creates a tile identifier.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        Self(index)
    }

    /// Returns the raw row-major index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tile{}", self.0)
    }
}

impl From<usize> for TileId {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

/// An (x, y) mesh coordinate; x grows eastwards, y grows southwards.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Coord {
    /// Column (0 = west edge).
    pub x: usize,
    /// Row (0 = north edge).
    pub y: usize,
}

impl Coord {
    /// Creates a coordinate.
    #[must_use]
    pub const fn new(x: usize, y: usize) -> Self {
        Self { x, y }
    }

    /// Manhattan distance to another coordinate.
    #[must_use]
    pub fn manhattan(self, other: Coord) -> usize {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// Geometry of one dimension-ordered route through the mesh.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// Number of router-to-router hops (Manhattan distance).
    pub hops: usize,
    /// Number of X hops before the turn.
    pub x_hops: usize,
    /// Number of Y hops after the turn.
    pub y_hops: usize,
    /// Whether the route turns from the X to the Y dimension.
    pub turns: bool,
}

impl Route {
    /// Router latency of this route in cycles: one cycle per hop plus one
    /// extra cycle if the route turns (§II).
    #[must_use]
    pub fn latency_cycles(self) -> u64 {
        self.hops as u64 + u64::from(self.turns)
    }

    /// Physical wire length of the route in millimetres given the tile
    /// pitch.
    #[must_use]
    pub fn wire_length_mm(self, pitch: TilePitch) -> f64 {
        self.x_hops as f64 * pitch.x_mm + self.y_hops as f64 * pitch.y_mm
    }
}

/// Physical center-to-center distance between adjacent tiles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TilePitch {
    /// X-direction pitch in millimetres.
    pub x_mm: f64,
    /// Y-direction pitch in millimetres.
    pub y_mm: f64,
}

impl TilePitch {
    /// The measured Piton tile pitch from §IV-G: 1.14452 mm (X) by
    /// 1.053 mm (Y).
    pub const PITON: Self = Self {
        x_mm: 1.144_52,
        y_mm: 1.053,
    };
}

impl Default for TilePitch {
    fn default() -> Self {
        Self::PITON
    }
}

/// A rectangular 2D mesh of tiles with dimension-ordered (XY) routing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mesh {
    width: usize,
    height: usize,
    pitch: TilePitch,
}

impl Mesh {
    /// Creates a mesh of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        Self {
            width,
            height,
            pitch: TilePitch::PITON,
        }
    }

    /// The 5×5 Piton mesh.
    #[must_use]
    pub fn piton() -> Self {
        Self::new(5, 5)
    }

    /// Mesh width (columns).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mesh height (rows).
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of tiles.
    #[must_use]
    pub fn tile_count(&self) -> usize {
        self.width * self.height
    }

    /// Physical tile pitch.
    #[must_use]
    pub fn pitch(&self) -> TilePitch {
        self.pitch
    }

    /// Maximum hop count between any two tiles (the mesh diameter); 8 for
    /// the 5×5 Piton mesh, matching the paper's NoC sweep limit.
    #[must_use]
    pub fn diameter(&self) -> usize {
        (self.width - 1) + (self.height - 1)
    }

    /// Converts a tile identifier to its mesh coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the tile index is out of range.
    #[must_use]
    pub fn coord(&self, tile: TileId) -> Coord {
        assert!(
            tile.index() < self.tile_count(),
            "tile index {} out of range for {}x{} mesh",
            tile.index(),
            self.width,
            self.height
        );
        Coord::new(tile.index() % self.width, tile.index() / self.width)
    }

    /// Converts a mesh coordinate to the tile identifier.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the mesh.
    #[must_use]
    pub fn tile_at(&self, coord: Coord) -> TileId {
        assert!(
            coord.x < self.width && coord.y < self.height,
            "coordinate {coord} outside {}x{} mesh",
            self.width,
            self.height
        );
        TileId::new(coord.y * self.width + coord.x)
    }

    /// Computes the dimension-ordered route between two tiles.
    #[must_use]
    pub fn route(&self, from: TileId, to: TileId) -> Route {
        let a = self.coord(from);
        let b = self.coord(to);
        let x_hops = a.x.abs_diff(b.x);
        let y_hops = a.y.abs_diff(b.y);
        Route {
            hops: x_hops + y_hops,
            x_hops,
            y_hops,
            turns: x_hops > 0 && y_hops > 0,
        }
    }

    /// Returns the tile one dimension-ordered step along the route from
    /// `from` towards `to`, or `None` when already there.
    #[must_use]
    pub fn next_hop(&self, from: TileId, to: TileId) -> Option<TileId> {
        let a = self.coord(from);
        let b = self.coord(to);
        if a == b {
            return None;
        }
        // Dimension-ordered: resolve X first, then Y.
        let next = if a.x != b.x {
            Coord::new(if a.x < b.x { a.x + 1 } else { a.x - 1 }, a.y)
        } else {
            Coord::new(a.x, if a.y < b.y { a.y + 1 } else { a.y - 1 })
        };
        Some(self.tile_at(next))
    }

    /// Iterates over all tile identifiers in row-major order.
    pub fn tiles(&self) -> impl Iterator<Item = TileId> + '_ {
        (0..self.tile_count()).map(TileId::new)
    }

    /// Finds a tile exactly `hops` dimension-ordered hops from `from`,
    /// preferring to spend hops in the X dimension first (mirroring the
    /// paper's hop-count targets: tile1 = 1 hop, tile2 = 2 hops, tile9 = 5
    /// hops from tile0).
    ///
    /// Returns `None` when no tile is that far away.
    #[must_use]
    pub fn tile_at_distance(&self, from: TileId, hops: usize) -> Option<TileId> {
        let origin = self.coord(from);
        for y_extra in 0..self.height {
            let x_part = hops.checked_sub(y_extra)?;
            let x = origin.x + x_part;
            let y = origin.y + y_extra;
            if x < self.width && y < self.height {
                return Some(self.tile_at(Coord::new(x, y)));
            }
        }
        // Fall back to any tile at the right Manhattan distance.
        self.tiles()
            .find(|&t| self.route(from, t).hops == hops && t != from)
    }
}

impl Default for Mesh {
    fn default() -> Self {
        Self::piton()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_coords() {
        let mesh = Mesh::piton();
        assert_eq!(mesh.coord(TileId::new(0)), Coord::new(0, 0));
        assert_eq!(mesh.coord(TileId::new(4)), Coord::new(4, 0));
        assert_eq!(mesh.coord(TileId::new(5)), Coord::new(0, 1));
        assert_eq!(mesh.coord(TileId::new(24)), Coord::new(4, 4));
        assert_eq!(mesh.tile_at(Coord::new(4, 4)), TileId::new(24));
    }

    #[test]
    fn paper_hop_examples() {
        // §IV-G: "sending to tile1 represents one hop, tile2 represents
        // two hops, and tile9 represents five hops".
        let mesh = Mesh::piton();
        let from = TileId::new(0);
        assert_eq!(mesh.route(from, TileId::new(1)).hops, 1);
        assert_eq!(mesh.route(from, TileId::new(2)).hops, 2);
        assert_eq!(mesh.route(from, TileId::new(9)).hops, 5);
        assert_eq!(mesh.route(from, TileId::new(24)).hops, 8);
        assert_eq!(mesh.diameter(), 8);
    }

    #[test]
    fn turn_costs_extra_cycle() {
        let mesh = Mesh::piton();
        let straight = mesh.route(TileId::new(0), TileId::new(4));
        assert!(!straight.turns);
        assert_eq!(straight.latency_cycles(), 4);

        let turning = mesh.route(TileId::new(0), TileId::new(9));
        assert!(turning.turns);
        assert_eq!(turning.latency_cycles(), 6); // 5 hops + 1 turn
    }

    #[test]
    fn next_hop_walks_x_then_y() {
        let mesh = Mesh::piton();
        let mut at = TileId::new(0);
        let dest = TileId::new(12); // (2, 2)
        let mut path = Vec::new();
        while let Some(next) = mesh.next_hop(at, dest) {
            path.push(next);
            at = next;
        }
        assert_eq!(
            path,
            vec![
                TileId::new(1),
                TileId::new(2),
                TileId::new(7),
                TileId::new(12)
            ]
        );
    }

    #[test]
    fn tile_at_distance_covers_all_hops() {
        let mesh = Mesh::piton();
        for hops in 0..=8 {
            let t = mesh
                .tile_at_distance(TileId::new(0), hops)
                .expect("5x5 mesh has tiles at all distances 0..=8");
            assert_eq!(mesh.route(TileId::new(0), t).hops, hops);
        }
        assert_eq!(mesh.tile_at_distance(TileId::new(0), 9), None);
    }

    #[test]
    fn wire_length_uses_pitch() {
        let mesh = Mesh::piton();
        let route = mesh.route(TileId::new(0), TileId::new(9)); // 4 X + 1 Y
        let len = route.wire_length_mm(mesh.pitch());
        assert!((len - (4.0 * 1.144_52 + 1.053)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_tile_panics() {
        let _ = Mesh::piton().coord(TileId::new(25));
    }

    #[test]
    fn display_formats() {
        assert_eq!(TileId::new(7).to_string(), "tile7");
        assert_eq!(Coord::new(1, 2).to_string(), "(1, 2)");
    }
}
