//! Architectural and experimental configuration.
//!
//! [`ChipConfig`] mirrors Table I of the paper (the Piton parameter
//! summary), [`SystemFrequencies`] mirrors Table II (experimental system
//! interface frequencies), and [`MeasurementDefaults`] mirrors Table III
//! (the default supply voltages and core clock used for every study
//! unless stated otherwise).
//!
//! # Examples
//!
//! ```
//! use piton_arch::config::{ChipConfig, MeasurementDefaults};
//!
//! let cfg = ChipConfig::default();
//! assert_eq!(cfg.l2.size_bytes * cfg.tile_count() as u64, 1_638_400); // 1.6 MB aggregate
//!
//! let defaults = MeasurementDefaults::default();
//! assert!((defaults.core_clock.as_mhz() - 500.05).abs() < 1e-9);
//! ```

use serde::{Deserialize, Serialize};

use crate::topology::Mesh;
use crate::units::{Hertz, Volts};

/// Geometry of one cache in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheConfig {
    /// Creates a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics unless size, associativity and line size are non-zero,
    /// powers of two where required, and consistent (`size` divisible by
    /// `associativity * line`).
    #[must_use]
    pub fn new(size_bytes: u64, associativity: u64, line_bytes: u64) -> Self {
        assert!(size_bytes > 0 && associativity > 0 && line_bytes > 0);
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert_eq!(
            size_bytes % (associativity * line_bytes),
            0,
            "cache size must divide evenly into sets"
        );
        let sets = size_bytes / (associativity * line_bytes);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Self {
            size_bytes,
            associativity,
            line_bytes,
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.associativity * self.line_bytes)
    }

    /// Number of lines.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }
}

/// Which address bits select the L2 slice a line maps to.
///
/// §IV-F: "modifying the line to L2 slice mapping, which is configurable
/// to the low, middle, or high order address bits through software". The
/// memory-system energy experiment uses this to steer loads at a local or
/// a remote L2 slice.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SliceMapping {
    /// Address bits just above the line offset (the default).
    #[default]
    Low,
    /// Middle-order address bits.
    Mid,
    /// High-order address bits.
    High,
}

/// The complete architectural parameter set of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipConfig {
    /// Process name (informational).
    pub process: String,
    /// Die edge in millimetres (the die is square: 6 mm × 6 mm).
    pub die_edge_mm: f64,
    /// Transistor count (informational, "> 460 million").
    pub transistor_count: u64,
    /// Nominal core supply voltage (VDD).
    pub nominal_vdd: Volts,
    /// Nominal SRAM supply voltage (VCS).
    pub nominal_vcs: Volts,
    /// Nominal I/O supply voltage (VIO).
    pub nominal_vio: Volts,
    /// Off-chip interface width in bits, each direction.
    pub off_chip_width_bits: u32,
    /// Tile mesh.
    mesh: Mesh,
    /// Number of physical NoCs.
    pub noc_count: u32,
    /// NoC flit width in bits, each direction.
    pub noc_width_bits: u32,
    /// Hardware threads per core.
    pub threads_per_core: u32,
    /// Core pipeline depth in stages.
    pub pipeline_depth: u32,
    /// Store buffer entries per core.
    pub store_buffer_entries: u32,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache (write-through).
    pub l1d: CacheConfig,
    /// L1.5 data cache (write-back, private).
    pub l15: CacheConfig,
    /// One L2 slice (per tile; distributed shared).
    pub l2: CacheConfig,
    /// Line-to-L2-slice mapping mode.
    pub slice_mapping: SliceMapping,
}

impl ChipConfig {
    /// The Piton configuration of Table I.
    #[must_use]
    pub fn piton() -> Self {
        Self {
            process: "IBM 32nm SOI".to_owned(),
            die_edge_mm: 6.0,
            transistor_count: 460_000_000,
            nominal_vdd: Volts(1.0),
            nominal_vcs: Volts(1.05),
            nominal_vio: Volts(1.8),
            off_chip_width_bits: 32,
            mesh: Mesh::piton(),
            noc_count: 3,
            noc_width_bits: 64,
            threads_per_core: 2,
            pipeline_depth: 6,
            store_buffer_entries: 8,
            l1i: CacheConfig::new(16 * 1024, 4, 32),
            l1d: CacheConfig::new(8 * 1024, 4, 16),
            l15: CacheConfig::new(8 * 1024, 4, 16),
            l2: CacheConfig::new(64 * 1024, 4, 64),
            slice_mapping: SliceMapping::Low,
        }
    }

    /// The tile mesh topology.
    #[must_use]
    pub fn topology(&self) -> &Mesh {
        &self.mesh
    }

    /// Number of tiles (= cores; one core per tile).
    #[must_use]
    pub fn tile_count(&self) -> usize {
        self.mesh.tile_count()
    }

    /// Total hardware thread count (50 for Piton).
    #[must_use]
    pub fn total_thread_count(&self) -> usize {
        self.tile_count() * self.threads_per_core as usize
    }

    /// Aggregate L2 capacity per chip in bytes (1.6 MB for Piton).
    #[must_use]
    pub fn l2_total_bytes(&self) -> u64 {
        self.l2.size_bytes * self.tile_count() as u64
    }

    /// Die area in square millimetres (36 mm² for Piton).
    #[must_use]
    pub fn die_area_mm2(&self) -> f64 {
        self.die_edge_mm * self.die_edge_mm
    }
}

impl Default for ChipConfig {
    fn default() -> Self {
        Self::piton()
    }
}

/// Interface frequencies of the experimental system (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemFrequencies {
    /// Gateway FPGA ↔ Piton link.
    pub gateway_to_piton: Hertz,
    /// Gateway FPGA ↔ FMC ↔ chipset FPGA link.
    pub gateway_to_chipset: Hertz,
    /// Chipset FPGA logic clock.
    pub chipset_logic: Hertz,
    /// DDR3 PHY clock (800 MHz → 1600 MT/s).
    pub dram_phy: Hertz,
    /// DDR3 DRAM controller clock.
    pub dram_controller: Hertz,
    /// SD-card SPI clock.
    pub sd_spi: Hertz,
    /// UART baud rate in bits per second.
    pub uart_bps: u64,
}

impl SystemFrequencies {
    /// The values of Table II.
    #[must_use]
    pub fn piton_system() -> Self {
        Self {
            gateway_to_piton: Hertz::from_mhz(180.0),
            gateway_to_chipset: Hertz::from_mhz(180.0),
            chipset_logic: Hertz::from_mhz(280.0),
            dram_phy: Hertz::from_mhz(800.0),
            dram_controller: Hertz::from_mhz(200.0),
            sd_spi: Hertz::from_mhz(20.0),
            uart_bps: 115_200,
        }
    }
}

impl Default for SystemFrequencies {
    fn default() -> Self {
        Self::piton_system()
    }
}

/// Default Piton measurement parameters (Table III).
///
/// Every study in §IV runs at this operating point at room temperature
/// unless it states otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasurementDefaults {
    /// Core supply voltage.
    pub vdd: Volts,
    /// SRAM supply voltage.
    pub vcs: Volts,
    /// I/O supply voltage.
    pub vio: Volts,
    /// Core clock frequency.
    pub core_clock: Hertz,
    /// Ambient (room) temperature.
    pub ambient_c: f64,
}

impl MeasurementDefaults {
    /// The values of Table III (room temperature per §IV-J: 20.0 °C).
    #[must_use]
    pub fn table_iii() -> Self {
        Self {
            vdd: Volts(1.00),
            vcs: Volts(1.05),
            vio: Volts(1.80),
            core_clock: Hertz::from_mhz(500.05),
            ambient_c: 20.0,
        }
    }

    /// The paper's convention for sweeps: `VCS = VDD + 0.05 V`.
    #[must_use]
    pub fn vcs_for(vdd: Volts) -> Volts {
        Volts(vdd.0 + 0.05)
    }
}

impl Default for MeasurementDefaults {
    fn default() -> Self {
        Self::table_iii()
    }
}

/// Which experiment engine produces a run's numbers.
///
/// The cycle backend drives the bit-deterministic simulator through the
/// virtual bench (the historical, oracle path); the analytic backend
/// evaluates a closed-form model calibrated against cycle-level runs;
/// `Both` runs the two on the same grid and reports their disagreement.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Backend {
    /// Cycle-level simulation through the virtual bench (default).
    #[default]
    Cycle,
    /// Closed-form analytic model, calibrated against the cycle engine.
    Analytic,
    /// Both engines on the same grid, with a cross-backend error table.
    Both,
}

impl Backend {
    /// Stable lower-case label used in CLI flags, journal context
    /// strings and run manifests.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Cycle => "cycle",
            Self::Analytic => "analytic",
            Self::Both => "both",
        }
    }

    /// Parses a CLI/label spelling; the error lists the accepted forms.
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec {
            "cycle" => Ok(Self::Cycle),
            "analytic" => Ok(Self::Analytic),
            "both" => Ok(Self::Both),
            other => Err(format!(
                "unknown backend {other:?}: expected cycle, analytic or both"
            )),
        }
    }

    /// Whether this backend runs the cycle-level engine.
    #[must_use]
    pub fn runs_cycle(self) -> bool {
        matches!(self, Self::Cycle | Self::Both)
    }

    /// Whether this backend runs the analytic model.
    #[must_use]
    pub fn runs_analytic(self) -> bool {
        matches!(self, Self::Analytic | Self::Both)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_parameters() {
        let c = ChipConfig::piton();
        assert_eq!(c.tile_count(), 25);
        assert_eq!(c.total_thread_count(), 50);
        assert_eq!(c.noc_count, 3);
        assert_eq!(c.noc_width_bits, 64);
        assert_eq!(c.pipeline_depth, 6);
        assert_eq!(c.threads_per_core, 2);
        assert!((c.die_area_mm2() - 36.0).abs() < 1e-12);
        assert_eq!(c.l1i.size_bytes, 16 * 1024);
        assert_eq!(c.l1i.associativity, 4);
        assert_eq!(c.l1i.line_bytes, 32);
        assert_eq!(c.l1d.size_bytes, 8 * 1024);
        assert_eq!(c.l1d.line_bytes, 16);
        assert_eq!(c.l15.size_bytes, 8 * 1024);
        assert_eq!(c.l2.size_bytes, 64 * 1024);
        assert_eq!(c.l2.line_bytes, 64);
        // 1.6 MB aggregate L2.
        assert_eq!(c.l2_total_bytes(), 1_638_400);
    }

    #[test]
    fn cache_set_arithmetic() {
        let l1d = CacheConfig::new(8 * 1024, 4, 16);
        assert_eq!(l1d.sets(), 128);
        assert_eq!(l1d.lines(), 512);
        let l2 = CacheConfig::new(64 * 1024, 4, 64);
        assert_eq!(l2.sets(), 256);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = CacheConfig::new(8 * 1024, 4, 24);
    }

    #[test]
    fn table_ii_frequencies() {
        let f = SystemFrequencies::piton_system();
        assert!((f.gateway_to_piton.as_mhz() - 180.0).abs() < 1e-9);
        assert!((f.chipset_logic.as_mhz() - 280.0).abs() < 1e-9);
        assert!((f.dram_phy.as_mhz() - 800.0).abs() < 1e-9);
        assert_eq!(f.uart_bps, 115_200);
    }

    #[test]
    fn table_iii_defaults() {
        let d = MeasurementDefaults::table_iii();
        assert_eq!(d.vdd, Volts(1.0));
        assert_eq!(d.vcs, Volts(1.05));
        assert_eq!(d.vio, Volts(1.8));
        assert!((d.core_clock.as_mhz() - 500.05).abs() < 1e-9);
    }

    #[test]
    fn vcs_tracks_vdd_plus_50mv() {
        let vcs = MeasurementDefaults::vcs_for(Volts(0.8));
        assert!((vcs.0 - 0.85).abs() < 1e-12);
    }

    #[test]
    fn backend_labels_round_trip() {
        for b in [Backend::Cycle, Backend::Analytic, Backend::Both] {
            assert_eq!(Backend::parse(b.label()), Ok(b));
        }
        assert!(Backend::parse("fast").is_err());
        assert_eq!(Backend::default(), Backend::Cycle);
        assert!(Backend::Both.runs_cycle() && Backend::Both.runs_analytic());
        assert!(!Backend::Analytic.runs_cycle());
        assert!(!Backend::Cycle.runs_analytic());
    }
}
