//! Experiment-request specification types shared by the serving layer.
//!
//! A `piton-serve` request names a *subset* of an experiment's grid as
//! data, in the same terse one-line grammar style the fault-plan and
//! trace specs use: `all`, or comma-separated indices and inclusive
//! ranges (`0-3,7,9-12`). [`GridSpec`] lives in this bottom crate so
//! both the daemon (in `piton-core`) and any client-side tooling can
//! parse and render specs without pulling in the JSON codec.
//!
//! # Examples
//!
//! ```
//! use piton_arch::request::GridSpec;
//!
//! let spec = GridSpec::parse("9-12,0-3,7,10").unwrap();
//! assert_eq!(spec.render(), "0-3,7,9-12"); // canonical form
//! assert_eq!(spec.resolve(36).unwrap().len(), 9);
//! assert!(GridSpec::parse("all").unwrap().is_all());
//! ```

use crate::error::PitonError;

/// A selection of grid-point indices: either the whole grid (`all`) or
/// a normalized union of inclusive index ranges.
///
/// The internal representation is always canonical — sorted, deduped,
/// with overlapping or adjacent ranges merged — so [`GridSpec::render`]
/// is a canonical form and `parse(render(s)) == s` holds exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridSpec {
    /// `None` selects every index of the target grid; `Some(ranges)`
    /// holds sorted, non-overlapping, non-adjacent inclusive ranges.
    ranges: Option<Vec<(usize, usize)>>,
}

fn bad(what: impl Into<String>) -> PitonError {
    PitonError::BadPlan { what: what.into() }
}

impl GridSpec {
    /// The whole-grid selection.
    #[must_use]
    pub fn all() -> Self {
        Self { ranges: None }
    }

    /// Whether this spec selects the whole grid.
    #[must_use]
    pub fn is_all(&self) -> bool {
        self.ranges.is_none()
    }

    /// Builds a spec from an arbitrary index set (duplicates and order
    /// don't matter — the result is canonical).
    #[must_use]
    pub fn from_indices(indices: &[usize]) -> Self {
        let mut sorted: Vec<usize> = indices.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        for i in sorted {
            match ranges.last_mut() {
                Some((_, end)) if i == *end + 1 => *end = i,
                _ => ranges.push((i, i)),
            }
        }
        Self {
            ranges: Some(ranges),
        }
    }

    /// Parses the request grammar: `all`, or comma-separated terms that
    /// are each a single index (`7`) or an inclusive range (`0-3`).
    /// Overlapping, adjacent and out-of-order terms are normalized.
    ///
    /// # Errors
    ///
    /// [`PitonError::BadPlan`] on an empty spec, an empty term, a
    /// non-numeric index, or a descending range.
    pub fn parse(spec: &str) -> Result<Self, PitonError> {
        if spec == "all" {
            return Ok(Self::all());
        }
        if spec.is_empty() {
            return Err(bad("empty grid spec: expected `all` or `N`/`A-B` terms"));
        }
        let index = |s: &str| -> Result<usize, PitonError> {
            s.parse()
                .map_err(|_| bad(format!("grid spec index {s:?} is not an unsigned integer")))
        };
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        for term in spec.split(',') {
            if term.is_empty() {
                return Err(bad(format!("grid spec {spec:?} has an empty term")));
            }
            let (lo, hi) = match term.split_once('-') {
                Some((a, b)) => (index(a)?, index(b)?),
                None => {
                    let i = index(term)?;
                    (i, i)
                }
            };
            if lo > hi {
                return Err(bad(format!("grid spec range {term:?} is descending")));
            }
            ranges.push((lo, hi));
        }
        ranges.sort_unstable();
        let mut merged: Vec<(usize, usize)> = Vec::with_capacity(ranges.len());
        for (lo, hi) in ranges {
            match merged.last_mut() {
                // Overlapping or adjacent: extend the previous range.
                Some((_, end)) if lo <= end.saturating_add(1) => *end = (*end).max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        Ok(Self {
            ranges: Some(merged),
        })
    }

    /// Renders the canonical form: `all`, or merged ascending terms
    /// like `0-3,7,9-12`. `parse(render(s)) == s` exactly.
    #[must_use]
    pub fn render(&self) -> String {
        match &self.ranges {
            None => "all".to_owned(),
            Some(ranges) => ranges
                .iter()
                .map(|&(lo, hi)| {
                    if lo == hi {
                        lo.to_string()
                    } else {
                        format!("{lo}-{hi}")
                    }
                })
                .collect::<Vec<_>>()
                .join(","),
        }
    }

    /// Resolves the spec against a grid of `len` points, returning the
    /// selected indices in ascending order.
    ///
    /// # Errors
    ///
    /// [`PitonError::BadPlan`] when any selected index is out of range
    /// — a request must never silently shrink to the grid it found.
    pub fn resolve(&self, len: usize) -> Result<Vec<usize>, PitonError> {
        match &self.ranges {
            None => Ok((0..len).collect()),
            Some(ranges) => {
                if let Some(&(_, hi)) = ranges.iter().find(|&&(_, hi)| hi >= len) {
                    return Err(bad(format!(
                        "grid spec selects index {hi} but the grid has only {len} point(s)"
                    )));
                }
                Ok(ranges.iter().flat_map(|&(lo, hi)| lo..=hi).collect())
            }
        }
    }

    /// Number of selected indices on a grid of `len` points (without
    /// materializing them).
    #[must_use]
    pub fn count(&self, len: usize) -> usize {
        match &self.ranges {
            None => len,
            Some(ranges) => ranges.iter().map(|&(lo, hi)| hi - lo + 1).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_normalizes_terms() {
        let s = GridSpec::parse("9-12,0-3,7,10,4").unwrap();
        // 0-3 and 4 are adjacent; 10 is inside 9-12.
        assert_eq!(s.render(), "0-4,7,9-12");
        assert_eq!(
            s.resolve(13).unwrap(),
            vec![0, 1, 2, 3, 4, 7, 9, 10, 11, 12]
        );
        assert_eq!(s.count(13), 10);
    }

    #[test]
    fn all_selects_the_whole_grid() {
        let s = GridSpec::parse("all").unwrap();
        assert!(s.is_all());
        assert_eq!(s.render(), "all");
        assert_eq!(s.resolve(4).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(s.count(4), 4);
    }

    #[test]
    fn render_is_canonical_and_round_trips() {
        for spec in ["0", "0-8", "3,1,2", "5-9,0-2", "all", "7,7,7"] {
            let parsed = GridSpec::parse(spec).unwrap();
            let rendered = parsed.render();
            assert_eq!(GridSpec::parse(&rendered).unwrap(), parsed, "{spec}");
            assert_eq!(
                GridSpec::parse(&rendered).unwrap().render(),
                rendered,
                "{spec}"
            );
        }
    }

    #[test]
    fn from_indices_matches_parse() {
        let s = GridSpec::from_indices(&[12, 0, 1, 2, 7, 9, 10, 11, 1]);
        assert_eq!(s.render(), "0-2,7,9-12");
        assert_eq!(s, GridSpec::parse("0-2,7,9-12").unwrap());
    }

    #[test]
    fn malformed_specs_are_refused() {
        for spec in ["", ",", "1,", "a", "3-1", "1-2-3", "-1", "0x5"] {
            let e = GridSpec::parse(spec).unwrap_err();
            assert!(matches!(e, PitonError::BadPlan { .. }), "{spec:?}: {e}");
        }
    }

    #[test]
    fn out_of_range_resolution_is_an_error() {
        let s = GridSpec::parse("0-9").unwrap();
        assert!(s.resolve(10).is_ok());
        let e = s.resolve(9).unwrap_err();
        assert!(e.to_string().contains("only 9 point(s)"), "{e}");
    }
}
