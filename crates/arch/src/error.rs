//! The workspace-wide error type.
//!
//! The paper's results come off a fallible lab bench: 12 of the 32
//! tested chips are partially or fully dead (Table IV), the ≈ 17 Hz I²C
//! monitors glitch often enough that every reported number is a
//! 128-sample mean (§III-A), and multi-minute measurement campaigns
//! survive hung runs and browning-out supplies. [`PitonError`] is the
//! single currency every layer of the reproduction uses to report those
//! failures instead of panicking: the board crate returns it from
//! measurement statistics, the simulator converts hang reports into it,
//! and the sweep runner wraps it per grid point so one bad point never
//! aborts a whole section.
//!
//! # Examples
//!
//! ```
//! use piton_arch::error::PitonError;
//!
//! let e = PitonError::SeedNotFound { lo: 0, hi: 1_000_000 };
//! assert_eq!(
//!     e.to_string(),
//!     "no seed in 0..1000000 reproduces the Table IV counts"
//! );
//! assert!(!e.is_transient());
//! assert!(PitonError::transient("supply glitch").is_transient());
//! ```

use serde::{Deserialize, Serialize};

/// Every recoverable failure the reproduction can report.
///
/// Variants carry plain data so the type can live in the bottom crate
/// of the workspace; richer layer-local reports (e.g. the simulator's
/// `HangReport`) convert into it via `From`, preserving their rendered
/// detail in the payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PitonError {
    /// A statistic was requested of an empty measurement window (every
    /// sample was dropped or rejected).
    EmptyWindow {
        /// What was being measured.
        context: &'static str,
    },
    /// A trendline fit was requested over too few or degenerate points.
    DegenerateFit {
        /// Points available.
        points: usize,
        /// Why the fit is impossible.
        reason: &'static str,
    },
    /// A population seed search exhausted its range without reproducing
    /// the Table IV counts.
    SeedNotFound {
        /// Inclusive lower bound of the searched range.
        lo: u64,
        /// Exclusive upper bound of the searched range.
        hi: u64,
    },
    /// A transient bench fault (dropped I²C read, supply glitch,
    /// injected flaky point) — worth retrying with a fresh seed.
    Transient {
        /// What failed.
        what: String,
    },
    /// A deterministic injected fault — retrying cannot help.
    Injected {
        /// What was injected.
        what: String,
    },
    /// The simulated machine stopped making progress (see the sim
    /// crate's `HangReport` for the structured original).
    Hang {
        /// Rendered hang diagnosis.
        detail: String,
    },
    /// An operation targeted a disabled resource (e.g. loading a
    /// program onto a fused-off core).
    Disabled {
        /// What was addressed.
        what: String,
    },
    /// A fault-plan or argument string failed to parse.
    BadPlan {
        /// What was wrong with it.
        what: String,
    },
    /// A machine-readable artifact (run manifest, journal record,
    /// trace line) failed to decode — truncated, torn, or garbage
    /// input. Never transient: re-reading the same bytes cannot help.
    Codec {
        /// What failed to decode and why.
        what: String,
    },
    /// A grid point exceeded its per-attempt deadline budget (see the
    /// runner's `RetryPolicy::timeout`) — transient, since a retry gets
    /// a fresh budget.
    DeadlineExceeded {
        /// What was being computed when the budget ran out.
        what: String,
    },
}

impl PitonError {
    /// Shorthand for a transient (retryable) failure.
    #[must_use]
    pub fn transient(what: impl Into<String>) -> Self {
        PitonError::Transient { what: what.into() }
    }

    /// Shorthand for a deterministic injected failure.
    #[must_use]
    pub fn injected(what: impl Into<String>) -> Self {
        PitonError::Injected { what: what.into() }
    }

    /// Shorthand for a decode failure on a machine-readable artifact.
    #[must_use]
    pub fn codec(what: impl Into<String>) -> Self {
        PitonError::Codec { what: what.into() }
    }

    /// Shorthand for a blown per-attempt deadline budget.
    #[must_use]
    pub fn deadline(what: impl Into<String>) -> Self {
        PitonError::DeadlineExceeded { what: what.into() }
    }

    /// Whether a retry (with a fresh per-point seed) can plausibly
    /// succeed. The sweep runner only re-runs grid points whose failure
    /// is transient.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            PitonError::Transient { .. }
                | PitonError::Hang { .. }
                | PitonError::DeadlineExceeded { .. }
        )
    }
}

impl std::fmt::Display for PitonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PitonError::EmptyWindow { context } => {
                write!(f, "empty measurement window while measuring {context}")
            }
            PitonError::DegenerateFit { points, reason } => {
                write!(f, "cannot fit a trendline over {points} point(s): {reason}")
            }
            PitonError::SeedNotFound { lo, hi } => {
                write!(f, "no seed in {lo}..{hi} reproduces the Table IV counts")
            }
            PitonError::Transient { what } => write!(f, "transient fault: {what}"),
            PitonError::Injected { what } => write!(f, "injected fault: {what}"),
            PitonError::Hang { detail } => write!(f, "machine hang: {detail}"),
            PitonError::Disabled { what } => write!(f, "disabled resource: {what}"),
            PitonError::BadPlan { what } => write!(f, "bad fault plan: {what}"),
            PitonError::Codec { what } => write!(f, "codec error: {what}"),
            PitonError::DeadlineExceeded { what } => {
                write!(f, "deadline exceeded: {what}")
            }
        }
    }
}

impl std::error::Error for PitonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_classification() {
        assert!(PitonError::transient("x").is_transient());
        assert!(PitonError::Hang { detail: "y".into() }.is_transient());
        assert!(PitonError::deadline("warm-up").is_transient());
        assert!(!PitonError::injected("x").is_transient());
        assert!(!PitonError::codec("torn record").is_transient());
        assert!(!PitonError::EmptyWindow { context: "idle" }.is_transient());
        assert!(!PitonError::SeedNotFound { lo: 0, hi: 9 }.is_transient());
    }

    #[test]
    fn displays_name_their_payloads() {
        assert!(PitonError::EmptyWindow { context: "idle" }
            .to_string()
            .contains("idle"));
        assert!(PitonError::SeedNotFound { lo: 17, hi: 132 }
            .to_string()
            .contains("17..132"));
        assert!(PitonError::DegenerateFit {
            points: 1,
            reason: "need at least two points"
        }
        .to_string()
        .contains("1 point"));
    }

    #[test]
    fn shorthands_build_the_right_variants() {
        assert_eq!(
            PitonError::transient("x"),
            PitonError::Transient { what: "x".into() }
        );
        assert_eq!(
            PitonError::injected("y"),
            PitonError::Injected { what: "y".into() }
        );
    }
}
