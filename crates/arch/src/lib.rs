//! Architectural description of the Piton 25-core manycore processor.
//!
//! This crate is the single source of truth for everything the HPCA'18
//! characterization paper states about the *design* of Piton:
//!
//! * [`units`] — strongly-typed physical quantities (volts, hertz, watts,
//!   joules, seconds, degrees Celsius) used across the whole workspace;
//! * [`config`] — the architectural parameter summary of Table I, the
//!   experimental-system frequencies of Table II and the default
//!   measurement parameters of Table III;
//! * [`isa`] — the simulated SPARC-V9-like instruction set together with
//!   the instruction latencies of Table VI;
//! * [`topology`] — the 5×5 2D-mesh tile grid, dimension-ordered routing
//!   geometry and physical tile pitch used by the NoC energy study;
//! * [`floorplan`] — the place-and-route area database behind the
//!   chip/tile/core area breakdown of Figure 8;
//! * [`request`] — the grid-selection grammar of `piton-serve`
//!   experiment requests.
//!
//! # Examples
//!
//! ```
//! use piton_arch::config::ChipConfig;
//! use piton_arch::topology::TileId;
//!
//! let cfg = ChipConfig::default();
//! assert_eq!(cfg.tile_count(), 25);
//! assert_eq!(cfg.total_thread_count(), 50);
//!
//! let route = cfg.topology().route(TileId::new(0), TileId::new(9));
//! assert_eq!(route.hops, 5); // tile0 -> tile9 is the paper's 5-hop example
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod deadline;
pub mod error;
pub mod floorplan;
pub mod isa;
pub mod request;
pub mod topology;
pub mod units;

pub use config::ChipConfig;
pub use error::PitonError;
pub use topology::{Coord, TileId};
