//! Strongly-typed physical quantities.
//!
//! The characterization code manipulates voltages, frequencies, powers,
//! energies, times and temperatures constantly; mixing them up silently is
//! the classic way to ruin a power model. Each quantity is a newtype over
//! `f64` (C-NEWTYPE) with only the physically meaningful arithmetic
//! implemented: `Watts * Seconds = Joules`, `Joules / Seconds = Watts`,
//! `Hertz.period() = Seconds`, and so on.
//!
//! # Examples
//!
//! ```
//! use piton_arch::units::{Hertz, Joules, Seconds, Watts};
//!
//! let f = Hertz::from_mhz(500.05);
//! let power = Watts(2.0153);
//! let energy: Joules = power * Seconds(7.5);
//! assert!((energy.0 - 15.114_75).abs() < 1e-9);
//! assert!((f.period().0 - 2.0e-9).abs() < 2e-11);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns the absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns true when the underlying value is finite.
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }
    };
}

quantity!(
    /// Electric potential in volts.
    Volts,
    "V"
);
quantity!(
    /// Electric current in amperes.
    Amps,
    "A"
);
quantity!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
quantity!(
    /// Power in watts.
    Watts,
    "W"
);
quantity!(
    /// Energy in joules.
    Joules,
    "J"
);
quantity!(
    /// Time in seconds.
    Seconds,
    "s"
);
quantity!(
    /// Temperature in degrees Celsius.
    Celsius,
    "°C"
);
quantity!(
    /// Electrical resistance in ohms.
    Ohms,
    "Ω"
);

impl Volts {
    /// Creates a voltage from millivolts.
    #[must_use]
    pub fn from_mv(mv: f64) -> Self {
        Self(mv / 1e3)
    }

    /// Returns the value in millivolts.
    #[must_use]
    pub fn as_mv(self) -> f64 {
        self.0 * 1e3
    }
}

impl Hertz {
    /// Creates a frequency from megahertz.
    #[must_use]
    pub fn from_mhz(mhz: f64) -> Self {
        Self(mhz * 1e6)
    }

    /// Returns the value in megahertz.
    #[must_use]
    pub fn as_mhz(self) -> f64 {
        self.0 / 1e6
    }

    /// Returns the clock period.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero (a zero-frequency clock has no
    /// period).
    #[must_use]
    pub fn period(self) -> Seconds {
        assert!(self.0 > 0.0, "cannot take the period of a 0 Hz clock");
        Seconds(1.0 / self.0)
    }
}

impl Watts {
    /// Creates a power from milliwatts.
    #[must_use]
    pub fn from_mw(mw: f64) -> Self {
        Self(mw / 1e3)
    }

    /// Returns the value in milliwatts.
    #[must_use]
    pub fn as_mw(self) -> f64 {
        self.0 * 1e3
    }
}

impl Joules {
    /// Creates an energy from picojoules.
    #[must_use]
    pub fn from_pj(pj: f64) -> Self {
        Self(pj / 1e12)
    }

    /// Creates an energy from nanojoules.
    #[must_use]
    pub fn from_nj(nj: f64) -> Self {
        Self(nj / 1e9)
    }

    /// Returns the value in picojoules.
    #[must_use]
    pub fn as_pj(self) -> f64 {
        self.0 * 1e12
    }

    /// Returns the value in nanojoules.
    #[must_use]
    pub fn as_nj(self) -> f64 {
        self.0 * 1e9
    }

    /// Returns the value in kilojoules.
    #[must_use]
    pub fn as_kj(self) -> f64 {
        self.0 / 1e3
    }
}

impl Seconds {
    /// Creates a time from nanoseconds.
    #[must_use]
    pub fn from_ns(ns: f64) -> Self {
        Self(ns / 1e9)
    }

    /// Returns the value in nanoseconds.
    #[must_use]
    pub fn as_ns(self) -> f64 {
        self.0 * 1e9
    }

    /// Returns the value in minutes.
    #[must_use]
    pub fn as_minutes(self) -> f64 {
        self.0 / 60.0
    }

    /// Creates a time from minutes.
    #[must_use]
    pub fn from_minutes(min: f64) -> Self {
        Self(min * 60.0)
    }
}

/// `P × t = E`
impl Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// `t × P = E`
impl Mul<Watts> for Seconds {
    type Output = Joules;
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// `E / t = P`
impl Div<Seconds> for Joules {
    type Output = Watts;
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

/// `E / P = t`
impl Div<Watts> for Joules {
    type Output = Seconds;
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

/// `V × I = P`
impl Mul<Amps> for Volts {
    type Output = Watts;
    fn mul(self, rhs: Amps) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

/// `I × V = P`
impl Mul<Volts> for Amps {
    type Output = Watts;
    fn mul(self, rhs: Volts) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

/// `V / R = I` (Ohm's law)
impl Div<Ohms> for Volts {
    type Output = Amps;
    fn div(self, rhs: Ohms) -> Amps {
        Amps(self.0 / rhs.0)
    }
}

/// `I × R = V` (Ohm's law)
impl Mul<Ohms> for Amps {
    type Output = Volts;
    fn mul(self, rhs: Ohms) -> Volts {
        Volts(self.0 * rhs.0)
    }
}

/// `P / V = I`
impl Div<Volts> for Watts {
    type Output = Amps;
    fn div(self, rhs: Volts) -> Amps {
        Amps(self.0 / rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts(2.0) * Seconds(3.0);
        assert_eq!(e, Joules(6.0));
        assert_eq!(Seconds(3.0) * Watts(2.0), Joules(6.0));
    }

    #[test]
    fn energy_over_time_is_power() {
        assert_eq!(Joules(6.0) / Seconds(3.0), Watts(2.0));
        assert_eq!(Joules(6.0) / Watts(2.0), Seconds(3.0));
    }

    #[test]
    fn ohms_law_round_trip() {
        let v = Volts(1.0);
        let r = Ohms(0.02);
        let i = v / r;
        assert!((i.0 - 50.0).abs() < 1e-12);
        let back = i * r;
        assert!((back.0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn electrical_power() {
        let p = Volts(1.05) * Amps(2.0);
        assert!((p.0 - 2.1).abs() < 1e-12);
        let i = p / Volts(1.05);
        assert!((i.0 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unit_conversions() {
        assert!((Hertz::from_mhz(500.05).0 - 500.05e6).abs() < 1e-3);
        assert!((Hertz(500.05e6).as_mhz() - 500.05).abs() < 1e-9);
        assert!((Watts::from_mw(389.3).0 - 0.3893).abs() < 1e-12);
        assert!((Joules::from_pj(286.46).as_nj() - 0.28646).abs() < 1e-9);
        assert!((Seconds::from_ns(790.0).0 - 7.9e-7).abs() < 1e-18);
        assert!((Seconds::from_minutes(2.0).as_minutes() - 2.0).abs() < 1e-12);
        assert!((Volts::from_mv(1050.0).0 - 1.05).abs() < 1e-12);
    }

    #[test]
    fn ratio_is_dimensionless() {
        let ratio: f64 = Watts(3.0) / Watts(1.5);
        assert!((ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sum_and_scaling() {
        let total: Watts = [Watts(1.0), Watts(2.0), Watts(3.0)].into_iter().sum();
        assert_eq!(total, Watts(6.0));
        assert_eq!(total * 0.5, Watts(3.0));
        assert_eq!(0.5 * total, Watts(3.0));
        assert_eq!(total / 2.0, Watts(3.0));
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{:.2}", Watts(2.0153)), "2.02 W");
        assert_eq!(format!("{}", Volts(1.0)), "1 V");
        assert_eq!(format!("{:.1}", Celsius(42.5)), "42.5 °C");
    }

    #[test]
    #[should_panic(expected = "0 Hz")]
    fn zero_frequency_period_panics() {
        let _ = Hertz(0.0).period();
    }

    #[test]
    fn min_max_abs() {
        assert_eq!(Watts(-1.0).abs(), Watts(1.0));
        assert_eq!(Watts(1.0).max(Watts(2.0)), Watts(2.0));
        assert_eq!(Watts(1.0).min(Watts(2.0)), Watts(1.0));
        assert!(Watts(1.0).is_finite());
        assert!(!Watts(f64::NAN).is_finite());
    }
}
