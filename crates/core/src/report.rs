//! Plain-text table rendering for experiment results.
//!
//! Every experiment renders its result in the paper's row/column shape
//! so EXPERIMENTS.md can record paper-versus-measured side by side.
//! Sweeps that lose grid points to injected faults report them as
//! [`Hole`]s, rendered in an explicit trailer so a partially-failed
//! table can never be mistaken for a complete one.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::runner::PointError;

/// A simple monospace table builder.
#[derive(Debug, Default, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title.
    #[must_use]
    pub fn new(title: &str) -> Self {
        Self {
            title: title.to_owned(),
            ..Self::default()
        }
    }

    /// Sets the column headers.
    pub fn header<I, S>(&mut self, columns: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.header = columns.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert!(
            self.header.is_empty() || row.len() == self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (header row first; cells quoted when
    /// they contain commas or quotes) — the form the paper's open data
    /// release used.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        if !self.header.is_empty() {
            out.push_str(
                &self
                    .header
                    .iter()
                    .map(|h| esc(h))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map_or("", String::as_str);
                let _ = write!(line, " {cell:<w$} |");
            }
            line
        };
        if !self.header.is_empty() {
            let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
            let mut sep = String::from("|");
            for w in &widths {
                let _ = write!(sep, "{}|", "-".repeat(w + 2));
            }
            let _ = writeln!(out, "{sep}");
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// A sweep grid point that failed permanently (every retry exhausted or
/// a non-transient error) and is rendered as an explicit hole rather
/// than silently dropped.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hole {
    /// Sweep section tag (`"epi"`, `"noc"`, `"scaling"`).
    pub section: String,
    /// Grid-point index within that sweep.
    pub index: usize,
    /// Human-readable point label (matches the table cell it holes).
    pub point: String,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// The final panic or error message.
    pub error: String,
}

impl Hole {
    /// Builds a hole from a failed sweep point.
    #[must_use]
    pub fn from_point(section: &str, point: String, e: &PointError) -> Self {
        Self {
            section: section.to_owned(),
            index: e.index,
            point,
            attempts: e.attempts,
            error: e.failure.to_string(),
        }
    }

    /// Whether this hole covers the named point label.
    #[must_use]
    pub fn covers(&self, point: &str) -> bool {
        self.point == point
    }
}

/// Marker rendered in table cells lost to a hole (distinct from `-`,
/// which means "not part of this sweep").
pub const HOLE_MARK: &str = "✗";

/// Marker prefixed to cells whose value came from the analytic backend
/// rather than a cycle-level measurement (distinct from [`HOLE_MARK`]:
/// the value exists, it just was not simulated).
pub const ANALYTIC_MARK: &str = "≈";

/// Renders the hole trailer for a table: empty when the sweep was
/// complete, so fault-free output stays byte-identical.
#[must_use]
pub fn render_holes(holes: &[Hole]) -> String {
    if holes.is_empty() {
        return String::new();
    }
    let mut out = format!(
        "\nHoles ({} grid point(s) lost to faults; marked {HOLE_MARK}):\n",
        holes.len()
    );
    for h in holes {
        let _ = writeln!(
            out,
            "  {HOLE_MARK} {}:{} {} — {} (after {} attempt(s))",
            h.section, h.index, h.point, h.error, h.attempts
        );
    }
    out
}

/// Formats a ratio of measured to paper value as a percentage string.
#[must_use]
pub fn vs_paper(measured: f64, paper: f64) -> String {
    if paper == 0.0 {
        return "n/a".to_owned();
    }
    format!("{:+.1}%", 100.0 * (measured - paper) / paper)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo");
        t.header(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "12345"]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| alpha | 1     |"));
        assert!(s.contains("| b     | 12345 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x");
        t.header(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_escapes_and_rounds_trips() {
        let mut t = Table::new("csv");
        t.header(["a", "b"]);
        t.row(["plain", "with,comma"]);
        t.row(["with\"quote", "x"]);
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("plain,\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\",x"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn vs_paper_formats_deviation() {
        assert_eq!(vs_paper(110.0, 100.0), "+10.0%");
        assert_eq!(vs_paper(95.0, 100.0), "-5.0%");
        assert_eq!(vs_paper(1.0, 0.0), "n/a");
    }
}
