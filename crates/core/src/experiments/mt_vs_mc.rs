//! Figure 14 — power and energy of multithreading versus multicore.
//!
//! Each microbenchmark runs with equal thread counts in the 1 T/C
//! (multicore) and 2 T/C (multithreading) configurations. Power is
//! measured at steady state; energy comes from power × execution time
//! of a fixed-iteration variant. Following §IV-H2, power and energy
//! are split into an *active* portion and the idle portion charged for
//! the number of active cores (full-chip idle divided by 25, times
//! active cores) — so multicore is charged double the idle power of
//! multithreading.

use piton_arch::units::{Joules, Seconds, Watts};
use piton_board::system::PitonSystem;
use piton_workloads::micro::{load_microbenchmark, Microbenchmark, RunLength, ThreadsPerCore};
use serde::{Deserialize, Serialize};

use super::Fidelity;
use crate::report::Table;
use crate::runner;

/// One (benchmark, threads, T/C) measurement.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MtMcPoint {
    /// Thread count.
    pub threads: usize,
    /// Configuration.
    pub tpc: ThreadsPerCore,
    /// Active cores.
    pub active_cores: usize,
    /// Measured full-chip power.
    pub total_power: Watts,
    /// Idle power attributed to the active cores.
    pub active_idle_power: Watts,
    /// Power above full-chip idle (the "active power").
    pub active_power: Watts,
    /// Execution time of the fixed-iteration variant.
    pub exec_time: Seconds,
    /// Active energy (active power × time).
    pub active_energy: Joules,
    /// Active-cores idle energy (active idle power × time).
    pub idle_energy: Joules,
}

impl MtMcPoint {
    /// Total attributed energy (active + active-cores idle), the
    /// quantity Figure 14's stacked bars sum to.
    #[must_use]
    pub fn total_energy(&self) -> Joules {
        self.active_energy + self.idle_energy
    }
}

/// One benchmark's sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MtMcSeries {
    /// Which microbenchmark.
    pub bench: Microbenchmark,
    /// Points for both configurations at each thread count.
    pub points: Vec<MtMcPoint>,
}

/// The Figure 14 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MtMcResult {
    /// Per-benchmark series.
    pub series: Vec<MtMcSeries>,
    /// Full-chip idle power (Chip #3).
    pub chip_idle: Watts,
}

/// Iterations of the fixed-length variants (scaled so runs are long
/// enough to time but short enough to simulate).
fn iterations(bench: Microbenchmark, fidelity: Fidelity) -> u32 {
    let base = (fidelity.chunk_cycles / 40).max(50) as u32;
    match bench {
        // Long enough that the serialized cold-miss warm-up of the
        // mixed threads is a small fraction of the run.
        Microbenchmark::Int | Microbenchmark::Hp => base * 30,
        Microbenchmark::Hist => 2,
    }
}

fn measure_point(
    bench: Microbenchmark,
    threads: usize,
    tpc: ThreadsPerCore,
    chip_idle: Watts,
    fidelity: Fidelity,
) -> MtMcPoint {
    // Steady-state power with the infinite variant.
    let mut sys = PitonSystem::reference_chip_3();
    sys.set_chunk_cycles(fidelity.chunk_cycles);
    let active_cores =
        load_microbenchmark(sys.machine_mut(), bench, threads, tpc, RunLength::Forever);
    sys.warm_up(fidelity.warmup_cycles);
    let total_power = sys.measure(fidelity.samples).total.mean;

    // Execution time with the fixed-iteration variant.
    let mut timed = PitonSystem::reference_chip_3();
    timed.set_chunk_cycles(fidelity.chunk_cycles);
    load_microbenchmark(
        timed.machine_mut(),
        bench,
        threads,
        tpc,
        RunLength::Iterations(iterations(bench, fidelity)),
    );
    let run = timed.run_measured(400_000_000);
    assert!(run.completed, "{} did not finish", bench.label());

    let active_idle_power = chip_idle * (active_cores as f64 / 25.0);
    let active_power = (total_power - chip_idle).max(Watts::ZERO);
    MtMcPoint {
        threads,
        tpc,
        active_cores,
        total_power,
        active_idle_power,
        active_power,
        exec_time: run.elapsed,
        active_energy: active_power * run.elapsed,
        idle_energy: active_idle_power * run.elapsed,
    }
}

/// Runs the Figure 14 sweep over the given thread counts (the harness
/// uses 2..=24 even counts).
#[must_use]
pub fn run_with_threads(thread_counts: &[usize], fidelity: Fidelity) -> MtMcResult {
    let mut idle_sys = PitonSystem::reference_chip_3();
    idle_sys.set_chunk_cycles(fidelity.chunk_cycles);
    let chip_idle = idle_sys.measure_idle_power().mean;

    // 3 benchmarks × thread counts × 2 T/C; the shared chip-idle
    // baseline was measured once above and is copied into every point.
    let grid: Vec<(Microbenchmark, usize, ThreadsPerCore)> = Microbenchmark::ALL
        .into_iter()
        .flat_map(|bench| {
            thread_counts.iter().flat_map(move |&threads| {
                [ThreadsPerCore::One, ThreadsPerCore::Two]
                    .into_iter()
                    .map(move |tpc| (bench, threads, tpc))
            })
        })
        .collect();
    let points = runner::sweep(fidelity.jobs, grid, |_, (bench, threads, tpc)| {
        measure_point(bench, threads, tpc, chip_idle, fidelity)
    });

    let per_bench = thread_counts.len() * 2;
    let series = Microbenchmark::ALL
        .into_iter()
        .zip(points.chunks(per_bench))
        .map(|(bench, chunk)| MtMcSeries {
            bench,
            points: chunk.to_vec(),
        })
        .collect();
    MtMcResult { series, chip_idle }
}

/// Runs the full sweep (thread counts 2, 4, …, 24).
#[must_use]
pub fn run(fidelity: Fidelity) -> MtMcResult {
    let threads: Vec<usize> = (1..=12).map(|k| 2 * k).collect();
    run_with_threads(&threads, fidelity)
}

impl MtMcResult {
    /// A benchmark's series.
    #[must_use]
    pub fn series_for(&self, bench: Microbenchmark) -> &MtMcSeries {
        self.series
            .iter()
            .find(|s| s.bench == bench)
            .expect("all benchmarks present")
    }

    /// Renders Figure 14.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.series {
            let mut t = Table::new(&format!(
                "Figure 14: {} — multithreading (2 T/C) vs multicore (1 T/C)",
                s.bench.label()
            ));
            t.header([
                "Threads",
                "Config",
                "Cores",
                "Active P (W)",
                "Idle P (W)",
                "Time (ms)",
                "Active E (J)",
                "Idle E (J)",
            ]);
            for p in &s.points {
                t.row([
                    p.threads.to_string(),
                    p.tpc.label().to_owned(),
                    p.active_cores.to_string(),
                    format!("{:.3}", p.active_power.0),
                    format!("{:.3}", p.active_idle_power.0),
                    format!("{:.3}", p.exec_time.0 * 1e3),
                    format!("{:.6}", p.active_energy.0),
                    format!("{:.6}", p.idle_energy.0),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> MtMcResult {
        run_with_threads(&[8, 16], Fidelity::quick())
    }

    fn pick(
        r: &MtMcResult,
        bench: Microbenchmark,
        threads: usize,
        tpc: ThreadsPerCore,
    ) -> MtMcPoint {
        *r.series_for(bench)
            .points
            .iter()
            .find(|p| p.threads == threads && p.tpc == tpc)
            .unwrap()
    }

    #[test]
    fn multicore_is_charged_double_idle() {
        let r = result();
        let mc = pick(&r, Microbenchmark::Int, 16, ThreadsPerCore::One);
        let mt = pick(&r, Microbenchmark::Int, 16, ThreadsPerCore::Two);
        assert_eq!(mc.active_cores, 16);
        assert_eq!(mt.active_cores, 8);
        assert!((mc.active_idle_power.0 - 2.0 * mt.active_idle_power.0).abs() < 1e-9);
    }

    #[test]
    fn int_multithreading_uses_less_power_but_more_energy() {
        // §IV-H2: "for Int and HP multithreading consumes more energy
        // and less power than multicore".
        let r = result();
        for bench in [Microbenchmark::Int, Microbenchmark::Hp] {
            let mc = pick(&r, bench, 16, ThreadsPerCore::One);
            let mt = pick(&r, bench, 16, ThreadsPerCore::Two);
            assert!(
                mt.total_power < mc.total_power,
                "{}: MT power {} !< MC power {}",
                bench.label(),
                mt.total_power,
                mc.total_power
            );
            assert!(
                mt.total_energy().0 > mc.total_energy().0,
                "{}: MT energy {} !> MC energy {}",
                bench.label(),
                mt.total_energy().0,
                mc.total_energy().0
            );
            // Execution-time ratio ≈ 2 (little overlap).
            let ratio = mt.exec_time.0 / mc.exec_time.0;
            assert!(
                (1.5..=2.3).contains(&ratio),
                "{}: ratio {ratio}",
                bench.label()
            );
        }
    }

    #[test]
    fn hist_multithreading_is_more_energy_efficient() {
        // §IV-H2: overlapping opportunities make MT win for Hist.
        let r = result();
        let mc = pick(&r, Microbenchmark::Hist, 16, ThreadsPerCore::One);
        let mt = pick(&r, Microbenchmark::Hist, 16, ThreadsPerCore::Two);
        // Execution times are similar (lots of overlap)...
        let ratio = mt.exec_time.0 / mc.exec_time.0;
        assert!(ratio < 1.7, "Hist MT/MC time ratio {ratio}");
        // ...so the double idle charge makes multicore lose.
        assert!(
            mt.total_energy().0 < mc.total_energy().0 * 1.05,
            "Hist: MT {} vs MC {}",
            mt.total_energy().0,
            mc.total_energy().0
        );
    }

    #[test]
    fn int_and_hp_energy_scales_with_threads_hist_stays_flat() {
        let r = result();
        let e = |bench, threads| {
            pick(&r, bench, threads, ThreadsPerCore::One)
                .total_energy()
                .0
        };
        // Int/HP double total work when threads double.
        assert!(e(Microbenchmark::Int, 16) > 1.5 * e(Microbenchmark::Int, 8));
        // Hist keeps total work constant.
        let h8 = e(Microbenchmark::Hist, 8);
        let h16 = e(Microbenchmark::Hist, 16);
        assert!(
            h16 < 1.6 * h8,
            "Hist energy should stay roughly flat: {h8} -> {h16}"
        );
    }

    #[test]
    fn render_shows_both_configs() {
        let s = result().render();
        assert!(s.contains("1 T/C"));
        assert!(s.contains("2 T/C"));
    }
}
