//! Table IV — Piton testing statistics.
//!
//! Runs the paper's test campaign on the synthetic wafer population: 32
//! of the 45 packaged dies are screened and classified as good,
//! deterministically/nondeterministically unstable (SRAM defects) or
//! bad (supply shorts).

use piton_board::population::{ChipPopulation, ChipStatus, YieldCounts};
use serde::{Deserialize, Serialize};

use crate::report::Table;

/// Table IV as measured on the synthetic population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct YieldResult {
    /// Dies received from the wafer run.
    pub total_dies: usize,
    /// Dies packaged.
    pub packaged: usize,
    /// Dies tested.
    pub tested: u32,
    /// Counts per Table IV class.
    pub counts: YieldCounts,
}

/// Paper values of Table IV.
#[must_use]
pub fn paper_reference() -> YieldCounts {
    YieldCounts {
        good: 19,
        unstable_deterministic: 7,
        bad_vcs_short: 4,
        bad_vdd_short: 1,
        unstable_nondeterministic: 1,
    }
}

/// Runs the test campaign (deterministic; the population seed
/// reproduces the paper's counts).
#[must_use]
pub fn run() -> YieldResult {
    let pop = ChipPopulation::piton_run();
    let counts = pop.test_campaign(32);
    YieldResult {
        total_dies: pop.dies().len(),
        packaged: pop.packaged().count(),
        tested: counts.total(),
        counts,
    }
}

impl YieldResult {
    /// Renders the Table IV layout.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = Table::new(&format!(
            "Table IV: Piton testing statistics ({} dies, {} packaged, {} tested)",
            self.total_dies, self.packaged, self.tested
        ));
        t.header(["Status", "Symptom", "Possible Cause", "Count", "Percentage"]);
        let c = &self.counts;
        let rows: [(ChipStatus, u32, &str); 5] = [
            (ChipStatus::Good, c.good, "Good"),
            (
                ChipStatus::UnstableDeterministic,
                c.unstable_deterministic,
                "Unstable*",
            ),
            (ChipStatus::BadVcsShort, c.bad_vcs_short, "Bad"),
            (ChipStatus::BadVddShort, c.bad_vdd_short, "Bad"),
            (
                ChipStatus::UnstableNondeterministic,
                c.unstable_nondeterministic,
                "Unstable*",
            ),
        ];
        for (status, count, label) in rows {
            t.row([
                label.to_owned(),
                status.symptom().to_owned(),
                status.possible_cause().to_owned(),
                count.to_string(),
                format!("{:.1}", c.percent(count)),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_reproduces_table_iv_exactly() {
        let r = run();
        assert_eq!(r.total_dies, 118);
        assert_eq!(r.packaged, 45);
        assert_eq!(r.tested, 32);
        assert_eq!(r.counts, paper_reference());
    }

    #[test]
    fn render_contains_all_classes() {
        let s = run().render();
        assert!(s.contains("Bad SRAM cells"));
        assert!(s.contains("Short"));
        assert!(s.contains("59.4"));
        assert!(s.contains("21.9"));
    }
}
