//! Figure 13 — power scaling with core count.
//!
//! Each microbenchmark (Int, HP, Hist) runs on 1 to 25 cores in both
//! the 1 T/C and 2 T/C configurations on Chip #3 (the paper's
//! microbenchmark die); full-chip power is measured per point and a
//! linear fit gives the mW/core trendline.

use piton_arch::error::PitonError;
use piton_arch::units::Watts;
use piton_board::fault::{self, FaultPlan};
use piton_board::system::PitonSystem;
use piton_workloads::micro::{load_microbenchmark, Microbenchmark, RunLength, ThreadsPerCore};
use serde::{Deserialize, Serialize};

use super::Fidelity;
use crate::measure::linear_fit;
use crate::report::{render_holes, Hole, Table, HOLE_MARK};
use crate::runner;

/// One (benchmark, T/C) power-versus-cores series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingSeries {
    /// Which microbenchmark.
    pub bench: Microbenchmark,
    /// Thread configuration.
    pub tpc: ThreadsPerCore,
    /// `(cores, full-chip watts)`.
    pub points: Vec<(usize, f64)>,
    /// Fitted slope in mW/core.
    pub mw_per_core: f64,
}

/// The Figure 13 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreScalingResult {
    /// Six series (3 benchmarks × 2 T/C configs).
    pub series: Vec<ScalingSeries>,
    /// Chip #3 idle power (the paper reports 1906.2 mW).
    pub idle: Watts,
    /// Grid points lost to injected faults (empty without a fault plan).
    pub holes: Vec<Hole>,
}

/// Paper trendlines in mW/core: `(bench, tpc, slope)`.
#[must_use]
pub fn paper_reference() -> Vec<(Microbenchmark, ThreadsPerCore, f64)> {
    vec![
        (Microbenchmark::Int, ThreadsPerCore::One, 22.8),
        (Microbenchmark::Int, ThreadsPerCore::Two, 37.4),
        (Microbenchmark::Hp, ThreadsPerCore::One, 35.6),
        (Microbenchmark::Hp, ThreadsPerCore::Two, 57.8),
        (Microbenchmark::Hist, ThreadsPerCore::One, 14.5),
        (Microbenchmark::Hist, ThreadsPerCore::Two, 14.4),
    ]
}

/// Figure 13 point label, shared by the sweep and the hole trailer.
fn point_label(bench: Microbenchmark, tpc: ThreadsPerCore, cores: usize) -> String {
    format!("{} {} @ {cores} cores", bench.label(), tpc.label())
}

/// The Figure 13 grid over the given core counts, in sweep order:
/// 3 benchmarks × 2 T/C × cores as `(bench, tpc, cores)`.
#[must_use]
pub fn grid_with_cores(core_counts: &[usize]) -> Vec<(Microbenchmark, ThreadsPerCore, usize)> {
    Microbenchmark::ALL
        .into_iter()
        .flat_map(|bench| {
            [ThreadsPerCore::One, ThreadsPerCore::Two]
                .into_iter()
                .flat_map(move |tpc| core_counts.iter().map(move |&c| (bench, tpc, c)))
        })
        .collect()
}

/// The canonical full-chip Figure 13 grid (1..=25 cores, 150 points) —
/// the grid the serve layer addresses by index.
#[must_use]
pub fn grid() -> Vec<(Microbenchmark, ThreadsPerCore, usize)> {
    let cores: Vec<usize> = (1..=25).collect();
    grid_with_cores(&cores)
}

/// Computes one Figure 13 grid point exactly as the [`run_with_cores`]
/// sweep does — same index-derived seed, same sabotage gate — so a
/// result computed here is bit-identical to one journaled by a full
/// run under the same context.
///
/// # Errors
///
/// Propagates injected sabotage failures and measurement errors.
pub fn compute_point(
    index: usize,
    point: &(Microbenchmark, ThreadsPerCore, usize),
    fidelity: Fidelity,
    plan: Option<&FaultPlan>,
    attempt: u32,
) -> Result<f64, PitonError> {
    let &(bench, tpc, cores) = point;
    if let Some(plan) = plan {
        fault::sabotage_gate(plan, "scaling", index, attempt)?;
    }
    measure_point(
        bench,
        cores,
        tpc,
        fidelity,
        plan,
        ((index as u64) << 32) ^ u64::from(attempt),
    )
}

fn measure_point(
    bench: Microbenchmark,
    cores: usize,
    tpc: ThreadsPerCore,
    fidelity: Fidelity,
    plan: Option<&FaultPlan>,
    seed: u64,
) -> Result<f64, PitonError> {
    let mut sys = PitonSystem::reference_chip_3();
    sys.set_chunk_cycles(fidelity.chunk_cycles);
    if let Some(plan) = plan {
        let mut plan = plan.clone();
        plan.seed ^= seed;
        sys.inject_faults(&plan);
    }
    let threads = cores * tpc.count();
    load_microbenchmark(sys.machine_mut(), bench, threads, tpc, RunLength::Forever);
    sys.warm_up(fidelity.warmup_cycles);
    Ok(sys.try_measure(fidelity.samples)?.total.mean.0)
}

/// Runs the Figure 13 sweep over the given core counts (the harness
/// sweeps 1..=25; tests use fewer points).
#[must_use]
pub fn run_with_cores(core_counts: &[usize], fidelity: Fidelity) -> CoreScalingResult {
    let mut idle_sys = PitonSystem::reference_chip_3();
    idle_sys.set_chunk_cycles(fidelity.chunk_cycles);
    let idle = idle_sys.measure_idle_power().mean;
    let plan = fidelity.fault.map(fault::lookup);

    // 3 benchmarks × 2 T/C × core counts, all independent systems.
    let grid = grid_with_cores(core_counts);
    let watts = runner::try_sweep_journaled(
        fidelity.jobs,
        grid.clone(),
        runner::RetryPolicy::default(),
        "scaling",
        plan.as_ref(),
        fidelity.journal,
        |index, point, attempt| compute_point(index, point, fidelity, plan.as_ref(), attempt),
    );

    let mut holes: Vec<Hole> = grid
        .iter()
        .zip(&watts)
        .filter_map(|(&(bench, tpc, cores), r)| {
            r.as_ref()
                .err()
                .map(|e| Hole::from_point("scaling", point_label(bench, tpc, cores), e))
        })
        .collect();
    let series = Microbenchmark::ALL
        .into_iter()
        .flat_map(|bench| [ThreadsPerCore::One, ThreadsPerCore::Two].map(|tpc| (bench, tpc)))
        .zip(watts.chunks(core_counts.len()))
        .map(|((bench, tpc), chunk)| {
            let points: Vec<(usize, f64)> = core_counts
                .iter()
                .copied()
                .zip(chunk.iter())
                .filter_map(|(c, r)| r.as_ref().ok().map(|&w| (c, w)))
                .collect();
            let fit: Vec<(f64, f64)> = points.iter().map(|&(c, w)| (c as f64, w)).collect();
            let slope_w = match linear_fit(&fit) {
                Ok((_, slope)) => slope,
                Err(e) => {
                    holes.push(Hole {
                        section: "scaling".to_owned(),
                        index: 0,
                        point: format!("{} {} trendline", bench.label(), tpc.label()),
                        attempts: 0,
                        error: e.to_string(),
                    });
                    0.0
                }
            };
            ScalingSeries {
                bench,
                tpc,
                points,
                mw_per_core: slope_w * 1e3,
            }
        })
        .collect();
    CoreScalingResult {
        series,
        idle,
        holes,
    }
}

/// Runs the full 1..=25-core sweep.
#[must_use]
pub fn run(fidelity: Fidelity) -> CoreScalingResult {
    let cores: Vec<usize> = (1..=25).collect();
    run_with_cores(&cores, fidelity)
}

impl CoreScalingResult {
    /// A series by benchmark and configuration.
    #[must_use]
    pub fn series_for(&self, bench: Microbenchmark, tpc: ThreadsPerCore) -> &ScalingSeries {
        self.series
            .iter()
            .find(|s| s.bench == bench && s.tpc == tpc)
            .expect("all six series present")
    }

    /// Renders Figure 13's trendlines.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = Table::new(&format!(
            "Figure 13: power scaling with core count (Chip #3, idle {:.1} mW)",
            self.idle.as_mw()
        ));
        t.header(["Benchmark", "T/C", "mW/core", "Paper", "vs paper"]);
        for s in &self.series {
            let paper = paper_reference()
                .into_iter()
                .find(|(b, c, _)| *b == s.bench && *c == s.tpc)
                .map_or(0.0, |(_, _, v)| v);
            t.row([
                s.bench.label().to_owned(),
                s.tpc.label().to_owned(),
                format!("{:.1}", s.mw_per_core),
                format!("{paper}"),
                crate::report::vs_paper(s.mw_per_core, paper),
            ]);
        }
        let mut out = t.render();
        out.push_str("\nPer-point power (W):\n");
        for s in &self.series {
            let mut pts: Vec<String> = s
                .points
                .iter()
                .map(|(c, w)| format!("{c}:{w:.3}"))
                .collect();
            for h in &self.holes {
                if let Some(cores) = h
                    .point
                    .strip_prefix(&format!("{} {} @ ", s.bench.label(), s.tpc.label()))
                    .and_then(|rest| rest.strip_suffix(" cores"))
                {
                    pts.push(format!("{cores}:{HOLE_MARK}"));
                }
            }
            out.push_str(&format!(
                "  {} {}: {}\n",
                s.bench.label(),
                s.tpc.label(),
                pts.join(" ")
            ));
        }
        out.push_str(&render_holes(&self.holes));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> CoreScalingResult {
        run_with_cores(&[1, 5, 9, 13, 17, 21, 25], Fidelity::quick())
    }

    #[test]
    fn power_scales_linearly_and_two_tpc_scales_faster() {
        let r = result();
        for bench in [Microbenchmark::Int, Microbenchmark::Hp] {
            let one = r.series_for(bench, ThreadsPerCore::One);
            let two = r.series_for(bench, ThreadsPerCore::Two);
            assert!(one.mw_per_core > 0.0);
            assert!(
                two.mw_per_core > 1.18 * one.mw_per_core,
                "{}: 2T/C {} vs 1T/C {}",
                bench.label(),
                two.mw_per_core,
                one.mw_per_core
            );
            // Monotone non-decreasing power with cores.
            for w in one.points.windows(2) {
                assert!(w[1].1 >= w[0].1 - 0.02, "{}: {:?}", bench.label(), w);
            }
        }
    }

    #[test]
    fn hp_consumes_the_most_hist_the_least() {
        let r = result();
        for tpc in [ThreadsPerCore::One, ThreadsPerCore::Two] {
            let int = r.series_for(Microbenchmark::Int, tpc).mw_per_core;
            let hp = r.series_for(Microbenchmark::Hp, tpc).mw_per_core;
            let hist = r.series_for(Microbenchmark::Hist, tpc).mw_per_core;
            assert!(hp > int * 0.9, "{}: HP {hp} vs Int {int}", tpc.label());
            assert!(
                hist < int,
                "{}: Hist {hist} must be below Int {int}",
                tpc.label()
            );
        }
    }

    #[test]
    fn hp_at_full_chip_is_the_highest_observed_power() {
        // ~3.5 W on all 50 threads in the paper.
        let r = result();
        let hp_full = r
            .series_for(Microbenchmark::Hp, ThreadsPerCore::Two)
            .points
            .last()
            .unwrap()
            .1;
        assert!(
            (2.5..=4.5).contains(&hp_full),
            "HP @ 25 cores 2T/C = {hp_full} W"
        );
        for s in &r.series {
            let max = s.points.iter().map(|p| p.1).fold(0.0, f64::max);
            assert!(max <= hp_full + 0.05, "{} exceeds HP", s.bench.label());
        }
    }

    #[test]
    fn hist_tpc_configs_scale_similarly() {
        // Paper: 14.5 vs 14.4 mW/core — nearly identical.
        let r = result();
        let one = r
            .series_for(Microbenchmark::Hist, ThreadsPerCore::One)
            .mw_per_core;
        let two = r
            .series_for(Microbenchmark::Hist, ThreadsPerCore::Two)
            .mw_per_core;
        assert!(
            two < 2.2 * one.max(1.0) && one < 2.2 * two.max(1.0),
            "Hist slopes diverge: {one} vs {two}"
        );
    }

    #[test]
    fn render_includes_all_six_series() {
        let s = result().render();
        assert!(s.matches("Int").count() >= 2);
        assert!(s.contains("Hist"));
        assert!(s.contains("mW/core"));
    }
}
