//! Ablation studies on the design choices behind the paper's insights.
//!
//! These go beyond the paper's published artifacts: each ablation turns
//! one modelled mechanism off (or sweeps it) and shows how the paper's
//! headline results depend on it.
//!
//! * [`slice_mapping`] — the §IV-F experiment *requires* the
//!   configurable line-to-slice mapping: under the default low-bit
//!   mapping, consecutive lines interleave across all 25 slices and
//!   local-versus-remote energy cannot be isolated.
//! * [`store_buffer_depth`] — the stx (F) roll-back energy of
//!   Figure 11 versus store-buffer depth: deeper buffers defer the
//!   roll-back storm but cannot avoid it while issue outpaces drain.
//! * [`dual_thread_overhead`] — §IV-H2 concludes a two-way
//!   fine-grained core "may not be the optimal configuration from an
//!   energy efficiency perspective" because the thread-switching
//!   overhead rivals an extra core's active power; this sweep locates
//!   the Int multithreading/multicore energy crossover as a function of
//!   that overhead.
//! * [`noc_energy_split`] — decomposes the Figure 12 energy per flit
//!   into router versus wire (data-switching) energy, the basis of the
//!   paper's "data transmission consumes more energy than the NoC
//!   router computation" observation.

use piton_arch::config::{ChipConfig, SliceMapping};
use piton_arch::topology::TileId;
use piton_sim::events::ActivityCounters;
use piton_sim::machine::SwitchPattern;
use piton_sim::memsys::MemorySystem;
use serde::{Deserialize, Serialize};

use super::Fidelity;
use crate::report::Table;
use crate::runner;

/// Result of the slice-mapping ablation: how many distinct home slices
/// the Table VII "local L2" address set touches under each mapping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SliceMappingAblation {
    /// `(mapping, distinct home slices, all local to tile0)` rows.
    pub rows: Vec<(String, usize, bool)>,
}

/// Runs the slice-mapping ablation.
#[must_use]
pub fn slice_mapping() -> SliceMappingAblation {
    let rows = [SliceMapping::Low, SliceMapping::Mid, SliceMapping::High]
        .into_iter()
        .map(|mapping| {
            let mut cfg = ChipConfig::piton();
            cfg.slice_mapping = mapping;
            let sys = MemorySystem::new(&cfg);
            // The L2-hit walker's address set (6 addresses, 2 KB apart)
            // placed in tile0's high-bit region.
            let addrs: Vec<u64> = (0..6u64).map(|k| 0x40 + k * 2048).collect();
            let homes: std::collections::HashSet<usize> =
                addrs.iter().map(|&a| sys.home_slice(a).index()).collect();
            (
                format!("{mapping:?}"),
                homes.len(),
                homes.len() == 1 && homes.contains(&0),
            )
        })
        .collect();
    SliceMappingAblation { rows }
}

impl SliceMappingAblation {
    /// Renders the ablation.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = Table::new("Ablation: line-to-L2-slice mapping vs the Table VII address set");
        t.header(["Mapping", "Distinct home slices", "Local study possible"]);
        for (m, n, ok) in &self.rows {
            t.row([m.clone(), n.to_string(), ok.to_string()]);
        }
        t.render()
    }
}

/// One row of the store-buffer-depth ablation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StoreBufferPoint {
    /// Store-buffer entries.
    pub entries: u32,
    /// Roll-backs per store in the back-to-back stx loop.
    pub rollbacks_per_store: f64,
    /// Achieved stores per kilocycle.
    pub stores_per_kcycle: f64,
}

/// Sweeps the store-buffer depth under the stx (F) workload.
#[must_use]
pub fn store_buffer_depth(fidelity: Fidelity) -> Vec<StoreBufferPoint> {
    use piton_arch::isa::OperandPattern;
    use piton_workloads::epi::{epi_test, EpiCase, StoreVariant};

    runner::sweep(fidelity.jobs, vec![1u32, 2, 4, 8, 16], |_, entries| {
        let mut cfg = ChipConfig::piton();
        cfg.store_buffer_entries = entries;
        let mut m = piton_sim::machine::Machine::new(&cfg);
        m.load_thread(
            TileId::new(0),
            0,
            epi_test(
                EpiCase::Store(StoreVariant::Full),
                OperandPattern::Random,
                0,
            ),
        );
        m.run(fidelity.warmup_cycles);
        let before = m.counters().clone();
        m.run(fidelity.chunk_cycles * fidelity.samples as u64);
        let d = m.counters().delta_since(&before);
        StoreBufferPoint {
            entries,
            rollbacks_per_store: d.store_rollbacks as f64 / d.sb_enqueues.max(1) as f64,
            stores_per_kcycle: 1e3 * d.sb_enqueues as f64 / d.cycles as f64,
        }
    })
}

/// Renders the store-buffer ablation.
#[must_use]
pub fn render_store_buffer(points: &[StoreBufferPoint]) -> String {
    let mut t = Table::new("Ablation: store-buffer depth vs stx (F) roll-backs");
    t.header(["Entries", "Roll-backs/store", "Stores/kcycle"]);
    for p in points {
        t.row([
            p.entries.to_string(),
            format!("{:.2}", p.rollbacks_per_store),
            format!("{:.1}", p.stores_per_kcycle),
        ]);
    }
    t.render()
}

/// One point of the dual-thread-overhead sweep.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OverheadPoint {
    /// Thread-switching overhead in pJ per dual-threaded issue cycle.
    pub overhead_pj: f64,
    /// Int multithreading/multicore total-energy ratio at 16 threads.
    pub mt_mc_energy_ratio: f64,
}

/// Sweeps the modelled thread-switching overhead and reports where
/// multithreading loses to multicore on Int (ratio > 1).
#[must_use]
pub fn dual_thread_overhead(fidelity: Fidelity) -> Vec<OverheadPoint> {
    use piton_arch::units::Watts;
    use piton_power::{Calibration, PowerModel, TechModel};
    use piton_workloads::micro::{load_microbenchmark, Microbenchmark, RunLength, ThreadsPerCore};

    // Measure activity and timing once per configuration; re-price the
    // same activity under different overhead coefficients.
    let capture = |tpc: ThreadsPerCore| {
        let mut m = piton_sim::machine::Machine::new(&ChipConfig::piton());
        load_microbenchmark(&mut m, Microbenchmark::Int, 16, tpc, RunLength::Forever);
        m.run(fidelity.warmup_cycles);
        let before = m.counters().clone();
        m.run(fidelity.chunk_cycles * fidelity.samples as u64);
        let act = m.counters().delta_since(&before);

        let mut timed = piton_sim::machine::Machine::new(&ChipConfig::piton());
        load_microbenchmark(
            &mut timed,
            Microbenchmark::Int,
            16,
            tpc,
            RunLength::Iterations(2_000),
        );
        assert!(timed.run_until_halted(10_000_000));
        (act, timed.now())
    };
    let mut captures = runner::sweep(
        fidelity.jobs,
        vec![ThreadsPerCore::One, ThreadsPerCore::Two],
        |_, tpc| capture(tpc),
    );
    let (act_mt, t_mt) = captures.pop().expect("two configurations");
    let (act_mc, t_mc) = captures.pop().expect("two configurations");

    [0.0f64, 20.0, 40.0, 60.0, 90.0, 120.0]
        .into_iter()
        .map(|overhead_pj| {
            let mut calib = Calibration::piton_hpca18();
            calib.dual_thread_pj_per_cycle = overhead_pj;
            let model = PowerModel::new(calib, TechModel::ibm32soi(), Default::default());
            let op = piton_power::OperatingPoint::table_iii();
            let idle = {
                let a = ActivityCounters {
                    cycles: 100_000,
                    ..Default::default()
                };
                model.power(&a, op).total()
            };
            let energy = |act: &ActivityCounters, cycles: u64, cores: f64| {
                let p = model.power(act, op).total();
                let active = Watts((p.0 - idle.0).max(0.0)) + idle * (cores / 25.0);
                active.0 * cycles as f64 / op.freq.0
            };
            let e_mc = energy(&act_mc, t_mc, 16.0);
            let e_mt = energy(&act_mt, t_mt, 8.0);
            OverheadPoint {
                overhead_pj,
                mt_mc_energy_ratio: e_mt / e_mc,
            }
        })
        .collect()
}

/// Renders the overhead sweep.
#[must_use]
pub fn render_overhead(points: &[OverheadPoint]) -> String {
    let mut t =
        Table::new("Ablation: thread-switch overhead vs Int MT/MC energy ratio (16 threads)");
    t.header(["Overhead (pJ/dual-issue)", "MT/MC energy ratio"]);
    for p in points {
        t.row([
            format!("{:.0}", p.overhead_pj),
            format!("{:.3}", p.mt_mc_energy_ratio),
        ]);
    }
    t.render()
}

/// Energy split of one switching pattern's per-flit-hop cost.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NocSplitRow {
    /// Pattern label.
    pub pattern: String,
    /// Router + quiet-link portion, pJ per flit-hop.
    pub router_pj: f64,
    /// Data-wire switching portion, pJ per flit-hop.
    pub wire_pj: f64,
}

/// Decomposes the per-flit-hop energy of each Figure 12 pattern into
/// router and data-wire components using the calibrated model and the
/// simulator's measured switching activity.
#[must_use]
pub fn noc_energy_split(fidelity: Fidelity) -> Vec<NocSplitRow> {
    let calib = piton_power::Calibration::piton_hpca18();
    runner::sweep(fidelity.jobs, SwitchPattern::ALL.to_vec(), |_, pattern| {
        let mut m = piton_sim::machine::Machine::new(&ChipConfig::piton());
        m.run_invalidation_traffic(
            TileId::new(4),
            pattern,
            fidelity.chunk_cycles * fidelity.samples as u64,
        );
        let act = m.counters();
        let hops = act.noc_flit_hops as f64;
        let router =
            calib.noc_flit_hop_pj + calib.noc_route_pj * act.noc_route_computes as f64 / hops;
        let wire = (calib.noc_bit_switch_pj * act.noc_bit_switches as f64
            + calib.noc_coupling_pj * act.noc_coupling_switches as f64)
            / hops;
        NocSplitRow {
            pattern: pattern.label().to_owned(),
            router_pj: router,
            wire_pj: wire,
        }
    })
}

/// Renders the NoC split.
#[must_use]
pub fn render_noc_split(rows: &[NocSplitRow]) -> String {
    let mut t = Table::new("Ablation: router vs data-wire energy per flit-hop");
    t.header(["Pattern", "Router (pJ)", "Wires (pJ)", "Wire share"]);
    for r in rows {
        t.row([
            r.pattern.clone(),
            format!("{:.2}", r.router_pj),
            format!("{:.2}", r.wire_pj),
            format!("{:.0}%", 100.0 * r.wire_pj / (r.router_pj + r.wire_pj)),
        ]);
    }
    t.render()
}

/// Result of the Execution-Drafting ablation: chip power with the two
/// threads of every core running *identical* code (maximum drafting)
/// versus *offset* code (no drafting).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExecDraftingResult {
    /// Power with identical (draftable) thread pairs.
    pub drafted_w: f64,
    /// Power with phase-offset (undraftable) thread pairs.
    pub undrafted_w: f64,
    /// Drafting hit rate (drafted issues / total issues) in the
    /// identical-code run.
    pub draft_rate: f64,
}

/// Runs the Execution-Drafting ablation (§II: the core "implements
/// Execution Drafting for energy efficiency when executing similar code
/// on the two threads").
///
/// Both configurations run the *same* integer loop on both threads of
/// every core; the undraftable baseline merely offsets one thread's PCs
/// with a prologue `nop`, so the instruction mix and issue rate are
/// identical but the front end can never share work.
#[must_use]
pub fn execution_drafting(fidelity: Fidelity) -> ExecDraftingResult {
    use piton_arch::isa::{Opcode, Reg};
    use piton_board::system::PitonSystem;
    use piton_workloads::asm::Assembler;

    let int_like = |prologue_nops: usize| {
        let mut asm = Assembler::new();
        asm.nops(prologue_nops);
        asm.movi(Reg::new(10), 0x5555_5555_5555_5555);
        asm.movi(Reg::new(11), -0x5555_5555_5555_5556);
        asm.label("loop");
        for k in 0..20 {
            let op = if k % 2 == 0 { Opcode::Add } else { Opcode::And };
            asm.alu(op, Reg::new(12), Reg::new(10), Reg::new(11));
        }
        asm.jump("loop");
        asm.assemble()
    };

    let measure = |offset: usize| {
        let mut sys = PitonSystem::reference_chip_2();
        sys.set_chunk_cycles(fidelity.chunk_cycles);
        for t in 0..25 {
            let tile = TileId::new(t);
            sys.machine_mut().load_thread(tile, 0, int_like(0));
            sys.machine_mut().load_thread(tile, 1, int_like(offset));
        }
        sys.warm_up(fidelity.warmup_cycles);
        let before = sys.machine().counters().clone();
        let p = sys.measure(fidelity.samples).total.mean.0;
        let d = sys.machine().counters().delta_since(&before);
        (p, d.drafted_issues as f64 / d.total_issues() as f64)
    };
    let mut runs = runner::sweep(fidelity.jobs, vec![0usize, 1], |_, offset| measure(offset));
    let (undrafted_w, _) = runs.pop().expect("two configurations");
    let (drafted_w, draft_rate) = runs.pop().expect("two configurations");
    ExecDraftingResult {
        drafted_w,
        undrafted_w,
        draft_rate,
    }
}

impl ExecDraftingResult {
    /// Renders the ablation.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = Table::new("Ablation: Execution Drafting (identical vs offset thread pairs)");
        t.header(["Configuration", "Chip power (W)", "Draft rate"]);
        t.row([
            "identical code (drafting)".to_owned(),
            format!("{:.3}", self.drafted_w),
            format!("{:.0}%", 100.0 * self.draft_rate),
        ]);
        t.row([
            "offset code (no drafting)".to_owned(),
            format!("{:.3}", self.undrafted_w),
            "0%".to_owned(),
        ]);
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_high_mapping_supports_the_local_study() {
        let a = slice_mapping();
        let find = |m: &str| a.rows.iter().find(|(name, _, _)| name == m).unwrap();
        assert!(!find("Low").2, "low-bit mapping scatters the set");
        assert!(find("High").2, "high-bit mapping keeps the set local");
        assert_eq!(find("Low").1, 6, "low mapping: one slice per line");
        assert!(a.render().contains("Mapping"));
    }

    #[test]
    fn deeper_buffers_reduce_rollbacks_but_not_to_zero() {
        let pts = store_buffer_depth(Fidelity::quick());
        assert_eq!(pts.len(), 5);
        // Roll-backs per store fall monotonically (weakly) with depth…
        for w in pts.windows(2) {
            assert!(
                w[1].rollbacks_per_store <= w[0].rollbacks_per_store + 0.05,
                "{w:?}"
            );
        }
        // …but the drain rate (1 store / 10 cycles) caps throughput at
        // every depth: issue can never keep up, so roll-backs persist.
        for p in &pts {
            assert!(p.rollbacks_per_store > 0.1, "{p:?}");
            assert!(p.stores_per_kcycle < 120.0, "{p:?}");
        }
        let _ = render_store_buffer(&pts);
    }

    #[test]
    fn overhead_sweep_crosses_the_energy_break_even() {
        let pts = dual_thread_overhead(Fidelity::quick());
        // Ratio rises monotonically with overhead.
        for w in pts.windows(2) {
            assert!(w[1].mt_mc_energy_ratio >= w[0].mt_mc_energy_ratio - 1e-9);
        }
        // At zero overhead MT is at least not *worse* than at the
        // calibrated 60 pJ; at a large overhead MT clearly loses.
        assert!(pts.last().unwrap().mt_mc_energy_ratio > 1.0);
        let _ = render_overhead(&pts);
    }

    #[test]
    fn identical_threads_draft_and_save_power() {
        let r = execution_drafting(Fidelity::quick());
        assert!(
            r.draft_rate > 0.3,
            "lockstep twins should draft heavily: {}",
            r.draft_rate
        );
        assert!(
            r.drafted_w < r.undrafted_w,
            "drafting must save power: {} vs {}",
            r.drafted_w,
            r.undrafted_w
        );
        assert!(r.render().contains("Execution Drafting"));
    }

    #[test]
    fn wires_dominate_router_energy_for_switching_patterns() {
        let rows = noc_energy_split(Fidelity::quick());
        let find = |m: &str| rows.iter().find(|r| r.pattern == m).unwrap();
        // §IV-G: "The NoC routers consume a relatively small amount of
        // energy (NSW case) in comparison to charging and discharging
        // the NoC data lines."
        assert!(find("NSW").wire_pj < find("NSW").router_pj);
        assert!(find("FSW").wire_pj > 1.5 * find("FSW").router_pj);
        assert!(find("FSWA").wire_pj >= find("FSW").wire_pj);
        let _ = render_noc_split(&rows);
    }
}
