//! Tables VIII & IX and Figure 16 — the SPECint 2006 application study.
//!
//! Each benchmark's surrogate kernel runs on tile0 of the simulated
//! Piton system; CPI and power are *measured* (with the profile's I/O
//! transaction rate injected at the chip bridge), and the analytic
//! Sun Fire T2000 model prices the same profile on the comparison
//! machine. The benchmark's total instruction count is derived from the
//! paper's published T2000 minutes — an independent anchor — so the
//! Piton execution time, slowdown, average power and energy of Table IX
//! all *emerge* from the measured CPI and power.

use piton_arch::topology::TileId;
use piton_arch::units::{Hertz, Joules, Seconds, Watts};
use piton_board::system::PitonSystem;
use piton_workloads::spec::{spec_kernel, table_ix_benchmarks, SpecBenchmark, T2000Model};
use serde::{Deserialize, Serialize};

use super::Fidelity;
use crate::report::Table;
use crate::runner;

/// One Table IX row as reproduced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpecRow {
    /// Benchmark/input label.
    pub name: String,
    /// T2000 execution time (the paper's measured anchor), minutes.
    pub t2000_minutes: f64,
    /// Extrapolated Piton execution time, minutes.
    pub piton_minutes: f64,
    /// Piton slowdown (time ratio).
    pub slowdown: f64,
    /// Measured Piton CPI of the surrogate kernel.
    pub piton_cpi: f64,
    /// Modelled T2000 CPI of the same profile.
    pub t2000_cpi: f64,
    /// Measured average Piton chip power.
    pub avg_power: Watts,
    /// Piton energy over the full run.
    pub energy: Joules,
}

/// The Table IX dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpecResult {
    /// One row per benchmark/input pair.
    pub rows: Vec<SpecRow>,
}

/// Paper values of Table IX: `(name, t2000 min, piton min, slowdown,
/// power W, energy kJ)`.
#[must_use]
pub fn paper_reference() -> Vec<(&'static str, f64, f64, f64, f64, f64)> {
    vec![
        ("bzip2-chicken", 11.74, 57.36, 4.89, 2.199, 7.566),
        ("bzip2-source", 23.62, 129.02, 5.46, 2.119, 16.404),
        ("gcc-166", 5.72, 38.28, 6.70, 2.094, 4.809),
        ("gcc-200", 9.21, 70.67, 7.67, 2.156, 9.139),
        ("gobmk-13x13", 16.67, 77.51, 4.65, 2.127, 9.889),
        ("h264ref-foreman-baseline", 22.76, 71.08, 3.12, 2.149, 9.162),
        ("hmmer-nph3", 48.38, 164.94, 3.41, 2.400, 23.750),
        ("libquantum", 201.61, 1175.70, 5.83, 2.287, 161.363),
        ("omnetpp", 72.94, 727.04, 9.97, 2.096, 91.431),
        ("perlbench-checkspam", 11.57, 92.56, 8.00, 2.137, 11.863),
        ("perlbench-diffmail", 23.13, 184.37, 7.97, 2.141, 22.320),
        ("sjeng", 122.07, 569.22, 4.66, 2.080, 71.043),
        ("xalancbmk", 102.99, 730.03, 7.09, 2.148, 94.077),
    ]
}

/// Measured CPI and power of one surrogate kernel.
#[derive(Debug, Clone, Copy)]
struct KernelMeasurement {
    cpi: f64,
    power: Watts,
}

fn measure_kernel(bench: &SpecBenchmark, fidelity: Fidelity) -> KernelMeasurement {
    let mut sys = PitonSystem::reference_chip_2();
    sys.set_chunk_cycles(fidelity.chunk_cycles);
    sys.machine_mut()
        .load_thread(TileId::new(0), 0, spec_kernel(&bench.profile));
    // Warm past the kernel's L2-region warming pass (~0.12 M cycles).
    sys.warm_up(fidelity.warmup_cycles.max(220_000));

    let mut window = piton_board::monitor::MeasurementWindow::new();
    let retired_before = sys.machine().core(TileId::new(0)).retired();
    let cycles_before = sys.machine().counters().cycles;
    for _ in 0..fidelity.samples {
        let before = sys.machine().counters().clone();
        let r0 = sys.machine().core(TileId::new(0)).retired();
        sys.machine_mut().run(fidelity.chunk_cycles);
        // Inject the profile's I/O traffic in proportion to progress.
        let executed = sys.machine().core(TileId::new(0)).retired() - r0;
        let io = (executed as f64 * bench.profile.io_per_kinstr / 1_000.0).round() as u64;
        sys.machine_mut().record_io(io);
        let delta = sys.machine().counters().delta_since(&before);
        let p = sys.power_model().power(&delta, sys.operating_point());
        window.push(p.total());
    }
    let retired = sys.machine().core(TileId::new(0)).retired() - retired_before;
    let cycles = sys.machine().counters().cycles - cycles_before;
    KernelMeasurement {
        cpi: cycles as f64 / retired as f64,
        power: window.mean().expect("kernel window is never empty"),
    }
}

/// Runs the Table IX study over all 13 pairs.
#[must_use]
pub fn run(fidelity: Fidelity) -> SpecResult {
    let t2000 = T2000Model::sun_fire_t2000();
    let piton_f = Hertz::from_mhz(500.05);
    // Each surrogate kernel simulates its own single-core system.
    let benches = table_ix_benchmarks();
    let measured = runner::sweep(fidelity.jobs, benches.clone(), |_, bench| {
        measure_kernel(&bench, fidelity)
    });
    let rows = benches
        .iter()
        .zip(measured)
        .map(|(bench, m)| {
            let cpi_t = t2000.cpi(&bench.profile);
            // Instruction count from the independent T2000 anchor.
            let instructions = bench.t2000_minutes * 60.0 * (t2000.freq_mhz * 1e6) / cpi_t;
            // Effective CPI: measured kernel CPI plus the fitted OS
            // overhead (TLB reloads, paging, kernel time).
            let cpi_eff = m.cpi + bench.profile.os_stall_cpi;
            let piton_seconds = instructions * cpi_eff / piton_f.0;
            let piton_minutes = piton_seconds / 60.0;
            SpecRow {
                name: bench.name.to_owned(),
                t2000_minutes: bench.t2000_minutes,
                piton_minutes,
                slowdown: piton_minutes / bench.t2000_minutes,
                piton_cpi: cpi_eff,
                t2000_cpi: cpi_t,
                avg_power: m.power,
                energy: m.power * Seconds(piton_seconds),
            }
        })
        .collect();
    SpecResult { rows }
}

impl SpecResult {
    /// A row by benchmark name.
    #[must_use]
    pub fn row(&self, name: &str) -> Option<&SpecRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Exports Table IX as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut t = Table::new("");
        t.header([
            "benchmark",
            "t2000_minutes",
            "piton_minutes",
            "slowdown",
            "piton_cpi",
            "t2000_cpi",
            "avg_power_w",
            "energy_kj",
        ]);
        for r in &self.rows {
            t.row([
                r.name.clone(),
                format!("{:.2}", r.t2000_minutes),
                format!("{:.2}", r.piton_minutes),
                format!("{:.3}", r.slowdown),
                format!("{:.3}", r.piton_cpi),
                format!("{:.3}", r.t2000_cpi),
                format!("{:.3}", r.avg_power.0),
                format!("{:.3}", r.energy.as_kj()),
            ]);
        }
        t.to_csv()
    }

    /// Renders Table IX with paper deviations.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = Table::new("Table IX: SPECint 2006 performance, power, and energy");
        t.header([
            "Benchmark/Input",
            "T2000 (min)",
            "Piton (min)",
            "Slowdown",
            "Paper slowdown",
            "Power (W)",
            "Energy (kJ)",
        ]);
        for r in &self.rows {
            let paper = paper_reference()
                .into_iter()
                .find(|p| p.0 == r.name)
                .map_or(0.0, |p| p.3);
            t.row([
                r.name.clone(),
                format!("{:.2}", r.t2000_minutes),
                format!("{:.2}", r.piton_minutes),
                format!("{:.2}", r.slowdown),
                format!("{paper}"),
                format!("{:.3}", r.avg_power.0),
                format!("{:.3}", r.energy.as_kj()),
            ]);
        }
        t.render()
    }

    /// Renders Table VIII (the static system comparison).
    #[must_use]
    pub fn render_table_viii() -> String {
        let mut t = Table::new("Table VIII: Sun Fire T2000 and Piton system specifications");
        t.header(["System Parameter", "Sun Fire T2000", "Piton System"]);
        for row in piton_workloads::spec::table_viii() {
            t.row([row.parameter, row.t2000, row.piton]);
        }
        t.render()
    }
}

/// Figure 16 — power time series per rail over a full `gcc-166` run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeriesResult {
    /// `(emulated seconds, core mW, sram mW, io mW)` samples.
    pub samples: Vec<(f64, f64, f64, f64)>,
    /// Emulated total runtime in seconds.
    pub total_seconds: f64,
}

/// Runs the Figure 16 time-series logging: the `gcc-166` surrogate with
/// its phases (compute-lean and memory/I/O-lean segments alternating),
/// logging per-rail power at the emulated 17 Hz → run-length mapping.
#[must_use]
pub fn run_timeseries(samples: usize, fidelity: Fidelity) -> TimeSeriesResult {
    let benches = table_ix_benchmarks();
    let gcc = benches
        .iter()
        .find(|b| b.name == "gcc-166")
        .expect("gcc-166");
    // Phase variants: lean (fewer misses) and heavy (profile as-is).
    let mut lean = gcc.profile;
    lean.mem_load_pct *= 0.3;
    lean.l2_load_pct *= 0.5;
    lean.int_pct += 4.0;
    lean.io_per_kinstr = 0.0;
    let heavy = gcc.profile;

    let mut sys = PitonSystem::reference_chip_2();
    sys.set_chunk_cycles(fidelity.chunk_cycles);
    let total_seconds = 38.28 * 60.0; // the paper's gcc-166 runtime
    let dt = total_seconds / samples as f64;

    let mut out = Vec::with_capacity(samples);
    let mut phase_heavy = true;
    for k in 0..samples {
        // Swap phases every eighth of the run (gcc's front-end/back-end
        // alternation).
        if k % (samples / 8).max(1) == 0 {
            phase_heavy = !phase_heavy;
            let profile = if phase_heavy { &heavy } else { &lean };
            sys.machine_mut()
                .load_thread(TileId::new(0), 0, spec_kernel(profile));
            sys.warm_up(fidelity.warmup_cycles.max(220_000));
        }
        let before = sys.machine().counters().clone();
        let r0 = sys.machine().core(TileId::new(0)).retired();
        sys.machine_mut().run(fidelity.chunk_cycles);
        let executed = sys.machine().core(TileId::new(0)).retired() - r0;
        let io_rate = if phase_heavy {
            gcc.profile.io_per_kinstr
        } else {
            0.0
        };
        let io = (executed as f64 * io_rate / 1_000.0).round() as u64;
        sys.machine_mut().record_io(io);
        let delta = sys.machine().counters().delta_since(&before);
        let p = sys.power_model().power(&delta, sys.operating_point());
        out.push((k as f64 * dt, p.vdd.as_mw(), p.vcs.as_mw(), p.vio.as_mw()));
    }
    TimeSeriesResult {
        samples: out,
        total_seconds,
    }
}

impl TimeSeriesResult {
    /// Renders a digest of the Figure 16 series.
    #[must_use]
    pub fn render(&self) -> String {
        let stat = |f: fn(&(f64, f64, f64, f64)) -> f64| {
            let vals: Vec<f64> = self.samples.iter().map(f).collect();
            let min = vals.iter().copied().fold(f64::MAX, f64::min);
            let max = vals.iter().copied().fold(f64::MIN, f64::max);
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            format!("min {min:.1} / mean {mean:.1} / max {max:.1} mW")
        };
        format!(
            "Figure 16: gcc-166 rail power over {:.0} s ({} samples)\n  Core (VDD): {}\n  SRAM (VCS): {}\n  I/O (VIO):  {}\n",
            self.total_seconds,
            self.samples.len(),
            stat(|s| s.1),
            stat(|s| s.2),
            stat(|s| s.3),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SpecResult {
        // Subset via full run at quick fidelity (13 kernels; each is a
        // single-core sim, cheap).
        run(Fidelity::quick())
    }

    #[test]
    fn slowdowns_land_in_the_paper_band_and_order_extremes() {
        let r = quick();
        for row in &r.rows {
            assert!(
                (2.0..=14.0).contains(&row.slowdown),
                "{}: slowdown {}",
                row.name,
                row.slowdown
            );
        }
        // The paper's extremes: h264ref fastest-relative, omnetpp worst.
        let h264 = r.row("h264ref-foreman-baseline").unwrap().slowdown;
        let omnetpp = r.row("omnetpp").unwrap().slowdown;
        assert!(omnetpp > 2.0 * h264, "omnetpp {omnetpp} vs h264 {h264}");
    }

    #[test]
    fn slowdowns_track_paper_within_forty_percent() {
        let r = quick();
        for (name, _, _, paper_slow, _, _) in paper_reference() {
            let row = r.row(name).unwrap();
            let dev = (row.slowdown - paper_slow).abs() / paper_slow;
            assert!(
                dev < 0.40,
                "{name}: slowdown {:.2} vs paper {paper_slow} ({:.0}%)",
                row.slowdown,
                dev * 100.0
            );
        }
    }

    #[test]
    fn average_power_is_marginally_above_idle() {
        // §IV-I: "The average power for SPECint benchmarks is marginally
        // larger than idle power, as only one core is active".
        let r = quick();
        for row in &r.rows {
            assert!(
                (1.95..=2.75).contains(&row.avg_power.0),
                "{}: power {}",
                row.name,
                row.avg_power.0
            );
        }
        // hmmer (heavy I/O) draws more than gcc.
        let hmmer = r.row("hmmer-nph3").unwrap().avg_power;
        let gcc = r.row("gcc-166").unwrap().avg_power;
        assert!(hmmer > gcc, "hmmer {hmmer} vs gcc {gcc}");
    }

    #[test]
    fn energy_correlates_with_execution_time() {
        let r = quick();
        let lib = r.row("libquantum").unwrap();
        let gcc = r.row("gcc-166").unwrap();
        assert!(lib.energy.0 > 10.0 * gcc.energy.0);
        // Energy ≈ power × time self-consistency.
        for row in &r.rows {
            let recomputed = row.avg_power.0 * row.piton_minutes * 60.0;
            assert!((recomputed - row.energy.0).abs() / row.energy.0 < 1e-9);
        }
    }

    #[test]
    fn timeseries_shows_io_phases() {
        let ts = run_timeseries(24, Fidelity::quick());
        assert_eq!(ts.samples.len(), 24);
        let io: Vec<f64> = ts.samples.iter().map(|s| s.3).collect();
        let min = io.iter().copied().fold(f64::MAX, f64::min);
        let max = io.iter().copied().fold(f64::MIN, f64::max);
        assert!(max > min + 5.0, "I/O rail must swing: {min}..{max}");
        assert!(ts.render().contains("gcc-166"));
    }

    #[test]
    fn table_viii_renders() {
        let s = SpecResult::render_table_viii();
        assert!(s.contains("UltraSPARC T1"));
        assert!(s.contains("848ns"));
    }
}
