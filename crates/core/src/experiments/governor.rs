//! Figures 9 & 18, closed-loop — the DVFS/thermal governor family.
//!
//! The open-loop experiments replay the paper's curves from solved
//! fixed points; this family regenerates two of them from the actual
//! feedback loop ([`piton_board::system::PitonSystem::run_governed`])
//! plus one study the paper never ran:
//!
//! * **Throttle boundary** (Figure 9, closed loop) — per chip and VDD,
//!   boot at the cold-die analog capability and let `ThrottleOnBoot`
//!   walk the PLL ladder until the junction holds; which points end up
//!   thermal- versus capability-limited must agree with the open-loop
//!   classification.
//! * **Hysteresis** (Figure 18, closed loop) — the two-phase
//!   application under synchronized and interleaved scheduling with the
//!   governor in the loop; the interleaved schedule must still run
//!   cooler.
//! * **Energy frontier** (no paper analogue) — the three policies race
//!   a finite workload to completion per chip; `EnergyFrontier`
//!   searches the V/F grid for minimum energy per cycle.

use piton_arch::config::ChipConfig;
use piton_arch::units::{Joules, Seconds, Volts};
use piton_board::population::NamedChip;
use piton_board::system::PitonSystem;
use piton_power::governor::{Governor, GovernorConfig};
use piton_power::model::PowerModel;
use piton_power::thermal::{Cooling, ThermalModel};
use piton_power::vf::VfSolver;
use piton_power::{Calibration, TechModel};
use piton_workloads::micro::{load_microbenchmark, Microbenchmark, RunLength, ThreadsPerCore};
use piton_workloads::thermal_app::{load_two_phase, Schedule};
use serde::{Deserialize, Serialize};

use super::thermal::{ScheduleTrace, SchedulingSample};
use super::Fidelity;
use crate::report::Table;
use crate::runner;

/// Human name of a reference die, Figure 9 style.
fn chip_label(chip: NamedChip) -> &'static str {
    match chip {
        NamedChip::Chip1 => "Chip #1",
        NamedChip::Chip2 => "Chip #2",
        NamedChip::Chip3 => "Chip #3",
    }
}

/// The capability solver for one die corner.
fn solver_for(chip: NamedChip) -> VfSolver {
    VfSolver::new(
        PowerModel::new(
            Calibration::piton_hpca18(),
            TechModel::ibm32soi(),
            chip.corner(),
        ),
        20.0,
    )
}

/// Control steps a closed-loop settle gets: enough for the throttle
/// walk to converge even at quick fidelity.
fn settle_steps(fidelity: Fidelity) -> usize {
    fidelity.samples.max(64)
}

/// One VDD point of the closed-loop throttle boundary.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BoundaryPoint {
    /// Socket-pin core voltage.
    pub vdd: Volts,
    /// Open-loop solved maximum boot frequency (MHz) — Figure 9's
    /// fixed-point answer.
    pub open_mhz: f64,
    /// Open-loop classification: thermally limited?
    pub open_thermal: bool,
    /// Frequency the closed loop settled at (MHz).
    pub closed_mhz: f64,
    /// Closed-loop classification: did the governor ever throttle?
    pub closed_thermal: bool,
}

/// One chip's boundary sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChipBoundary {
    /// Which die.
    pub chip: NamedChip,
    /// Nine points, 0.8 V to 1.2 V.
    pub points: Vec<BoundaryPoint>,
}

/// The closed-loop Figure 9 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThrottleBoundaryResult {
    /// Per-chip sweeps.
    pub chips: Vec<ChipBoundary>,
}

/// Runs the closed-loop throttle boundary: per chip and VDD, boot at
/// the cold-die analog capability under the boot-weight workload and
/// let [`GovernorConfig::ThrottleOnBoot`] find the holdable frequency.
/// Chips sweep on up to `fidelity.jobs` workers; results are
/// byte-identical at every jobs setting.
#[must_use]
pub fn run_throttle_boundary(fidelity: Fidelity) -> ThrottleBoundaryResult {
    let chips = runner::sweep(
        fidelity.jobs,
        vec![NamedChip::Chip1, NamedChip::Chip2, NamedChip::Chip3],
        move |i, chip| {
            let solver = solver_for(chip);
            let open = solver.sweep();
            let points = open
                .iter()
                .map(|o| {
                    let mut sys =
                        PitonSystem::new(&ChipConfig::piton(), chip.corner(), 0x90 + i as u64);
                    sys.set_chunk_cycles(fidelity.chunk_cycles);
                    sys.set_vdd_tracked(o.vdd);
                    // Boot-weight load: a Linux boot keeps roughly one
                    // core busy (the solver's boot activity factor), so
                    // the closed loop heats the die with one working
                    // core over the idle floor.
                    load_microbenchmark(
                        sys.machine_mut(),
                        Microbenchmark::Hp,
                        1,
                        ThreadsPerCore::Two,
                        RunLength::Forever,
                    );
                    // The PLL is programmed at the cold-die analog
                    // capability — the frequency the chip *would* run
                    // at if heat never mattered.
                    let cold = solver.capability(o.vdd, sys.thermal().junction_c());
                    let mut gov =
                        Governor::new(GovernorConfig::ThrottleOnBoot, solver.clone(), o.vdd, cold);
                    sys.set_frequency(gov.frequency());
                    sys.warm_up(fidelity.warmup_cycles);
                    // 30 s control steps: long against the heatsink's
                    // ~60 s surface time constant, so each decision
                    // sees a near-equilibrium junction and the ladder
                    // walk settles *at* the boundary instead of
                    // digging past it while the die is still hot.
                    let run =
                        sys.run_governed(&mut gov, settle_steps(fidelity), Some(Seconds(30.0)));
                    BoundaryPoint {
                        vdd: o.vdd,
                        open_mhz: o.freq.as_mhz(),
                        open_thermal: o.thermally_limited,
                        closed_mhz: run
                            .final_frequency()
                            .expect("forever workload always samples")
                            .as_mhz(),
                        closed_thermal: run.throttled_steps > 0,
                    }
                })
                .collect();
            ChipBoundary { chip, points }
        },
    );
    ThrottleBoundaryResult { chips }
}

impl ThrottleBoundaryResult {
    /// One chip's boundary.
    #[must_use]
    pub fn chip(&self, chip: NamedChip) -> &ChipBoundary {
        self.chips
            .iter()
            .find(|c| c.chip == chip)
            .expect("all three chips are swept")
    }

    /// Do open- and closed-loop thermal classifications agree at every
    /// point of every chip?
    #[must_use]
    pub fn classifications_agree(&self) -> bool {
        self.chips
            .iter()
            .flat_map(|c| &c.points)
            .all(|p| p.open_thermal == p.closed_thermal)
    }

    /// Renders the closed-loop Figure 9 table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = Table::new("Figure 9 (closed loop): throttle boundary from the DVFS governor");
        t.header([
            "VDD (V)",
            "Chip #1 (MHz)",
            "limit",
            "Chip #2 (MHz)",
            "limit",
            "Chip #3 (MHz)",
            "limit",
        ]);
        let label = |thermal: bool| {
            if thermal {
                "thermal".to_owned()
            } else {
                "timing".to_owned()
            }
        };
        for i in 0..self.chips[0].points.len() {
            let p1 = &self.chip(NamedChip::Chip1).points[i];
            let p2 = &self.chip(NamedChip::Chip2).points[i];
            let p3 = &self.chip(NamedChip::Chip3).points[i];
            t.row([
                format!("{:.2}", p1.vdd.0),
                format!("{:.1}", p1.closed_mhz),
                label(p1.closed_thermal),
                format!("{:.1}", p2.closed_mhz),
                label(p2.closed_thermal),
                format!("{:.1}", p3.closed_mhz),
                label(p3.closed_thermal),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "\nOpen/closed-loop limit classifications {}\n",
            if self.classifications_agree() {
                "agree at all 27 points"
            } else {
                "DISAGREE — closed loop drifted from the solver"
            }
        ));
        out
    }
}

/// One schedule's closed-loop Figure 18 trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GovernedScheduleTrace {
    /// The power/temperature time series, in the open-loop trace shape
    /// so the hysteresis metrics are shared.
    pub trace: ScheduleTrace,
    /// Governor operating-point changes over the run.
    pub transitions: u64,
    /// Steps decided at or above the thermal limit.
    pub throttled_steps: u64,
}

/// The closed-loop Figure 18 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HysteresisResult {
    /// Synchronized and interleaved traces.
    pub traces: Vec<GovernedScheduleTrace>,
}

/// Runs the closed-loop Figure 18 study: the two-phase application on
/// all 50 threads under both schedules on the §IV-J thermal rig (bare
/// package, half-effective fan), with a `ThrottleOnBoot` governor in
/// the loop starting from the paper's 100.01 MHz operating point.
#[must_use]
pub fn run_hysteresis(samples: usize, dt_seconds: f64, fidelity: Fidelity) -> HysteresisResult {
    let corner = piton_power::ChipCorner {
        speed: 1.01,
        leakage: 0.95,
        dynamic: 1.02,
    };
    let traces = runner::sweep(
        fidelity.jobs,
        vec![Schedule::Synchronized, Schedule::Interleaved],
        move |_, schedule| {
            let mut sys = PitonSystem::new(&ChipConfig::piton(), corner, 0x18);
            sys.set_chunk_cycles(fidelity.chunk_cycles);
            sys.set_vdd_tracked(Volts(0.9));
            // Same operating point as the open-loop study, *before*
            // warm-up — warming up at the default clock would settle
            // the bare-package rig far above the Figure 18 regime.
            sys.set_frequency(piton_arch::units::Hertz::from_mhz(100.01));
            *sys.thermal_mut() =
                ThermalModel::new(Cooling::BarePackageFan { effectiveness: 0.5 }, 20.0);
            let phase_iters = (fidelity.chunk_cycles / 4).max(200) as u32;
            load_two_phase(sys.machine_mut(), schedule, phase_iters);
            sys.warm_up(fidelity.warmup_cycles / 4);
            let solver = VfSolver::new(sys.power_model().clone(), 20.0);
            let mut gov = Governor::new(
                GovernorConfig::ThrottleOnBoot,
                solver,
                Volts(0.9),
                piton_arch::units::Hertz::from_mhz(100.01),
            );
            let run = sys.run_governed(&mut gov, samples, Some(Seconds(dt_seconds)));
            GovernedScheduleTrace {
                trace: ScheduleTrace {
                    schedule,
                    samples: run
                        .samples
                        .iter()
                        .map(|s| SchedulingSample {
                            time_s: s.time_s - dt_seconds,
                            power: s.power,
                            surface_c: s.surface_c,
                        })
                        .collect(),
                },
                transitions: run.transitions,
                throttled_steps: run.throttled_steps,
            }
        },
    );
    HysteresisResult { traces }
}

impl HysteresisResult {
    /// A trace by schedule.
    #[must_use]
    pub fn trace(&self, schedule: Schedule) -> &GovernedScheduleTrace {
        self.traces
            .iter()
            .find(|t| t.trace.schedule == schedule)
            .expect("both schedules present")
    }

    /// Renders the closed-loop Figure 18 digest.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = Table::new("Figure 18 (closed loop): scheduling under the DVFS governor");
        t.header([
            "Schedule",
            "Power swing (mW)",
            "Mean surface (°C)",
            "Hysteresis area (mW·°C)",
            "Transitions",
        ]);
        for tr in &self.traces {
            t.row([
                tr.trace.schedule.label().to_owned(),
                format!("{:.1}", tr.trace.power_swing().as_mw()),
                format!("{:.2}", tr.trace.mean_temperature_c()),
                format!("{:.2}", tr.trace.hysteresis_area() * 1e3),
                tr.transitions.to_string(),
            ]);
        }
        let sync = self
            .trace(Schedule::Synchronized)
            .trace
            .mean_temperature_c();
        let inter = self.trace(Schedule::Interleaved).trace.mean_temperature_c();
        let mut out = t.render();
        out.push_str(&format!(
            "\nInterleaved average temperature is {:.2} °C lower with the governor in the loop\n",
            sync - inter
        ));
        out
    }
}

/// One policy × chip race of the energy-frontier study.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FrontierRow {
    /// The policy that drove the run.
    pub policy: GovernorConfig,
    /// Which die.
    pub chip: NamedChip,
    /// Whether every thread halted within the step budget.
    pub completed: bool,
    /// Wall time to completion (s).
    pub time_s: f64,
    /// Chip energy integrated over the run.
    pub energy: Joules,
    /// Mean held frequency (MHz).
    pub mean_mhz: f64,
    /// Hottest junction seen (°C).
    pub peak_junction_c: f64,
}

/// The energy-frontier study (no paper analogue).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyFrontierResult {
    /// All policy × chip rows, policies major.
    pub rows: Vec<FrontierRow>,
}

/// Races a finite workload to completion under each policy on each
/// chip, in real (undilated) time — the energy/latency tradeoff the
/// `EnergyFrontier` policy optimizes. Jobs-deterministic like every
/// other grid.
#[must_use]
pub fn run_energy_frontier(fidelity: Fidelity) -> EnergyFrontierResult {
    let policies = [
        GovernorConfig::ThrottleOnBoot,
        GovernorConfig::RaceToHalt,
        GovernorConfig::EnergyFrontier,
    ];
    let chips = [NamedChip::Chip1, NamedChip::Chip2, NamedChip::Chip3];
    let grid: Vec<(GovernorConfig, NamedChip)> = policies
        .iter()
        .flat_map(|&p| chips.iter().map(move |&c| (p, c)))
        .collect();
    let rows = runner::sweep(fidelity.jobs, grid, move |_, (policy, chip)| {
        let mut sys = PitonSystem::new(&ChipConfig::piton(), chip.corner(), 0xEF);
        sys.set_chunk_cycles(fidelity.chunk_cycles);
        sys.set_vdd_tracked(Volts(1.0));
        let iters = (fidelity.chunk_cycles / 2).max(500) as u32;
        load_microbenchmark(
            sys.machine_mut(),
            Microbenchmark::Hp,
            50,
            ThreadsPerCore::Two,
            RunLength::Iterations(iters),
        );
        let solver = solver_for(chip);
        let cold = solver.capability(Volts(1.0), sys.thermal().junction_c());
        let mut gov = Governor::new(policy, solver, Volts(1.0), cold);
        let run = sys.run_governed(&mut gov, 4 * settle_steps(fidelity), None);
        FrontierRow {
            policy,
            chip,
            completed: run.completed,
            time_s: run.samples.last().map_or(0.0, |s| s.time_s),
            energy: run.energy,
            mean_mhz: run.mean_frequency().as_mhz(),
            peak_junction_c: run.peak_junction_c(),
        }
    });
    EnergyFrontierResult { rows }
}

impl EnergyFrontierResult {
    /// The row for one policy × chip pair.
    #[must_use]
    pub fn row(&self, policy: GovernorConfig, chip: NamedChip) -> &FrontierRow {
        self.rows
            .iter()
            .find(|r| r.policy == policy && r.chip == chip)
            .expect("full policy x chip grid")
    }

    /// Renders the frontier table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t =
            Table::new("Energy frontier: policies racing a fixed workload (no paper analogue)");
        t.header([
            "Policy",
            "Chip",
            "Done",
            "Time (ms)",
            "Energy (mJ)",
            "Mean f (MHz)",
            "Peak Tj (°C)",
        ]);
        for r in &self.rows {
            t.row([
                r.policy.label().to_owned(),
                chip_label(r.chip).to_owned(),
                if r.completed { "yes" } else { "NO" }.to_owned(),
                format!("{:.3}", r.time_s * 1e3),
                format!("{:.3}", r.energy.0 * 1e3),
                format!("{:.1}", r.mean_mhz),
                format!("{:.1}", r.peak_junction_c),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_matches_open_loop_classification() {
        let r = run_throttle_boundary(Fidelity::quick());
        assert_eq!(r.chips.len(), 3);
        for c in &r.chips {
            assert_eq!(c.points.len(), 9);
        }
        assert!(
            r.classifications_agree(),
            "closed loop must reproduce the Figure 9 thermal/timing split:\n{}",
            r.render()
        );
        // The known EXPERIMENTS.md deviation, now emerging from the
        // loop: Chip #1 is thermally limited at 1.2 V.
        let c1 = r.chip(NamedChip::Chip1).points.last().unwrap();
        assert!(c1.closed_thermal);
        assert!(c1.closed_mhz < c1.open_mhz * 1.05);
    }

    #[test]
    fn boundary_is_jobs_deterministic() {
        let serial = run_throttle_boundary(Fidelity::quick());
        let parallel = run_throttle_boundary(Fidelity::quick().with_jobs(4));
        assert_eq!(serial.render(), parallel.render());
    }

    #[test]
    fn hysteresis_keeps_interleaved_cooler() {
        let r = run_hysteresis(48, 1.0, Fidelity::quick());
        let sync = r.trace(Schedule::Synchronized);
        let inter = r.trace(Schedule::Interleaved);
        assert!(
            inter.trace.mean_temperature_c() <= sync.trace.mean_temperature_c() + 0.02,
            "interleaved {} vs synchronized {}",
            inter.trace.mean_temperature_c(),
            sync.trace.mean_temperature_c()
        );
        assert!(
            sync.trace.power_swing().0 > inter.trace.power_swing().0,
            "synchronized must swing harder"
        );
    }

    #[test]
    fn frontier_race_to_halt_is_fastest_and_frontier_is_thriftiest() {
        let r = run_energy_frontier(Fidelity::quick());
        assert_eq!(r.rows.len(), 9);
        for &chip in &[NamedChip::Chip1, NamedChip::Chip2, NamedChip::Chip3] {
            let race = r.row(GovernorConfig::RaceToHalt, chip);
            let frontier = r.row(GovernorConfig::EnergyFrontier, chip);
            assert!(race.completed, "{}", chip_label(chip));
            assert!(frontier.completed, "{}", chip_label(chip));
            assert!(
                frontier.energy.0 <= race.energy.0 * 1.001,
                "{}: frontier {} J vs race {} J",
                chip_label(chip),
                frontier.energy.0,
                race.energy.0
            );
        }
    }

    #[test]
    fn renders_name_their_figures() {
        assert!(run_throttle_boundary(Fidelity::quick())
            .render()
            .contains("Figure 9 (closed loop)"));
        assert!(run_hysteresis(12, 1.0, Fidelity::quick())
            .render()
            .contains("Figure 18 (closed loop)"));
        assert!(run_energy_frontier(Fidelity::quick())
            .render()
            .contains("Energy frontier"));
    }
}
