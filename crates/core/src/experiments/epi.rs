//! Figure 11 + Table VI — energy per instruction.
//!
//! For each instruction class the §IV-E assembly test runs on all 25
//! cores until steady state; EPI is computed with the paper's formula
//! from the measured power, the measured idle power and the Table VI
//! latency. Instructions with input operands are swept over
//! minimum/random/maximum operand values. The `stx (NF)` case subtracts
//! the energy of its nine drain-`nop`s, exactly as §IV-E describes.

use piton_arch::error::PitonError;
use piton_arch::isa::{Opcode, OperandPattern};
use piton_board::fault::{self, FaultPlan};
use piton_board::system::PitonSystem;
use piton_workloads::epi::{epi_test, EpiCase, StoreVariant, STX_DRAIN_NOPS};
use serde::{Deserialize, Serialize};

use super::Fidelity;
use crate::measure::{epi_with_error, WithError};
use crate::report::{render_holes, Hole, Table, HOLE_MARK};
use crate::runner;

/// EPI of one case under each operand pattern (pJ).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpiRow {
    /// Figure 11 x-axis label.
    pub label: String,
    /// Table VI latency used in the formula.
    pub latency: u64,
    /// `(pattern, EPI ± error in pJ)`; a single `Random` entry for
    /// operand-free instructions.
    pub epi_pj: Vec<(OperandPattern, WithError)>,
}

impl EpiRow {
    /// EPI under one pattern, if measured.
    #[must_use]
    pub fn at(&self, pattern: OperandPattern) -> Option<WithError> {
        self.epi_pj
            .iter()
            .find(|(p, _)| *p == pattern)
            .map(|(_, e)| *e)
    }
}

/// The Figure 11 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpiResult {
    /// One row per Figure 11 case.
    pub rows: Vec<EpiRow>,
    /// Measured idle power used in the subtraction (mW).
    pub idle_mw: f64,
    /// Grid points lost to injected faults (empty without a fault plan).
    pub holes: Vec<Hole>,
}

/// Paper anchors (random operands) readable from Figure 11 / §IV-E
/// prose: the `ldx` L1-hit EPI (Table VII) and the three-adds-per-load
/// relation.
#[must_use]
pub fn paper_ldx_epi_pj() -> f64 {
    286.46
}

/// Decorrelates the monitor-fault stream of one sweep attempt from
/// every other point and attempt; the plan seed is further mixed per
/// channel, so a plain xor suffices for distinctness.
fn attempt_seed(index: usize, attempt: u32) -> u64 {
    ((index as u64) << 32) ^ u64::from(attempt)
}

/// Figure 11 cell label, shared by the sweep and the hole trailer.
fn point_label(case: EpiCase, pattern: OperandPattern) -> String {
    format!("{}/{}", case.label(), pattern)
}

fn measure_case(
    case: EpiCase,
    pattern: OperandPattern,
    idle: (f64, f64),
    fidelity: Fidelity,
    nop_epi: Option<f64>,
    plan: Option<&FaultPlan>,
    seed: u64,
) -> Result<WithError, PitonError> {
    let mut sys = PitonSystem::reference_chip_2();
    sys.set_chunk_cycles(fidelity.chunk_cycles);
    if let Some(plan) = plan {
        let mut plan = plan.clone();
        plan.seed ^= seed;
        sys.inject_faults(&plan);
    }
    for t in 0..25 {
        let p = epi_test(case, pattern, t);
        sys.machine_mut()
            .load_thread(piton_arch::TileId::new(t), 0, p);
    }
    sys.warm_up(fidelity.warmup_cycles);
    let m = sys.try_measure(fidelity.samples)?;
    let f = sys.frequency();
    let latency = case.opcode().base_latency();
    let mut epi = epi_with_error(
        m.total.mean,
        m.total.stddev,
        piton_arch::units::Watts(idle.0),
        piton_arch::units::Watts(idle.1),
        f,
        latency,
    );
    if case == EpiCase::Store(StoreVariant::NotFull) {
        // The measured 10-cycle group contains the store plus nine
        // nops; subtract their energy (§IV-E).
        let nop = nop_epi.expect("nop EPI measured before stx (NF)");
        epi.value -= STX_DRAIN_NOPS as f64 * nop;
    }
    Ok(epi)
}

/// Runs a chosen subset of cases (tests use a few; the harness runs all).
#[must_use]
pub fn run_cases(cases: &[EpiCase], fidelity: Fidelity) -> EpiResult {
    // Idle baseline.
    let mut sys = PitonSystem::reference_chip_2();
    sys.set_chunk_cycles(fidelity.chunk_cycles);
    sys.warm_up(fidelity.warmup_cycles);
    let idle_m = sys.measure(fidelity.samples);
    let idle = (idle_m.total.mean.0, idle_m.total.stddev.0);

    // nop EPI first (needed by the stx (NF) subtraction); baselines are
    // always measured fault-free so one glitchy window cannot poison
    // every row of the table.
    let nop_epi = measure_case(
        EpiCase::Plain(Opcode::Nop),
        OperandPattern::Random,
        idle,
        fidelity,
        None,
        None,
        0,
    )
    .expect("fault-free baseline measurement cannot fail");

    // Every remaining (case, pattern) point builds its own system, so
    // the grid fans out across the sweep workers; regrouping by case
    // afterwards keeps the row order identical at any jobs level.
    let plan = fidelity.fault.map(fault::lookup);
    let grid: Vec<(EpiCase, OperandPattern)> = cases
        .iter()
        .flat_map(|&case| {
            let patterns: &[OperandPattern] = if case.has_value_operands() {
                &OperandPattern::ALL
            } else {
                &[OperandPattern::Random]
            };
            patterns.iter().map(move |&p| (case, p))
        })
        .collect();
    let measured = runner::try_sweep_journaled(
        fidelity.jobs,
        grid.clone(),
        runner::RetryPolicy::default(),
        "epi",
        plan.as_ref(),
        fidelity.journal,
        |index, &(case, pattern), attempt| {
            if let Some(plan) = &plan {
                fault::sabotage_gate(plan, "epi", index, attempt)?;
            }
            if case == EpiCase::Plain(Opcode::Nop) {
                Ok(nop_epi)
            } else {
                measure_case(
                    case,
                    pattern,
                    idle,
                    fidelity,
                    Some(nop_epi.value),
                    plan.as_ref(),
                    attempt_seed(index, attempt),
                )
            }
        },
    );

    let holes: Vec<Hole> = grid
        .iter()
        .zip(&measured)
        .filter_map(|(&(case, pattern), r)| {
            r.as_ref()
                .err()
                .map(|e| Hole::from_point("epi", point_label(case, pattern), e))
        })
        .collect();
    let rows = cases
        .iter()
        .map(|&case| EpiRow {
            label: case.label(),
            latency: case.opcode().base_latency(),
            epi_pj: grid
                .iter()
                .zip(&measured)
                .filter(|((c, _), _)| *c == case)
                .filter_map(|(&(_, p), e)| e.as_ref().ok().map(|&e| (p, e)))
                .collect(),
        })
        .collect();
    EpiResult {
        rows,
        idle_mw: idle.0 * 1e3,
        holes,
    }
}

/// Runs the full Figure 11 sweep.
#[must_use]
pub fn run(fidelity: Fidelity) -> EpiResult {
    run_cases(&EpiCase::figure_11(), fidelity)
}

impl EpiResult {
    /// A row by its Figure 11 label.
    #[must_use]
    pub fn row(&self, label: &str) -> Option<&EpiRow> {
        self.rows.iter().find(|r| r.label == label)
    }

    /// Exports the Figure 11 dataset as CSV (one row per instruction,
    /// one column per operand pattern, pJ).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut t = Table::new("");
        t.header([
            "instruction",
            "latency_cycles",
            "epi_min_pj",
            "epi_random_pj",
            "epi_max_pj",
        ]);
        for r in &self.rows {
            let fmt = |p: OperandPattern| {
                r.at(p)
                    .map_or_else(String::new, |e| format!("{:.2}", e.value))
            };
            t.row([
                r.label.clone(),
                r.latency.to_string(),
                fmt(OperandPattern::Minimum),
                fmt(OperandPattern::Random),
                fmt(OperandPattern::Maximum),
            ]);
        }
        t.to_csv()
    }

    /// Renders Figure 11 (plus the Table VI latencies).
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = Table::new(&format!(
            "Figure 11: EPI by instruction and operand value (idle {:.1} mW)",
            self.idle_mw
        ));
        t.header([
            "Instruction",
            "Latency (cyc)",
            "EPI min (pJ)",
            "EPI random (pJ)",
            "EPI max (pJ)",
        ]);
        for r in &self.rows {
            let fmt = |p: OperandPattern| {
                r.at(p).map_or_else(
                    || {
                        let label = format!("{}/{p}", r.label);
                        if self.holes.iter().any(|h| h.covers(&label)) {
                            HOLE_MARK.to_owned()
                        } else {
                            "-".to_owned()
                        }
                    },
                    |e| format!("{e:.0}"),
                )
            };
            t.row([
                r.label.clone(),
                r.latency.to_string(),
                fmt(OperandPattern::Minimum),
                fmt(OperandPattern::Random),
                fmt(OperandPattern::Maximum),
            ]);
        }
        let mut out = t.render();
        out.push_str(&render_holes(&self.holes));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cases() -> EpiResult {
        run_cases(
            &[
                EpiCase::Plain(Opcode::Nop),
                EpiCase::Plain(Opcode::Add),
                EpiCase::Plain(Opcode::Sdivx),
                EpiCase::Load,
            ],
            Fidelity::quick(),
        )
    }

    #[test]
    fn ldx_epi_matches_the_table_vii_anchor() {
        let r = quick_cases();
        let ldx = r.row("ldx").unwrap().at(OperandPattern::Random).unwrap();
        let dev = (ldx.value - paper_ldx_epi_pj()).abs() / paper_ldx_epi_pj();
        assert!(
            dev < 0.25,
            "ldx EPI {:.1} pJ vs paper {:.1} ({:.0}%)",
            ldx.value,
            paper_ldx_epi_pj(),
            dev * 100.0
        );
    }

    #[test]
    fn three_adds_cost_one_l1_load() {
        // The §IV-E recompute-vs-load insight.
        let r = quick_cases();
        let add = r.row("add").unwrap().at(OperandPattern::Random).unwrap();
        let ldx = r.row("ldx").unwrap().at(OperandPattern::Random).unwrap();
        let ratio = ldx.value / add.value;
        assert!((2.2..=3.8).contains(&ratio), "ldx/add ratio {ratio:.2}");
    }

    #[test]
    fn operand_values_shift_epi() {
        let r = quick_cases();
        let add = r.row("add").unwrap();
        let min = add.at(OperandPattern::Minimum).unwrap().value;
        let max = add.at(OperandPattern::Maximum).unwrap().value;
        assert!(
            max > 1.15 * min,
            "operand effect too small: min {min:.1}, max {max:.1}"
        );
    }

    #[test]
    fn long_latency_instructions_cost_most() {
        let r = quick_cases();
        let add = r.row("add").unwrap().at(OperandPattern::Random).unwrap();
        let div = r.row("sdivx").unwrap().at(OperandPattern::Random).unwrap();
        assert!(
            div.value > 4.0 * add.value,
            "sdivx {} vs add {}",
            div.value,
            add.value
        );
    }

    #[test]
    fn nop_has_single_pattern() {
        let r = quick_cases();
        let nop = r.row("nop").unwrap();
        assert_eq!(nop.epi_pj.len(), 1);
        assert!(nop.at(OperandPattern::Random).unwrap().value > 0.0);
    }

    #[test]
    fn render_is_complete() {
        let s = quick_cases().render();
        assert!(s.contains("sdivx"));
        assert!(s.contains("Latency"));
    }
}
