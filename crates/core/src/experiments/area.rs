//! Figure 8 — detailed area breakdown at chip, tile and core level.
//!
//! The percentages come straight from the floorplan database (the
//! paper's place-and-route sums); this experiment re-derives them and
//! checks completeness.

use piton_arch::floorplan::{figure_8, AreaBreakdown, Level};
use serde::{Deserialize, Serialize};

use crate::report::Table;

/// One rendered panel of Figure 8.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AreaPanel {
    /// Hierarchy level.
    pub level: Level,
    /// Floorplanned total in mm².
    pub total_mm2: f64,
    /// `(block, area mm², percent)` rows.
    pub blocks: Vec<(String, f64, f64)>,
}

/// All three panels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AreaResult {
    /// Chip, tile and core panels.
    pub panels: Vec<AreaPanel>,
}

fn panel(b: &AreaBreakdown) -> AreaPanel {
    AreaPanel {
        level: b.level(),
        total_mm2: b.total_area_mm2(),
        blocks: b
            .blocks()
            .iter()
            .map(|blk| {
                (
                    blk.name.clone(),
                    blk.area_mm2,
                    b.percent(&blk.name).unwrap_or(0.0),
                )
            })
            .collect(),
    }
}

/// Derives the Figure 8 panels.
#[must_use]
pub fn run() -> AreaResult {
    AreaResult {
        panels: figure_8().iter().map(panel).collect(),
    }
}

impl AreaResult {
    /// Renders all three panels.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for p in &self.panels {
            let mut t = Table::new(&format!(
                "Figure 8 ({} level, total {:.5} mm²)",
                p.level, p.total_mm2
            ));
            t.header(["Block", "Area (mm²)", "Percent"]);
            for (name, area, pct) in &p.blocks {
                t.row([name.clone(), format!("{area:.5}"), format!("{pct:.2}%")]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_panels_with_paper_percentages() {
        let r = run();
        assert_eq!(r.panels.len(), 3);
        let tile = &r.panels[1];
        assert_eq!(tile.level, Level::Tile);
        let core = tile
            .blocks
            .iter()
            .find(|(n, _, _)| n == "Core")
            .expect("core block");
        assert!((core.2 - 47.0).abs() < 0.01);
    }

    #[test]
    fn each_panel_sums_to_its_total() {
        for p in run().panels {
            let sum: f64 = p.blocks.iter().map(|(_, a, _)| a).sum();
            assert!(
                (sum - p.total_mm2).abs() / p.total_mm2 < 5e-4,
                "{}: {sum} vs {}",
                p.level,
                p.total_mm2
            );
        }
    }

    #[test]
    fn render_mentions_key_blocks() {
        let s = run().render();
        assert!(s.contains("L2 Cache"));
        assert!(s.contains("Load/Store"));
        assert!(s.contains("Chip Bridge"));
    }
}
