//! Figure 10 + Table V — static and idle power versus voltage and
//! frequency.
//!
//! For each VDD from 0.8 V to 1.2 V (VCS tracking +0.05 V) the chip
//! runs at the *minimum* of the three chips' maximum frequencies
//! (§IV-D), static power is measured with clocks grounded, idle power
//! with clocks running and resets released, and both are split into
//! their VDD (core) and VCS (SRAM) contributions and averaged across
//! the three chips.

use piton_arch::units::{Hertz, Volts, Watts};
use piton_board::population::NamedChip;
use piton_board::system::PitonSystem;
use serde::{Deserialize, Serialize};

use super::{vf_sweep, Fidelity};
use crate::report::Table;
use crate::runner;

/// One voltage/frequency point of Figure 10 (three-chip average).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StaticIdlePoint {
    /// Core voltage.
    pub vdd: Volts,
    /// Operating frequency (min of the three chips' maxima).
    pub freq: Hertz,
    /// Static power, core rail.
    pub static_vdd: Watts,
    /// Static power, SRAM rail.
    pub static_vcs: Watts,
    /// Idle *dynamic* power (idle − static), core rail.
    pub dynamic_vdd: Watts,
    /// Idle dynamic power, SRAM rail.
    pub dynamic_vcs: Watts,
}

impl StaticIdlePoint {
    /// Total idle power at this point.
    #[must_use]
    pub fn idle_total(&self) -> Watts {
        self.static_vdd + self.static_vcs + self.dynamic_vdd + self.dynamic_vcs
    }

    /// Total static power at this point.
    #[must_use]
    pub fn static_total(&self) -> Watts {
        self.static_vdd + self.static_vcs
    }
}

/// The Figure 10 sweep plus the Table V defaults.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StaticIdleResult {
    /// One point per voltage step.
    pub points: Vec<StaticIdlePoint>,
    /// Table V: Chip #2 static power at the default operating point.
    pub table_v_static: Watts,
    /// Table V: Chip #2 idle power at 500.05 MHz.
    pub table_v_idle: Watts,
}

/// Paper values of Table V.
#[must_use]
pub fn paper_table_v() -> (Watts, Watts) {
    (Watts::from_mw(389.3), Watts::from_mw(2015.3))
}

fn measure_chip(
    chip: NamedChip,
    vdd: Volts,
    freq: Hertz,
    fidelity: Fidelity,
) -> (Watts, Watts, Watts, Watts) {
    let mut sys = PitonSystem::new(
        &piton_arch::config::ChipConfig::piton(),
        chip.corner(),
        0xF10 + chip as u64,
    );
    sys.set_chunk_cycles(fidelity.chunk_cycles);
    sys.set_vdd_tracked(vdd);
    sys.set_frequency(freq);

    let s = {
        let op = sys.operating_point();
        sys.power_model().static_power(op)
    };
    sys.warm_up(fidelity.warmup_cycles);
    let idle = sys.measure(fidelity.samples);
    (
        s.vdd,
        s.vcs,
        (idle.vdd.mean - s.vdd).max(Watts::ZERO),
        (idle.vcs.mean - s.vcs).max(Watts::ZERO),
    )
}

/// Runs the Figure 10 sweep and the Table V defaults.
#[must_use]
pub fn run(fidelity: Fidelity) -> StaticIdleResult {
    let vf = vf_sweep::run_with_jobs(fidelity.jobs);
    // 9 voltage steps × 3 chips, averaged per step after the sweep.
    let grid: Vec<(Volts, Hertz, NamedChip)> = vf
        .chip(NamedChip::Chip2)
        .points
        .iter()
        .enumerate()
        .flat_map(|(i, p)| {
            let freq = Hertz::from_mhz(vf.min_fmax_mhz(i));
            [NamedChip::Chip1, NamedChip::Chip2, NamedChip::Chip3]
                .into_iter()
                .map(move |chip| (p.vdd, freq, chip))
        })
        .collect();
    let measured = runner::sweep(fidelity.jobs, grid.clone(), |_, (vdd, freq, chip)| {
        measure_chip(chip, vdd, freq, fidelity)
    });

    let points = grid
        .chunks(3)
        .zip(measured.chunks(3))
        .map(|(step, rails)| {
            let mut acc = [Watts::ZERO; 4];
            for &(sv, sc, dv, dc) in rails {
                acc[0] += sv;
                acc[1] += sc;
                acc[2] += dv;
                acc[3] += dc;
            }
            StaticIdlePoint {
                vdd: step[0].0,
                freq: step[0].1,
                static_vdd: acc[0] / 3.0,
                static_vcs: acc[1] / 3.0,
                dynamic_vdd: acc[2] / 3.0,
                dynamic_vcs: acc[3] / 3.0,
            }
        })
        .collect();

    // Table V: Chip #2 at the Table III defaults.
    let mut sys = PitonSystem::reference_chip_2();
    sys.set_chunk_cycles(fidelity.chunk_cycles);
    let table_v_static = sys.measure_static_power().mean;
    let table_v_idle = sys.measure_idle_power().mean;

    StaticIdleResult {
        points,
        table_v_static,
        table_v_idle,
    }
}

impl StaticIdleResult {
    /// Renders Figure 10 + Table V.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t =
            Table::new("Figure 10: static and idle power vs voltage/frequency (3-chip average)");
        t.header([
            "VDD (V)",
            "f (MHz)",
            "Core static (mW)",
            "SRAM static (mW)",
            "Core dynamic (mW)",
            "SRAM dynamic (mW)",
            "Idle total (W)",
        ]);
        for p in &self.points {
            t.row([
                format!("{:.2}", p.vdd.0),
                format!("{:.2}", p.freq.as_mhz()),
                format!("{:.1}", p.static_vdd.as_mw()),
                format!("{:.1}", p.static_vcs.as_mw()),
                format!("{:.1}", p.dynamic_vdd.as_mw()),
                format!("{:.1}", p.dynamic_vcs.as_mw()),
                format!("{:.3}", p.idle_total().0),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "\nTable V (Chip #2 defaults): static {:.1} mW, idle {:.1} mW\n",
            self.table_v_static.as_mw(),
            self.table_v_idle.as_mw()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_defaults_match_paper() {
        let r = run(Fidelity::quick());
        let (paper_static, paper_idle) = paper_table_v();
        assert!(
            (r.table_v_static.as_mw() - paper_static.as_mw()).abs() < 30.0,
            "static {}",
            r.table_v_static.as_mw()
        );
        assert!(
            (r.table_v_idle.as_mw() - paper_idle.as_mw()).abs() < 40.0,
            "idle {}",
            r.table_v_idle.as_mw()
        );
    }

    #[test]
    fn power_rises_superlinearly_with_voltage() {
        let r = run(Fidelity::quick());
        let first = &r.points[0]; // 0.8 V
        let nominal = &r.points[4]; // 1.0 V
        let last = &r.points[7]; // 1.15 V (1.2 V is throttled)
        assert!(nominal.idle_total().0 > 1.5 * first.idle_total().0);
        assert!(last.idle_total().0 > 1.3 * nominal.idle_total().0);
        // Static grows faster than linearly in V.
        let sr = last.static_total().0 / first.static_total().0;
        let vr = last.vdd.0 / first.vdd.0;
        assert!(sr > vr, "static ratio {sr} vs voltage ratio {vr}");
    }

    #[test]
    fn sram_and_core_rails_both_contribute() {
        let r = run(Fidelity::quick());
        for p in &r.points {
            assert!(p.static_vdd.0 > 0.0 && p.static_vcs.0 > 0.0);
            assert!(p.dynamic_vdd.0 > 0.0 && p.dynamic_vcs.0 > 0.0);
            // Core dominates the idle dynamic power (clock tree).
            assert!(p.dynamic_vdd > p.dynamic_vcs);
        }
    }

    #[test]
    fn render_has_nine_rows() {
        let r = run(Fidelity::quick());
        assert_eq!(r.points.len(), 9);
        assert!(r.render().contains("Table V"));
    }
}
