//! Figure 15 — memory latency breakdown of a `ldx` from tile0.
//!
//! Renders the chipset path's per-component cycle table and verifies it
//! end-to-end against the simulator: a cold load from tile0 must take
//! ≈ 424 cycles (the Table VII L2-miss latency), the Figure 15 path
//! accounting for ~395 of them.

use piton_arch::config::ChipConfig;
use piton_arch::topology::TileId;
use piton_arch::units::Seconds;
use piton_sim::chipset::{figure15_segments, PathSegment};
use piton_sim::events::ActivityCounters;
use piton_sim::memsys::MemorySystem;
use serde::Serialize;

use crate::report::Table;

/// The Figure 15 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct MemLatencyResult {
    /// Per-component path segments.
    pub segments: Vec<PathSegment>,
    /// Sum of the segments (the paper's "~395 Total Round Trip Cycles").
    pub path_cycles: u64,
    /// Path round trip in nanoseconds at 500.05 MHz.
    pub path_ns: f64,
    /// Measured end-to-end `ldx` miss latency from the simulator
    /// (includes the on-chip issue/fill overhead beyond the path).
    pub measured_ldx_miss_cycles: u64,
}

/// Runs the latency walk.
#[must_use]
pub fn run() -> MemLatencyResult {
    let segments = figure15_segments();
    let path_cycles: u64 = segments.iter().map(|s| s.cycles).sum();
    let period: Seconds = piton_arch::units::Hertz::from_mhz(500.05).period();
    let path_ns = period.as_ns() * path_cycles as f64;

    let mut sys = MemorySystem::new(&ChipConfig::piton());
    let mut act = ActivityCounters::default();
    let out = sys.load(TileId::new(0), 0x40, 0, &mut act);

    MemLatencyResult {
        segments,
        path_cycles,
        path_ns,
        measured_ldx_miss_cycles: out.latency,
    }
}

impl MemLatencyResult {
    /// Renders the Figure 15 table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = Table::new(&format!(
            "Figure 15: memory latency breakdown (~{} path cycles = ~{:.0} ns; measured ldx miss {} cycles)",
            self.path_cycles, self.path_ns, self.measured_ldx_miss_cycles
        ));
        t.header(["Component", "Activity", "Cycles @ 500.05 MHz"]);
        for s in &self.segments {
            t.row([s.component, s.activity, &s.cycles.to_string()]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_matches_figure_15_totals() {
        let r = run();
        assert_eq!(r.path_cycles, 395);
        assert!((r.path_ns - 790.0).abs() < 2.0);
    }

    #[test]
    fn end_to_end_matches_table_vii_l2_miss() {
        let r = run();
        assert!(
            (424..450).contains(&r.measured_ldx_miss_cycles),
            "measured {}",
            r.measured_ldx_miss_cycles
        );
    }

    #[test]
    fn gateway_overhead_is_visible() {
        // §IV-I: "Almost 80 cycles are spent in the gateway FPGA" side
        // of the path (chip bridge + gateway + FMC buffering on the way
        // out).
        let r = run();
        let outbound_fpga: u64 = r.segments.iter().take(4).skip(1).map(|s| s.cycles).sum();
        assert!((70..=95).contains(&outbound_fpga), "{outbound_fpga}");
    }

    #[test]
    fn render_lists_dram_double_access() {
        assert!(run().render().contains("2x"));
    }
}
