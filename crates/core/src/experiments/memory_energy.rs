//! Table VII — memory system energy for different cache hit/miss
//! scenarios.
//!
//! A single core (tile0) runs the §IV-F alias walker for each scenario
//! with the line-to-slice mapping set to high-order address bits, so
//! the home slice (local, 4 hops, 8 hops) is controlled by the address
//! region. Energy per load is the measured extra power divided by the
//! load completion rate — the quantity the paper's formula computes,
//! and the form that stays correct when the off-chip path serializes
//! (the L2-miss row). Latencies are verified directly against the
//! memory system, as the paper verifies them in simulation.

use piton_arch::config::{ChipConfig, SliceMapping};
use piton_arch::isa::Opcode;
use piton_arch::topology::TileId;
use piton_arch::units::Seconds;
use piton_board::system::PitonSystem;
use piton_sim::events::ActivityCounters;
use piton_sim::memsys::MemorySystem;
use piton_workloads::memwalk::{ldx_walker, scenario_addresses, MemScenario};
use serde::{Deserialize, Serialize};

use super::Fidelity;
use crate::measure::WithError;
use crate::report::Table;

/// One Table VII row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemEnergyRow {
    /// Scenario label as printed in Table VII.
    pub label: String,
    /// Load latency in cycles (verified against the memory system).
    pub latency_cycles: u64,
    /// Mean energy per `ldx` in nJ.
    pub energy_nj: WithError,
}

/// The Table VII dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemEnergyResult {
    /// The five scenario rows.
    pub rows: Vec<MemEnergyRow>,
}

/// Paper values of Table VII: `(label, latency, energy nJ)`.
#[must_use]
pub fn paper_reference() -> Vec<(&'static str, u64, f64)> {
    vec![
        ("L1 Hit", 3, 0.28646),
        ("L1 Miss, Local L2 Hit", 34, 1.54),
        ("L1 Miss, Remote L2 Hit (4 hops)", 42, 1.87),
        ("L1 Miss, Remote L2 Hit (8 hops)", 52, 1.97),
        ("L1 Miss, Local L2 Miss", 424, 308.7),
    ]
}

fn high_mapped_config() -> ChipConfig {
    let mut cfg = ChipConfig::piton();
    cfg.slice_mapping = SliceMapping::High;
    cfg
}

/// Probes the steady-state load latency of a scenario directly.
fn probe_latency(scenario: MemScenario) -> u64 {
    let cfg = high_mapped_config();
    let mut sys = MemorySystem::new(&cfg);
    let mut act = ActivityCounters::default();
    let addrs = scenario_addresses(scenario, cfg.l1d, cfg.l2);
    // Warm by walking the set twice, then measure the steady pattern.
    let mut now = 0;
    let mut last = 0;
    for round in 0..3 {
        for &a in &addrs {
            let out = sys.load(TileId::new(0), a, now, &mut act);
            now += out.latency + 1;
            if round == 2 {
                last = out.latency;
            }
        }
    }
    last
}

fn measure_scenario(scenario: MemScenario, fidelity: Fidelity) -> WithError {
    let cfg = high_mapped_config();
    let addrs = scenario_addresses(scenario, cfg.l1d, cfg.l2);

    // Idle baseline on the same configuration.
    let mut idle_sys = PitonSystem::new(&cfg, piton_power::ChipCorner::typical(), 0x77);
    idle_sys.set_chunk_cycles(fidelity.chunk_cycles);
    idle_sys.warm_up(fidelity.warmup_cycles / 2);
    let idle = idle_sys.measure(fidelity.samples);

    let mut sys = PitonSystem::new(&cfg, piton_power::ChipCorner::typical(), 0x78);
    sys.set_chunk_cycles(fidelity.chunk_cycles);
    sys.machine_mut()
        .load_thread(TileId::new(0), 0, ldx_walker(&addrs));
    sys.warm_up(fidelity.warmup_cycles);

    let loads_before = sys.machine().counters().issues[Opcode::Ldx.index()];
    let cycles_before = sys.machine().counters().cycles;
    let m = sys.measure(fidelity.samples);
    let loads = sys.machine().counters().issues[Opcode::Ldx.index()] - loads_before;
    let cycles = sys.machine().counters().cycles - cycles_before;

    let window: Seconds = sys.frequency().period() * cycles as f64;
    let delta_w = m.total.mean - idle.total.mean;
    let e_nj =
        crate::measure::energy_per_op_nj(idle.total.mean + delta_w, idle.total.mean, window, loads);
    let err = (m.total.stddev.0.powi(2) + idle.total.stddev.0.powi(2)).sqrt() * window.0
        / loads as f64
        * 1e9;
    WithError::new(e_nj, err)
}

/// Runs the five Table VII scenarios.
#[must_use]
pub fn run(fidelity: Fidelity) -> MemEnergyResult {
    let rows = MemScenario::table_vii()
        .into_iter()
        .map(|(scenario, label)| MemEnergyRow {
            label: label.to_owned(),
            latency_cycles: probe_latency(scenario),
            energy_nj: measure_scenario(scenario, fidelity),
        })
        .collect();
    MemEnergyResult { rows }
}

impl MemEnergyResult {
    /// A row by label.
    #[must_use]
    pub fn row(&self, label: &str) -> Option<&MemEnergyRow> {
        self.rows.iter().find(|r| r.label == label)
    }

    /// Exports the Table VII ladder as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut t = Table::new("");
        t.header(["scenario", "latency_cycles", "energy_nj", "energy_err_nj"]);
        for r in &self.rows {
            t.row([
                r.label.clone(),
                r.latency_cycles.to_string(),
                format!("{:.5}", r.energy_nj.value),
                format!("{:.5}", r.energy_nj.error),
            ]);
        }
        t.to_csv()
    }

    /// Renders Table VII with paper deviations.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = Table::new("Table VII: memory system energy per ldx");
        t.header([
            "Cache Hit/Miss Scenario",
            "Latency (cycles)",
            "Mean LDX Energy (nJ)",
            "Paper (nJ)",
            "vs paper",
        ]);
        for (row, (_, paper_lat, paper_nj)) in self.rows.iter().zip(paper_reference()) {
            let _ = paper_lat;
            t.row([
                row.label.clone(),
                row.latency_cycles.to_string(),
                format!("{:.5}", row.energy_nj.value),
                format!("{paper_nj}"),
                crate::report::vs_paper(row.energy_nj.value, paper_nj),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_table_vii_exactly() {
        for (scenario, label) in MemScenario::table_vii() {
            let expect = paper_reference()
                .into_iter()
                .find(|(l, _, _)| *l == label)
                .unwrap()
                .1;
            let got = probe_latency(scenario);
            if matches!(scenario, MemScenario::L2Miss) {
                // Jittered ("memory access latency varies", the paper
                // uses an average).
                assert!(
                    (expect..expect + 20).contains(&got),
                    "{label}: {got} vs ~{expect}"
                );
            } else {
                assert_eq!(got, expect, "{label}");
            }
        }
    }

    #[test]
    fn energy_ladder_is_monotonic_and_in_band() {
        let r = run(Fidelity::quick());
        let vals: Vec<f64> = r.rows.iter().map(|row| row.energy_nj.value).collect();
        // L1 < local L2 < remote 4 < remote 8 << miss.
        assert!(vals[0] < vals[1], "L1 {} vs L2 {}", vals[0], vals[1]);
        assert!(vals[1] < vals[2]);
        assert!(vals[2] < vals[3]);
        assert!(
            vals[4] > 50.0 * vals[3],
            "miss {} vs remote {}",
            vals[4],
            vals[3]
        );

        for (row, (_, _, paper)) in r.rows.iter().zip(paper_reference()) {
            let dev = (row.energy_nj.value - paper).abs() / paper;
            assert!(
                dev < 0.45,
                "{}: {:.3} nJ vs paper {paper} ({:.0}%)",
                row.label,
                row.energy_nj.value,
                dev * 100.0
            );
        }
    }

    #[test]
    fn render_includes_deviation_column() {
        let s = run(Fidelity::quick()).render();
        assert!(s.contains("vs paper"));
        assert!(s.contains("L1 Miss, Local L2 Miss"));
    }
}
