//! One experiment per table and figure of the paper's evaluation.
//!
//! | module | reproduces |
//! |---|---|
//! | [`yield_stats`] | Table IV — chip testing statistics |
//! | [`area`] | Figure 8 — chip/tile/core area breakdown |
//! | [`vf_sweep`] | Figure 9 — maximum frequency vs VDD, three chips |
//! | [`static_idle`] | Figure 10 + Table V — static and idle power |
//! | [`epi`] | Figure 11 + Table VI — energy per instruction |
//! | [`memory_energy`] | Table VII — memory-system energy ladder |
//! | [`noc_energy`] | Figure 12 — NoC energy per flit vs hops |
//! | [`core_scaling`] | Figure 13 — power scaling with core count |
//! | [`mt_vs_mc`] | Figure 14 — multithreading vs multicore |
//! | [`specint`] | Tables VIII & IX + Figure 16 — SPECint study |
//! | [`mem_latency`] | Figure 15 — memory latency breakdown |
//! | [`thermal`] | Figures 17 & 18 — thermal characterization |
//! | [`governor`] | Figures 9 & 18, closed-loop — DVFS/thermal governor |
//! | [`design_space`] | beyond the paper — analytic VDD × f × cores × mix mega-sweep |
//!
//! Every experiment takes a [`Fidelity`] so tests can run scaled-down
//! versions of the same code path the full harness uses. Beyond the
//! paper's artifacts, [`ablations`] sweeps the modelled design choices
//! (slice mapping, store-buffer depth, thread-switch overhead, NoC
//! router-versus-wire split) the insights depend on.

pub mod ablations;
pub mod area;
pub mod core_scaling;
pub mod design_space;
pub mod epi;
pub mod governor;
pub mod mem_latency;
pub mod memory_energy;
pub mod mt_vs_mc;
pub mod noc_energy;
pub mod specint;
pub mod static_idle;
pub mod thermal;
pub mod vf_sweep;
pub mod yield_stats;

pub use piton_arch::config::Backend;
use piton_board::fault::FaultToken;
use piton_power::governor::GovernorConfig;
use serde::{Deserialize, Serialize};

use crate::journal::JournalToken;

/// Measurement effort knob: how many monitor samples back each reported
/// number and how many simulated cycles back each sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fidelity {
    /// Monitor samples per measurement window (the paper uses 128).
    pub samples: usize,
    /// Simulated cycles behind each sample.
    pub chunk_cycles: u64,
    /// Warm-up cycles before sampling ("after the system reaches a
    /// steady state", §III-A).
    pub warmup_cycles: u64,
    /// Worker threads for independent sweep points (see
    /// [`crate::runner`]). `1` runs sweeps serially; results are
    /// byte-identical at every setting because each grid point builds
    /// its own isolated system.
    pub jobs: usize,
    /// Registered fault-injection plan, if any (see
    /// [`piton_board::fault`]). `None` runs the historical fault-free
    /// path, byte-identical to builds before fault injection existed.
    pub fault: Option<FaultToken>,
    /// Closed-loop DVFS governor policy. [`GovernorConfig::Off`] (the
    /// default) keeps every experiment open-loop and byte-identical to
    /// builds before the governor existed; any other policy enables the
    /// `governor` experiment family's closed-loop sections.
    pub governor: GovernorConfig,
    /// Registered write-ahead result journal, if any (see
    /// [`crate::journal`]). Journaled sweep sections serve completed
    /// points from it and append fresh ones, making the run durable
    /// and `--resume`-able; `None` runs the historical in-memory path,
    /// byte-identical to builds before journaling existed.
    pub journal: Option<JournalToken>,
    /// Which engine produces the numbers ([`Backend::Cycle`] is the
    /// historical default). Experiments that predate the analytic
    /// model ignore it; the `design_space` family and the `reproduce`
    /// harness use it to pick cycle, analytic or cross-checked runs.
    pub backend: Backend,
}

impl Fidelity {
    /// Paper-grade fidelity: 128 samples, long chunks.
    #[must_use]
    pub fn full() -> Self {
        Self {
            samples: 128,
            chunk_cycles: 20_000,
            warmup_cycles: 300_000,
            jobs: 1,
            fault: None,
            governor: GovernorConfig::Off,
            journal: None,
            backend: Backend::Cycle,
        }
    }

    /// Reduced fidelity for unit/integration tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            samples: 12,
            chunk_cycles: 3_000,
            warmup_cycles: 30_000,
            jobs: 1,
            fault: None,
            governor: GovernorConfig::Off,
            journal: None,
            backend: Backend::Cycle,
        }
    }

    /// Same fidelity with `jobs` sweep workers.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Same fidelity with a registered fault plan injected into every
    /// experiment sweep.
    #[must_use]
    pub fn with_fault(mut self, token: FaultToken) -> Self {
        self.fault = Some(token);
        self
    }

    /// Same fidelity with a closed-loop DVFS governor policy.
    #[must_use]
    pub fn with_governor(mut self, governor: GovernorConfig) -> Self {
        self.governor = governor;
        self
    }

    /// Same fidelity with a registered write-ahead result journal
    /// backing every journaled sweep section.
    #[must_use]
    pub fn with_journal(mut self, token: JournalToken) -> Self {
        self.journal = Some(token);
        self
    }

    /// Same fidelity with a different experiment backend.
    #[must_use]
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }
}

impl Default for Fidelity {
    fn default() -> Self {
        Self::full()
    }
}
