//! Beyond the paper: an analytic-only VDD × frequency × core-count ×
//! workload-mix design-space sweep.
//!
//! The grid is 21 voltage steps × 10 frequency fractions × 25 core
//! counts × 20 workload mixes — 105,000 operating points, three orders
//! of magnitude more than any figure in the paper. Each point solves
//! the same warm-up thermal fixed point the cycle bench uses (90 % of
//! total-with-IO power heating a heatsink-plus-fan package from a
//! 20 °C ambient), so a cycle-level spot check of any point lands on
//! the same junction temperature. Only the analytic backend can finish
//! this grid; the cycle engine verifies a 27-point corner sample.
//!
//! The sweep runs through the journaled runner under the
//! `"design_space"` section, so it inherits crash-resume and the
//! backend-tagged journal context like every paper figure.

use piton_arch::error::PitonError;
use piton_arch::units::{Hertz, Volts, Watts};
use piton_board::population::NamedChip;
use piton_board::system::PitonSystem;
use piton_power::model::{OperatingPoint, RailPower};
use piton_power::tech::TechModel;
use piton_power::thermal::{Cooling, ThermalModel};
use piton_workloads::micro::{load_microbenchmark, Microbenchmark, RunLength, ThreadsPerCore};

use piton_board::fault::{self, FaultPlan};
use piton_obs::json::{ObjectBuilder, Value};

use crate::analytic::compare::FigureComparison;
use crate::analytic::{Calibrated, Features};
use crate::journal::JournalPayload;
use crate::report::{Hole, Table, ANALYTIC_MARK, HOLE_MARK};
use crate::runner;

use super::Fidelity;

/// Voltage axis: 0.80 V to 1.20 V in 20 mV steps.
pub const VDD_STEPS: usize = 21;
/// Frequency axis: fractions 0.1 to 1.0 of `fmax(vdd)`.
pub const FREQ_STEPS: usize = 10;
/// Core-count axis: 1 to 25 active cores.
pub const CORE_STEPS: usize = 25;
/// Workload-mix axis.
pub const MIX_STEPS: usize = 20;

/// Workload mixes as `[int, hp, hist]` weights (each row sums to 1).
/// The first three are the pure microbenchmarks — those rows are the
/// corners the cycle oracle spot-checks.
pub const MIXES: [[f64; 3]; MIX_STEPS] = [
    [1.00, 0.00, 0.00],
    [0.00, 1.00, 0.00],
    [0.00, 0.00, 1.00],
    [0.50, 0.50, 0.00],
    [0.50, 0.00, 0.50],
    [0.00, 0.50, 0.50],
    [0.75, 0.25, 0.00],
    [0.25, 0.75, 0.00],
    [0.75, 0.00, 0.25],
    [0.25, 0.00, 0.75],
    [0.00, 0.75, 0.25],
    [0.00, 0.25, 0.75],
    [0.50, 0.25, 0.25],
    [0.25, 0.50, 0.25],
    [0.25, 0.25, 0.50],
    [0.34, 0.33, 0.33],
    [0.60, 0.30, 0.10],
    [0.10, 0.60, 0.30],
    [0.30, 0.10, 0.60],
    [0.80, 0.10, 0.10],
];

/// Short label of one mix row.
#[must_use]
pub fn mix_label(mix: usize) -> String {
    match mix {
        0 => "int".to_owned(),
        1 => "hp".to_owned(),
        2 => "hist".to_owned(),
        m => {
            let [a, b, c] = MIXES[m];
            format!("{a:.2}i/{b:.2}p/{c:.2}h")
        }
    }
}

/// One grid coordinate.
#[derive(Debug, Clone, Copy)]
pub struct GridPoint {
    /// Core voltage.
    pub vdd: Volts,
    /// Fraction of `fmax(vdd)` this point clocks at.
    pub freq_frac: f64,
    /// Operating frequency.
    pub freq: Hertz,
    /// Active cores.
    pub cores: usize,
    /// Index into [`MIXES`].
    pub mix: usize,
}

impl GridPoint {
    /// Point label used for journal holes and diagnostics.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{:.2}V x{:.1} c{} {}",
            self.vdd.0,
            self.freq_frac,
            self.cores,
            mix_label(self.mix)
        )
    }
}

/// One evaluated design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// Chip power (VDD + VCS rails), W.
    pub power_w: f64,
    /// Energy per instruction, nJ.
    pub nj_per_inst: f64,
    /// Settled junction temperature, °C.
    pub junction_c: f64,
}

impl JournalPayload for DesignPoint {
    fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("p", Value::Float(self.power_w))
            .field("e", Value::Float(self.nj_per_inst))
            .field("t", Value::Float(self.junction_c))
            .build()
    }

    fn from_value(v: &Value) -> Result<Self, PitonError> {
        let f = |key: &str| -> Result<f64, PitonError> {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| PitonError::codec(format!("design point missing '{key}'")))
        };
        Ok(Self {
            power_w: f("p")?,
            nj_per_inst: f("e")?,
            junction_c: f("t")?,
        })
    }
}

/// The full 105,000-point grid, in deterministic row-major order
/// (voltage, then frequency fraction, then cores, then mix).
#[must_use]
pub fn grid() -> Vec<GridPoint> {
    let tech = TechModel::ibm32soi();
    let mut points = Vec::with_capacity(VDD_STEPS * FREQ_STEPS * CORE_STEPS * MIX_STEPS);
    for vi in 0..VDD_STEPS {
        let vdd = Volts(0.80 + 0.02 * vi as f64);
        let fmax = tech.fmax(vdd);
        for fi in 0..FREQ_STEPS {
            let freq_frac = 0.1 * (fi + 1) as f64;
            let freq = Hertz(fmax.0 * freq_frac);
            for cores in 1..=CORE_STEPS {
                for mix in 0..MIX_STEPS {
                    points.push(GridPoint {
                        vdd,
                        freq_frac,
                        freq,
                        cores,
                        mix,
                    });
                }
            }
        }
    }
    points
}

/// The design-space sweep outcome.
#[derive(Debug, Clone)]
pub struct DesignSpaceResult {
    /// The grid, parallel to `points`.
    pub grid: Vec<GridPoint>,
    /// One entry per grid point (`None` where a fault plan holed it).
    pub points: Vec<Option<DesignPoint>>,
    /// Failed grid points.
    pub holes: Vec<Hole>,
}

/// Per-(mix, cores) precomputation: nominal dynamic pJ/cycle per rail
/// plus the mix's IPC. The 500 combinations cover the whole grid, so
/// the 105,000-point sweep never re-derives a rate profile. Build it
/// once per calibration and share it across [`compute_point`] calls.
#[must_use]
pub fn mix_table(cal: &Calibrated) -> Vec<((f64, f64, f64), f64)> {
    let benches = Microbenchmark::ALL;
    let mut table = Vec::with_capacity(MIX_STEPS * CORE_STEPS);
    for mix in MIXES.iter().take(MIX_STEPS) {
        for cores in 1..=CORE_STEPS {
            let mut rates = Features::zero();
            for (w, bench) in mix.iter().zip(benches) {
                if *w > 0.0 {
                    rates.add_scaled(
                        &cal.micro_rates_at(bench, ThreadsPerCore::One, cores as f64),
                        *w,
                    );
                }
            }
            table.push((cal.model.dynamic_nominal_pj(&rates), rates.issue_rate()));
        }
    }
    table
}

/// Ambient of the thermal fixed point (matches the cycle bench).
const AMBIENT_C: f64 = 20.0;

/// Evaluates one grid point against precomputed nominal energies: the
/// dynamic rail powers are junction-independent, so the warm-up fixed
/// point only iterates the leakage term.
fn evaluate(cal: &Calibrated, nominal_pj: (f64, f64, f64), ipc: f64, p: GridPoint) -> DesignPoint {
    let corner = NamedChip::Chip3.corner();
    let op0 = OperatingPoint::table_iii()
        .with_vdd_tracked(p.vdd)
        .with_freq(p.freq)
        .with_junction(AMBIENT_C);
    let f_hz = 1.0 / p.freq.period().0;
    let scales = cal.model.dynamic_scales(op0, corner);
    let dyn_rails = RailPower {
        vdd: Watts(nominal_pj.0 * scales[0] * f_hz * 1e-12),
        vcs: Watts(nominal_pj.1 * scales[1] * f_hz * 1e-12),
        vio: Watts(nominal_pj.2 * scales[2] * f_hz * 1e-12),
    };
    let thermal = ThermalModel::new(Cooling::HeatsinkFan, AMBIENT_C);
    let (junction_c, _) = thermal.equilibrium(
        |t| {
            let leak = cal.model.static_power(op0.with_junction(t), corner);
            (dyn_rails.total_with_io() + leak.total_with_io()) * 0.9
        },
        120.0,
    );
    let leak = cal
        .model
        .static_power(op0.with_junction(junction_c), corner);
    let power_w = (dyn_rails.total() + leak.total()).0;
    let nj_per_inst = power_w / (ipc * f_hz) * 1e9;
    DesignPoint {
        power_w,
        nj_per_inst,
        junction_c,
    }
}

/// Computes one design-space grid point exactly as the [`run`] sweep
/// does — same mix-table lookup, same sabotage gate — so a result
/// computed here is bit-identical to one journaled by a full run under
/// the same context. `table` must come from [`mix_table`] for the same
/// calibration.
///
/// # Errors
///
/// Propagates injected sabotage failures from the fault plan.
pub fn compute_point(
    cal: &Calibrated,
    table: &[((f64, f64, f64), f64)],
    index: usize,
    p: GridPoint,
    plan: Option<&FaultPlan>,
    attempt: u32,
) -> Result<DesignPoint, PitonError> {
    if let Some(plan) = plan {
        fault::sabotage_gate(plan, "design_space", index, attempt)?;
    }
    let (nominal, ipc) = table[(p.mix * CORE_STEPS) + (p.cores - 1)];
    Ok(evaluate(cal, nominal, ipc, p))
}

/// Runs the mega-sweep with the analytic backend.
#[must_use]
pub fn run(cal: &Calibrated, fidelity: Fidelity) -> DesignSpaceResult {
    let grid = grid();
    let table = mix_table(cal);
    let plan = fidelity.fault.map(fault::lookup);
    let out = runner::try_sweep_journaled(
        fidelity.jobs,
        grid.clone(),
        runner::RetryPolicy::default(),
        "design_space",
        plan.as_ref(),
        fidelity.journal,
        |index, &p, attempt| compute_point(cal, &table, index, p, plan.as_ref(), attempt),
    );
    let holes = grid
        .iter()
        .zip(&out)
        .filter_map(|(p, r)| {
            r.as_ref()
                .err()
                .map(|e| Hole::from_point("design_space", p.label(), e))
        })
        .collect();
    DesignSpaceResult {
        grid,
        points: out.into_iter().map(Result::ok).collect(),
        holes,
    }
}

/// Sub-sampling stride of the rendered (and golden-snapshotted) table.
/// Coprime to every grid axis, so the sample walks all four axes.
pub const RENDER_STRIDE: usize = 4001;

impl DesignSpaceResult {
    /// Number of successfully evaluated points.
    #[must_use]
    pub fn evaluated(&self) -> usize {
        self.points.iter().flatten().count()
    }

    /// The most efficient evaluated point (min nJ/instruction).
    #[must_use]
    pub fn best_efficiency(&self) -> Option<(&GridPoint, &DesignPoint)> {
        self.grid
            .iter()
            .zip(&self.points)
            .filter_map(|(g, p)| p.as_ref().map(|p| (g, p)))
            .min_by(|a, b| a.1.nj_per_inst.total_cmp(&b.1.nj_per_inst))
    }

    /// Renders the deterministic sub-sample plus summary lines.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = Table::new(&format!(
            "Design space: {} of {} points (analytic backend), stride-{RENDER_STRIDE} sample",
            self.evaluated(),
            self.grid.len()
        ));
        t.header([
            "Index",
            "VDD (V)",
            "f (MHz)",
            "Cores",
            "Mix",
            "Power (W)",
            "nJ/inst",
            "Tj (degC)",
        ]);
        for i in (0..self.grid.len()).step_by(RENDER_STRIDE) {
            let g = &self.grid[i];
            match &self.points[i] {
                Some(p) => t.row([
                    i.to_string(),
                    format!("{:.2}", g.vdd.0),
                    format!("{:.1}", g.freq.as_mhz()),
                    g.cores.to_string(),
                    mix_label(g.mix),
                    format!("{ANALYTIC_MARK}{:.3}", p.power_w),
                    format!("{ANALYTIC_MARK}{:.3}", p.nj_per_inst),
                    format!("{ANALYTIC_MARK}{:.1}", p.junction_c),
                ]),
                None => t.row([
                    i.to_string(),
                    format!("{:.2}", g.vdd.0),
                    format!("{:.1}", g.freq.as_mhz()),
                    g.cores.to_string(),
                    mix_label(g.mix),
                    HOLE_MARK.to_owned(),
                    HOLE_MARK.to_owned(),
                    HOLE_MARK.to_owned(),
                ]),
            };
        }
        let best = match self.best_efficiency() {
            Some((g, p)) => format!(
                "best efficiency: {} at {:.3} nJ/inst ({:.3} W, Tj {:.1} degC)",
                g.label(),
                p.nj_per_inst,
                p.power_w,
                p.junction_c
            ),
            None => "best efficiency: no points evaluated".to_owned(),
        };
        format!("{}\n{best}\n", t.render())
    }
}

/// Spot-checks the analytic grid against the cycle engine on the 27
/// pure-workload corners (3 benchmarks × cores {1, 13, 25} × VDD
/// {0.8, 1.0, 1.2} at full frequency).
#[must_use]
pub fn cycle_oracle(cal: &Calibrated, fidelity: Fidelity) -> FigureComparison {
    let tech = TechModel::ibm32soi();
    let sample: Vec<(usize, usize, f64)> = (0..3)
        .flat_map(|mix| {
            [1usize, 13, 25].into_iter().flat_map(move |cores| {
                [0.8, 1.0, 1.2]
                    .into_iter()
                    .map(move |vdd| (mix, cores, vdd))
            })
        })
        .collect();
    let table = mix_table(cal);
    let compared = runner::sweep(fidelity.jobs, sample, |_, (mix, cores, vdd)| {
        let bench = Microbenchmark::ALL[mix];
        let freq = tech.fmax(Volts(vdd));
        let mut sys = PitonSystem::reference_chip_3();
        sys.set_chunk_cycles(fidelity.chunk_cycles);
        sys.set_vdd_tracked(Volts(vdd));
        sys.set_frequency(freq);
        load_microbenchmark(
            sys.machine_mut(),
            bench,
            cores,
            ThreadsPerCore::One,
            RunLength::Forever,
        );
        sys.warm_up(fidelity.warmup_cycles);
        let cycle_w = sys.measure(fidelity.samples).total.mean.0;
        let p = GridPoint {
            vdd: Volts(vdd),
            freq_frac: 1.0,
            freq,
            cores,
            mix,
        };
        let (nominal, ipc) = table[(mix * CORE_STEPS) + (cores - 1)];
        let analytic = evaluate(cal, nominal, ipc, p);
        (p.label(), cycle_w, analytic.power_w)
    });
    FigureComparison::from_points(
        "design_space",
        compared
            .into_iter()
            .map(|(label, cycle, analytic)| (label, cycle, analytic, 0.005)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_the_advertised_shape() {
        let g = grid();
        assert_eq!(g.len(), 105_000);
        assert_eq!(g.len(), VDD_STEPS * FREQ_STEPS * CORE_STEPS * MIX_STEPS);
        // Row-major order: the mix axis varies fastest.
        assert_eq!(g[0].mix, 0);
        assert_eq!(g[1].mix, 1);
        assert_eq!(g[MIX_STEPS].cores, 2);
        // Every mix row is a convex combination.
        for row in MIXES {
            assert!(row.iter().all(|w| *w >= 0.0));
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn design_point_round_trips_through_journal_payload() {
        let p = DesignPoint {
            power_w: 3.25,
            nj_per_inst: 1.75,
            junction_c: 47.5,
        };
        let v = p.to_value();
        assert_eq!(DesignPoint::from_value(&v).unwrap(), p);
    }
}
