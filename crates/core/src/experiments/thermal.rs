//! Figures 17 & 18 — thermal characterization (§IV-J).
//!
//! Both experiments follow the paper's setup: heat sink removed (bare
//! package with an adjustable fan), core clock reduced to 100.01 MHz,
//! VDD/VCS at 0.9 V/0.95 V, on a fourth chip not used elsewhere.
//!
//! * **Figure 17** — chip power versus package temperature for 0–50
//!   active HP threads; temperature is swept by changing the fan angle
//!   and the power↔temperature fixed point is solved per point,
//!   revealing the exponential leakage dependence.
//! * **Figure 18** — the two-phase application on all 50 threads under
//!   synchronized and interleaved scheduling; power and surface
//!   temperature are logged over time, exposing the hysteresis loop and
//!   the lower average temperature of the balanced schedule.

use piton_arch::units::{Hertz, Volts, Watts};
use piton_board::system::PitonSystem;
use piton_power::thermal::{Cooling, ThermalModel, ThermalStep};
use piton_workloads::micro::{load_microbenchmark, Microbenchmark, RunLength, ThreadsPerCore};
use piton_workloads::thermal_app::{load_two_phase, Schedule};
use serde::{Deserialize, Serialize};

use super::Fidelity;
use crate::report::Table;

/// The §IV-J operating point: 100.01 MHz, 0.9 V VDD, 0.95 V VCS.
fn thermal_study_system(seed: u64) -> PitonSystem {
    // A fourth chip, "not presented in this paper thus far": slightly
    // leaky mid corner.
    let corner = piton_power::ChipCorner {
        speed: 1.01,
        leakage: 0.95,
        dynamic: 1.02,
    };
    let mut sys = PitonSystem::new(&piton_arch::config::ChipConfig::piton(), corner, seed);
    sys.set_vdd_tracked(Volts(0.9));
    sys.set_frequency(Hertz::from_mhz(100.01));
    sys
}

/// One Figure 17 point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ThermalPoint {
    /// Active threads.
    pub threads: usize,
    /// Fan effectiveness of this sweep step.
    pub fan_effectiveness: f64,
    /// Package surface temperature (what the FLIR camera images).
    pub surface_c: f64,
    /// Chip power at the equilibrium.
    pub power: Watts,
}

/// The Figure 17 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThermalPowerResult {
    /// Points grouped by thread count, each swept over fan angles.
    pub points: Vec<ThermalPoint>,
}

/// Runs the Figure 17 sweep: thread counts × fan effectiveness.
#[must_use]
pub fn run_thermal_power(fidelity: Fidelity) -> ThermalPowerResult {
    let thread_counts = [0usize, 10, 20, 30, 40, 50];
    let fan_steps = [1.0, 0.8, 0.6, 0.4, 0.2, 0.0];
    let mut points = Vec::new();
    for (i, &threads) in thread_counts.iter().enumerate() {
        // Capture the workload's activity once (it does not depend on
        // temperature), then solve the fixed point per fan angle.
        let mut sys = thermal_study_system(0x17 + i as u64);
        sys.set_chunk_cycles(fidelity.chunk_cycles);
        if threads > 0 {
            load_microbenchmark(
                sys.machine_mut(),
                Microbenchmark::Hp,
                threads,
                ThreadsPerCore::Two,
                RunLength::Forever,
            );
        }
        sys.warm_up(fidelity.warmup_cycles);
        let before = sys.machine().counters().clone();
        sys.machine_mut()
            .run(fidelity.chunk_cycles * fidelity.samples as u64);
        let delta = sys.machine().counters().delta_since(&before);

        for &eff in &fan_steps {
            let thermal = ThermalModel::new(Cooling::BarePackageFan { effectiveness: eff }, 20.0);
            let model = sys.power_model().clone();
            let op0 = sys.operating_point();
            let (junction, power) =
                thermal.equilibrium(|t| model.power(&delta, op0.with_junction(t)).total(), 120.0);
            // Surface = junction − P × R_js.
            let surface = junction - power.0 * Cooling::HeatsinkFan.r_junction_surface();
            points.push(ThermalPoint {
                threads,
                fan_effectiveness: eff,
                surface_c: surface,
                power,
            });
        }
    }
    ThermalPowerResult { points }
}

impl ThermalPowerResult {
    /// Points for one thread count, ordered by fan step.
    #[must_use]
    pub fn for_threads(&self, threads: usize) -> Vec<&ThermalPoint> {
        self.points
            .iter()
            .filter(|p| p.threads == threads)
            .collect()
    }

    /// Renders the Figure 17 series.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Figure 17: chip power vs package temperature (0.9 V, 100.01 MHz, no heat sink)",
        );
        t.header(["Threads", "Fan", "Surface (°C)", "Power (mW)"]);
        for p in &self.points {
            t.row([
                p.threads.to_string(),
                format!("{:.1}", p.fan_effectiveness),
                format!("{:.1}", p.surface_c),
                format!("{:.1}", p.power.as_mw()),
            ]);
        }
        t.render()
    }
}

/// One logged instant of the Figure 18 run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SchedulingSample {
    /// Seconds since the run started.
    pub time_s: f64,
    /// Chip power.
    pub power: Watts,
    /// Package surface temperature.
    pub surface_c: f64,
}

/// One schedule's trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScheduleTrace {
    /// Which schedule.
    pub schedule: Schedule,
    /// The time series.
    pub samples: Vec<SchedulingSample>,
}

impl ScheduleTrace {
    /// Peak-to-peak power swing.
    #[must_use]
    pub fn power_swing(&self) -> Watts {
        let max = self
            .samples
            .iter()
            .map(|s| s.power.0)
            .fold(f64::MIN, f64::max);
        let min = self
            .samples
            .iter()
            .map(|s| s.power.0)
            .fold(f64::MAX, f64::min);
        Watts(max - min)
    }

    /// Mean surface temperature.
    #[must_use]
    pub fn mean_temperature_c(&self) -> f64 {
        self.samples.iter().map(|s| s.surface_c).sum::<f64>() / self.samples.len() as f64
    }

    /// Area of the power/temperature hysteresis loop (shoelace formula
    /// over the trajectory; larger loops mean stronger feedback lag).
    #[must_use]
    pub fn hysteresis_area(&self) -> f64 {
        let pts: Vec<(f64, f64)> = self
            .samples
            .iter()
            .map(|s| (s.surface_c, s.power.0))
            .collect();
        let mut area = 0.0;
        for i in 0..pts.len() {
            let (x1, y1) = pts[i];
            let (x2, y2) = pts[(i + 1) % pts.len()];
            area += x1 * y2 - x2 * y1;
        }
        (area / 2.0).abs()
    }
}

/// The Figure 18 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchedulingResult {
    /// Synchronized and interleaved traces.
    pub traces: Vec<ScheduleTrace>,
}

/// Runs the Figure 18 study: the two-phase app on all 50 threads under
/// both schedules, logging power and temperature over `samples` steps
/// of `dt_seconds` each.
#[must_use]
pub fn run_scheduling(samples: usize, dt_seconds: f64, fidelity: Fidelity) -> SchedulingResult {
    let traces = [Schedule::Synchronized, Schedule::Interleaved]
        .into_iter()
        .map(|schedule| {
            let mut sys = thermal_study_system(0x18);
            sys.set_chunk_cycles(fidelity.chunk_cycles);
            *sys.thermal_mut() =
                ThermalModel::new(Cooling::BarePackageFan { effectiveness: 0.5 }, 20.0);
            // Phase length ≈ four sampling chunks so phases span
            // multiple thermal steps.
            let phase_iters = (fidelity.chunk_cycles / 4).max(200) as u32;
            load_two_phase(sys.machine_mut(), schedule, phase_iters);
            sys.warm_up(fidelity.warmup_cycles / 4);

            // The same fixed-timestep integrator the governor loop and
            // the thermal-camera example use — one RC code path.
            let stepper = ThermalStep::new(dt_seconds);
            let mut out = Vec::with_capacity(samples);
            for k in 0..samples {
                let before = sys.machine().counters().clone();
                sys.machine_mut().run(fidelity.chunk_cycles);
                let delta = sys.machine().counters().delta_since(&before);
                let p = sys
                    .power_model()
                    .power(&delta, sys.operating_point())
                    .total();
                stepper.advance(sys.thermal_mut(), p);
                out.push(SchedulingSample {
                    time_s: k as f64 * dt_seconds,
                    power: p,
                    surface_c: sys.thermal().surface_c(),
                });
            }
            ScheduleTrace {
                schedule,
                samples: out,
            }
        })
        .collect();
    SchedulingResult { traces }
}

impl SchedulingResult {
    /// A trace by schedule.
    #[must_use]
    pub fn trace(&self, schedule: Schedule) -> &ScheduleTrace {
        self.traces
            .iter()
            .find(|t| t.schedule == schedule)
            .expect("both schedules present")
    }

    /// Renders the Figure 18 digest.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = Table::new("Figure 18: synchronized vs interleaved scheduling");
        t.header([
            "Schedule",
            "Power swing (mW)",
            "Mean surface (°C)",
            "Hysteresis area (mW·°C)",
        ]);
        for tr in &self.traces {
            t.row([
                tr.schedule.label().to_owned(),
                format!("{:.1}", tr.power_swing().as_mw()),
                format!("{:.2}", tr.mean_temperature_c()),
                format!("{:.2}", tr.hysteresis_area() * 1e3),
            ]);
        }
        let sync = self.trace(Schedule::Synchronized).mean_temperature_c();
        let inter = self.trace(Schedule::Interleaved).mean_temperature_c();
        let mut out = t.render();
        out.push_str(&format!(
            "\nInterleaved average temperature is {:.2} °C lower (paper: 0.22 °C lower)\n",
            sync - inter
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_rises_exponentially_with_temperature() {
        let r = run_thermal_power(Fidelity::quick());
        // For the 50-thread series, power at the hottest point must
        // exceed the coolest by a leakage-driven margin, convex upward.
        let pts = r.for_threads(50);
        assert_eq!(pts.len(), 6);
        let coolest = pts.first().unwrap();
        let hottest = pts.last().unwrap();
        assert!(hottest.surface_c > coolest.surface_c + 5.0);
        assert!(
            hottest.power.0 > 1.15 * coolest.power.0,
            "no leakage growth: {} -> {}",
            coolest.power.0,
            hottest.power.0
        );
    }

    #[test]
    fn temperatures_span_the_figure_17_band() {
        let r = run_thermal_power(Fidelity::quick());
        let all_temps: Vec<f64> = r.points.iter().map(|p| p.surface_c).collect();
        let min = all_temps.iter().copied().fold(f64::MAX, f64::min);
        let max = all_temps.iter().copied().fold(f64::MIN, f64::max);
        // Paper band: 36–56 °C.
        assert!((25.0..=45.0).contains(&min), "min {min}");
        assert!((40.0..=75.0).contains(&max), "max {max}");
    }

    #[test]
    fn more_threads_more_power() {
        let r = run_thermal_power(Fidelity::quick());
        let at = |threads: usize| r.for_threads(threads)[0].power.0;
        assert!(at(50) > at(20));
        assert!(at(20) > at(0));
    }

    #[test]
    fn synchronized_swings_harder_than_interleaved() {
        let r = run_scheduling(48, 1.0, Fidelity::quick());
        let sync = r.trace(Schedule::Synchronized);
        let inter = r.trace(Schedule::Interleaved);
        assert!(
            sync.power_swing().0 > 1.5 * inter.power_swing().0,
            "sync {} vs inter {}",
            sync.power_swing().0,
            inter.power_swing().0
        );
    }

    #[test]
    fn interleaved_runs_cooler_and_with_less_hysteresis() {
        let r = run_scheduling(48, 1.0, Fidelity::quick());
        let sync = r.trace(Schedule::Synchronized);
        let inter = r.trace(Schedule::Interleaved);
        assert!(
            inter.mean_temperature_c() <= sync.mean_temperature_c() + 0.02,
            "interleaved {} vs synchronized {}",
            inter.mean_temperature_c(),
            sync.mean_temperature_c()
        );
        assert!(
            inter.hysteresis_area() < sync.hysteresis_area(),
            "hysteresis: inter {} vs sync {}",
            inter.hysteresis_area(),
            sync.hysteresis_area()
        );
    }

    #[test]
    fn renders_mention_both_figures() {
        assert!(run_thermal_power(Fidelity::quick())
            .render()
            .contains("Figure 17"));
        let s = run_scheduling(16, 1.0, Fidelity::quick()).render();
        assert!(s.contains("Figure 18"));
        assert!(s.contains("Interleaved"));
    }
}
