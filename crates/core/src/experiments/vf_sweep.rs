//! Figure 9 — maximum Linux-boot frequency versus VDD for three chips.
//!
//! Sweeps VDD from 0.8 V to 1.2 V (VCS tracking +0.05 V) for the three
//! named dies, solving the timing/IR-drop/thermal fixed point per
//! point. Chip #1 (fast, leaky) must be the fastest at low voltage and
//! thermally limited at 1.2 V; the PLL-quantization error bars come out
//! of the solver.

use piton_board::population::NamedChip;
use piton_power::model::PowerModel;
use piton_power::vf::{VfPoint, VfSolver};
use piton_power::{Calibration, TechModel};
use serde::{Deserialize, Serialize};

use crate::report::Table;
use crate::runner;

/// One chip's sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChipSweep {
    /// Which die.
    pub chip: NamedChip,
    /// Sweep points, 0.8 V to 1.2 V.
    pub points: Vec<VfPoint>,
}

/// The Figure 9 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VfSweepResult {
    /// Per-chip sweeps.
    pub chips: Vec<ChipSweep>,
}

/// Paper anchor: Chip #2's (VDD, MHz) pairs from the Figure 10 x-axis
/// labels.
#[must_use]
pub fn paper_reference() -> Vec<(f64, f64)> {
    vec![
        (0.80, 285.74),
        (0.85, 360.04),
        (0.90, 414.33),
        (0.95, 461.59),
        (1.00, 514.33),
        (1.05, 562.55),
        (1.10, 600.06),
        (1.15, 621.49),
        (1.20, 562.55), // thermally limited minimum across chips
    ]
}

/// Runs the three-chip sweep serially.
#[must_use]
pub fn run() -> VfSweepResult {
    run_with_jobs(1)
}

/// Runs the three-chip sweep on up to `jobs` workers (each chip's
/// solver is independent).
#[must_use]
pub fn run_with_jobs(jobs: usize) -> VfSweepResult {
    let chips = runner::sweep(
        jobs,
        vec![NamedChip::Chip1, NamedChip::Chip2, NamedChip::Chip3],
        |_, chip| {
            let model = PowerModel::new(
                Calibration::piton_hpca18(),
                TechModel::ibm32soi(),
                chip.corner(),
            );
            let solver = VfSolver::new(model, 20.0);
            ChipSweep {
                chip,
                points: solver.sweep(),
            }
        },
    );
    VfSweepResult { chips }
}

impl VfSweepResult {
    /// The sweep of one chip.
    #[must_use]
    pub fn chip(&self, chip: NamedChip) -> &ChipSweep {
        self.chips
            .iter()
            .find(|c| c.chip == chip)
            .expect("all three chips are swept")
    }

    /// Minimum across chips of the maximum frequency at one sweep index
    /// (the operating points Figure 10 uses).
    #[must_use]
    pub fn min_fmax_mhz(&self, index: usize) -> f64 {
        self.chips
            .iter()
            .map(|c| c.points[index].freq.as_mhz())
            .fold(f64::MAX, f64::min)
    }

    /// Renders the Figure 9 series.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = Table::new("Figure 9: max frequency at which Linux boots vs VDD");
        t.header([
            "VDD (V)",
            "Chip #1 (MHz)",
            "Chip #2 (MHz)",
            "Chip #3 (MHz)",
            "Chip #1 limit",
        ]);
        for i in 0..self.chips[0].points.len() {
            let p1 = &self.chip(NamedChip::Chip1).points[i];
            let p2 = &self.chip(NamedChip::Chip2).points[i];
            let p3 = &self.chip(NamedChip::Chip3).points[i];
            t.row([
                format!("{:.2}", p1.vdd.0),
                format!("{:.1}", p1.freq.as_mhz()),
                format!("{:.1}", p2.freq.as_mhz()),
                format!("{:.1}", p3.freq.as_mhz()),
                if p1.thermally_limited {
                    "thermal".to_owned()
                } else {
                    "timing".to_owned()
                },
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_sweep_points_per_chip() {
        let r = run();
        assert_eq!(r.chips.len(), 3);
        for c in &r.chips {
            assert_eq!(c.points.len(), 9);
            assert!((c.points[0].vdd.0 - 0.8).abs() < 1e-12);
            assert!((c.points[8].vdd.0 - 1.2).abs() < 1e-12);
        }
    }

    #[test]
    fn chip1_fastest_cold_then_thermally_limited() {
        let r = run();
        let c1 = r.chip(NamedChip::Chip1);
        let c2 = r.chip(NamedChip::Chip2);
        // Fastest at 0.8 V ("at lower voltages it actually has the
        // highest maximum frequency of the three chips").
        assert!(c1.points[0].freq.0 > c2.points[0].freq.0);
        // Thermally limited at 1.2 V with a severe drop below its peak.
        let last = c1.points.last().unwrap();
        assert!(last.thermally_limited);
        let peak = c1.points.iter().map(|p| p.freq.0).fold(0.0, f64::max);
        assert!(last.freq.0 < 0.97 * peak);
    }

    #[test]
    fn typical_chip_tracks_paper_curve_within_15_percent() {
        let r = run();
        let c2 = r.chip(NamedChip::Chip2);
        for (point, (v, paper_mhz)) in c2.points.iter().zip(paper_reference()) {
            if (v - 1.2).abs() < 1e-9 {
                continue; // the paper's 1.2 V row is Chip #1's throttle
            }
            assert!((point.vdd.0 - v).abs() < 1e-9);
            let measured = point.freq.as_mhz();
            let dev = (measured - paper_mhz).abs() / paper_mhz;
            assert!(
                dev < 0.15,
                "at {v} V: measured {measured:.1} MHz vs paper {paper_mhz} ({:.0}%)",
                dev * 100.0
            );
        }
    }

    #[test]
    fn quantization_error_bars_are_present() {
        let r = run();
        for p in &r.chip(NamedChip::Chip2).points {
            assert!(p.next_step.0 > p.freq.0);
            let step = p.next_step.0 / p.freq.0;
            assert!((1.0..1.1).contains(&step));
        }
    }

    #[test]
    fn render_has_all_voltages() {
        let s = run().render();
        assert!(s.contains("0.80"));
        assert!(s.contains("1.20"));
        assert!(s.contains("thermal"));
    }
}
