//! Figure 12 — NoC energy per flit versus hop count and bit-switching
//! pattern.
//!
//! The chipset logic streams dummy invalidation packets (one header +
//! six payload flits, seven valid flits per 47 bridge cycles) into the
//! chip at tile0, destined at tiles 0 through 8 hops away. For each of
//! the four payload switching patterns (NSW/HSW/FSW/FSWA) the energy
//! per flit is `EPF = (47/7) × (P_hop − P_base)/f`, and a linear fit
//! over hops gives the paper's pJ/hop trendlines.

use piton_arch::error::PitonError;
use piton_arch::topology::TileId;
use piton_arch::units::Watts;
use piton_board::fault::{self, FaultPlan};
use piton_board::system::PitonSystem;
use piton_sim::machine::SwitchPattern;
use serde::{Deserialize, Serialize};

use super::Fidelity;
use crate::measure::{epf_pj, linear_fit};
use crate::report::{render_holes, Hole, Table, HOLE_MARK};
use crate::runner;

/// EPF series for one switching pattern.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PatternSeries {
    /// Payload pattern.
    pub pattern: String,
    /// `(hops, EPF pJ)` for hops 0..=8 (0 is the baseline, 0 pJ by
    /// construction).
    pub points: Vec<(usize, f64)>,
    /// Fitted slope in pJ/hop (the Figure 12 trendline).
    pub pj_per_hop: f64,
}

/// The Figure 12 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NocEnergyResult {
    /// One series per switching pattern.
    pub series: Vec<PatternSeries>,
    /// Grid points lost to injected faults (empty without a fault plan).
    pub holes: Vec<Hole>,
}

/// Paper trendlines (pJ/hop): NSW 3.58, HSW 11.16, FSW 16.68,
/// FSWA 16.98.
#[must_use]
pub fn paper_reference() -> Vec<(&'static str, f64)> {
    vec![
        ("NSW", 3.58),
        ("HSW", 11.16),
        ("FSW", 16.68),
        ("FSWA", 16.98),
    ]
}

fn measure_power(pattern: SwitchPattern, dst: TileId, fidelity: Fidelity, seed: u64) -> Watts {
    let mut sys = PitonSystem::new(
        &piton_arch::config::ChipConfig::piton(),
        piton_power::ChipCorner::typical(),
        seed,
    );
    sys.set_chunk_cycles(fidelity.chunk_cycles);
    // Drive traffic continuously; sample power per chunk of traffic.
    let mut window = piton_board::monitor::MeasurementWindow::new();
    // Warm the link wire state.
    sys.machine_mut()
        .run_invalidation_traffic(dst, pattern, fidelity.warmup_cycles / 4);
    for _ in 0..fidelity.samples {
        let before = sys.machine().counters().clone();
        sys.machine_mut()
            .run_invalidation_traffic(dst, pattern, fidelity.chunk_cycles);
        let delta = sys.machine().counters().delta_since(&before);
        let p = sys.power_model().power(&delta, sys.operating_point());
        window.push(p.total());
    }
    window.mean().expect("traffic window is never empty")
}

/// Figure 12 cell label, shared by the sweep and the hole trailer.
fn point_label(pattern: SwitchPattern, hops: usize) -> String {
    format!("{} hop {hops}", pattern.label())
}

/// The Figure 12 grid in sweep order: 4 patterns × hops 0..=8 as
/// `(pattern index, pattern, hops)`, 36 points. This is the grid the
/// `"noc"` journal section — and therefore the serve cache — indexes.
#[must_use]
pub fn grid() -> Vec<(usize, SwitchPattern, usize)> {
    SwitchPattern::ALL
        .into_iter()
        .enumerate()
        .flat_map(|(i, pattern)| (0..=8usize).map(move |hops| (i, pattern, hops)))
        .collect()
}

/// Computes one Figure 12 grid point exactly as the [`run`] sweep does
/// — same per-pattern seed, same sabotage gate — so a result computed
/// here is bit-identical to one journaled by a full run under the same
/// context.
///
/// # Errors
///
/// Propagates injected sabotage failures from the fault plan.
pub fn compute_point(
    index: usize,
    point: &(usize, SwitchPattern, usize),
    fidelity: Fidelity,
    plan: Option<&FaultPlan>,
    attempt: u32,
) -> Result<Watts, PitonError> {
    let &(i, pattern, hops) = point;
    if let Some(plan) = plan {
        fault::sabotage_gate(plan, "noc", index, attempt)?;
    }
    let dst = piton_arch::topology::Mesh::piton()
        .tile_at_distance(TileId::new(0), hops)
        .expect("5x5 mesh covers 0..=8 hops");
    Ok(measure_power(pattern, dst, fidelity, 0xE0 + i as u64))
}

/// Runs the Figure 12 sweep.
#[must_use]
pub fn run(fidelity: Fidelity) -> NocEnergyResult {
    let f = piton_arch::units::Hertz::from_mhz(500.05);
    let plan = fidelity.fault.map(fault::lookup);
    // Every point an isolated system; hop 0 is the pattern's baseline
    // power the others subtract.
    let powers = runner::try_sweep_journaled(
        fidelity.jobs,
        grid(),
        runner::RetryPolicy::default(),
        "noc",
        plan.as_ref(),
        fidelity.journal,
        |index, point, attempt| compute_point(index, point, fidelity, plan.as_ref(), attempt),
    );

    let mut holes = Vec::new();
    let series = SwitchPattern::ALL
        .into_iter()
        .zip(powers.chunks(9))
        .map(|(pattern, chunk)| {
            let label = pattern.label();
            let mut points = Vec::new();
            match &chunk[0] {
                Ok(base) => {
                    points.push((0usize, 0.0f64));
                    for (hops, r) in (1..=8usize).zip(&chunk[1..]) {
                        match r {
                            Ok(p) => points.push((hops, epf_pj(*p, *base, f))),
                            Err(e) => {
                                holes.push(Hole::from_point("noc", point_label(pattern, hops), e));
                            }
                        }
                    }
                }
                Err(e) => {
                    // Without the hop-0 baseline nothing in the series
                    // can be normalized: hole every cell.
                    holes.push(Hole::from_point("noc", point_label(pattern, 0), e));
                    for hops in 1..=8usize {
                        holes.push(Hole {
                            section: "noc".to_owned(),
                            index: e.index + hops,
                            point: point_label(pattern, hops),
                            attempts: 0,
                            error: format!("baseline (hop 0) of {label} lost; cannot normalize"),
                        });
                    }
                }
            }
            let fit: Vec<(f64, f64)> = points.iter().map(|&(h, e)| (h as f64, e)).collect();
            let slope = match linear_fit(&fit) {
                Ok((_, slope)) => slope,
                Err(e) => {
                    holes.push(Hole {
                        section: "noc".to_owned(),
                        index: 0,
                        point: format!("{label} trendline"),
                        attempts: 0,
                        error: e.to_string(),
                    });
                    0.0
                }
            };
            PatternSeries {
                pattern: label.to_owned(),
                points,
                pj_per_hop: slope,
            }
        })
        .collect();
    NocEnergyResult { series, holes }
}

impl NocEnergyResult {
    /// A series by pattern label.
    #[must_use]
    pub fn series_for(&self, label: &str) -> Option<&PatternSeries> {
        self.series.iter().find(|s| s.pattern == label)
    }

    /// Exports the Figure 12 series as CSV (`pattern,hops,epf_pj`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut t = Table::new("");
        t.header(["pattern", "hops", "epf_pj"]);
        for s in &self.series {
            for (h, e) in &s.points {
                t.row([s.pattern.clone(), h.to_string(), format!("{e:.3}")]);
            }
        }
        t.to_csv()
    }

    /// Renders Figure 12.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = Table::new("Figure 12: NoC energy per flit (pJ) vs hops");
        t.header(["Hops", "NSW", "HSW", "FSW", "FSWA"]);
        for h in 0..=8usize {
            let cell = |label: &str| {
                self.series_for(label)
                    .and_then(|s| s.points.iter().find(|(hh, _)| *hh == h))
                    .map_or_else(
                        || {
                            let point = format!("{label} hop {h}");
                            if self.holes.iter().any(|hole| hole.covers(&point)) {
                                HOLE_MARK.to_owned()
                            } else {
                                "-".to_owned()
                            }
                        },
                        |(_, e)| format!("{e:.1}"),
                    )
            };
            t.row([
                h.to_string(),
                cell("NSW"),
                cell("HSW"),
                cell("FSW"),
                cell("FSWA"),
            ]);
        }
        let mut out = t.render();
        out.push_str("\nTrendlines (pJ/hop):\n");
        for s in &self.series {
            let paper = paper_reference()
                .into_iter()
                .find(|(l, _)| *l == s.pattern)
                .map_or(0.0, |(_, v)| v);
            out.push_str(&format!(
                "  {}: {:.2} pJ/hop (paper ~{paper}, {})\n",
                s.pattern,
                s.pj_per_hop,
                crate::report::vs_paper(s.pj_per_hop, paper)
            ));
        }
        out.push_str(&render_holes(&self.holes));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> NocEnergyResult {
        run(Fidelity::quick())
    }

    #[test]
    fn epf_scales_linearly_with_hops() {
        let r = result();
        let hsw = r.series_for("HSW").unwrap();
        // Check rough linearity: point at 8 hops ≈ 2x point at 4 hops.
        let at4 = hsw.points[4].1;
        let at8 = hsw.points[8].1;
        let ratio = at8 / at4;
        assert!((1.6..=2.4).contains(&ratio), "8/4 hop ratio {ratio}");
    }

    #[test]
    fn trendlines_order_and_magnitude_match_figure_12() {
        let r = result();
        let slope = |l: &str| r.series_for(l).unwrap().pj_per_hop;
        let (nsw, hsw, fsw, fswa) = (slope("NSW"), slope("HSW"), slope("FSW"), slope("FSWA"));
        assert!(nsw < hsw && hsw < fsw, "ordering: {nsw} {hsw} {fsw}");
        assert!(fswa >= fsw * 0.97, "FSWA {fswa} vs FSW {fsw}");
        for (label, paper) in paper_reference() {
            let measured = slope(label);
            let dev = (measured - paper).abs() / paper;
            assert!(
                dev < 0.35,
                "{label}: {measured:.2} pJ/hop vs paper {paper} ({:.0}%)",
                dev * 100.0
            );
        }
    }

    #[test]
    fn noc_energy_is_small_versus_computation() {
        // The paper's headline: sending a flit across the whole chip
        // (8 hops) costs about as much as one add (~95 pJ) — far from
        // dominating.
        let r = result();
        let across_chip = r.series_for("HSW").unwrap().points[8].1;
        assert!(
            (40.0..200.0).contains(&across_chip),
            "8-hop flit {across_chip} pJ"
        );
    }

    #[test]
    fn render_contains_trendlines() {
        let s = result().render();
        assert!(s.contains("Trendlines"));
        assert!(s.contains("FSWA"));
    }
}
