//! The auto-calibration battery: a small set of cycle-level runs the
//! closed-form coefficients are fitted against.
//!
//! Each probe replays one of the paper experiments' measurement idioms
//! (the Figure 11 EPI tests on Chip #2, the Figure 12 invalidation
//! traffic at a typical corner, the Figure 13/14 microbenchmarks on
//! Chip #3, the Figure 17 thermal-study system) and records three
//! things: the window's per-cycle activity rates, the operating point,
//! and the measured *dynamic* rail power (measured total minus the
//! closed-form leakage at that point). The fit then solves, per rail,
//! for the nominal per-event energies that best explain every probe at
//! once — and the same rate profiles double as the workload library the
//! analytic predictors evaluate.

use piton_arch::error::PitonError;
use piton_arch::isa::OperandPattern;
use piton_arch::topology::{Mesh, TileId};
use piton_board::system::PitonSystem;
use piton_power::calibration::least_squares_damped;
use piton_power::model::{ChipCorner, OperatingPoint};
use piton_sim::machine::SwitchPattern;
use piton_workloads::epi::{epi_test, EpiCase};
use piton_workloads::micro::{load_microbenchmark, Microbenchmark, RunLength, ThreadsPerCore};

use super::features::{self, Features};
use super::model::AnalyticModel;
use crate::experiments::Fidelity;
use crate::runner;

/// Core-count knots the microbenchmark probes sample; rate profiles at
/// other core counts are piecewise-linear interpolations between them.
/// Dense enough (4-core gaps) that saturating workloads like `hist`
/// interpolate within the committed figure budgets.
pub const MICRO_KNOTS: [usize; 7] = [1, 5, 9, 13, 17, 21, 25];
/// Hop-count knots the NoC traffic probes sample; per-feature linear
/// fits over them extend the profile to the full 0..=8 hop axis. Hop 0
/// is probed directly — it anchors the EPF baseline.
pub const NOC_KNOTS: [usize; 4] = [0, 2, 5, 8];
/// Thread counts of the Figure 17 thermal-study probes (the figure's
/// own x-axis — six points is small enough to probe directly).
pub const FIG17_THREADS: [usize; 6] = [0, 10, 20, 30, 40, 50];

/// Relative Tikhonov damping for the battery fit: tiny enough to leave
/// well-conditioned coefficients untouched, large enough to keep
/// physically collinear counters (a store and its buffer enqueue) from
/// collapsing a pivot.
const FIT_LAMBDA: f64 = 1e-9;
/// Residual floor (W): disagreement on rails idling in the noise is
/// not meaningful, so relative residuals are taken against at least
/// this much dynamic power.
pub const RESIDUAL_FLOOR_W: f64 = 0.005;

/// What one probe exercises.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbeKind {
    /// Chip #2 idle (clocks running, threads parked).
    Idle,
    /// One Figure 11 assembly test on all 25 cores of Chip #2.
    Epi(EpiCase, OperandPattern),
    /// Figure 12 invalidation traffic at one hop distance.
    Noc(SwitchPattern, usize),
    /// One microbenchmark configuration on Chip #3.
    Micro(Microbenchmark, ThreadsPerCore, usize),
    /// The Figure 17 thermal-study workload at one thread count.
    Fig17(usize),
}

impl ProbeKind {
    /// Short label for fit diagnostics.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            Self::Idle => "idle".to_owned(),
            Self::Epi(case, pattern) => format!("epi {}/{pattern}", case.label()),
            Self::Noc(pattern, hops) => format!("noc {} hop {hops}", pattern.label()),
            Self::Micro(bench, tpc, cores) => {
                format!("micro {} {} @ {cores}", bench.label(), tpc.label())
            }
            Self::Fig17(threads) => format!("fig17 {threads} threads"),
        }
    }
}

/// One completed cycle-level calibration run.
#[derive(Debug, Clone)]
pub struct Probe {
    /// What was exercised.
    pub kind: ProbeKind,
    /// Per-cycle activity rates over the measurement window.
    pub rates: Features,
    /// Operating point the window was measured at.
    pub op: OperatingPoint,
    /// Die corner of the probed system.
    pub corner: ChipCorner,
    /// Measured dynamic rail power (W): measured total minus the
    /// closed-form leakage at `op`.
    pub dynamic_w: [f64; 3],
}

/// The probe list: idle + every Figure 11 cell + NoC pattern×knot +
/// microbenchmark knots + the Figure 17 thread axis.
#[must_use]
pub fn probe_specs() -> Vec<ProbeKind> {
    let mut specs = vec![ProbeKind::Idle];
    for case in EpiCase::figure_11() {
        let patterns: &[OperandPattern] = if case.has_value_operands() {
            &OperandPattern::ALL
        } else {
            &[OperandPattern::Random]
        };
        specs.extend(patterns.iter().map(|&p| ProbeKind::Epi(case, p)));
    }
    for pattern in SwitchPattern::ALL {
        specs.extend(NOC_KNOTS.iter().map(|&h| ProbeKind::Noc(pattern, h)));
    }
    for bench in Microbenchmark::ALL {
        for tpc in [ThreadsPerCore::One, ThreadsPerCore::Two] {
            specs.extend(
                MICRO_KNOTS
                    .iter()
                    .map(move |&cores| ProbeKind::Micro(bench, tpc, cores)),
            );
        }
    }
    specs.extend(FIG17_THREADS.iter().map(|&t| ProbeKind::Fig17(t)));
    specs
}

/// Subtracts the closed-form leakage from a measured rail triple.
fn dynamic_of(sys: &PitonSystem, measured: [f64; 3], op: OperatingPoint) -> [f64; 3] {
    let leak = sys.power_model().static_power(op);
    [
        measured[0] - leak.vdd.0,
        measured[1] - leak.vcs.0,
        measured[2] - leak.vio.0,
    ]
}

/// Measures one monitor window while tracking the activity delta it
/// covers.
fn measured_window(
    sys: &mut PitonSystem,
    fidelity: Fidelity,
) -> Result<(Features, OperatingPoint, [f64; 3]), PitonError> {
    let before = sys.machine().counters().clone();
    let m = sys.try_measure(fidelity.samples)?;
    let delta = sys.machine().counters().delta_since(&before);
    let op = sys.operating_point();
    let dynamic = dynamic_of(sys, [m.vdd.mean.0, m.vcs.mean.0, m.vio.mean.0], op);
    Ok((Features::rates(&delta), op, dynamic))
}

fn run_probe(kind: ProbeKind, fidelity: Fidelity) -> Result<Probe, PitonError> {
    match kind {
        ProbeKind::Idle => {
            let mut sys = PitonSystem::reference_chip_2();
            sys.set_chunk_cycles(fidelity.chunk_cycles);
            sys.warm_up(fidelity.warmup_cycles);
            let (rates, op, dynamic_w) = measured_window(&mut sys, fidelity)?;
            Ok(Probe {
                kind,
                rates,
                op,
                corner: sys.power_model().corner(),
                dynamic_w,
            })
        }
        ProbeKind::Epi(case, pattern) => {
            let mut sys = PitonSystem::reference_chip_2();
            sys.set_chunk_cycles(fidelity.chunk_cycles);
            for t in 0..25 {
                sys.machine_mut().load_thread(
                    piton_arch::TileId::new(t),
                    0,
                    epi_test(case, pattern, t),
                );
            }
            sys.warm_up(fidelity.warmup_cycles);
            let (rates, op, dynamic_w) = measured_window(&mut sys, fidelity)?;
            Ok(Probe {
                kind,
                rates,
                op,
                corner: sys.power_model().corner(),
                dynamic_w,
            })
        }
        ProbeKind::Noc(pattern, hops) => {
            // Mirrors the Figure 12 methodology: power computed from
            // the model over the traffic window (noise-free), thermal
            // state never advanced.
            let mesh = Mesh::piton();
            let dst = mesh
                .tile_at_distance(TileId::new(0), hops)
                .expect("5x5 mesh covers 0..=8 hops");
            let mut sys = PitonSystem::new(
                &piton_arch::config::ChipConfig::piton(),
                ChipCorner::typical(),
                0xA0 + hops as u64,
            );
            sys.set_chunk_cycles(fidelity.chunk_cycles);
            sys.machine_mut()
                .run_invalidation_traffic(dst, pattern, fidelity.warmup_cycles / 4);
            let before = sys.machine().counters().clone();
            sys.machine_mut().run_invalidation_traffic(
                dst,
                pattern,
                fidelity.chunk_cycles * fidelity.samples as u64,
            );
            let delta = sys.machine().counters().delta_since(&before);
            let op = sys.operating_point();
            let p = sys.power_model().power(&delta, op);
            Ok(Probe {
                kind,
                rates: Features::rates(&delta),
                op,
                corner: sys.power_model().corner(),
                dynamic_w: dynamic_of(&sys, [p.vdd.0, p.vcs.0, p.vio.0], op),
            })
        }
        ProbeKind::Micro(bench, tpc, cores) => {
            let mut sys = PitonSystem::reference_chip_3();
            sys.set_chunk_cycles(fidelity.chunk_cycles);
            load_microbenchmark(
                sys.machine_mut(),
                bench,
                cores * tpc.count(),
                tpc,
                RunLength::Forever,
            );
            sys.warm_up(fidelity.warmup_cycles);
            let (rates, op, dynamic_w) = measured_window(&mut sys, fidelity)?;
            Ok(Probe {
                kind,
                rates,
                op,
                corner: sys.power_model().corner(),
                dynamic_w,
            })
        }
        ProbeKind::Fig17(threads) => {
            // Mirrors the Figure 17 capture: same corner, 0.9 V /
            // 100 MHz, activity delta over chunk × samples cycles with
            // model-derived (noise-free) power.
            let i = FIG17_THREADS
                .iter()
                .position(|&t| t == threads)
                .expect("thread count from FIG17_THREADS");
            let corner = ChipCorner {
                speed: 1.01,
                leakage: 0.95,
                dynamic: 1.02,
            };
            let mut sys = PitonSystem::new(
                &piton_arch::config::ChipConfig::piton(),
                corner,
                0x17 + i as u64,
            );
            sys.set_vdd_tracked(piton_arch::units::Volts(0.9));
            sys.set_frequency(piton_arch::units::Hertz::from_mhz(100.01));
            sys.set_chunk_cycles(fidelity.chunk_cycles);
            if threads > 0 {
                load_microbenchmark(
                    sys.machine_mut(),
                    Microbenchmark::Hp,
                    threads,
                    ThreadsPerCore::Two,
                    RunLength::Forever,
                );
            }
            sys.warm_up(fidelity.warmup_cycles);
            let before = sys.machine().counters().clone();
            sys.machine_mut()
                .run(fidelity.chunk_cycles * fidelity.samples as u64);
            let delta = sys.machine().counters().delta_since(&before);
            let op = sys.operating_point();
            let p = sys.power_model().power(&delta, op);
            Ok(Probe {
                kind,
                rates: Features::rates(&delta),
                op,
                corner,
                dynamic_w: dynamic_of(&sys, [p.vdd.0, p.vcs.0, p.vio.0], op),
            })
        }
    }
}

/// Runs the whole battery across the fidelity's sweep workers.
///
/// # Errors
///
/// Propagates the first probe failure (probes run fault-free, so this
/// only surfaces engine-level deadline errors).
pub fn run_battery(fidelity: Fidelity) -> Result<Vec<Probe>, PitonError> {
    let specs = probe_specs();
    runner::sweep(fidelity.jobs, specs, |_, kind| run_probe(kind, fidelity))
        .into_iter()
        .collect()
}

/// Per-rail fit quality over the battery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RailResidual {
    /// Largest relative residual across probes.
    pub max_rel: f64,
    /// Mean relative residual across probes.
    pub mean_rel: f64,
}

/// The calibration outcome the run manifest records.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// Number of cycle-level probes fitted against.
    pub probes: usize,
    /// Residuals per rail, in `[vdd, vcs, vio]` order.
    pub residuals: [RailResidual; 3],
    /// The single worst probe: `(probe label, rail name, relative
    /// residual)`.
    pub worst: Option<(String, &'static str, f64)>,
}

/// Converts a probe's measured dynamic power (W) to nominal pJ/cycle on
/// one rail — the target space the least-squares fit runs in.
fn nominal_target_pj(probe: &Probe, scales: [f64; 3], rail: usize) -> f64 {
    let f_hz = 1.0 / probe.op.freq.period().0;
    probe.dynamic_w[rail] / (scales[rail] * f_hz) * 1e12
}

/// Fits the coefficient vectors against a battery of probes.
///
/// # Errors
///
/// [`PitonError::DegenerateFit`] if the battery cannot identify the
/// active columns (fewer probes than active features, or a pivot
/// collapse the damping cannot rescue).
pub fn fit(probes: &[Probe]) -> Result<(AnalyticModel, FitReport), PitonError> {
    // The damping below is meant to split energy across *aliased*
    // columns, not to conjure coefficients out of repetition: a
    // battery with fewer distinct rate profiles than VDD features is
    // rank-deficient no matter how many probes it holds, and must be
    // refused before the regularizer papers over it.
    let mut distinct: Vec<&Features> = Vec::new();
    for p in probes {
        if !distinct.contains(&&p.rates) {
            distinct.push(&p.rates);
        }
    }
    if distinct.len() < features::VDD_FEATURES {
        return Err(PitonError::DegenerateFit {
            points: distinct.len(),
            reason: "fewer distinct probe profiles than model coefficients",
        });
    }
    // Voltage scales depend only on the shared technology curves, so
    // any model instance computes them; the reference's coefficients
    // are never consulted here.
    let scaler = AnalyticModel::reference();
    let per_rail = |rail: usize, rows: Vec<Vec<f64>>| -> Result<Vec<f64>, PitonError> {
        let targets: Vec<f64> = probes
            .iter()
            .map(|p| nominal_target_pj(p, scaler.dynamic_scales(p.op, p.corner), rail))
            .collect();
        least_squares_damped(&rows, &targets, FIT_LAMBDA)
    };
    let vdd = per_rail(0, probes.iter().map(|p| p.rates.vdd.clone()).collect())?;
    let vcs = per_rail(1, probes.iter().map(|p| p.rates.vcs.clone()).collect())?;
    let vio = per_rail(2, probes.iter().map(|p| p.rates.vio.clone()).collect())?;
    let model = AnalyticModel::fitted(vdd, vcs, vio);

    // Residuals in the measured (watts) domain: how far each probe's
    // predicted dynamic power lands from what the bench reported.
    const RAILS: [&str; 3] = ["vdd", "vcs", "vio"];
    let mut residuals = [RailResidual {
        max_rel: 0.0,
        mean_rel: 0.0,
    }; 3];
    let mut worst: Option<(String, &'static str, f64)> = None;
    for (rail, name) in RAILS.iter().enumerate() {
        let mut sum = 0.0;
        for p in probes {
            let scales = model.dynamic_scales(p.op, p.corner);
            let f_hz = 1.0 / p.op.freq.period().0;
            let nominal = model.dynamic_nominal_pj(&p.rates);
            let pred = [nominal.0, nominal.1, nominal.2][rail] * scales[rail] * f_hz * 1e-12;
            let rel =
                (pred - p.dynamic_w[rail]).abs() / p.dynamic_w[rail].abs().max(RESIDUAL_FLOOR_W);
            sum += rel;
            if rel > residuals[rail].max_rel {
                residuals[rail].max_rel = rel;
            }
            if worst.as_ref().is_none_or(|w| rel > w.2) {
                worst = Some((p.kind.label(), name, rel));
            }
        }
        residuals[rail].mean_rel = sum / probes.len().max(1) as f64;
    }
    Ok((
        model,
        FitReport {
            probes: probes.len(),
            residuals,
            worst,
        },
    ))
}
