//! Analytic-vs-cycle conformance: per-figure error tables against the
//! cycle engine treated as the oracle.
//!
//! Every comparison walks the *cycle* result (so fault holes simply
//! drop out of the comparison), predicts the same quantity from the
//! calibrated closed-form model, and records the relative error against
//! a committed per-figure budget. The budgets are deliberately loose
//! multiples of the errors observed on a healthy calibration — they
//! exist to catch methodology drift between the backends, not to
//! certify the fit.

use super::{predict, Calibrated};
use crate::experiments::core_scaling::CoreScalingResult;
use crate::experiments::epi::EpiResult;
use crate::experiments::mt_vs_mc::MtMcResult;
use crate::experiments::noc_energy::NocEnergyResult;
use crate::experiments::static_idle::StaticIdleResult;
use crate::experiments::thermal::ThermalPowerResult;
use crate::report::Table;

/// Committed relative-error budgets, one per compared figure. The
/// conformance suite and the `--backend both` report both enforce
/// these; tightening one is a deliberate, reviewed act.
#[must_use]
pub fn budget_for(figure: &str) -> f64 {
    match figure {
        "table_v" => 0.01,
        "figure_10" => 0.01,
        "figure_11" => 0.04,
        "figure_12" => 0.08,
        // The Hist mW/core trendline is a linear fit over a saturating
        // curve: ~1% per-point errors amplify to ~13% on the slope
        // when quick fidelity fits over only seven core counts.
        "figure_13" => 0.15,
        "figure_14" => 0.05,
        "figure_17" => 0.005,
        "design_space" => 0.12,
        other => panic!("no committed budget for figure {other:?}"),
    }
}

/// Small-denominator floors so near-zero oracle values do not explode
/// the relative error (watts / picojoules / degrees Celsius).
const FLOOR_W: f64 = 0.005;
const FLOOR_PJ: f64 = 5.0;
const FLOOR_C: f64 = 1.0;

fn rel_err(cycle: f64, analytic: f64, floor: f64) -> f64 {
    (analytic - cycle).abs() / cycle.abs().max(floor)
}

/// One compared quantity.
#[derive(Debug, Clone)]
pub struct ComparedPoint {
    /// Human-readable point label (`"0.90 V static_vdd"`, …).
    pub label: String,
    /// The cycle oracle's value.
    pub cycle: f64,
    /// The analytic prediction.
    pub analytic: f64,
    /// Relative error against the floored oracle magnitude.
    pub rel: f64,
}

/// One figure's error summary.
#[derive(Debug, Clone)]
pub struct FigureComparison {
    /// Stable figure key (`"figure_11"`, …).
    pub figure: &'static str,
    /// Committed budget on the maximum relative error.
    pub budget: f64,
    /// Every compared point.
    pub points: Vec<ComparedPoint>,
}

impl FigureComparison {
    fn new(figure: &'static str) -> Self {
        Self {
            figure,
            budget: budget_for(figure),
            points: Vec::new(),
        }
    }

    /// Builds a comparison from `(label, cycle, analytic, floor)`
    /// tuples (used by sweeps that compare outside this module).
    pub fn from_points<I>(figure: &'static str, points: I) -> Self
    where
        I: IntoIterator<Item = (String, f64, f64, f64)>,
    {
        let mut cmp = Self::new(figure);
        for (label, cycle, analytic, floor) in points {
            cmp.push(label, cycle, analytic, floor);
        }
        cmp
    }

    fn push(&mut self, label: String, cycle: f64, analytic: f64, floor: f64) {
        self.points.push(ComparedPoint {
            rel: rel_err(cycle, analytic, floor),
            label,
            cycle,
            analytic,
        });
    }

    /// Maximum relative error across the figure.
    #[must_use]
    pub fn max_rel(&self) -> f64 {
        self.points.iter().map(|p| p.rel).fold(0.0, f64::max)
    }

    /// Mean relative error across the figure.
    #[must_use]
    pub fn mean_rel(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.rel).sum::<f64>() / self.points.len() as f64
    }

    /// The worst point, if any were compared.
    #[must_use]
    pub fn worst(&self) -> Option<&ComparedPoint> {
        self.points.iter().max_by(|a, b| a.rel.total_cmp(&b.rel))
    }

    /// Whether the figure's maximum error is within its budget.
    #[must_use]
    pub fn within_budget(&self) -> bool {
        self.max_rel() <= self.budget
    }
}

/// Figure 10 + Table V: static and idle rail power per voltage step.
#[must_use]
pub fn compare_static_idle(cycle: &StaticIdleResult, cal: &Calibrated) -> Vec<FigureComparison> {
    let mut fig10 = FigureComparison::new("figure_10");
    let predicted = predict::static_idle(cal);
    for (c, a) in cycle.points.iter().zip(&predicted) {
        let v = c.vdd.0;
        for (metric, cw, aw) in [
            ("static_vdd", c.static_vdd.0, a.static_vdd),
            ("static_vcs", c.static_vcs.0, a.static_vcs),
            ("dynamic_vdd", c.dynamic_vdd.0, a.dynamic_vdd),
            ("dynamic_vcs", c.dynamic_vcs.0, a.dynamic_vcs),
        ] {
            fig10.push(format!("{v:.2} V {metric}"), cw, aw, FLOOR_W);
        }
    }
    let mut tv = FigureComparison::new("table_v");
    let (static_w, idle_w) = predict::table_v(cal);
    tv.push(
        "static".to_owned(),
        cycle.table_v_static.0,
        static_w,
        FLOOR_W,
    );
    tv.push("idle".to_owned(), cycle.table_v_idle.0, idle_w, FLOOR_W);
    vec![fig10, tv]
}

/// Figure 11: EPI per instruction case and operand pattern.
#[must_use]
pub fn compare_epi(cycle: &EpiResult, cal: &Calibrated) -> FigureComparison {
    let mut cmp = FigureComparison::new("figure_11");
    let predicted = predict::epi(cal);
    for row in &cycle.rows {
        for (pattern, measured) in &row.epi_pj {
            let Some((_, _, a)) = predicted
                .iter()
                .find(|(label, p, _)| *label == row.label && p == pattern)
            else {
                continue;
            };
            cmp.push(
                format!("{} {pattern}", row.label),
                measured.value,
                *a,
                FLOOR_PJ,
            );
        }
    }
    cmp
}

/// Figure 12: NoC pJ/hop trendlines and the 8-hop EPF endpoints.
#[must_use]
pub fn compare_noc(cycle: &NocEnergyResult, cal: &Calibrated) -> FigureComparison {
    let mut cmp = FigureComparison::new("figure_12");
    let predicted = predict::noc(cal);
    for series in &cycle.series {
        let Some((_, points, slope)) = predicted.iter().find(|(p, _, _)| *p == series.pattern)
        else {
            continue;
        };
        cmp.push(
            format!("{} pJ/hop", series.pattern),
            series.pj_per_hop,
            *slope,
            FLOOR_PJ,
        );
        if let (Some(&(8, c8)), Some(&(8, a8))) = (
            series.points.iter().find(|p| p.0 == 8),
            points.iter().find(|p| p.0 == 8),
        ) {
            cmp.push(format!("{} epf@8", series.pattern), c8, a8, FLOOR_PJ);
        }
    }
    cmp
}

/// Figure 13: full-chip watts per measured core count plus the fitted
/// mW/core slopes and the chip idle.
#[must_use]
pub fn compare_core_scaling(cycle: &CoreScalingResult, cal: &Calibrated) -> FigureComparison {
    let mut cmp = FigureComparison::new("figure_13");
    cmp.push(
        "chip3 idle".to_owned(),
        cycle.idle.0,
        predict::chip3_idle_w(cal),
        FLOOR_W,
    );
    for series in &cycle.series {
        let name = format!("{} {}", series.bench.label(), series.tpc.label());
        for &(cores, watts) in &series.points {
            let a = predict::micro_power_w(cal, series.bench, series.tpc, cores as f64);
            cmp.push(format!("{name} @{cores}"), watts, a, FLOOR_W);
        }
        let fit: Vec<(f64, f64)> = series
            .points
            .iter()
            .map(|&(c, _)| {
                (
                    c as f64,
                    predict::micro_power_w(cal, series.bench, series.tpc, c as f64),
                )
            })
            .collect();
        if let Ok((_, slope)) = crate::measure::linear_fit(&fit) {
            cmp.push(
                format!("{name} mW/core"),
                series.mw_per_core,
                slope * 1e3,
                1.0,
            );
        }
    }
    cmp
}

/// Figure 14: steady-state total power per (benchmark, threads, T/C).
#[must_use]
pub fn compare_mt_vs_mc(cycle: &MtMcResult, cal: &Calibrated) -> FigureComparison {
    let mut cmp = FigureComparison::new("figure_14");
    for series in &cycle.series {
        for p in &series.points {
            let a = predict::micro_power_w(cal, series.bench, p.tpc, p.active_cores as f64);
            cmp.push(
                format!("{} {}T {}", series.bench.label(), p.threads, p.tpc.label()),
                p.total_power.0,
                a,
                FLOOR_W,
            );
        }
    }
    cmp
}

/// Figure 17: equilibrium power and surface temperature per point.
#[must_use]
pub fn compare_thermal(cycle: &ThermalPowerResult, cal: &Calibrated) -> FigureComparison {
    let mut cmp = FigureComparison::new("figure_17");
    let predicted = predict::thermal(cal);
    for p in &cycle.points {
        let Some(&(_, _, a_power, a_surface)) = predicted.iter().find(|&&(threads, eff, _, _)| {
            threads == p.threads && (eff - p.fan_effectiveness).abs() < 1e-9
        }) else {
            continue;
        };
        let label = format!("{}T fan {:.1}", p.threads, p.fan_effectiveness);
        cmp.push(format!("{label} power"), p.power.0, a_power, FLOOR_W);
        cmp.push(format!("{label} surface"), p.surface_c, a_surface, FLOOR_C);
    }
    cmp
}

/// Renders the `--backend both` error table.
#[must_use]
pub fn error_table(comparisons: &[FigureComparison]) -> String {
    let mut t = Table::new("Analytic vs cycle: per-figure relative error");
    t.header([
        "Figure",
        "Points",
        "Max rel",
        "Mean rel",
        "Budget",
        "Worst point",
        "Status",
    ]);
    for c in comparisons {
        let (worst, status) = match c.worst() {
            Some(w) => (
                format!("{} ({:.4} vs {:.4})", w.label, w.analytic, w.cycle),
                if c.within_budget() {
                    "ok"
                } else {
                    "OVER BUDGET"
                },
            ),
            None => ("—".to_owned(), "empty"),
        };
        t.row([
            c.figure.to_owned(),
            c.points.len().to_string(),
            format!("{:.3}%", c.max_rel() * 100.0),
            format!("{:.3}%", c.mean_rel() * 100.0),
            format!("{:.1}%", c.budget * 100.0),
            worst,
            status.to_owned(),
        ]);
    }
    t.render()
}

/// Which experiment modules the analytic backend covers versus leaves
/// to the cycle engine alone (timing and functional studies have no
/// power-model fast path).
#[must_use]
pub fn coverage() -> (Vec<&'static str>, Vec<&'static str>) {
    (
        vec![
            "static_idle",
            "epi",
            "noc_energy",
            "core_scaling",
            "mt_vs_mc",
            "thermal (figure 17)",
            "design_space",
        ],
        vec![
            "vf_sweep (already closed-form, shared by both backends)",
            "yield_stats (no power content)",
            "area (no power content)",
            "memory_energy (derived table, no steady-state sweep)",
            "specint (timing-driven phase traces)",
            "mem_latency (pure timing)",
            "thermal (figure 18 scheduling transient)",
            "governor (closed-loop control transients)",
            "ablations (design-choice deltas need the cycle engine)",
        ],
    )
}
