//! The analytic fast-path backend: closed-form power predictions
//! calibrated against — and checked against — the cycle engine.
//!
//! The cycle engine is the oracle: it simulates every core, cache and
//! flit and reads power off the modelled rails. This module replays a
//! small battery of cycle-level probes ([`battery`]), fits per-event
//! energy coefficients to them by least squares, and then answers the
//! same experimental questions with three dot products per evaluation
//! ([`model`], [`predict`]). A conformance layer ([`compare`]) keeps
//! the two backends honest by bounding the analytic error per figure
//! against committed budgets.
//!
//! The payoff is scale: the `design_space` mega-sweep evaluates grids
//! the cycle engine could never finish, while `--backend both` keeps a
//! running proof that the fast path still agrees with the oracle.

pub mod battery;
pub mod compare;
pub mod features;
pub mod model;
pub mod predict;

pub use battery::{FitReport, Probe, ProbeKind, RailResidual};
pub use features::Features;
pub use model::AnalyticModel;

use piton_arch::error::PitonError;
use piton_arch::isa::OperandPattern;
use piton_sim::machine::SwitchPattern;
use piton_workloads::epi::EpiCase;
use piton_workloads::micro::{Microbenchmark, ThreadsPerCore};

use crate::experiments::Fidelity;
use crate::report::Table;

/// A fitted model together with the probe battery that produced it —
/// the probes double as the workload rate library the predictors
/// interpolate over.
#[derive(Debug, Clone)]
pub struct Calibrated {
    /// The fitted closed-form model.
    pub model: AnalyticModel,
    /// Fit quality (recorded in the run manifest).
    pub report: FitReport,
    /// The cycle-level probes the fit ran against.
    pub probes: Vec<Probe>,
}

impl Calibrated {
    fn find(&self, kind: ProbeKind) -> &Probe {
        self.probes
            .iter()
            .find(|p| p.kind == kind)
            .expect("probe battery covers every spec")
    }

    /// The Chip #2 idle probe.
    #[must_use]
    pub fn idle(&self) -> &Probe {
        self.find(ProbeKind::Idle)
    }

    /// One Figure 11 EPI probe.
    #[must_use]
    pub fn epi(&self, case: EpiCase, pattern: OperandPattern) -> &Probe {
        self.find(ProbeKind::Epi(case, pattern))
    }

    /// One NoC traffic probe at a hop knot.
    #[must_use]
    pub fn noc(&self, pattern: SwitchPattern, hops: usize) -> &Probe {
        self.find(ProbeKind::Noc(pattern, hops))
    }

    /// One microbenchmark probe at a core-count knot.
    #[must_use]
    pub fn micro(&self, bench: Microbenchmark, tpc: ThreadsPerCore, cores: usize) -> &Probe {
        self.find(ProbeKind::Micro(bench, tpc, cores))
    }

    /// One Figure 17 thermal-study probe.
    #[must_use]
    pub fn fig17(&self, threads: usize) -> &Probe {
        self.find(ProbeKind::Fig17(threads))
    }

    /// Rate profile of a microbenchmark configuration at an arbitrary
    /// core count: piecewise-linear between the probed
    /// [`battery::MICRO_KNOTS`], clamped at the ends.
    #[must_use]
    pub fn micro_rates_at(
        &self,
        bench: Microbenchmark,
        tpc: ThreadsPerCore,
        cores: f64,
    ) -> Features {
        let knots = battery::MICRO_KNOTS;
        let first = knots[0];
        let last = knots[knots.len() - 1];
        if cores <= first as f64 {
            return self.micro(bench, tpc, first).rates.clone();
        }
        for w in knots.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            if cores <= hi as f64 {
                let t = (cores - lo as f64) / (hi - lo) as f64;
                return self
                    .micro(bench, tpc, lo)
                    .rates
                    .lerp(&self.micro(bench, tpc, hi).rates, t);
            }
        }
        self.micro(bench, tpc, last).rates.clone()
    }
}

/// Runs the probe battery at the given fidelity and fits the model.
///
/// # Errors
///
/// Propagates probe failures and [`PitonError::DegenerateFit`] from
/// the least-squares solve.
pub fn calibrate(fidelity: Fidelity) -> Result<Calibrated, PitonError> {
    let probes = battery::run_battery(fidelity)?;
    let (model, report) = battery::fit(&probes)?;
    Ok(Calibrated {
        model,
        report,
        probes,
    })
}

/// Renders the calibration section of an analytic/both report.
#[must_use]
pub fn render_calibration(cal: &Calibrated) -> String {
    let mut t = Table::new("Calibration: closed-form fit vs cycle-level probes");
    t.header(["Rail", "Max residual", "Mean residual"]);
    for (name, r) in ["VDD", "VCS", "VIO"].iter().zip(&cal.report.residuals) {
        t.row([
            (*name).to_owned(),
            format!("{:.3}%", r.max_rel * 100.0),
            format!("{:.3}%", r.mean_rel * 100.0),
        ]);
    }
    let worst = match &cal.report.worst {
        Some((label, rail, rel)) => {
            format!("worst probe: {label} ({rail}, {:.3}%)", rel * 100.0)
        }
        None => "worst probe: none".to_owned(),
    };
    format!(
        "{}\nfitted against {} cycle-level probes; {worst}\n",
        t.render(),
        cal.report.probes
    )
}
