//! Per-rail feature vectors: the linear-algebra view of an activity
//! window.
//!
//! The closed-form model is linear in exactly the counters the cycle
//! engine's [`piton_power::model::PowerModel`] charges, so an activity
//! window flattens into three feature vectors (one per rail) and the
//! model becomes three dot products. Keeping the layout explicit — one
//! named slot per counter, opcode-indexed blocks for issues and operand
//! activity — makes the fitted coefficient vector directly comparable
//! to the hand-written [`piton_power::calibration::Calibration`] table.
//!
//! The store-buffer enqueue counter is carried as its own feature even
//! though it is collinear with store issues over any realistic probe
//! battery; the damped fit splits the shared energy across the aliased
//! columns, which is invisible to in-span predictions (see
//! [`piton_power::calibration::least_squares_damped`]).

use piton_arch::isa::Opcode;
use piton_sim::events::ActivityCounters;

/// Number of VDD-rail features.
pub const VDD_FEATURES: usize = 16 + 2 * Opcode::COUNT;
/// Number of VCS-rail features.
pub const VCS_FEATURES: usize = 10;
/// Number of VIO-rail features.
pub const VIO_FEATURES: usize = 2;

/// Index of the window-cycle feature in the VDD and VCS vectors (the
/// clock-tree column; also the normalizer when converting counts to
/// per-cycle rates).
pub const CYCLES: usize = 0;
/// Index of the drafted-issue feature in the VDD vector (the one
/// negative coefficient: Execution Drafting *saves* front-end energy).
pub const DRAFTED: usize = 4;
const ISSUES_BASE: usize = 5;
const ACTIVITY_BASE: usize = ISSUES_BASE + Opcode::COUNT;
const TAIL_BASE: usize = ACTIVITY_BASE + Opcode::COUNT;

const TAIL_NAMES: [&str; 11] = [
    "l15_miss",
    "invalidation",
    "load_rollback",
    "store_rollback",
    "sb_enqueue",
    "noc_flit_hop",
    "noc_bit_switch",
    "noc_coupling_switch",
    "noc_route_compute",
    "offchip_request",
    "chip_bridge_flit",
];

const VCS_NAMES: [&str; VCS_FEATURES] = [
    "clock",
    "l1i_access",
    "l1d_read",
    "l1d_write",
    "l15_read",
    "l15_write",
    "l15_writeback",
    "l2_read",
    "l2_write",
    "dir_lookup",
];

const VIO_NAMES: [&str; VIO_FEATURES] = ["chip_bridge_flit", "io_transaction"];

/// Stable human-readable names for the VDD feature slots (used when a
/// fitted coefficient vector is recorded in the run manifest).
#[must_use]
pub fn vdd_feature_names() -> Vec<String> {
    let mut names = vec![
        "clock".to_owned(),
        "active_core_cycle".to_owned(),
        "mem_stall_cycle".to_owned(),
        "dual_thread_cycle".to_owned(),
        "drafted_issue".to_owned(),
    ];
    names.extend(
        Opcode::ALL
            .iter()
            .map(|op| format!("issue.{}", op.mnemonic())),
    );
    names.extend(
        Opcode::ALL
            .iter()
            .map(|op| format!("activity.{}", op.mnemonic())),
    );
    names.extend(TAIL_NAMES.iter().map(|&n| n.to_owned()));
    names
}

/// Stable names for the VCS feature slots.
#[must_use]
pub fn vcs_feature_names() -> Vec<String> {
    VCS_NAMES.iter().map(|&n| n.to_owned()).collect()
}

/// Stable names for the VIO feature slots.
#[must_use]
pub fn vio_feature_names() -> Vec<String> {
    VIO_NAMES.iter().map(|&n| n.to_owned()).collect()
}

/// One activity window (or per-cycle rate profile) flattened into the
/// three per-rail feature vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct Features {
    /// VDD-rail features, laid out per [`vdd_feature_names`].
    pub vdd: Vec<f64>,
    /// VCS-rail features, laid out per [`vcs_feature_names`].
    pub vcs: Vec<f64>,
    /// VIO-rail features, laid out per [`vio_feature_names`].
    pub vio: Vec<f64>,
}

impl Features {
    /// All-zero features.
    #[must_use]
    pub fn zero() -> Self {
        Self {
            vdd: vec![0.0; VDD_FEATURES],
            vcs: vec![0.0; VCS_FEATURES],
            vio: vec![0.0; VIO_FEATURES],
        }
    }

    /// Flattens an activity delta into absolute per-rail feature
    /// vectors (same counts, different shape).
    #[must_use]
    pub fn extract(a: &ActivityCounters) -> Self {
        let mut vdd = vec![0.0_f64; VDD_FEATURES];
        vdd[CYCLES] = a.cycles as f64;
        vdd[1] = a.core_active_cycles as f64;
        vdd[2] = a.mem_stall_cycles as f64;
        vdd[3] = a.dual_thread_cycles as f64;
        vdd[DRAFTED] = a.drafted_issues as f64;
        for op in Opcode::ALL {
            let i = op.index();
            vdd[ISSUES_BASE + i] = a.issues[i] as f64;
            vdd[ACTIVITY_BASE + i] = a.operand_activity[i];
        }
        let tail = [
            a.l15_misses as f64,
            a.invalidations as f64,
            a.load_rollbacks as f64,
            a.store_rollbacks as f64,
            a.sb_enqueues as f64,
            a.noc_flit_hops as f64,
            a.noc_bit_switches as f64,
            a.noc_coupling_switches as f64,
            a.noc_route_computes as f64,
            a.offchip_requests as f64,
            a.chip_bridge_flits as f64,
        ];
        vdd[TAIL_BASE..].copy_from_slice(&tail);

        let vcs = vec![
            a.cycles as f64,
            a.l1i_accesses as f64,
            a.l1d_reads as f64,
            a.l1d_writes as f64,
            a.l15_reads as f64,
            a.l15_writes as f64,
            a.l15_writebacks as f64,
            a.l2_reads as f64,
            a.l2_writes as f64,
            a.dir_lookups as f64,
        ];
        let vio = vec![a.chip_bridge_flits as f64, a.io_transactions as f64];
        Self { vdd, vcs, vio }
    }

    /// Per-cycle rate profile of a window: every feature divided by the
    /// window's cycle count (the cycle features become exactly `1.0`).
    ///
    /// # Panics
    ///
    /// Panics on an empty window, mirroring
    /// [`piton_power::model::PowerModel::power`].
    #[must_use]
    pub fn rates(a: &ActivityCounters) -> Self {
        assert!(a.cycles > 0, "empty activity window");
        let mut f = Self::extract(a);
        let inv = 1.0 / a.cycles as f64;
        f.scale_in_place(inv);
        f
    }

    /// Scales every feature in place (rate blending / normalization).
    pub fn scale_in_place(&mut self, k: f64) {
        for v in self
            .vdd
            .iter_mut()
            .chain(self.vcs.iter_mut())
            .chain(self.vio.iter_mut())
        {
            *v *= k;
        }
    }

    /// Adds `k × other` into `self` (workload-mix accumulation).
    pub fn add_scaled(&mut self, other: &Self, k: f64) {
        for (a, b) in self
            .vdd
            .iter_mut()
            .zip(&other.vdd)
            .chain(self.vcs.iter_mut().zip(&other.vcs))
            .chain(self.vio.iter_mut().zip(&other.vio))
        {
            *a += k * b;
        }
    }

    /// Element-wise linear interpolation `self + t × (other − self)`.
    #[must_use]
    pub fn lerp(&self, other: &Self, t: f64) -> Self {
        let mut out = self.clone();
        out.scale_in_place(1.0 - t);
        out.add_scaled(other, t);
        out
    }

    /// Total instruction-issue rate (sum of the per-opcode issue
    /// features) — IPC when `self` holds per-cycle rates.
    #[must_use]
    pub fn issue_rate(&self) -> f64 {
        self.vdd[ISSUES_BASE..ISSUES_BASE + Opcode::COUNT]
            .iter()
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_names_match_vector_widths() {
        assert_eq!(vdd_feature_names().len(), VDD_FEATURES);
        assert_eq!(vcs_feature_names().len(), VCS_FEATURES);
        assert_eq!(vio_feature_names().len(), VIO_FEATURES);
        let z = Features::zero();
        assert_eq!(z.vdd.len(), VDD_FEATURES);
        assert_eq!(z.vcs.len(), VCS_FEATURES);
        assert_eq!(z.vio.len(), VIO_FEATURES);
    }

    #[test]
    fn extract_places_counters_in_named_slots() {
        let mut a = ActivityCounters::new();
        a.cycles = 1000;
        a.record_issue(Opcode::Add, 1, 0.25);
        a.record_issue(Opcode::Add, 1, 0.75);
        a.sb_enqueues = 7;
        a.io_transactions = 3;
        let f = Features::extract(&a);
        assert_eq!(f.vdd[CYCLES], 1000.0);
        assert_eq!(f.vdd[ISSUES_BASE + Opcode::Add.index()], 2.0);
        assert!((f.vdd[ACTIVITY_BASE + Opcode::Add.index()] - 1.0).abs() < 1e-12);
        let names = vdd_feature_names();
        let sb = names.iter().position(|n| n == "sb_enqueue").unwrap();
        assert_eq!(f.vdd[sb], 7.0);
        assert_eq!(f.vio[1], 3.0);
        assert!((f.issue_rate() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rates_normalize_and_mixes_blend() {
        let mut a = ActivityCounters::new();
        a.cycles = 200;
        a.l1d_reads = 100;
        let r = Features::rates(&a);
        assert_eq!(r.vdd[CYCLES], 1.0);
        assert_eq!(r.vcs[2], 0.5);
        let mut mix = Features::zero();
        mix.add_scaled(&r, 0.5);
        mix.add_scaled(&r, 0.5);
        assert_eq!(mix, r);
        let mid = r.lerp(&Features::zero(), 0.5);
        assert_eq!(mid.vcs[2], 0.25);
    }
}
