//! Per-figure analytic predictors.
//!
//! Each predictor mirrors its cycle-level experiment's methodology step
//! for step — the same EPI/EPF formulas, the same trendline fits, the
//! same warm-up thermal convention — but evaluates the calibrated
//! closed-form model over rate profiles instead of simulating windows.
//! That keeps every disagreement between the backends attributable to
//! the model itself (fit residuals, rate interpolation) rather than to
//! divergent bookkeeping.

use piton_arch::isa::OperandPattern;
use piton_arch::units::Hertz;
use piton_board::population::NamedChip;
use piton_power::model::{ChipCorner, OperatingPoint, RailPower};
use piton_power::thermal::{Cooling, ThermalModel};
use piton_sim::machine::SwitchPattern;
use piton_workloads::epi::{EpiCase, StoreVariant, STX_DRAIN_NOPS};
use piton_workloads::micro::{Microbenchmark, ThreadsPerCore};

use super::battery::NOC_KNOTS;
use super::features::Features;
use super::Calibrated;
use crate::experiments::vf_sweep;
use crate::measure::{epf_pj, epi_pj, linear_fit};
use crate::report::{Table, ANALYTIC_MARK};

/// Ambient temperature of every thermal mirror (§IV-J room
/// temperature, the virtual bench default).
const AMBIENT_C: f64 = 20.0;

/// Power at the warmed-up junction: the analytic mirror of
/// [`piton_board::system::PitonSystem::warm_up`]'s damped leakage
/// fixed point (90 % of total-with-IO heating the package).
fn settled(
    cal: &Calibrated,
    rates: &Features,
    op0: OperatingPoint,
    corner: ChipCorner,
) -> RailPower {
    let thermal = ThermalModel::new(Cooling::HeatsinkFan, AMBIENT_C);
    let (t_eq, _) = thermal.equilibrium(
        |t| {
            cal.model
                .power(rates, op0.with_junction(t), corner)
                .total_with_io()
                * 0.9
        },
        120.0,
    );
    cal.model.power(rates, op0.with_junction(t_eq), corner)
}

/// Per-feature least-squares line through the NoC hop knots, evaluated
/// at an arbitrary hop count.
fn noc_rates_at(knots: &[(f64, &Features)], hops: f64) -> Features {
    let n = knots.len() as f64;
    let sx: f64 = knots.iter().map(|k| k.0).sum();
    let denom: f64 = knots.iter().map(|k| k.0 * k.0).sum::<f64>() - sx * sx / n;
    let mut out = Features::zero();
    let project = |pick: fn(&Features) -> &[f64], slot: &mut [f64]| {
        for (j, s) in slot.iter_mut().enumerate() {
            let sy: f64 = knots.iter().map(|k| pick(k.1)[j]).sum();
            let sxy: f64 = knots.iter().map(|k| k.0 * pick(k.1)[j]).sum();
            let slope = (sxy - sx * sy / n) / denom;
            let intercept = (sy - slope * sx) / n;
            *s = intercept + slope * hops;
        }
    };
    project(|f| &f.vdd, &mut out.vdd);
    project(|f| &f.vcs, &mut out.vcs);
    project(|f| &f.vio, &mut out.vio);
    out
}

/// Table V, analytically: Chip #2 static and idle power (W).
#[must_use]
pub fn table_v(cal: &Calibrated) -> (f64, f64) {
    let corner = NamedChip::Chip2.corner();
    let op = OperatingPoint::table_iii().with_junction(AMBIENT_C);
    // Static: leakage-only self-heating fixed point, mirroring
    // `measure_static_power` (which warms from the fresh junction).
    let thermal = ThermalModel::new(Cooling::HeatsinkFan, AMBIENT_C);
    let (t_static, _) = thermal.equilibrium(
        |t| {
            cal.model
                .static_power(op.with_junction(t), corner)
                .total_with_io()
        },
        120.0,
    );
    let static_w = cal
        .model
        .static_power(op.with_junction(t_static), corner)
        .total()
        .0;
    let idle_w = settled(cal, &cal.idle().rates, op, corner).total().0;
    (static_w, idle_w)
}

/// One Figure 10 voltage step, chip-averaged (all in W).
#[derive(Debug, Clone, Copy)]
pub struct StaticIdleStep {
    /// Core voltage (V).
    pub vdd: f64,
    /// Static power, core rail.
    pub static_vdd: f64,
    /// Static power, SRAM rail.
    pub static_vcs: f64,
    /// Idle dynamic power, core rail.
    pub dynamic_vdd: f64,
    /// Idle dynamic power, SRAM rail.
    pub dynamic_vcs: f64,
}

/// Figure 10, analytically: static at the fresh junction, idle dynamic
/// as settled idle minus static, averaged over the three chips — the
/// exact shape of `static_idle::run`'s per-step averaging.
#[must_use]
pub fn static_idle(cal: &Calibrated) -> Vec<StaticIdleStep> {
    let vf = vf_sweep::run_with_jobs(1);
    let chips = [NamedChip::Chip1, NamedChip::Chip2, NamedChip::Chip3];
    vf.chip(NamedChip::Chip2)
        .points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let freq = Hertz::from_mhz(vf.min_fmax_mhz(i));
            let mut acc = [0.0_f64; 4];
            for chip in chips {
                let corner = chip.corner();
                let op = OperatingPoint::table_iii()
                    .with_vdd_tracked(p.vdd)
                    .with_freq(freq)
                    .with_junction(AMBIENT_C);
                // The cycle bench reads static power *before* warm-up,
                // at the fresh system's ambient junction.
                let s = cal.model.static_power(op, corner);
                let idle = settled(cal, &cal.idle().rates, op, corner);
                acc[0] += s.vdd.0;
                acc[1] += s.vcs.0;
                acc[2] += (idle.vdd.0 - s.vdd.0).max(0.0);
                acc[3] += (idle.vcs.0 - s.vcs.0).max(0.0);
            }
            StaticIdleStep {
                vdd: p.vdd.0,
                static_vdd: acc[0] / 3.0,
                static_vcs: acc[1] / 3.0,
                dynamic_vdd: acc[2] / 3.0,
                dynamic_vcs: acc[3] / 3.0,
            }
        })
        .collect()
}

/// Figure 11, analytically: EPI per case and operand pattern (pJ), in
/// the cycle experiment's row order.
#[must_use]
pub fn epi(cal: &Calibrated) -> Vec<(String, OperandPattern, f64)> {
    let corner = NamedChip::Chip2.corner();
    let idle_probe = cal.idle();
    let idle_w = settled(cal, &idle_probe.rates, idle_probe.op, corner).total();
    let f = idle_probe.op.freq;
    let nop_probe = cal.epi(
        EpiCase::Plain(piton_arch::isa::Opcode::Nop),
        OperandPattern::Random,
    );
    let nop_epi = epi_pj(
        settled(cal, &nop_probe.rates, nop_probe.op, corner).total(),
        idle_w,
        f,
        1,
    );
    let mut rows = Vec::new();
    for case in EpiCase::figure_11() {
        let patterns: &[OperandPattern] = if case.has_value_operands() {
            &OperandPattern::ALL
        } else {
            &[OperandPattern::Random]
        };
        for &pattern in patterns {
            let probe = cal.epi(case, pattern);
            let p = settled(cal, &probe.rates, probe.op, corner).total();
            let mut e = epi_pj(p, idle_w, f, case.opcode().base_latency());
            if case == EpiCase::Store(StoreVariant::NotFull) {
                e -= STX_DRAIN_NOPS as f64 * nop_epi;
            }
            rows.push((case.label(), pattern, e));
        }
    }
    rows
}

/// One Figure 12 series: pattern label, per-hop (hops, pJ/flit) points,
/// and the fitted pJ/hop trendline slope.
pub type NocSeries = (&'static str, Vec<(usize, f64)>, f64);

/// Figure 12, analytically: per-pattern EPF series over hops 0..=8 and
/// the fitted pJ/hop trendline.
#[must_use]
pub fn noc(cal: &Calibrated) -> Vec<NocSeries> {
    let f = Hertz::from_mhz(500.05);
    SwitchPattern::ALL
        .into_iter()
        .map(|pattern| {
            let probes: Vec<_> = NOC_KNOTS
                .iter()
                .map(|&h| (h as f64, &cal.noc(pattern, h).rates))
                .collect();
            let op = cal.noc(pattern, NOC_KNOTS[0]).op;
            let corner = ChipCorner::typical();
            let power_at = |hops: f64| {
                cal.model
                    .power(&noc_rates_at(&probes, hops), op, corner)
                    .total()
            };
            let base = power_at(0.0);
            let mut points = vec![(0usize, 0.0_f64)];
            points.extend((1..=8usize).map(|h| (h, epf_pj(power_at(h as f64), base, f))));
            let fit: Vec<(f64, f64)> = points.iter().map(|&(h, e)| (h as f64, e)).collect();
            let (_, slope) = linear_fit(&fit).expect("nine points are never degenerate");
            (pattern.label(), points, slope)
        })
        .collect()
}

/// The settled idle total (W) of Chip #3 — the `measure_idle_power`
/// mirror shared by the Figure 13/14 predictors.
#[must_use]
pub fn chip3_idle_w(cal: &Calibrated) -> f64 {
    let op = OperatingPoint::table_iii().with_junction(AMBIENT_C);
    settled(cal, &cal.idle().rates, op, NamedChip::Chip3.corner())
        .total()
        .0
}

/// Settled full-chip watts of one microbenchmark configuration at an
/// interpolated core count (Chip #3, the Figure 13/14 die).
#[must_use]
pub fn micro_power_w(
    cal: &Calibrated,
    bench: Microbenchmark,
    tpc: ThreadsPerCore,
    cores: f64,
) -> f64 {
    let rates = cal.micro_rates_at(bench, tpc, cores);
    let op = cal.micro(bench, tpc, super::battery::MICRO_KNOTS[0]).op;
    settled(cal, &rates, op, NamedChip::Chip3.corner())
        .total()
        .0
}

/// One Figure 13 series: benchmark, threads/core, per-count (cores, W)
/// points, and the fitted mW/core slope.
pub type ScalingSeries = (Microbenchmark, ThreadsPerCore, Vec<(usize, f64)>, f64);

/// Figure 13, analytically: full-chip watts per core count and the
/// fitted mW/core slope, per (benchmark, T/C) series.
#[must_use]
pub fn core_scaling(cal: &Calibrated, core_counts: &[usize]) -> Vec<ScalingSeries> {
    let mut series = Vec::new();
    for bench in Microbenchmark::ALL {
        for tpc in [ThreadsPerCore::One, ThreadsPerCore::Two] {
            let points: Vec<(usize, f64)> = core_counts
                .iter()
                .map(|&cores| (cores, micro_power_w(cal, bench, tpc, cores as f64)))
                .collect();
            let fit: Vec<(f64, f64)> = points.iter().map(|&(c, w)| (c as f64, w)).collect();
            let (_, slope) = linear_fit(&fit).expect("scaling series has ≥2 points");
            series.push((bench, tpc, points, slope * 1e3));
        }
    }
    series
}

/// Figure 14, analytically: steady-state total power (W) per
/// (benchmark, thread count, T/C) point, in the cycle sweep's order.
#[must_use]
pub fn mt_vs_mc(
    cal: &Calibrated,
    thread_counts: &[usize],
) -> Vec<(Microbenchmark, usize, ThreadsPerCore, f64)> {
    let mut points = Vec::new();
    for bench in Microbenchmark::ALL {
        for &threads in thread_counts {
            for tpc in [ThreadsPerCore::One, ThreadsPerCore::Two] {
                let cores = threads.div_ceil(tpc.count());
                let p = micro_power_w(cal, bench, tpc, cores as f64);
                points.push((bench, threads, tpc, p));
            }
        }
    }
    points
}

/// Figure 17, analytically: the thermal-study equilibrium per (thread
/// count, fan effectiveness) — same closure shape as the cycle
/// experiment, evaluated over the probed rate profiles.
#[must_use]
pub fn thermal(cal: &Calibrated) -> Vec<(usize, f64, f64, f64)> {
    let fan_steps = [1.0, 0.8, 0.6, 0.4, 0.2, 0.0];
    let mut points = Vec::new();
    for &threads in &super::battery::FIG17_THREADS {
        let probe = cal.fig17(threads);
        for &eff in &fan_steps {
            let thermal =
                ThermalModel::new(Cooling::BarePackageFan { effectiveness: eff }, AMBIENT_C);
            let (junction, power) = thermal.equilibrium(
                |t| {
                    cal.model
                        .power(&probe.rates, probe.op.with_junction(t), probe.corner)
                        .total()
                },
                120.0,
            );
            let surface = junction - power.0 * Cooling::HeatsinkFan.r_junction_surface();
            points.push((threads, eff, power.0, surface));
        }
    }
    points
}

/// Renders the analytic figure family for the `--backend analytic`
/// report (compact mirrors of the cycle tables, marked as analytic).
#[must_use]
pub fn render_analytic_sections(cal: &Calibrated) -> Vec<(&'static str, String)> {
    let mut sections = Vec::new();

    let (static_w, idle_w) = table_v(cal);
    let mut t = Table::new("Figure 10: static and idle power vs VDD (analytic, 3-chip average)");
    t.header([
        "VDD (V)",
        "Static VDD (mW)",
        "Static VCS (mW)",
        "Dyn VDD (mW)",
        "Dyn VCS (mW)",
    ]);
    for s in static_idle(cal) {
        t.row([
            format!("{:.2}", s.vdd),
            format!("{ANALYTIC_MARK}{:.1}", s.static_vdd * 1e3),
            format!("{ANALYTIC_MARK}{:.1}", s.static_vcs * 1e3),
            format!("{ANALYTIC_MARK}{:.1}", s.dynamic_vdd * 1e3),
            format!("{ANALYTIC_MARK}{:.1}", s.dynamic_vcs * 1e3),
        ]);
    }
    sections.push((
        "Figure 10 + Table V — static and idle power (analytic)",
        format!(
            "{}\nTable V (Chip #2 defaults, analytic): static {ANALYTIC_MARK}{:.1} mW, \
             idle {ANALYTIC_MARK}{:.1} mW\n",
            t.render(),
            static_w * 1e3,
            idle_w * 1e3
        ),
    ));

    let mut t = Table::new("Figure 11: EPI by instruction and operand value (analytic)");
    t.header(["Instruction", "Pattern", "EPI (pJ)"]);
    for (label, pattern, e) in epi(cal) {
        t.row([label, pattern.to_string(), format!("{ANALYTIC_MARK}{e:.0}")]);
    }
    sections.push(("Figure 11 — energy per instruction (analytic)", t.render()));

    let mut t = Table::new("Figure 12: NoC energy per flit (analytic)");
    t.header(["Pattern", "pJ/hop", "EPF @ 8 hops (pJ)"]);
    for (pattern, points, slope) in noc(cal) {
        t.row([
            pattern.to_owned(),
            format!("{ANALYTIC_MARK}{slope:.2}"),
            format!(
                "{ANALYTIC_MARK}{:.1}",
                points.last().expect("nine points").1
            ),
        ]);
    }
    sections.push(("Figure 12 — NoC energy per flit (analytic)", t.render()));

    let cores: Vec<usize> = vec![1, 5, 9, 13, 17, 21, 25];
    let mut t = Table::new(&format!(
        "Figure 13: power scaling with core count (analytic, idle {:.1} mW)",
        chip3_idle_w(cal) * 1e3
    ));
    t.header(["Benchmark", "Config", "mW/core", "W @ 25 cores"]);
    for (bench, tpc, points, slope) in core_scaling(cal, &cores) {
        t.row([
            bench.label().to_owned(),
            tpc.label().to_owned(),
            format!("{ANALYTIC_MARK}{slope:.1}"),
            format!("{ANALYTIC_MARK}{:.3}", points.last().expect("non-empty").1),
        ]);
    }
    sections.push((
        "Figure 13 — power scaling with core count (analytic)",
        t.render(),
    ));

    let mut t = Table::new("Figure 17: thermal study (analytic)");
    t.header(["Threads", "Fan", "Surface (°C)", "Power (mW)"]);
    for (threads, eff, power, surface) in thermal(cal) {
        t.row([
            threads.to_string(),
            format!("{eff:.1}"),
            format!("{ANALYTIC_MARK}{surface:.1}"),
            format!("{ANALYTIC_MARK}{:.1}", power * 1e3),
        ]);
    }
    sections.push((
        "Figure 17 — thermal characterization (analytic)",
        t.render(),
    ));

    sections
}
