//! The closed-form power model: three coefficient vectors plus the
//! shared technology curves.
//!
//! [`AnalyticModel::power`] mirrors the cycle engine's
//! [`piton_power::model::PowerModel::power`] term for term — nominal
//! per-event energies scaled by the alpha-power voltage law and the
//! die's process corner, leakage from the same exponential
//! temperature/voltage curves — but takes a *per-cycle rate profile*
//! instead of a simulated window, so one evaluation is three dot
//! products and a handful of exponentials instead of thousands of
//! simulated cycles.

use piton_arch::units::{Volts, Watts};
use piton_power::calibration::Calibration;
use piton_power::model::{ChipCorner, OperatingPoint, RailPower};
use piton_power::tech::TechModel;
use piton_power::thermal::T_CLAMP_C;

use super::features::{self, Features};

const V_NOM_VDD: Volts = Volts(1.00);
const V_NOM_VCS: Volts = Volts(1.05);
const V_NOM_VIO: Volts = Volts(1.80);

/// The calibrated closed-form model (corner-independent: the die corner
/// is applied per evaluation, exactly as the cycle engine does).
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticModel {
    /// Nominal VDD energy per feature unit (pJ), laid out per
    /// [`features::vdd_feature_names`].
    pub vdd_pj: Vec<f64>,
    /// Nominal VCS energy per feature unit (pJ).
    pub vcs_pj: Vec<f64>,
    /// Nominal VIO energy per feature unit (pJ).
    pub vio_pj: Vec<f64>,
    /// Static rail power at the calibration temperature (mW).
    pub static_mw: [f64; 3],
    /// Leakage calibration temperature (°C).
    pub static_t0_c: f64,
    tech: TechModel,
}

impl AnalyticModel {
    /// Builds a model from fitted coefficient vectors, with the static
    /// block taken from the hand calibration (leakage is not fitted —
    /// it is already closed-form in both engines).
    ///
    /// # Panics
    ///
    /// Panics if a vector length disagrees with the feature layout.
    #[must_use]
    pub fn fitted(vdd_pj: Vec<f64>, vcs_pj: Vec<f64>, vio_pj: Vec<f64>) -> Self {
        assert_eq!(vdd_pj.len(), features::VDD_FEATURES);
        assert_eq!(vcs_pj.len(), features::VCS_FEATURES);
        assert_eq!(vio_pj.len(), features::VIO_FEATURES);
        let c = Calibration::piton_hpca18();
        Self {
            vdd_pj,
            vcs_pj,
            vio_pj,
            static_mw: [c.static_vdd_mw, c.static_vcs_mw, c.static_vio_mw],
            static_t0_c: c.static_calibration_temp_c,
            tech: TechModel::ibm32soi(),
        }
    }

    /// The reference model: coefficient vectors copied straight out of
    /// [`Calibration::piton_hpca18`]. Predictions from this model match
    /// the cycle engine's power law exactly on any activity window, so
    /// it anchors the property tests and the calibrate→predict
    /// round-trip.
    #[must_use]
    pub fn reference() -> Self {
        let c = Calibration::piton_hpca18();
        let mut vdd = vec![0.0_f64; features::VDD_FEATURES];
        vdd[0] = c.clock_vdd_pj_per_cycle;
        vdd[1] = c.active_core_pj_per_cycle;
        vdd[2] = c.stall_pj_per_cycle;
        vdd[3] = c.dual_thread_pj_per_cycle;
        vdd[features::DRAFTED] = -c.execd_saving_pj;
        for (i, e) in c.instr.iter().enumerate() {
            vdd[5 + i] = e.base_pj;
            vdd[5 + piton_arch::isa::Opcode::COUNT + i] = e.value_pj;
        }
        let tail = [
            c.l15_miss_pj,
            c.invalidation_pj,
            c.load_rollback_pj,
            c.store_rollback_pj,
            c.sb_enqueue_pj,
            c.noc_flit_hop_pj,
            c.noc_bit_switch_pj,
            c.noc_coupling_pj,
            c.noc_route_pj,
            c.offchip_request_pj,
            c.bridge_flit_vdd_pj,
        ];
        let tail_base = features::VDD_FEATURES - tail.len();
        vdd[tail_base..].copy_from_slice(&tail);
        let vcs = vec![
            c.clock_vcs_pj_per_cycle,
            c.l1i_pj,
            c.l1d_read_pj,
            c.l1d_write_pj,
            c.l15_read_pj,
            c.l15_write_pj,
            c.l15_writeback_pj,
            c.l2_read_pj,
            c.l2_write_pj,
            c.dir_pj,
        ];
        let vio = vec![c.bridge_flit_vio_pj, c.io_transaction_pj];
        Self::fitted(vdd, vcs, vio)
    }

    /// Nominal dynamic energy of a feature vector, per rail (pJ per
    /// feature-unit — pJ/cycle when given a rate profile). The VDD sum
    /// is clamped at zero so the drafted-issue saving can never drive
    /// energy negative, mirroring the cycle model's clamp.
    #[must_use]
    pub fn dynamic_nominal_pj(&self, f: &Features) -> (f64, f64, f64) {
        let dot = |c: &[f64], x: &[f64]| c.iter().zip(x).map(|(a, b)| a * b).sum::<f64>();
        (
            dot(&self.vdd_pj, &f.vdd).max(0.0),
            dot(&self.vcs_pj, &f.vcs),
            dot(&self.vio_pj, &f.vio),
        )
    }

    /// Static (leakage) power at an operating point and corner — the
    /// same exponential curves as the cycle engine's
    /// [`piton_power::model::PowerModel::static_power`].
    #[must_use]
    pub fn static_power(&self, op: OperatingPoint, corner: ChipCorner) -> RailPower {
        let t_scale = self
            .tech
            .leakage_temperature_scale(op.junction_c.min(T_CLAMP_C), self.static_t0_c)
            * corner.leakage;
        let vdd_scale = self.tech.leakage_voltage_scale(op.vdd, V_NOM_VDD);
        let vcs_scale = self.tech.leakage_voltage_scale(op.vcs, V_NOM_VCS);
        RailPower {
            vdd: Watts::from_mw(self.static_mw[0] * vdd_scale * t_scale),
            vcs: Watts::from_mw(self.static_mw[1] * vcs_scale * t_scale),
            vio: Watts::from_mw(self.static_mw[2]),
        }
    }

    /// Total rail power of a per-cycle rate profile at an operating
    /// point and corner: dynamic dot products voltage-scaled and spread
    /// over the cycle time, plus leakage.
    #[must_use]
    pub fn power(&self, rates: &Features, op: OperatingPoint, corner: ChipCorner) -> RailPower {
        let (vdd_pj, vcs_pj, vio_pj) = self.dynamic_nominal_pj(rates);
        let f_hz = 1.0 / op.freq.period().0;
        let vdd_scale = self.tech.dynamic_scale(op.vdd, V_NOM_VDD) * corner.dynamic;
        let vcs_scale = self.tech.dynamic_scale(op.vcs, V_NOM_VCS) * corner.dynamic;
        let vio_scale = self.tech.dynamic_scale(op.vio, V_NOM_VIO);
        let leak = self.static_power(op, corner);
        RailPower {
            vdd: Watts(vdd_pj * vdd_scale * f_hz * 1e-12) + leak.vdd,
            vcs: Watts(vcs_pj * vcs_scale * f_hz * 1e-12) + leak.vcs,
            vio: Watts(vio_pj * vio_scale * f_hz * 1e-12) + leak.vio,
        }
    }

    /// The per-rail dynamic voltage scales at an operating point and
    /// corner (used when converting measured dynamic power back to
    /// nominal energy during calibration).
    #[must_use]
    pub fn dynamic_scales(&self, op: OperatingPoint, corner: ChipCorner) -> [f64; 3] {
        [
            self.tech.dynamic_scale(op.vdd, V_NOM_VDD) * corner.dynamic,
            self.tech.dynamic_scale(op.vcs, V_NOM_VCS) * corner.dynamic,
            self.tech.dynamic_scale(op.vio, V_NOM_VIO),
        ]
    }
}

#[cfg(test)]
mod tests {
    use piton_power::model::PowerModel;
    use piton_sim::events::ActivityCounters;

    use super::*;

    /// A representative busy activity window.
    fn window() -> ActivityCounters {
        use piton_arch::isa::Opcode;
        let mut a = ActivityCounters::new();
        a.cycles = 10_000;
        for _ in 0..4000 {
            a.record_issue(Opcode::Add, 1, 0.4);
        }
        for _ in 0..900 {
            a.record_issue(Opcode::Ldx, 3, 0.6);
        }
        for _ in 0..350 {
            a.record_issue(Opcode::Stx, 10, 0.2);
        }
        a.core_active_cycles = 9_000;
        a.mem_stall_cycles = 2_500;
        a.dual_thread_cycles = 4_000;
        a.drafted_issues = 120;
        a.l1i_accesses = 5_000;
        a.l1d_reads = 900;
        a.l1d_writes = 350;
        a.l15_reads = 80;
        a.l15_writes = 40;
        a.l15_misses = 12;
        a.l15_writebacks = 6;
        a.l2_reads = 20;
        a.l2_writes = 9;
        a.dir_lookups = 20;
        a.invalidations = 4;
        a.sb_enqueues = 350;
        a.store_rollbacks = 3;
        a.load_rollbacks = 2;
        a.noc_flit_hops = 420;
        a.noc_route_computes = 70;
        a.noc_bit_switches = 9_000;
        a.noc_coupling_switches = 800;
        a.offchip_requests = 2;
        a.chip_bridge_flits = 14;
        a.io_transactions = 1;
        a
    }

    #[test]
    fn reference_model_matches_cycle_power_model_exactly() {
        let a = window();
        let analytic = AnalyticModel::reference();
        for corner in [
            ChipCorner::typical(),
            ChipCorner {
                speed: 1.06,
                leakage: 1.45,
                dynamic: 1.12,
            },
        ] {
            let cycle = PowerModel::new(Calibration::piton_hpca18(), TechModel::ibm32soi(), corner);
            for (vdd, t) in [(1.0, 25.0), (0.8, 20.0), (1.2, 87.5)] {
                let op = OperatingPoint::table_iii()
                    .with_vdd_tracked(Volts(vdd))
                    .with_junction(t);
                let want = cycle.power(&a, op);
                let got = analytic.power(&Features::rates(&a), op, corner);
                for (w, g) in [
                    (want.vdd, got.vdd),
                    (want.vcs, got.vcs),
                    (want.vio, got.vio),
                ] {
                    assert!(
                        (w.0 - g.0).abs() < 1e-9 * w.0.abs().max(1.0),
                        "rail mismatch at vdd={vdd} t={t}: {w:?} vs {g:?}"
                    );
                }
                let want_static = cycle.static_power(op);
                let got_static = analytic.static_power(op, corner);
                assert!(
                    (want_static.total_with_io().0 - got_static.total_with_io().0).abs() < 1e-12
                );
            }
        }
    }
}
