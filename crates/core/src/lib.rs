//! The characterization framework — the paper's primary deliverable.
//!
//! This crate ties the simulator, power model, virtual bench and
//! workloads together into the measurement methodology of §III/§IV and
//! re-runs every table and figure of the evaluation:
//!
//! * [`measure`] — the EPI and EPF formulas, error propagation,
//!   per-operation energy and trendline fitting;
//! * [`experiments`] — one module per table/figure (see the module
//!   docs for the full index);
//! * [`report`] — plain-text rendering in the paper's row/column
//!   shapes, with paper-versus-measured deviation columns;
//! * [`journal`] — the write-ahead result journal behind durable,
//!   crash-resumable sweeps (`reproduce --journal/--resume`);
//! * [`analytic`] — the closed-form fast-path backend, calibrated
//!   against and conformance-checked against the cycle engine;
//! * [`serve`] — the `piton-serve` daemon core: experiment requests
//!   over a Unix socket, answered from a persistent content-addressed
//!   result cache.
//!
//! # Examples
//!
//! ```
//! use piton_core::experiments::yield_stats;
//!
//! let result = yield_stats::run();
//! assert_eq!(result.counts.good, 19); // Table IV
//! println!("{}", result.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod experiments;
pub mod journal;
pub mod measure;
pub mod report;
pub mod runner;
pub mod serve;

pub use experiments::Fidelity;
pub use piton_power::governor::GovernorConfig;
