//! Write-ahead, content-addressed result journal — the durability
//! layer under `runner::try_sweep_journaled`.
//!
//! The paper's characterization campaign is days of measurement across
//! thousands of grid points; a killed process used to throw away every
//! completed point. A [`Journal`] makes sweep results durable: every
//! completed grid point is appended to a `piton-journal/v1` file as a
//! self-checksummed record *before* the run proceeds, so a crashed run
//! relaunched with `--resume` serves completed points from disk and
//! recomputes only the missing ones. Because every sweep is already
//! byte-deterministic at any `--jobs` level, a resumed run's output is
//! **byte-identical** to an uninterrupted one.
//!
//! # File format (`piton-journal/v1`)
//!
//! One line per entry, each framed as
//! `<16-hex FNV-1a-64 of the JSON bytes> <compact JSON>\n`:
//!
//! ```text
//! f33c08cbdbd51271 {"schema":"piton-journal/v1","context":"<context spec>"}
//! 68b329da9893e340 {"key":1234,"section":"epi","index":0,"payload":{...}}
//! ...
//! ```
//!
//! The header pins the *context* — experiment fidelity, fault-plan
//! effects, governor, code version — and every record's `key` is the
//! 64-bit content hash of (section, index, context), so a journal can
//! never leak results into a run configured differently. `--jobs` is
//! deliberately **not** part of the context: results are
//! jobs-invariant, so a journal written at `--jobs 4` serves a
//! `--jobs 1` resume.
//!
//! # Torn-write recovery
//!
//! Recovery trusts exactly the longest valid prefix: the first line
//! that fails its checksum, fails to parse, carries a foreign key, or
//! lacks its trailing newline marks the torn tail, which is truncated
//! off (and counted in [`JournalStats::torn`]) — torn records are
//! *recomputed, never trusted*. Appends are batched and fsync'd at
//! sweep boundaries, plus immediately before an injected `crash=`
//! abort so the crashed point itself survives.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use piton_arch::config::Backend;
use piton_arch::error::PitonError;
use piton_arch::units::Watts;
use piton_board::fault::FaultPlan;
use piton_obs::json::{self, ObjectBuilder, Value};
use piton_obs::manifest::JournalStats;
use serde::{Deserialize, Serialize};

use crate::measure::WithError;

/// The schema identifier in every journal header.
pub const JOURNAL_SCHEMA: &str = "piton-journal/v1";

/// FNV-1a 64-bit hash — the checksum framing every journal line and
/// the content hash behind every record key.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The run context spec shared by `reproduce --journal` and the
/// `piton-serve` result cache: everything a served result must agree
/// on — code version, fidelity, the result-affecting fault effects and
/// the experiment backend. `--jobs` is deliberately excluded (results
/// are jobs-invariant), as are crash points (they decide when the
/// process dies, never what it computes). The backend is included
/// unconditionally: a cycle journal must never be served to an
/// analytic run or vice versa.
#[must_use]
pub fn run_context(fidelity: &str, plan: Option<&FaultPlan>, backend: Backend) -> String {
    format!(
        "piton/{}|fidelity={fidelity}|effects={}|backend={}",
        env!("CARGO_PKG_VERSION"),
        plan.and_then(FaultPlan::render_effects)
            .unwrap_or_else(|| "none".to_owned()),
        backend.label()
    )
}

/// The content-addressed key of one grid point under one context.
#[must_use]
pub fn point_key(context: &str, section: &str, index: usize) -> u64 {
    let mut buf = Vec::with_capacity(context.len() + section.len() + 24);
    buf.extend_from_slice(section.as_bytes());
    buf.push(0x1f);
    buf.extend_from_slice(index.to_string().as_bytes());
    buf.push(0x1f);
    buf.extend_from_slice(context.as_bytes());
    fnv64(&buf)
}

/// A sweep result that can ride in a journal record. Implementations
/// must round-trip *exactly* (the JSON writer renders `f64` in
/// shortest-round-trip form, so bit-exactness holds for finite values
/// and the tagged string forms cover the rest).
pub trait JournalPayload: Sized {
    /// Encodes the payload as a JSON value.
    fn to_value(&self) -> Value;
    /// Decodes a payload encoded by [`JournalPayload::to_value`].
    ///
    /// # Errors
    ///
    /// [`PitonError::Codec`] when the value has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, PitonError>;
}

fn f64_to_value(v: f64) -> Value {
    // `Value::Float` renders NaN/inf as tagged strings already; keep
    // the payload total by accepting them back below.
    Value::Float(v)
}

fn f64_from_value(v: &Value) -> Result<f64, PitonError> {
    match v {
        Value::Float(f) => Ok(*f),
        #[allow(clippy::cast_precision_loss)]
        Value::Int(i) => Ok(*i as f64),
        Value::Str(s) => match s.as_str() {
            "NaN" => Ok(f64::NAN),
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            _ => Err(PitonError::codec(format!("non-numeric payload {s:?}"))),
        },
        other => Err(PitonError::codec(format!(
            "expected a number payload, got {other:?}"
        ))),
    }
}

impl JournalPayload for f64 {
    fn to_value(&self) -> Value {
        f64_to_value(*self)
    }

    fn from_value(v: &Value) -> Result<Self, PitonError> {
        f64_from_value(v)
    }
}

impl JournalPayload for Watts {
    fn to_value(&self) -> Value {
        f64_to_value(self.0)
    }

    fn from_value(v: &Value) -> Result<Self, PitonError> {
        f64_from_value(v).map(Watts)
    }
}

impl JournalPayload for WithError {
    fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("v", f64_to_value(self.value))
            .field("e", f64_to_value(self.error))
            .build()
    }

    fn from_value(v: &Value) -> Result<Self, PitonError> {
        Ok(WithError {
            value: f64_from_value(
                v.get("v")
                    .ok_or_else(|| PitonError::codec("payload missing 'v'"))?,
            )?,
            error: f64_from_value(
                v.get("e")
                    .ok_or_else(|| PitonError::codec("payload missing 'e'"))?,
            )?,
        })
    }
}

/// One checksummed journal line (no trailing newline) — the framing
/// shared by journal records and `piton-serve` response frames.
#[must_use]
pub fn frame_line(json: &str) -> String {
    format!("{:016x} {json}", fnv64(json.as_bytes()))
}

/// Splits a framed line into its verified JSON text. `None` for any
/// framing violation: missing separator, non-hex checksum, mismatch.
#[must_use]
pub fn unframe_line(line: &[u8]) -> Option<&str> {
    if line.len() < 18 || line[16] != b' ' {
        return None;
    }
    let sum = std::str::from_utf8(&line[..16]).ok()?;
    let sum = u64::from_str_radix(sum, 16).ok()?;
    let json = &line[17..];
    if fnv64(json) != sum {
        return None;
    }
    std::str::from_utf8(json).ok()
}

/// A write-ahead result journal bound to one file and one context.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    context: String,
    file: File,
    entries: HashMap<(String, usize), Value>,
    stats: JournalStats,
}

impl Journal {
    /// Opens (or creates) the journal at `path` for the given context.
    ///
    /// An existing file is recovered record by record: the longest
    /// valid prefix is trusted, the torn tail (if any) is truncated
    /// off and counted. A file whose header is torn or missing is
    /// restarted from scratch — there is nothing trustworthy to keep.
    ///
    /// # Errors
    ///
    /// [`PitonError::Codec`] when the file cannot be opened/written,
    /// or when it carries a valid header for a *different* context —
    /// serving those results would silently mix configurations, so the
    /// mismatch is refused instead.
    pub fn open(path: &Path, context: &str) -> Result<Self, PitonError> {
        let io = |what: &str, e: std::io::Error| {
            PitonError::codec(format!("journal {}: {what}: {e}", path.display()))
        };
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io("open", e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(|e| io("read", e))?;

        let mut journal = Journal {
            path: path.to_path_buf(),
            context: context.to_owned(),
            file,
            entries: HashMap::new(),
            stats: JournalStats::default(),
        };

        let mut valid_end = 0usize;
        let mut saw_header = false;
        let mut cursor = 0usize;
        while cursor < bytes.len() {
            let Some(nl) = bytes[cursor..].iter().position(|&b| b == b'\n') else {
                break; // unterminated tail line: torn by definition
            };
            let line = &bytes[cursor..cursor + nl];
            let Some(json) = unframe_line(line) else {
                break;
            };
            let Ok(v) = json::parse(json) else { break };
            if !saw_header {
                let Some(schema) = v.get("schema").and_then(Value::as_str) else {
                    break;
                };
                if schema != JOURNAL_SCHEMA {
                    break;
                }
                let Some(ctx) = v.get("context").and_then(Value::as_str) else {
                    break;
                };
                if ctx != context {
                    return Err(PitonError::codec(format!(
                        "journal {}: context mismatch: file was recorded under {ctx:?}, \
                         this run is {context:?}",
                        path.display()
                    )));
                }
                saw_header = true;
            } else {
                let (Some(key), Some(section), Some(index), Some(payload)) = (
                    v.get("key").and_then(Value::as_u64),
                    v.get("section").and_then(Value::as_str),
                    v.get("index").and_then(Value::as_u64),
                    v.get("payload"),
                ) else {
                    break;
                };
                let index = index as usize;
                if key != point_key(context, section, index) {
                    break; // foreign or corrupted key: never trust it
                }
                journal
                    .entries
                    .insert((section.to_owned(), index), payload.clone());
                journal.stats.recovered += 1;
            }
            cursor += nl + 1;
            valid_end = cursor;
        }
        journal.stats.torn = (bytes.len() - valid_end) as u64;
        // Torn recovery may have dropped complete records that
        // followed the tear; the count reflects what survived.
        journal.stats.recovered = journal.entries.len() as u64;

        journal
            .file
            .set_len(valid_end as u64)
            .map_err(|e| io("truncate torn tail", e))?;
        journal
            .file
            .seek(SeekFrom::Start(valid_end as u64))
            .map_err(|e| io("seek", e))?;
        if !saw_header {
            // Fresh file (or nothing salvageable): restart it.
            journal.entries.clear();
            journal.stats.recovered = 0;
            journal.file.set_len(0).map_err(|e| io("restart", e))?;
            journal
                .file
                .seek(SeekFrom::Start(0))
                .map_err(|e| io("seek", e))?;
            let header = ObjectBuilder::new()
                .field("schema", Value::Str(JOURNAL_SCHEMA.to_owned()))
                .field("context", Value::Str(context.to_owned()))
                .build()
                .render();
            journal.write_line(&header)?;
            journal.sync()?;
        }
        Ok(journal)
    }

    fn write_line(&mut self, json: &str) -> Result<(), PitonError> {
        let mut line = frame_line(json);
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| PitonError::codec(format!("journal {}: append: {e}", self.path.display())))
    }

    /// The context spec this journal is bound to.
    #[must_use]
    pub fn context(&self) -> &str {
        &self.context
    }

    /// The content-addressed key of a grid point under this journal's
    /// context.
    #[must_use]
    pub fn key_for(&self, section: &str, index: usize) -> u64 {
        point_key(&self.context, section, index)
    }

    /// The recovered/served/appended/torn accounting so far.
    #[must_use]
    pub fn stats(&self) -> JournalStats {
        self.stats
    }

    /// Whether a completed point is present, *without* counting a
    /// serve (the serving layer uses this to avoid double-recording
    /// points a concurrent identical request already appended).
    #[must_use]
    pub fn contains(&self, section: &str, index: usize) -> bool {
        self.entries.contains_key(&(section.to_owned(), index))
    }

    /// Looks up a completed point, counting a successful hit as served.
    pub fn serve(&mut self, section: &str, index: usize) -> Option<Value> {
        let v = self.entries.get(&(section.to_owned(), index)).cloned();
        if v.is_some() {
            self.stats.served += 1;
        }
        v
    }

    /// Appends one completed point as a write-ahead record. Not
    /// fsync'd — call [`Journal::sync`] at the batch boundary (and
    /// before any deliberate abort).
    ///
    /// # Errors
    ///
    /// [`PitonError::Codec`] when the write fails.
    pub fn record(
        &mut self,
        section: &str,
        index: usize,
        payload: &Value,
    ) -> Result<(), PitonError> {
        let json = ObjectBuilder::new()
            .field(
                "key",
                Value::Int(i128::from(point_key(&self.context, section, index))),
            )
            .field("section", Value::Str(section.to_owned()))
            .field("index", Value::Int(index as i128))
            .field("payload", payload.clone())
            .build()
            .render();
        self.write_line(&json)?;
        self.entries
            .insert((section.to_owned(), index), payload.clone());
        self.stats.appended += 1;
        Ok(())
    }

    /// Forces every appended record onto disk (the batch boundary).
    ///
    /// # Errors
    ///
    /// [`PitonError::Codec`] when the sync fails.
    pub fn sync(&mut self) -> Result<(), PitonError> {
        self.file
            .sync_data()
            .map_err(|e| PitonError::codec(format!("journal {}: sync: {e}", self.path.display())))
    }
}

/// A `Copy`-able handle to a registered [`Journal`], mirroring the
/// fault layer's `FaultToken` so journal-carrying configuration (e.g.
/// `Fidelity`) stays `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalToken(u32);

static REGISTRY: Mutex<Vec<Arc<Mutex<Journal>>>> = Mutex::new(Vec::new());

/// Registers a journal in the process-wide registry, returning its
/// token. Append-only: tokens stay valid for the process lifetime.
#[must_use]
pub fn register(journal: Journal) -> JournalToken {
    let mut reg = REGISTRY.lock().expect("journal registry lock");
    reg.push(Arc::new(Mutex::new(journal)));
    JournalToken(u32::try_from(reg.len() - 1).expect("registry fits in u32"))
}

/// Resolves a token back to its shared journal.
///
/// # Panics
///
/// Panics on a token from another process (registry miss).
#[must_use]
pub fn resolve(token: JournalToken) -> Arc<Mutex<Journal>> {
    Arc::clone(&REGISTRY.lock().expect("journal registry lock")[token.0 as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "piton-journal-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        p
    }

    #[test]
    fn round_trips_records_across_reopen() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::open(&path, "ctx-a").unwrap();
            j.record(
                "epi",
                0,
                &WithError {
                    value: 1.25,
                    error: 0.5,
                }
                .to_value(),
            )
            .unwrap();
            j.record("noc", 3, &Watts(0.123_456_789).to_value())
                .unwrap();
            j.record("scaling", 7, &2.5f64.to_value()).unwrap();
            j.sync().unwrap();
            assert_eq!(j.stats().appended, 3);
        }
        let mut j = Journal::open(&path, "ctx-a").unwrap();
        assert_eq!(j.stats().recovered, 3);
        assert_eq!(j.stats().torn, 0);
        let w = WithError::from_value(&j.serve("epi", 0).unwrap()).unwrap();
        assert_eq!((w.value, w.error), (1.25, 0.5));
        let watts = Watts::from_value(&j.serve("noc", 3).unwrap()).unwrap();
        assert_eq!(watts.0, 0.123_456_789);
        assert_eq!(
            f64::from_value(&j.serve("scaling", 7).unwrap()).unwrap(),
            2.5
        );
        assert!(j.serve("epi", 1).is_none());
        assert_eq!(j.stats().served, 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_tail_recovers_exactly_the_complete_prefix() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::open(&path, "ctx").unwrap();
            for i in 0..8usize {
                j.record("scaling", i, &(i as f64 * 0.25).to_value())
                    .unwrap();
            }
            j.sync().unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let line_ends: Vec<usize> = full
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| (b == b'\n').then_some(i + 1))
            .collect();
        assert_eq!(line_ends.len(), 9); // header + 8 records
                                        // Truncate at every byte offset: recovery must always yield
                                        // exactly the complete-record prefix — never a panic, never a
                                        // bogus value, never a dropped complete record.
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let mut j = Journal::open(&path, "ctx").unwrap();
            let whole_lines = line_ends.iter().filter(|&&e| e <= cut).count();
            let expected = whole_lines.saturating_sub(1); // minus header
            let k = j.stats().recovered as usize;
            assert_eq!(k, expected, "cut={cut}");
            for i in 0..k {
                let v = f64::from_value(&j.serve("scaling", i).unwrap()).unwrap();
                assert_eq!(v, i as f64 * 0.25, "cut={cut}");
            }
            assert!(j.serve("scaling", k).is_none(), "cut={cut}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn garbage_tail_is_truncated_and_journal_stays_appendable() {
        let path = temp_path("garbage");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::open(&path, "ctx").unwrap();
            j.record("epi", 0, &1.0f64.to_value()).unwrap();
            j.sync().unwrap();
        }
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xFF, 0xFE, b'\n', b'x', b'\n']);
        std::fs::write(&path, &bytes).unwrap();
        {
            let mut j = Journal::open(&path, "ctx").unwrap();
            assert_eq!(j.stats().recovered, 1);
            assert_eq!(j.stats().torn, 5);
            j.record("epi", 1, &2.0f64.to_value()).unwrap();
            j.sync().unwrap();
        }
        assert!(std::fs::metadata(&path).unwrap().len() > clean_len);
        let mut j = Journal::open(&path, "ctx").unwrap();
        assert_eq!(j.stats().recovered, 2);
        assert_eq!(f64::from_value(&j.serve("epi", 1).unwrap()).unwrap(), 2.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn context_mismatch_is_refused() {
        let path = temp_path("ctx-mismatch");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::open(&path, "quick|fault=none").unwrap();
            j.record("epi", 0, &1.0f64.to_value()).unwrap();
            j.sync().unwrap();
        }
        let err = Journal::open(&path, "full|fault=none").unwrap_err();
        assert!(matches!(err, PitonError::Codec { .. }), "{err:?}");
        assert!(err.to_string().contains("context mismatch"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_header_restarts_the_file() {
        let path = temp_path("bad-header");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, b"not a journal at all\n").unwrap();
        let j = Journal::open(&path, "ctx").unwrap();
        assert_eq!(j.stats().recovered, 0);
        assert_eq!(j.stats().torn, 21);
        // The file was restarted with a valid header for this context.
        let j2 = Journal::open(&path, "ctx").unwrap();
        assert_eq!(j2.stats().torn, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn keys_separate_sections_indices_and_contexts() {
        let k = point_key("ctx", "epi", 3);
        assert_ne!(k, point_key("ctx", "epi", 4));
        assert_ne!(k, point_key("ctx", "noc", 3));
        assert_ne!(k, point_key("ctx2", "epi", 3));
        // Separator prevents ("ab", 1) colliding with ("a", "b1")-style smears.
        assert_ne!(point_key("c", "ab", 1), point_key("c", "a", 11));
    }

    #[test]
    fn payloads_round_trip_non_finite_values() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, 1e-300] {
            let enc = v.to_value();
            let back = f64::from_value(&json::parse(&enc.render()).unwrap()).unwrap();
            assert!(back == v || (back.is_nan() && v.is_nan()), "{v} -> {back}");
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Append N records, tear the file at a random byte
            /// offset: recovery yields exactly the records whose whole
            /// line survived, each with its exact payload.
            #[test]
            fn torn_tail_recovery_is_exactly_the_complete_prefix(
                raw in proptest::collection::vec(proptest::strategy::any::<u64>(), 1..24),
                cut_seed in proptest::strategy::any::<u64>(),
            ) {
                let path = temp_path("torn-prop");
                let _ = std::fs::remove_file(&path);
                let values: Vec<f64> =
                    raw.iter().map(|&v| (v % 4096) as f64 / 8.0).collect();
                {
                    let mut j = Journal::open(&path, "prop-ctx").unwrap();
                    for (i, &v) in values.iter().enumerate() {
                        j.record("noc", i, &v.to_value()).unwrap();
                    }
                    j.sync().unwrap();
                }
                let full = std::fs::read(&path).unwrap();
                let cut = (cut_seed % (full.len() as u64 + 1)) as usize;
                std::fs::write(&path, &full[..cut]).unwrap();
                let whole_lines = full[..cut].iter().filter(|&&b| b == b'\n').count();
                let expected = whole_lines.saturating_sub(1); // header line
                let mut j = Journal::open(&path, "prop-ctx").unwrap();
                prop_assert_eq!(j.stats().recovered as usize, expected);
                for (i, &v) in values.iter().enumerate().take(expected) {
                    let got = f64::from_value(&j.serve("noc", i).unwrap()).unwrap();
                    prop_assert_eq!(got, v, "record {}", i);
                }
                prop_assert!(j.serve("noc", expected).is_none());
                let _ = std::fs::remove_file(&path);
            }
        }
    }

    #[test]
    fn registry_round_trips() {
        let path = temp_path("registry");
        let _ = std::fs::remove_file(&path);
        let j = Journal::open(&path, "ctx").unwrap();
        let token = register(j);
        let shared = resolve(token);
        assert_eq!(shared.lock().unwrap().context(), "ctx");
        let _ = std::fs::remove_file(&path);
    }
}
