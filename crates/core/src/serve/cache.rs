//! The daemon's persistent, content-addressed result cache: one
//! write-ahead journal file per context.
//!
//! Every run request resolves to a context string (code version,
//! fidelity, fault effects, backend — see [`crate::journal::run_context`])
//! and is cached in `ctx-<fnv64(context)>.journal` inside the cache
//! directory. Each file is a plain `piton-journal/v1` journal, so it
//! inherits the journal's guarantees wholesale: longest-valid-prefix
//! recovery after a crash, torn tails truncated and counted, and a
//! refusal to open a file recorded under a different context (which is
//! also what turns an astronomically-unlikely file-name hash collision
//! into a loud error instead of silent cross-context serving).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use piton_arch::error::PitonError;
use piton_obs::manifest::JournalStats;

use crate::journal::{fnv64, Journal};

/// The cache file name of a context: a stable content hash, so the
/// same context always lands in the same file across daemon restarts.
#[must_use]
pub fn context_file_name(context: &str) -> String {
    format!("ctx-{:016x}.journal", fnv64(context.as_bytes()))
}

/// An on-disk result cache over a directory of per-context journals.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    journals: Mutex<HashMap<String, Arc<Mutex<Journal>>>>,
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory. Journal files
    /// are opened lazily, on the first request for their context.
    ///
    /// # Errors
    ///
    /// [`PitonError::Codec`] when the directory cannot be created.
    pub fn open(dir: &Path) -> Result<Self, PitonError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| PitonError::codec(format!("cache dir {}: create: {e}", dir.display())))?;
        Ok(Self {
            dir: dir.to_path_buf(),
            journals: Mutex::new(HashMap::new()),
        })
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shared journal for `context`, opening — and crash-recovering
    /// — its file on first use. Returns `Some(stats)` exactly when this
    /// call opened the file, so the caller can account the recovery
    /// (recovered records, torn bytes) once.
    ///
    /// # Errors
    ///
    /// [`PitonError::Codec`] from [`Journal::open`]: I/O failures, or a
    /// context mismatch against the existing file.
    pub fn journal(
        &self,
        context: &str,
    ) -> Result<(Arc<Mutex<Journal>>, Option<JournalStats>), PitonError> {
        let mut map = self.journals.lock().expect("cache journal map lock");
        if let Some(j) = map.get(context) {
            return Ok((Arc::clone(j), None));
        }
        let path = self.dir.join(context_file_name(context));
        let journal = Journal::open(&path, context)?;
        let stats = journal.stats();
        let shared = Arc::new(Mutex::new(journal));
        map.insert(context.to_owned(), Arc::clone(&shared));
        Ok((shared, Some(stats)))
    }

    /// Every context opened so far as `(context, file name, stats)`,
    /// sorted by file name — the manifest's context listing.
    #[must_use]
    pub fn contexts(&self) -> Vec<(String, String, JournalStats)> {
        let map = self.journals.lock().expect("cache journal map lock");
        let mut out: Vec<(String, String, JournalStats)> = map
            .iter()
            .map(|(ctx, j)| {
                (
                    ctx.clone(),
                    context_file_name(ctx),
                    j.lock().expect("cache journal lock").stats(),
                )
            })
            .collect();
        out.sort_by(|a, b| a.1.cmp(&b.1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JournalPayload;

    fn temp_dir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "piton-serve-cache-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        p
    }

    #[test]
    fn contexts_get_distinct_files_and_persist_across_reopen() {
        let dir = temp_dir("persist");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = ResultCache::open(&dir).unwrap();
            let (a, first) = cache.journal("ctx-a").unwrap();
            assert!(first.is_some(), "first open reports recovery stats");
            let (_a2, again) = cache.journal("ctx-a").unwrap();
            assert!(again.is_none(), "reuse reports no recovery");
            let (b, _) = cache.journal("ctx-b").unwrap();
            a.lock()
                .unwrap()
                .record("noc", 0, &1.5f64.to_value())
                .unwrap();
            a.lock().unwrap().sync().unwrap();
            b.lock()
                .unwrap()
                .record("noc", 0, &2.5f64.to_value())
                .unwrap();
            b.lock().unwrap().sync().unwrap();
            assert_eq!(cache.contexts().len(), 2);
        }
        // A fresh cache (daemon restart) recovers each context from its
        // own file — values never bleed across contexts.
        let cache = ResultCache::open(&dir).unwrap();
        let (a, stats) = cache.journal("ctx-a").unwrap();
        assert_eq!(stats.unwrap().recovered, 1);
        let v = a.lock().unwrap().serve("noc", 0).unwrap();
        assert_eq!(f64::from_value(&v).unwrap(), 1.5);
        let (b, _) = cache.journal("ctx-b").unwrap();
        let v = b.lock().unwrap().serve("noc", 0).unwrap();
        assert_eq!(f64::from_value(&v).unwrap(), 2.5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_names_are_stable_content_hashes() {
        assert_eq!(context_file_name("ctx"), context_file_name("ctx"));
        assert_ne!(context_file_name("ctx"), context_file_name("ctx2"));
        assert!(context_file_name("a|b").starts_with("ctx-"));
        assert!(context_file_name("a|b").ends_with(".journal"));
    }
}
