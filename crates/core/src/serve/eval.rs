//! Resolves a run request to a serveable section: the grid length, the
//! derived cache context, and a per-point compute closure that is
//! bit-identical to the full experiment sweep.
//!
//! Three journal sections are serveable — the ones whose grids are
//! pure functions of (index, context):
//!
//! | section | grid | backend | payload |
//! |---|---|---|---|
//! | `noc` | 4 patterns × 9 hop counts = 36 | cycle | watts |
//! | `scaling` | 3 benches × 2 T/C × 25 cores = 150 | cycle | watts (f64) |
//! | `design_space` | 105,000 V/f/cores/mix points | analytic | power/EPI/junction |
//!
//! The `design_space` section needs a calibrated analytic model; the
//! calibration is derived from the request context alone, so it is
//! computed once per context and cached process-wide.

use std::sync::{Arc, Mutex};

use piton_arch::config::Backend;
use piton_arch::error::PitonError;
use piton_board::fault::{self, FaultPlan};
use piton_obs::json::Value;

use crate::analytic::{self, Calibrated};
use crate::experiments::{core_scaling, design_space, noc_energy, Fidelity};
use crate::journal::{self, JournalPayload};
use crate::serve::request::RunRequest;

/// The serveable journal sections.
pub const SECTIONS: [&str; 3] = ["noc", "scaling", "design_space"];

/// A per-point compute closure: (index, attempt) → journal payload.
type PointFn = Box<dyn Fn(usize, u32) -> Result<Value, PitonError> + Send + Sync>;

/// A resolved section: everything the serving loop needs to answer a
/// run request.
pub struct SectionEval {
    /// The cache-key context string this request resolved to.
    pub context: String,
    /// The engine that computes misses.
    pub backend: Backend,
    /// Grid length (requests index `0..len`).
    pub len: usize,
    point: PointFn,
}

impl SectionEval {
    /// Computes one grid point (cache-miss path) on the given attempt,
    /// already encoded as its journal payload.
    ///
    /// # Errors
    ///
    /// Propagates measurement and injected-sabotage failures.
    pub fn compute(&self, index: usize, attempt: u32) -> Result<Value, PitonError> {
        (self.point)(index, attempt)
    }
}

impl std::fmt::Debug for SectionEval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SectionEval")
            .field("context", &self.context)
            .field("backend", &self.backend)
            .field("len", &self.len)
            .finish_non_exhaustive()
    }
}

/// Process-wide calibration cache, keyed by context string: requests
/// repeating a context — the daemon's entire point — must not re-run
/// the probe battery.
static CALIBRATIONS: Mutex<Vec<(String, Arc<Calibrated>)>> = Mutex::new(Vec::new());

fn calibration_for(
    context: &str,
    fidelity: Fidelity,
    plan: Option<&FaultPlan>,
) -> Result<Arc<Calibrated>, PitonError> {
    {
        let cache = CALIBRATIONS.lock().expect("calibration cache lock");
        if let Some((_, cal)) = cache.iter().find(|(k, _)| k == context) {
            return Ok(Arc::clone(cal));
        }
    }
    // Calibrate outside the lock: it is expensive, and a concurrent
    // duplicate is benign — calibration is deterministic, so whichever
    // copy lands in the cache serves identical numbers.
    let fidelity = match plan {
        // Match `reproduce`: a fault plan perturbs the probe battery
        // too, so the fitted model is part of the faulted context.
        Some(p) => fidelity.with_fault(fault::register(p.clone())),
        None => fidelity,
    };
    let cal = Arc::new(analytic::calibrate(fidelity)?);
    let mut cache = CALIBRATIONS.lock().expect("calibration cache lock");
    if let Some((_, existing)) = cache.iter().find(|(k, _)| k == context) {
        return Ok(Arc::clone(existing));
    }
    cache.push((context.to_owned(), Arc::clone(&cal)));
    Ok(cal)
}

/// Resolves a run request against the section registry.
///
/// # Errors
///
/// [`PitonError::Codec`] for an unknown section or a section/backend
/// mismatch; calibration failures for `design_space`.
pub fn resolve(req: &RunRequest) -> Result<SectionEval, PitonError> {
    let natural = match req.section.as_str() {
        "noc" | "scaling" => Backend::Cycle,
        "design_space" => Backend::Analytic,
        other => {
            return Err(PitonError::codec(format!(
                "unknown section {other:?} (serveable: {})",
                SECTIONS.join(", ")
            )))
        }
    };
    let backend = req.backend.unwrap_or(natural);
    if backend != natural {
        return Err(PitonError::codec(format!(
            "section {:?} is served by the {} backend only, not {}",
            req.section,
            natural.label(),
            backend.label()
        )));
    }
    let fidelity = req.fidelity.to_fidelity();
    let plan = req.fault.clone();
    let context = journal::run_context(&req.fidelity.render(), plan.as_ref(), backend);

    let (len, point): (usize, PointFn) = match req.section.as_str() {
        "noc" => {
            let grid = noc_energy::grid();
            (
                grid.len(),
                Box::new(move |idx, attempt| {
                    noc_energy::compute_point(idx, &grid[idx], fidelity, plan.as_ref(), attempt)
                        .map(|w| w.to_value())
                }),
            )
        }
        "scaling" => {
            let grid = core_scaling::grid();
            (
                grid.len(),
                Box::new(move |idx, attempt| {
                    core_scaling::compute_point(idx, &grid[idx], fidelity, plan.as_ref(), attempt)
                        .map(|w| w.to_value())
                }),
            )
        }
        "design_space" => {
            let cal = calibration_for(&context, fidelity, plan.as_ref())?;
            let table = design_space::mix_table(&cal);
            let grid = design_space::grid();
            (
                grid.len(),
                Box::new(move |idx, attempt| {
                    design_space::compute_point(
                        &cal,
                        &table,
                        idx,
                        grid[idx],
                        plan.as_ref(),
                        attempt,
                    )
                    .map(|d| d.to_value())
                }),
            )
        }
        _ => unreachable!("section validated above"),
    };
    Ok(SectionEval {
        context,
        backend,
        len,
        point,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::request::{FidelitySpec, Request};

    fn run_request(json: &str) -> RunRequest {
        match Request::parse(json).unwrap() {
            Request::Run(r) => *r,
            other => panic!("expected a run request, got {other:?}"),
        }
    }

    #[test]
    fn sections_resolve_with_natural_backends_and_grid_lengths() {
        let noc = resolve(&run_request(r#"{"op":"run","section":"noc"}"#)).unwrap();
        assert_eq!((noc.backend, noc.len), (Backend::Cycle, 36));
        let scaling = resolve(&run_request(r#"{"op":"run","section":"scaling"}"#)).unwrap();
        assert_eq!((scaling.backend, scaling.len), (Backend::Cycle, 150));
        assert!(noc.context.contains("backend=cycle"), "{}", noc.context);
        assert!(noc.context.contains("fidelity=quick"), "{}", noc.context);
    }

    #[test]
    fn unknown_sections_and_backend_mismatches_are_refused() {
        assert!(resolve(&run_request(r#"{"op":"run","section":"epi"}"#)).is_err());
        let err = resolve(&run_request(
            r#"{"op":"run","section":"noc","backend":"analytic"}"#,
        ))
        .unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
        assert!(resolve(&run_request(
            r#"{"op":"run","section":"design_space","backend":"cycle"}"#
        ))
        .is_err());
    }

    #[test]
    fn context_discriminates_every_knob() {
        let base = resolve(&run_request(r#"{"op":"run","section":"noc"}"#))
            .unwrap()
            .context;
        for variant in [
            r#"{"op":"run","section":"noc","fidelity":"full"}"#,
            r#"{"op":"run","section":"noc","fidelity":"s=4,c=1000,w=4000"}"#,
            r#"{"op":"run","section":"noc","fault":"seed=7,drop=0.25"}"#,
        ] {
            let ctx = resolve(&run_request(variant)).unwrap().context;
            assert_ne!(ctx, base, "{variant}");
        }
        // Crash points decide when the process dies, never what it
        // computes: they must NOT shift the context.
        let crash = resolve(&run_request(
            r#"{"op":"run","section":"noc","fault":"crash=noc:3"}"#,
        ))
        .unwrap()
        .context;
        assert_eq!(crash, base);
    }

    #[test]
    fn computed_points_match_the_experiment_sweep_exactly() {
        let eval = resolve(&run_request(
            r#"{"op":"run","section":"noc","fidelity":"s=2,c=500,w=2000"}"#,
        ))
        .unwrap();
        let grid = noc_energy::grid();
        let fidelity = FidelitySpec::parse("s=2,c=500,w=2000")
            .unwrap()
            .to_fidelity();
        for idx in [0usize, 5, 17, 35] {
            let direct = noc_energy::compute_point(idx, &grid[idx], fidelity, None, 0).unwrap();
            assert_eq!(eval.compute(idx, 0).unwrap(), direct.to_value(), "{idx}");
        }
    }
}
