//! The response side of the `piton-serve` wire protocol: checksummed
//! frames, one per line.
//!
//! Every frame is a JSON object carrying a `frame` discriminator,
//! rendered compactly and wrapped in the journal's line framing
//! (`<16-hex FNV-1a-64> <json>`), so a client verifies each line the
//! same way journal recovery does — a truncated or corrupted frame
//! fails loudly instead of yielding a half-read result. Frames carry
//! no cache-state-dependent fields (no hit/miss flags, no timings):
//! a request served cold and the same request served warm produce
//! **byte-identical** frame streams, which is the conformance suite's
//! core assertion. Cache behavior is observed via `op: "metrics"`.

use piton_arch::error::PitonError;
use piton_obs::json::{self, ObjectBuilder, Value};

use crate::journal::{frame_line, unframe_line};

/// One permanently-failed grid point in a done frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameHole {
    /// Grid index of the failed point.
    pub index: u64,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// Final failure rendered as text.
    pub error: String,
}

/// A response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Opens a run response: echoes the request id, names the section
    /// and the derived cache context, and announces how many points
    /// were selected.
    Hello {
        /// Echo of the request's `id`, when one was given.
        id: Option<String>,
        /// Section being served.
        section: String,
        /// The cache-key context string the request resolved to.
        context: String,
        /// Selected grid points.
        points: u64,
    },
    /// One grid-point result, streamed in index order.
    Result {
        /// Section the point belongs to.
        section: String,
        /// Grid index.
        index: u64,
        /// Content-addressed key of (section, index, context).
        key: u64,
        /// The journal-format payload.
        payload: Value,
    },
    /// Closes a run response with the served count and any holes.
    Done {
        /// Echo of the request's `id`, when one was given.
        id: Option<String>,
        /// Section that was served.
        section: String,
        /// Result frames emitted (selected minus holes).
        points: u64,
        /// Points that failed every attempt, in index order.
        holes: Vec<FrameHole>,
    },
    /// A refused request; the connection stays usable.
    Error {
        /// What was wrong with the request.
        message: String,
    },
    /// Liveness reply.
    Pong {
        /// The daemon's crate version.
        version: String,
    },
    /// `serve.*` counter snapshot, sorted by name.
    Metrics {
        /// `(counter name, value)` pairs.
        counters: Vec<(String, u64)>,
    },
    /// Acknowledges a shutdown request.
    Bye,
}

impl Frame {
    /// Encodes the frame body as a JSON value.
    #[must_use]
    pub fn to_value(&self) -> Value {
        match self {
            Self::Hello {
                id,
                section,
                context,
                points,
            } => {
                let mut b = ObjectBuilder::new().field("frame", Value::Str("hello".to_owned()));
                if let Some(id) = id {
                    b = b.field("id", Value::Str(id.clone()));
                }
                b.field("section", Value::Str(section.clone()))
                    .field("context", Value::Str(context.clone()))
                    .field("points", Value::Int(i128::from(*points)))
                    .build()
            }
            Self::Result {
                section,
                index,
                key,
                payload,
            } => ObjectBuilder::new()
                .field("frame", Value::Str("result".to_owned()))
                .field("section", Value::Str(section.clone()))
                .field("index", Value::Int(i128::from(*index)))
                .field("key", Value::Int(i128::from(*key)))
                .field("payload", payload.clone())
                .build(),
            Self::Done {
                id,
                section,
                points,
                holes,
            } => {
                let mut b = ObjectBuilder::new().field("frame", Value::Str("done".to_owned()));
                if let Some(id) = id {
                    b = b.field("id", Value::Str(id.clone()));
                }
                b.field("section", Value::Str(section.clone()))
                    .field("points", Value::Int(i128::from(*points)))
                    .field(
                        "holes",
                        Value::Array(
                            holes
                                .iter()
                                .map(|h| {
                                    ObjectBuilder::new()
                                        .field("index", Value::Int(i128::from(h.index)))
                                        .field("attempts", Value::Int(i128::from(h.attempts)))
                                        .field("error", Value::Str(h.error.clone()))
                                        .build()
                                })
                                .collect(),
                        ),
                    )
                    .build()
            }
            Self::Error { message } => ObjectBuilder::new()
                .field("frame", Value::Str("error".to_owned()))
                .field("message", Value::Str(message.clone()))
                .build(),
            Self::Pong { version } => ObjectBuilder::new()
                .field("frame", Value::Str("pong".to_owned()))
                .field("version", Value::Str(version.clone()))
                .build(),
            Self::Metrics { counters } => {
                let mut c = ObjectBuilder::new();
                for (name, v) in counters {
                    c = c.field(name, Value::Int(i128::from(*v)));
                }
                ObjectBuilder::new()
                    .field("frame", Value::Str("metrics".to_owned()))
                    .field("counters", c.build())
                    .build()
            }
            Self::Bye => ObjectBuilder::new()
                .field("frame", Value::Str("bye".to_owned()))
                .build(),
        }
    }

    /// Encodes the frame as one checksummed wire line (trailing
    /// newline included).
    #[must_use]
    pub fn encode(&self) -> String {
        let mut line = frame_line(&self.to_value().render());
        line.push('\n');
        line
    }

    /// Decodes a frame body.
    ///
    /// # Errors
    ///
    /// [`PitonError::Codec`] on a missing/unknown discriminator or
    /// ill-typed fields.
    pub fn from_value(v: &Value) -> Result<Self, PitonError> {
        Self::from_value_inner(v).map_err(|e| PitonError::codec(format!("frame: {e}")))
    }

    fn from_value_inner(v: &Value) -> Result<Self, String> {
        let kind = v
            .get("frame")
            .and_then(Value::as_str)
            .ok_or("missing 'frame' discriminator")?;
        let text = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("{kind} frame missing string '{key}'"))
        };
        let count = |val: &Value, key: &str| -> Result<u64, String> {
            val.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{kind} frame missing count '{key}'"))
        };
        let id = || -> Result<Option<String>, String> {
            match v.get("id") {
                None | Some(Value::Null) => Ok(None),
                Some(Value::Str(s)) => Ok(Some(s.clone())),
                Some(_) => Err(format!("{kind} frame 'id' must be a string")),
            }
        };
        match kind {
            "hello" => Ok(Self::Hello {
                id: id()?,
                section: text("section")?,
                context: text("context")?,
                points: count(v, "points")?,
            }),
            "result" => Ok(Self::Result {
                section: text("section")?,
                index: count(v, "index")?,
                key: count(v, "key")?,
                payload: v
                    .get("payload")
                    .cloned()
                    .ok_or("result frame missing 'payload'")?,
            }),
            "done" => {
                let mut holes = Vec::new();
                for h in v
                    .get("holes")
                    .and_then(Value::as_array)
                    .ok_or("done frame missing 'holes'")?
                {
                    holes.push(FrameHole {
                        index: count(h, "index")?,
                        attempts: u32::try_from(count(h, "attempts")?)
                            .map_err(|_| "hole 'attempts' out of range".to_owned())?,
                        error: h
                            .get("error")
                            .and_then(Value::as_str)
                            .ok_or("hole missing 'error'")?
                            .to_owned(),
                    });
                }
                Ok(Self::Done {
                    id: id()?,
                    section: text("section")?,
                    points: count(v, "points")?,
                    holes,
                })
            }
            "error" => Ok(Self::Error {
                message: text("message")?,
            }),
            "pong" => Ok(Self::Pong {
                version: text("version")?,
            }),
            "metrics" => {
                let Some(Value::Object(pairs)) = v.get("counters") else {
                    return Err("metrics frame missing 'counters' object".to_owned());
                };
                let mut counters = Vec::with_capacity(pairs.len());
                for (name, val) in pairs {
                    counters.push((
                        name.clone(),
                        val.as_u64()
                            .ok_or_else(|| format!("counter '{name}' is not a count"))?,
                    ));
                }
                Ok(Self::Metrics { counters })
            }
            "bye" => Ok(Self::Bye),
            other => Err(format!("unknown frame kind {other:?}")),
        }
    }

    /// Decodes one wire line (with or without its trailing newline):
    /// checksum verification first, then JSON, then the typed frame.
    ///
    /// # Errors
    ///
    /// [`PitonError::Codec`] on any framing violation — truncation,
    /// corruption, malformed JSON, or an unknown frame shape.
    pub fn decode(line: &[u8]) -> Result<Self, PitonError> {
        let line = match line.split_last() {
            Some((b'\n', head)) => head,
            _ => line,
        };
        let json = unframe_line(line)
            .ok_or_else(|| PitonError::codec("frame failed its checksum framing"))?;
        let v = json::parse(json).map_err(|e| PitonError::codec(format!("frame: {e}")))?;
        Self::from_value(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Frame> {
        vec![
            Frame::Hello {
                id: Some("req-1".to_owned()),
                section: "scaling".to_owned(),
                context: "piton/0.1.0|fidelity=quick|effects=none|backend=cycle".to_owned(),
                points: 12,
            },
            Frame::Hello {
                id: None,
                section: "noc".to_owned(),
                context: "ctx".to_owned(),
                points: 36,
            },
            Frame::Result {
                section: "noc".to_owned(),
                index: 7,
                key: 0xdead_beef_dead_beef,
                payload: Value::Float(1.25),
            },
            Frame::Done {
                id: Some("req-1".to_owned()),
                section: "scaling".to_owned(),
                points: 11,
                holes: vec![FrameHole {
                    index: 3,
                    attempts: 1,
                    error: "injected fault: sweep point killed".to_owned(),
                }],
            },
            Frame::Error {
                message: "unknown section \"nope\"".to_owned(),
            },
            Frame::Pong {
                version: "0.1.0".to_owned(),
            },
            Frame::Metrics {
                counters: vec![
                    ("serve.cache_hits".to_owned(), 36),
                    ("serve.points_computed".to_owned(), 12),
                ],
            },
            Frame::Bye,
        ]
    }

    #[test]
    fn frames_round_trip_through_the_wire_encoding() {
        for f in samples() {
            let line = f.encode();
            assert!(line.ends_with('\n'));
            assert_eq!(Frame::decode(line.as_bytes()).unwrap(), f, "{line}");
            // Newline-stripped lines (BufRead::lines) decode too.
            assert_eq!(
                Frame::decode(line.trim_end().as_bytes()).unwrap(),
                f,
                "{line}"
            );
        }
    }

    #[test]
    fn truncation_and_corruption_fail_the_checksum() {
        let line = samples()[0].encode();
        let bytes = line.trim_end().as_bytes();
        for cut in 0..bytes.len() {
            assert!(Frame::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
        for i in 0..bytes.len() {
            let mut corrupt = bytes.to_vec();
            corrupt[i] ^= 0x01;
            assert!(Frame::decode(&corrupt).is_err(), "flip at {i}");
        }
    }

    #[test]
    fn absent_id_is_omitted_not_null() {
        let f = Frame::Hello {
            id: None,
            section: "noc".to_owned(),
            context: "ctx".to_owned(),
            points: 1,
        };
        assert!(
            !f.to_value().render().contains("id"),
            "{}",
            f.to_value().render()
        );
    }
}
