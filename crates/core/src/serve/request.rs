//! The request side of the `piton-serve` wire protocol: one JSON
//! object per line, parsed into a typed [`Request`].
//!
//! A request either runs an experiment grid subset (`op: "run"`) or is
//! one of the control operations (`ping`, `metrics`, `shutdown`). The
//! run payload reuses the workspace's one-line spec grammars as string
//! fields: [`GridSpec`] for the index selection, the fault-plan
//! grammar for sabotage/crash injection, and the [`FidelitySpec`]
//! grammar (`quick`, `full`, or `s=N,c=N,w=N`) for measurement effort:
//!
//! ```text
//! {"op":"run","section":"scaling","grid":"0-11","fidelity":"quick"}
//! {"op":"run","id":"warm-1","section":"noc","grid":"all","fault":"seed=7,kill=noc:3"}
//! {"op":"metrics"}
//! {"op":"ping"}
//! {"op":"shutdown"}
//! ```

use piton_arch::config::Backend;
use piton_arch::error::PitonError;
use piton_arch::request::GridSpec;
use piton_board::fault::FaultPlan;
use piton_obs::json::{self, Value};

use crate::experiments::Fidelity;

/// Measurement-effort selector: the two named presets, or an explicit
/// `s=<samples>,c=<chunk cycles>,w=<warmup cycles>` triple (used by
/// tests to keep served grids cheap without losing cache-key
/// discrimination — a custom spec renders canonically and feeds the
/// context string verbatim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FidelitySpec {
    /// The `Fidelity::quick` preset.
    Quick,
    /// The `Fidelity::full` preset.
    Full,
    /// Explicit knobs over the quick preset's defaults.
    Custom {
        /// Monitor samples per measurement window.
        samples: usize,
        /// Simulated cycles behind each sample.
        chunk_cycles: u64,
        /// Warm-up cycles before sampling.
        warmup_cycles: u64,
    },
}

fn bad(what: impl Into<String>) -> PitonError {
    PitonError::BadPlan { what: what.into() }
}

impl FidelitySpec {
    /// Parses `quick`, `full`, or `s=N,c=N,w=N` (all three keys
    /// required, any order, each exactly once).
    ///
    /// # Errors
    ///
    /// [`PitonError::BadPlan`] naming the offending term.
    pub fn parse(spec: &str) -> Result<Self, PitonError> {
        match spec {
            "quick" => return Ok(Self::Quick),
            "full" => return Ok(Self::Full),
            _ => {}
        }
        let mut samples: Option<usize> = None;
        let mut chunk: Option<u64> = None;
        let mut warmup: Option<u64> = None;
        for term in spec.split(',') {
            let (key, val) = term
                .split_once('=')
                .ok_or_else(|| bad(format!("fidelity spec term {term:?} is not key=value")))?;
            let num = |what: &str| -> Result<u64, PitonError> {
                val.parse::<u64>()
                    .map_err(|_| bad(format!("fidelity spec {what} {val:?} is not a number")))
            };
            let slot_taken = |key: &str| bad(format!("fidelity spec repeats '{key}'"));
            match key {
                "s" => {
                    if samples.replace(num("samples")? as usize).is_some() {
                        return Err(slot_taken("s"));
                    }
                }
                "c" => {
                    if chunk.replace(num("chunk cycles")?).is_some() {
                        return Err(slot_taken("c"));
                    }
                }
                "w" => {
                    if warmup.replace(num("warmup cycles")?).is_some() {
                        return Err(slot_taken("w"));
                    }
                }
                other => {
                    return Err(bad(format!(
                        "unknown fidelity key {other:?} (expected s, c, or w)"
                    )))
                }
            }
        }
        match (samples, chunk, warmup) {
            (Some(s), Some(c), Some(w)) if s > 0 && c > 0 => Ok(Self::Custom {
                samples: s,
                chunk_cycles: c,
                warmup_cycles: w,
            }),
            (Some(_), Some(_), Some(_)) => {
                Err(bad("fidelity spec needs s > 0 and c > 0".to_owned()))
            }
            _ => Err(bad(format!(
                "fidelity spec {spec:?} must name all of s=, c=, w= (or be 'quick'/'full')"
            ))),
        }
    }

    /// The canonical spelling — what the cache-key context string
    /// embeds, so `parse(render(f)) == f` holds exactly.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Self::Quick => "quick".to_owned(),
            Self::Full => "full".to_owned(),
            Self::Custom {
                samples,
                chunk_cycles,
                warmup_cycles,
            } => format!("s={samples},c={chunk_cycles},w={warmup_cycles}"),
        }
    }

    /// The resolved measurement knobs (serial; the serving layer sets
    /// its own worker count at the sweep, not per-point).
    #[must_use]
    pub fn to_fidelity(self) -> Fidelity {
        match self {
            Self::Quick => Fidelity::quick(),
            Self::Full => Fidelity::full(),
            Self::Custom {
                samples,
                chunk_cycles,
                warmup_cycles,
            } => Fidelity {
                samples,
                chunk_cycles,
                warmup_cycles,
                ..Fidelity::quick()
            },
        }
    }
}

/// One `op: "run"` request: which section, which grid subset, and the
/// context-defining knobs (fidelity, backend, fault plan).
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Caller-chosen correlation tag, echoed in the hello/done frames.
    pub id: Option<String>,
    /// Journal section name (`noc`, `scaling`, `design_space`).
    pub section: String,
    /// Grid-point selection.
    pub grid: GridSpec,
    /// Measurement effort.
    pub fidelity: FidelitySpec,
    /// Requested engine; `None` uses the section's natural backend.
    pub backend: Option<Backend>,
    /// Parsed fault plan, if any.
    pub fault: Option<FaultPlan>,
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run (or serve from cache) a grid subset.
    Run(Box<RunRequest>),
    /// Report the `serve.*` counters.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Drain connections and exit cleanly.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// [`PitonError::Codec`] on malformed JSON or missing/ill-typed
    /// fields; [`PitonError::BadPlan`] from the embedded grid, fault
    /// and fidelity grammars.
    pub fn parse(line: &str) -> Result<Self, PitonError> {
        let v = json::parse(line).map_err(|e| PitonError::codec(format!("request: {e}")))?;
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| PitonError::codec("request missing string 'op'"))?;
        match op {
            "ping" => Ok(Self::Ping),
            "metrics" => Ok(Self::Metrics),
            "shutdown" => Ok(Self::Shutdown),
            "run" => {
                let text = |key: &str| -> Result<Option<String>, PitonError> {
                    match v.get(key) {
                        None | Some(Value::Null) => Ok(None),
                        Some(Value::Str(s)) => Ok(Some(s.clone())),
                        Some(_) => Err(PitonError::codec(format!(
                            "request field '{key}' must be a string"
                        ))),
                    }
                };
                let section = text("section")?
                    .ok_or_else(|| PitonError::codec("run request missing 'section'"))?;
                let grid = match text("grid")? {
                    None => GridSpec::all(),
                    Some(s) => GridSpec::parse(&s)?,
                };
                let fidelity = match text("fidelity")? {
                    None => FidelitySpec::Quick,
                    Some(s) => FidelitySpec::parse(&s)?,
                };
                let backend = match text("backend")? {
                    None => None,
                    Some(s) => Some(Backend::parse(&s).map_err(PitonError::codec)?),
                };
                let fault = match text("fault")? {
                    None => None,
                    Some(s) => Some(FaultPlan::parse(&s)?),
                };
                Ok(Self::Run(Box::new(RunRequest {
                    id: text("id")?,
                    section,
                    grid,
                    fidelity,
                    backend,
                    fault,
                })))
            }
            other => Err(PitonError::codec(format!(
                "unknown request op {other:?} (expected run, metrics, ping, shutdown)"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_request_parses_with_defaults() {
        let r = Request::parse(r#"{"op":"run","section":"scaling"}"#).unwrap();
        let Request::Run(run) = r else {
            panic!("expected a run request")
        };
        assert_eq!(run.section, "scaling");
        assert!(run.grid.is_all());
        assert_eq!(run.fidelity, FidelitySpec::Quick);
        assert!(run.backend.is_none() && run.fault.is_none() && run.id.is_none());
    }

    #[test]
    fn run_request_parses_every_field() {
        let r = Request::parse(
            r#"{"op":"run","id":"x1","section":"noc","grid":"0-8,12",
                "fidelity":"s=4,c=1000,w=4000","backend":"cycle","fault":"seed=7,kill=noc:3"}"#,
        )
        .unwrap();
        let Request::Run(run) = r else {
            panic!("expected a run request")
        };
        assert_eq!(run.id.as_deref(), Some("x1"));
        assert_eq!(run.grid.render(), "0-8,12");
        assert_eq!(
            run.fidelity,
            FidelitySpec::Custom {
                samples: 4,
                chunk_cycles: 1000,
                warmup_cycles: 4000
            }
        );
        assert_eq!(run.backend, Some(Backend::Cycle));
        assert!(run.fault.is_some());
    }

    #[test]
    fn control_ops_parse() {
        assert!(matches!(
            Request::parse(r#"{"op":"ping"}"#).unwrap(),
            Request::Ping
        ));
        assert!(matches!(
            Request::parse(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics
        ));
        assert!(matches!(
            Request::parse(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        ));
    }

    #[test]
    fn malformed_requests_are_structured_errors() {
        for bad in [
            "not json",
            "{}",
            r#"{"op":"frobnicate"}"#,
            r#"{"op":"run"}"#,
            r#"{"op":"run","section":"noc","grid":"5-2"}"#,
            r#"{"op":"run","section":"noc","fidelity":"s=0,c=1,w=1"}"#,
            r#"{"op":"run","section":"noc","backend":"warp"}"#,
            r#"{"op":"run","section":"noc","fault":"bogus"}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn fidelity_spec_round_trips_canonically() {
        for spec in ["quick", "full", "s=4,c=1000,w=4000"] {
            let f = FidelitySpec::parse(spec).unwrap();
            assert_eq!(f.render(), spec);
            assert_eq!(FidelitySpec::parse(&f.render()).unwrap(), f);
        }
        // Key order normalizes.
        let f = FidelitySpec::parse("w=9,s=2,c=3").unwrap();
        assert_eq!(f.render(), "s=2,c=3,w=9");
    }

    #[test]
    fn fidelity_specs_resolve_the_presets() {
        assert_eq!(FidelitySpec::Quick.to_fidelity(), Fidelity::quick());
        assert_eq!(FidelitySpec::Full.to_fidelity(), Fidelity::full());
        let f = FidelitySpec::parse("s=4,c=1000,w=4000")
            .unwrap()
            .to_fidelity();
        assert_eq!(
            (f.samples, f.chunk_cycles, f.warmup_cycles),
            (4, 1000, 4000)
        );
    }
}
