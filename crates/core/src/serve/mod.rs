//! Sweep-as-a-service: the `piton-serve` daemon core.
//!
//! A [`Server`] listens on a Unix domain socket for newline-delimited
//! JSON requests ([`request`]), keys every requested grid point by the
//! content hash of (section, index, context) — the exact journal
//! context of `reproduce --journal` — and answers from a persistent
//! on-disk [`cache`] wherever it can, computing only the misses on the
//! shared index-ordered worker pool. Responses stream back as
//! checksummed [`frames`].
//!
//! The serving loop's invariants:
//!
//! * **Byte-identical responses.** Frames carry no cache-state: the
//!   same request answered cold, warm, or after a crash+restart
//!   produces the same bytes. Hit/miss behavior is observable only via
//!   the `serve.*` counters (`op: "metrics"`).
//! * **Sharded population.** Large selections are processed in shards
//!   of [`ServerConfig::shard_points`]: partition against the cache,
//!   compute misses via [`crate::runner::try_sweep`], append + fsync,
//!   then stream — so a killed daemon loses at most one shard of work
//!   and every completed shard is served from disk after restart.
//! * **Crash points are durable-first.** A `crash=SECTION:IDX` fault
//!   term aborts the daemon only *after* the shard that computed the
//!   point is fsync'd, so a restart serves it from cache and the crash
//!   never re-fires — the deterministic hook the crash suite uses.
//! * **Failures are holes, not poison.** A point that fails every
//!   attempt is reported in the done frame and *not* cached; a
//!   malformed request gets an error frame and the connection (and
//!   daemon) stay up.

pub mod cache;
pub mod eval;
pub mod frames;
pub mod request;

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use piton_arch::error::PitonError;
use piton_obs::manifest::{ServeContextRecord, ServeManifest};
use piton_obs::metrics;

use crate::journal::point_key;
use crate::runner::{self, RetryPolicy};

use cache::ResultCache;
use frames::{Frame, FrameHole};
use request::{Request, RunRequest};

/// The manifest file the daemon writes into its cache directory on
/// clean shutdown.
pub const SERVE_MANIFEST_FILE: &str = "serve-manifest.json";

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Unix-domain socket path to listen on.
    pub socket: PathBuf,
    /// Result-cache directory (created if missing).
    pub cache_dir: PathBuf,
    /// Worker threads for computing cache misses.
    pub jobs: usize,
    /// Grid points per durability shard: each shard is partitioned,
    /// computed, appended and fsync'd as a unit before streaming.
    pub shard_points: usize,
}

impl ServerConfig {
    /// Default configuration for the given socket and cache directory:
    /// [`runner::default_jobs`] workers, 512-point shards.
    #[must_use]
    pub fn new(socket: impl Into<PathBuf>, cache_dir: impl Into<PathBuf>) -> Self {
        Self {
            socket: socket.into(),
            cache_dir: cache_dir.into(),
            jobs: runner::default_jobs(),
            shard_points: 512,
        }
    }

    /// Same configuration with `jobs` miss-compute workers.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Same configuration with `shard_points` points per shard.
    #[must_use]
    pub fn with_shard_points(mut self, shard_points: usize) -> Self {
        self.shard_points = shard_points.max(1);
        self
    }
}

macro_rules! counters {
    ($($field:ident => $name:literal),* $(,)?) => {
        /// The daemon's `serve.*` counters. Atomically maintained, and
        /// mirrored into [`piton_obs::metrics`] when metrics are
        /// enabled, so in-process harnesses can assert on either view.
        #[derive(Debug, Default)]
        pub struct ServeCounters {
            $($field: AtomicU64,)*
        }

        impl ServeCounters {
            $(
                fn $field(&self, n: u64) {
                    if n == 0 {
                        return;
                    }
                    self.$field.fetch_add(n, Ordering::Relaxed);
                    if metrics::enabled() {
                        metrics::counter_add($name, n);
                    }
                }
            )*

            /// Every counter as `(name, value)`, sorted by name.
            #[must_use]
            pub fn snapshot(&self) -> Vec<(String, u64)> {
                let mut out = vec![
                    $(($name.to_owned(), self.$field.load(Ordering::Relaxed)),)*
                ];
                out.sort();
                out
            }

            /// One counter by its `serve.*` name (0 when unknown).
            #[must_use]
            pub fn value(&self, name: &str) -> u64 {
                match name {
                    $($name => self.$field.load(Ordering::Relaxed),)*
                    _ => 0,
                }
            }
        }
    };
}

counters! {
    cache_hits => "serve.cache_hits",
    connections => "serve.connections",
    errors => "serve.errors",
    holes => "serve.holes",
    points_computed => "serve.points_computed",
    recovered => "serve.recovered",
    requests => "serve.requests",
    torn => "serve.torn",
}

/// Shared per-connection context.
struct ConnCtx {
    cache: Arc<ResultCache>,
    counters: Arc<ServeCounters>,
    shutdown: Arc<AtomicBool>,
    jobs: usize,
    shard_points: usize,
}

/// The daemon: a bound listener plus its cache and counters.
#[derive(Debug)]
pub struct Server {
    config: ServerConfig,
    listener: UnixListener,
    cache: Arc<ResultCache>,
    counters: Arc<ServeCounters>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the socket (replacing a stale socket file from a killed
    /// daemon) and opens the cache directory.
    ///
    /// # Errors
    ///
    /// [`PitonError::Codec`] on bind or cache-directory failures.
    pub fn bind(config: ServerConfig) -> Result<Self, PitonError> {
        let io = |what: &str, e: std::io::Error| {
            PitonError::codec(format!("socket {}: {what}: {e}", config.socket.display()))
        };
        // A socket file left by a SIGKILL'd daemon would fail the bind
        // forever; nothing can still be listening on it once we can
        // remove it.
        match std::fs::remove_file(&config.socket) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io("remove stale socket", e)),
        }
        let listener = UnixListener::bind(&config.socket).map_err(|e| io("bind", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| io("set nonblocking", e))?;
        let cache = Arc::new(ResultCache::open(&config.cache_dir)?);
        Ok(Self {
            config,
            listener,
            cache,
            counters: Arc::new(ServeCounters::default()),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The daemon's counters (shared; live while connections run).
    #[must_use]
    pub fn counters(&self) -> Arc<ServeCounters> {
        Arc::clone(&self.counters)
    }

    /// A handle that stops [`Server::run`] when set to `true` (the
    /// in-process equivalent of the `shutdown` request).
    #[must_use]
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The bound socket path.
    #[must_use]
    pub fn socket(&self) -> &Path {
        &self.config.socket
    }

    /// The current manifest view: configuration, counters, and every
    /// cached context's accounting.
    #[must_use]
    pub fn manifest(&self) -> ServeManifest {
        ServeManifest {
            jobs: self.config.jobs,
            shard_points: self.config.shard_points,
            counters: self.counters.snapshot(),
            contexts: self
                .cache
                .contexts()
                .into_iter()
                .map(|(context, file, stats)| ServeContextRecord {
                    context,
                    file,
                    stats,
                })
                .collect(),
        }
    }

    /// Runs the accept loop until shutdown (via a `shutdown` request or
    /// the [`Server::shutdown_handle`]), then drains connections,
    /// writes [`SERVE_MANIFEST_FILE`] into the cache directory and
    /// removes the socket file.
    ///
    /// # Errors
    ///
    /// [`PitonError::Codec`] when the final manifest cannot be
    /// written; accept errors on individual connections are absorbed.
    pub fn run(self) -> Result<ServeManifest, PitonError> {
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _addr)) => {
                    self.counters.connections(1);
                    let ctx = ConnCtx {
                        cache: Arc::clone(&self.cache),
                        counters: Arc::clone(&self.counters),
                        shutdown: Arc::clone(&self.shutdown),
                        jobs: self.config.jobs,
                        shard_points: self.config.shard_points,
                    };
                    handles.push(std::thread::spawn(move || handle_connection(stream, &ctx)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    // A single failed accept (e.g. a client vanishing
                    // mid-handshake) must not take the daemon down.
                    eprintln!("piton-serve: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            // Reap finished connection threads as we go.
            let mut i = 0;
            while i < handles.len() {
                if handles[i].is_finished() {
                    let _ = handles.swap_remove(i).join();
                } else {
                    i += 1;
                }
            }
        }
        for h in handles {
            let _ = h.join();
        }
        let manifest = self.manifest();
        let path = self.cache.dir().join(SERVE_MANIFEST_FILE);
        std::fs::write(&path, manifest.to_json())
            .map_err(|e| PitonError::codec(format!("manifest {}: write: {e}", path.display())))?;
        let _ = std::fs::remove_file(&self.config.socket);
        Ok(manifest)
    }

    /// Spawns [`Server::run`] on a background thread — the in-process
    /// harness used by the conformance suite.
    #[must_use]
    pub fn spawn(self) -> ServerHandle {
        let socket = self.config.socket.clone();
        let counters = self.counters();
        let shutdown = self.shutdown_handle();
        let thread = std::thread::spawn(move || self.run());
        ServerHandle {
            socket,
            counters,
            shutdown,
            thread,
        }
    }
}

/// A background daemon started by [`Server::spawn`].
#[derive(Debug)]
pub struct ServerHandle {
    socket: PathBuf,
    counters: Arc<ServeCounters>,
    shutdown: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<Result<ServeManifest, PitonError>>,
}

impl ServerHandle {
    /// The socket the daemon listens on.
    #[must_use]
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// The daemon's live counters.
    #[must_use]
    pub fn counters(&self) -> &ServeCounters {
        &self.counters
    }

    /// Requests shutdown and joins the daemon, returning its final
    /// manifest.
    ///
    /// # Errors
    ///
    /// Propagates the run loop's error, or reports the panic if the
    /// daemon thread died.
    pub fn stop(self) -> Result<ServeManifest, PitonError> {
        self.shutdown.store(true, Ordering::SeqCst);
        self.thread
            .join()
            .map_err(|_| PitonError::codec("serve thread panicked"))?
    }
}

fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(frame.encode().as_bytes())
}

fn handle_connection(stream: UnixStream, ctx: &ConnCtx) {
    // I/O failures mean the client is gone; drop the connection, keep
    // the daemon.
    let _ = serve_connection(stream, ctx);
}

/// Why a run request stopped early: the connection died (give up on
/// the client) versus the request was refused (error frame, carry on).
enum RunAbort {
    Io(std::io::Error),
    Refused(PitonError),
}

fn serve_connection(stream: UnixStream, ctx: &ConnCtx) -> std::io::Result<()> {
    // A short read timeout keeps idle request loops responsive to
    // shutdown: a client that holds its connection open must not pin
    // the daemon past a shutdown request.
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        // `read_line` keeps partial data in `line` across timeouts, so
        // a request split over several reads reassembles intact.
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()),
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let request = std::mem::take(&mut line);
        let line = request.trim_end_matches('\n');
        if line.trim().is_empty() {
            continue;
        }
        match Request::parse(line) {
            Err(e) => {
                ctx.counters.errors(1);
                write_frame(
                    &mut writer,
                    &Frame::Error {
                        message: e.to_string(),
                    },
                )?;
            }
            Ok(Request::Ping) => write_frame(
                &mut writer,
                &Frame::Pong {
                    version: env!("CARGO_PKG_VERSION").to_owned(),
                },
            )?,
            Ok(Request::Metrics) => write_frame(
                &mut writer,
                &Frame::Metrics {
                    counters: ctx.counters.snapshot(),
                },
            )?,
            Ok(Request::Shutdown) => {
                write_frame(&mut writer, &Frame::Bye)?;
                writer.flush()?;
                ctx.shutdown.store(true, Ordering::SeqCst);
                return Ok(());
            }
            Ok(Request::Run(run)) => match handle_run(&mut writer, ctx, &run) {
                Ok(()) => {}
                Err(RunAbort::Io(e)) => return Err(e),
                Err(RunAbort::Refused(e)) => {
                    ctx.counters.errors(1);
                    write_frame(
                        &mut writer,
                        &Frame::Error {
                            message: e.to_string(),
                        },
                    )?;
                }
            },
        }
        writer.flush()?;
    }
}

fn handle_run(writer: &mut UnixStream, ctx: &ConnCtx, run: &RunRequest) -> Result<(), RunAbort> {
    let eval = eval::resolve(run).map_err(RunAbort::Refused)?;
    let indices = run.grid.resolve(eval.len).map_err(RunAbort::Refused)?;
    let (journal, opened) = ctx
        .cache
        .journal(&eval.context)
        .map_err(RunAbort::Refused)?;
    if let Some(stats) = opened {
        ctx.counters.recovered(stats.recovered);
        ctx.counters.torn(stats.torn);
    }
    ctx.counters.requests(1);
    write_frame(
        writer,
        &Frame::Hello {
            id: run.id.clone(),
            section: run.section.clone(),
            context: eval.context.clone(),
            points: indices.len() as u64,
        },
    )
    .map_err(RunAbort::Io)?;

    let mut holes: Vec<FrameHole> = Vec::new();
    let mut served = 0u64;
    for shard in indices.chunks(ctx.shard_points.max(1)) {
        // Partition the shard against the cache under one lock hold.
        let mut ready: Vec<(usize, piton_obs::json::Value)> = Vec::with_capacity(shard.len());
        let mut misses: Vec<usize> = Vec::new();
        {
            let mut j = journal.lock().expect("cache journal lock");
            for &idx in shard {
                match j.serve(&run.section, idx) {
                    Some(v) => ready.push((idx, v)),
                    None => misses.push(idx),
                }
            }
        }
        ctx.counters.cache_hits(ready.len() as u64);
        if !misses.is_empty() {
            ctx.counters.points_computed(misses.len() as u64);
            let computed = runner::try_sweep(
                ctx.jobs,
                misses.clone(),
                RetryPolicy::default(),
                |_, &idx, attempt| eval.compute(idx, attempt),
            );
            // Append the fresh points and make the shard durable
            // before any frame (or any injected crash) references it.
            let mut crash_at: Option<usize> = None;
            {
                let mut j = journal.lock().expect("cache journal lock");
                for (idx, out) in misses.iter().zip(&computed) {
                    match out {
                        Ok(v) => {
                            // A concurrent identical request may have
                            // recorded this point between our partition
                            // and now; never write a duplicate record.
                            if !j.contains(&run.section, *idx) {
                                j.record(&run.section, *idx, v).map_err(RunAbort::Refused)?;
                            }
                            if run
                                .fault
                                .as_ref()
                                .is_some_and(|p| p.crash_for(&run.section, *idx))
                            {
                                crash_at = Some(*idx);
                            }
                            ready.push((*idx, v.clone()));
                        }
                        Err(e) => holes.push(FrameHole {
                            index: *idx as u64,
                            attempts: e.attempts,
                            error: e.failure.to_string(),
                        }),
                    }
                }
                j.sync().map_err(RunAbort::Refused)?;
            }
            if let Some(idx) = crash_at {
                // Durability first (sync above): the restarted daemon
                // serves this point from cache, so the crash fires at
                // most once per cold compute.
                eprintln!("piton-serve: injected crash at {}:{idx}", run.section);
                std::process::abort();
            }
        }
        ready.sort_unstable_by_key(|(idx, _)| *idx);
        for (idx, v) in &ready {
            write_frame(
                writer,
                &Frame::Result {
                    section: run.section.clone(),
                    index: *idx as u64,
                    key: point_key(&eval.context, &run.section, *idx),
                    payload: v.clone(),
                },
            )
            .map_err(RunAbort::Io)?;
            served += 1;
        }
        writer.flush().map_err(RunAbort::Io)?;
    }
    ctx.counters.holes(holes.len() as u64);
    write_frame(
        writer,
        &Frame::Done {
            id: run.id.clone(),
            section: run.section.clone(),
            points: served,
            holes,
        },
    )
    .map_err(RunAbort::Io)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "piton-serve-mod-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        p
    }

    fn request_lines(socket: &Path, lines: &str) -> Vec<Frame> {
        let mut stream = UnixStream::connect(socket).expect("connect");
        stream.write_all(lines.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        BufReader::new(stream)
            .lines()
            .map(|l| Frame::decode(l.unwrap().as_bytes()).expect("verified frame"))
            .collect()
    }

    #[test]
    fn config_builders_clamp_and_default() {
        let c = ServerConfig::new("/tmp/x.sock", "/tmp/cache")
            .with_jobs(0)
            .with_shard_points(0);
        assert_eq!((c.jobs, c.shard_points), (1, 1));
        assert!(ServerConfig::new("a", "b").jobs >= 1);
    }

    #[test]
    fn counters_snapshot_is_sorted_and_addressable() {
        let c = ServeCounters::default();
        c.cache_hits(3);
        c.requests(1);
        let snap = c.snapshot();
        assert_eq!(snap.len(), 8);
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(c.value("serve.cache_hits"), 3);
        assert_eq!(c.value("serve.requests"), 1);
        assert_eq!(c.value("serve.nope"), 0);
    }

    #[test]
    fn daemon_answers_control_ops_and_shuts_down_cleanly() {
        let socket = temp_path("ctl.sock");
        let cache_dir = temp_path("ctl-cache");
        let _ = std::fs::remove_dir_all(&cache_dir);
        let server = Server::bind(ServerConfig::new(&socket, &cache_dir)).unwrap();
        let handle = server.spawn();
        let frames = request_lines(
            &socket,
            "{\"op\":\"ping\"}\n{\"op\":\"metrics\"}\nnot json\n{\"op\":\"shutdown\"}\n",
        );
        assert!(
            matches!(&frames[0], Frame::Pong { version } if version == env!("CARGO_PKG_VERSION"))
        );
        assert!(matches!(&frames[1], Frame::Metrics { .. }));
        // The malformed line got an error frame and the daemon kept
        // answering on the same connection.
        assert!(matches!(&frames[2], Frame::Error { .. }));
        assert!(matches!(&frames[3], Frame::Bye));
        let manifest = handle.stop().unwrap();
        assert_eq!(manifest.counters.len(), 8);
        // The shutdown path wrote the manifest and removed the socket.
        let on_disk = std::fs::read_to_string(cache_dir.join(SERVE_MANIFEST_FILE)).unwrap();
        assert_eq!(ServeManifest::from_json(&on_disk).unwrap(), manifest);
        assert!(!socket.exists());
        let _ = std::fs::remove_dir_all(&cache_dir);
    }

    #[test]
    fn stale_socket_files_are_replaced_on_bind() {
        let socket = temp_path("stale.sock");
        let cache_dir = temp_path("stale-cache");
        let _ = std::fs::remove_dir_all(&cache_dir);
        std::fs::write(&socket, b"stale").unwrap();
        let server = Server::bind(ServerConfig::new(&socket, &cache_dir)).unwrap();
        assert_eq!(server.socket(), socket.as_path());
        drop(server);
        let _ = std::fs::remove_file(&socket);
        let _ = std::fs::remove_dir_all(&cache_dir);
    }
}
