//! Parallel sweep engine for independent experiment grid points.
//!
//! Every experiment in [`crate::experiments`] measures a grid of
//! independent points — (instruction × operand pattern), (benchmark ×
//! thread count × configuration), (voltage × chip) — and each point
//! builds its own [`piton_board::system::PitonSystem`] from scratch.
//! Nothing is shared between points, so they can run on worker threads
//! without changing any result: [`sweep`] fans a grid across
//! `jobs` scoped threads ([`std::thread::scope`], no extra
//! dependencies) and collects results **in index order**, so the output
//! is byte-identical to the serial run at any jobs level.
//!
//! Wall-clock and per-point busy time are accumulated in a process-wide
//! tally the `reproduce` binary drains per section ([`take_stats`]) to
//! report the achieved speedup.
//!
//! # Examples
//!
//! ```
//! use piton_core::runner;
//!
//! let squares = runner::sweep(4, (0u64..8).collect(), |_, x| x * x);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use piton_arch::error::PitonError;
use piton_board::fault::FaultPlan;
use piton_obs::trace::{JournalKind, TraceEvent};
use piton_obs::{metrics, trace};

use crate::journal::{self, JournalPayload, JournalToken};

/// Accumulated sweep timing: how much point work ran (`busy`) versus
/// how long the sweeps took end to end (`wall`).
#[derive(Debug, Default, Clone, Copy)]
pub struct SweepStats {
    /// Completed sweeps.
    pub sweeps: usize,
    /// Grid points measured.
    pub points: usize,
    /// Sum of per-point execution times.
    pub busy: Duration,
    /// Sum of sweep wall-clock times.
    pub wall: Duration,
}

impl SweepStats {
    /// Achieved parallel speedup: busy time divided by wall time
    /// (1.0 when serial, approaching `jobs` under perfect scaling).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.wall.is_zero() {
            1.0
        } else {
            self.busy.as_secs_f64() / self.wall.as_secs_f64()
        }
    }

    fn absorb(&mut self, points: usize, busy: Duration, wall: Duration) {
        self.sweeps += 1;
        self.points += points;
        self.busy += busy;
        self.wall += wall;
    }
}

static STATS: Mutex<SweepStats> = Mutex::new(SweepStats {
    sweeps: 0,
    points: 0,
    busy: Duration::ZERO,
    wall: Duration::ZERO,
});

/// Returns the stats accumulated since the last call and resets the
/// tally (the `reproduce` harness drains this once per section).
pub fn take_stats() -> SweepStats {
    let mut guard = STATS.lock().expect("stats lock");
    std::mem::take(&mut *guard)
}

/// Runs `f(index, item)` over every item of the grid on up to `jobs`
/// worker threads and returns the results in item order.
///
/// Work is handed out dynamically (an atomic cursor over the grid), so
/// long points don't serialize behind short ones; results land in a
/// slot per index, making the output order — and therefore every
/// rendered table and CSV downstream — independent of scheduling.
/// With `jobs <= 1` or a single item the grid runs inline on the
/// caller's thread.
///
/// # Panics
///
/// Propagates the first panic from any grid point (the scope joins all
/// workers first), and panics if a worker thread cannot be spawned.
pub fn sweep<I, T, F>(jobs: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let n = items.len();
    let workers = jobs.max(1).min(n);
    let t_sweep = Instant::now();

    if workers <= 1 {
        let mut busy = Duration::ZERO;
        let out: Vec<T> = items
            .into_iter()
            .enumerate()
            .map(|(i, item)| {
                let t0 = Instant::now();
                let r = f(i, item);
                busy += t0.elapsed();
                r
            })
            .collect();
        STATS
            .lock()
            .expect("stats lock")
            .absorb(n, busy, t_sweep.elapsed());
        return out;
    }

    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let busy_ns = std::sync::atomic::AtomicU64::new(0);
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                // `worker_scope` gives each worker its own trace
                // collector when file-backed tracing is live, so events
                // emitted off the main thread still reach the sink.
                scope.spawn(|| {
                    trace::worker_scope(|| loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            break;
                        }
                        let item = slots[idx]
                            .lock()
                            .expect("item slot lock")
                            .take()
                            .expect("each grid point is claimed once");
                        let t0 = Instant::now();
                        let out = f(idx, item);
                        let spent = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        busy_ns.fetch_add(spent, Ordering::Relaxed);
                        *results[idx].lock().expect("result slot lock") = Some(out);
                    });
                })
            })
            .collect();
        // Join explicitly: a panicking grid point must reach the caller
        // with its original payload, not the scope's generic
        // "a scoped thread panicked" message.
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    let out: Vec<T> = results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock")
                .expect("all grid points completed")
        })
        .collect();
    STATS.lock().expect("stats lock").absorb(
        n,
        Duration::from_nanos(busy_ns.load(Ordering::Relaxed)),
        t_sweep.elapsed(),
    );
    out
}

/// Retry policy of a fault-isolated sweep: how many attempts each grid
/// point gets before its failure becomes a hole, how long each attempt
/// may run, and how long to pause between retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per point (first try included).
    pub max_attempts: u32,
    /// Per-attempt deadline budget. Each attempt arms the cooperative
    /// [`piton_arch::deadline`] for this long, so a wedged measurement
    /// surfaces as a *transient* [`PitonError::DeadlineExceeded`]
    /// (polled by warm-up, sampling and the hang watchdog) and the
    /// retry gets a fresh budget. `None` leaves attempts unbudgeted.
    pub timeout: Option<Duration>,
    /// Pause before the first retry, doubling on every further retry
    /// (exponential backoff, saturating). [`Duration::ZERO`] retries
    /// immediately.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            timeout: None,
            backoff: Duration::ZERO,
        }
    }
}

/// Sleeps before retry number `retry` (1-based): `base * 2^(retry-1)`,
/// saturating. A zero base skips the pause entirely.
fn backoff_pause(base: Duration, retry: u32) {
    if base.is_zero() {
        return;
    }
    let factor = 1u32 << (retry - 1).min(16);
    std::thread::sleep(base.saturating_mul(factor));
}

/// How a grid point ultimately failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointFailure {
    /// The point panicked (payload text preserved).
    Panicked(String),
    /// The point returned an error.
    Failed(PitonError),
}

/// A grid point that failed all its attempts — the marked hole in the
/// sweep's output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointError {
    /// Grid index of the failed point.
    pub index: usize,
    /// Attempts made (= the policy's `max_attempts`, or fewer when the
    /// failure was not worth retrying).
    pub attempts: u32,
    /// The final failure.
    pub failure: PointFailure,
}

impl std::fmt::Display for PointFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Panicked(msg) => write!(f, "panic: {msg}"),
            Self::Failed(e) => write!(f, "{e}"),
        }
    }
}

impl std::fmt::Display for PointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "point {} failed after {} attempt(s): {}",
            self.index, self.attempts, self.failure
        )
    }
}

/// Renders a caught panic payload (the two shapes `panic!` produces).
fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Fault-isolated [`sweep`]: every grid point runs under
/// [`std::panic::catch_unwind`], panics and transient errors are
/// retried up to the policy's `max_attempts` (the attempt number is
/// passed to `f`, so points can reseed per attempt), and each point
/// independently resolves to `Ok(T)` or a [`PointError`] — one bad
/// point can no longer abort a whole section.
///
/// Non-transient errors ([`PitonError::is_transient`] false) fail
/// immediately: retrying a deterministic failure cannot help.
/// Scheduling, ordering and stats behave exactly like [`sweep`], so
/// output stays byte-identical at any jobs level.
pub fn try_sweep<I, T, F>(
    jobs: usize,
    items: Vec<I>,
    policy: RetryPolicy,
    f: F,
) -> Vec<Result<T, PointError>>
where
    I: Send,
    T: Send,
    F: Fn(usize, &I, u32) -> Result<T, PitonError> + Sync,
{
    sweep(jobs, items, |idx, item| {
        let (attempt, out) = run_point(idx, &item, policy, &f);
        note_point_metrics(attempt, out.is_err());
        out
    })
}

/// One grid point's attempt loop: panic isolation, per-attempt deadline
/// budget, transient retry with exponential backoff. Returns the final
/// attempt number alongside the outcome.
fn run_point<I, T>(
    idx: usize,
    item: &I,
    policy: RetryPolicy,
    f: &(impl Fn(usize, &I, u32) -> Result<T, PitonError> + Sync),
) -> (u32, Result<T, PointError>) {
    let max_attempts = policy.max_attempts.max(1);
    let mut attempt = 0;
    let out = loop {
        if let Some(timeout) = policy.timeout {
            piton_arch::deadline::arm(Instant::now() + timeout);
        }
        let tried =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(idx, item, attempt)));
        piton_arch::deadline::disarm();
        match tried {
            Ok(Ok(v)) => break Ok(v),
            Ok(Err(e)) => {
                if e.is_transient() && attempt + 1 < max_attempts {
                    attempt += 1;
                    backoff_pause(policy.backoff, attempt);
                    continue;
                }
                break Err(PointError {
                    index: idx,
                    attempts: attempt + 1,
                    failure: PointFailure::Failed(e),
                });
            }
            Err(payload) => {
                if attempt + 1 < max_attempts {
                    attempt += 1;
                    backoff_pause(policy.backoff, attempt);
                    continue;
                }
                break Err(PointError {
                    index: idx,
                    attempts: attempt + 1,
                    failure: PointFailure::Panicked(payload_text(payload.as_ref())),
                });
            }
        }
    };
    (attempt, out)
}

fn note_point_metrics(attempt: u32, holed: bool) {
    if metrics::enabled() {
        if attempt > 0 {
            metrics::counter_add("sweep.retries", u64::from(attempt));
        }
        if holed {
            metrics::counter_add("sweep.holes", 1);
        }
    }
}

/// Journal-backed [`try_sweep`]: the durable, crash-resumable sweep.
///
/// With a journal token, every grid point already present in the
/// write-ahead [`crate::journal::Journal`] is **served** from it —
/// skipping the closure, and with it every sabotage gate and retry —
/// while freshly computed points are **appended** before the sweep
/// proceeds. Payload round-trips are exact, so a resumed sweep's
/// output is byte-identical to an uninterrupted one at any jobs level.
/// Appends are batched: the journal is fsync'd once at the end of the
/// sweep (and immediately before an injected crash).
///
/// A `crash=SECTION:IDX` entry in the fault plan hard-aborts the
/// process when that point completes on the *compute* path — strictly
/// after its record is durably on disk — so the `--resume` relaunch
/// serves the point from the journal and the crash never re-fires.
///
/// With `token = None` and a plan without crash points this behaves
/// exactly like [`try_sweep`].
pub fn try_sweep_journaled<I, T, F>(
    jobs: usize,
    items: Vec<I>,
    policy: RetryPolicy,
    section: &str,
    plan: Option<&FaultPlan>,
    token: Option<JournalToken>,
    f: F,
) -> Vec<Result<T, PointError>>
where
    I: Send,
    T: Send + JournalPayload,
    F: Fn(usize, &I, u32) -> Result<T, PitonError> + Sync,
{
    let shared = token.map(journal::resolve);
    let out = sweep(jobs, items, |idx, item| {
        if let Some(shared) = &shared {
            let mut j = shared.lock().expect("journal lock");
            if let Some(v) = j.serve(section, idx) {
                if let Ok(t) = T::from_value(&v) {
                    trace::emit(TraceEvent::Journal {
                        section: section.to_owned(),
                        index: idx as u64,
                        kind: JournalKind::Serve,
                        key: j.key_for(section, idx),
                    });
                    return Ok(t);
                }
                // A checksummed record that no longer decodes as `T`
                // means the payload type changed under an unchanged
                // context string; recompute rather than trust it.
            }
        }
        let (attempt, out) = run_point(idx, &item, policy, &f);
        note_point_metrics(attempt, out.is_err());
        if let Ok(v) = &out {
            if let Some(shared) = &shared {
                let mut j = shared.lock().expect("journal lock");
                if let Err(e) = j.record(section, idx, &v.to_value()) {
                    // A result we cannot make durable must not be
                    // reported as completed: better a visible hole.
                    return Err(PointError {
                        index: idx,
                        attempts: attempt + 1,
                        failure: PointFailure::Failed(e),
                    });
                }
                trace::emit(TraceEvent::Journal {
                    section: section.to_owned(),
                    index: idx as u64,
                    kind: JournalKind::Append,
                    key: j.key_for(section, idx),
                });
                if plan.is_some_and(|p| p.crash_for(section, idx)) {
                    // Durability first: the crashed point's record must
                    // reach disk so the resumed run serves it.
                    if let Err(e) = j.sync() {
                        eprintln!("piton: journal sync before injected crash failed: {e}");
                    }
                    eprintln!("piton: injected crash at {section}:{idx}");
                    std::process::abort();
                }
            } else if plan.is_some_and(|p| p.crash_for(section, idx)) {
                eprintln!("piton: injected crash at {section}:{idx}");
                std::process::abort();
            }
        }
        out
    });
    if let Some(shared) = &shared {
        // The batch boundary: everything this sweep appended becomes
        // durable in one fsync.
        if let Err(e) = shared.lock().expect("journal lock").sync() {
            eprintln!("piton: journal sync at sweep end failed: {e}");
        }
    }
    out
}

/// The number of worker threads to use when the caller doesn't say:
/// `PITON_JOBS` if set (clamped to at least 1), otherwise the machine's
/// available parallelism.
#[must_use]
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("PITON_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        // Make early indices the slowest so a scheduling-order bug
        // would scramble the output.
        let out = sweep(4, (0u64..32).collect(), |i, x| {
            std::thread::sleep(Duration::from_micros(300 - 9 * i as u64));
            (i, x * 2)
        });
        for (i, (idx, doubled)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*doubled, 2 * i as u64);
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let grid: Vec<u64> = (0..50).collect();
        let f = |i: usize, x: u64| x.wrapping_mul(0x9E37_79B9).rotate_left(i as u32);
        assert_eq!(sweep(1, grid.clone(), f), sweep(8, grid, f));
    }

    #[test]
    fn jobs_zero_and_one_fall_back_to_inline_execution() {
        // Both must produce the full result set without spawning.
        for jobs in [0, 1] {
            let out = sweep(jobs, vec![10u64, 20, 30], |i, x| x + i as u64);
            assert_eq!(out, vec![10, 21, 32]);
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        let out: Vec<u64> = sweep(8, Vec::<u64>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "grid point 3 exploded")]
    fn panics_propagate_to_the_caller() {
        let _ = sweep(4, (0usize..8).collect(), |i, x| {
            assert!(i != 3, "grid point 3 exploded");
            x
        });
    }

    #[test]
    fn try_sweep_isolates_a_panicking_point() {
        let out = try_sweep(4, (0u64..8).collect(), RetryPolicy::default(), |i, x, _| {
            assert!(i != 3, "grid point 3 exploded");
            Ok(x * 10)
        });
        assert_eq!(out.len(), 8);
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.index, 3);
                assert_eq!(e.attempts, 3);
                assert!(
                    matches!(&e.failure, PointFailure::Panicked(m) if m.contains("exploded")),
                    "{e}"
                );
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as u64 * 10);
            }
        }
    }

    #[test]
    fn try_sweep_retries_transient_failures_with_attempt_reseeding() {
        // Point 5 fails its first two attempts, then succeeds: retry
        // with the attempt number must recover it with no hole.
        let out = try_sweep(
            2,
            (0u64..8).collect(),
            RetryPolicy::default(),
            |i, x, attempt| {
                if i == 5 && attempt < 2 {
                    return Err(PitonError::transient("flaky point"));
                }
                Ok(x + u64::from(attempt))
            },
        );
        let vals: Vec<u64> = out.into_iter().map(Result::unwrap).collect();
        // Point 5 succeeded on attempt 2 and saw its reseeded attempt.
        assert_eq!(vals, vec![0, 1, 2, 3, 4, 7, 6, 7]);
    }

    #[test]
    fn try_sweep_fails_nontransient_errors_without_retry() {
        let out = try_sweep(
            1,
            vec![0u64],
            RetryPolicy {
                max_attempts: 5,
                ..RetryPolicy::default()
            },
            |_, _, attempt| {
                assert_eq!(attempt, 0, "deterministic failures must not retry");
                Err::<u64, _>(PitonError::injected("dead point"))
            },
        );
        let e = out[0].as_ref().unwrap_err();
        assert_eq!(e.attempts, 1);
        assert!(matches!(
            &e.failure,
            PointFailure::Failed(PitonError::Injected { .. })
        ));
    }

    #[test]
    fn try_sweep_is_deterministic_across_jobs_levels() {
        let run = |jobs| {
            try_sweep(
                jobs,
                (0u64..16).collect(),
                RetryPolicy::default(),
                |i, x, attempt| {
                    if i == 2 && attempt == 0 {
                        return Err(PitonError::transient("first attempt glitch"));
                    }
                    if i == 9 {
                        panic!("point 9 always dies");
                    }
                    Ok(x.wrapping_mul(0x9E37_79B9) ^ u64::from(attempt))
                },
            )
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn deadline_budget_turns_a_wedged_point_into_a_transient_failure() {
        // The point cooperatively polls the deadline (as warm-up and
        // sampling do); an over-budget attempt fails transiently and
        // each retry gets a fresh budget it also blows.
        let policy = RetryPolicy {
            max_attempts: 2,
            timeout: Some(Duration::from_millis(2)),
            backoff: Duration::ZERO,
        };
        let out = try_sweep(1, vec![0u64], policy, |_, _, _| {
            std::thread::sleep(Duration::from_millis(5));
            piton_arch::deadline::check("wedged measurement")?;
            Ok(1u64)
        });
        let e = out[0].as_ref().unwrap_err();
        assert_eq!(e.attempts, 2);
        assert!(
            matches!(
                &e.failure,
                PointFailure::Failed(PitonError::DeadlineExceeded { .. })
            ),
            "{e}"
        );
        // The budget is per attempt: a fast point under the same
        // policy never trips it.
        let ok = try_sweep(1, vec![7u64], policy, |_, &x, _| {
            piton_arch::deadline::check("fast point")?;
            Ok(x)
        });
        assert_eq!(*ok[0].as_ref().unwrap(), 7);
    }

    #[test]
    fn backoff_doubles_between_retries() {
        let policy = RetryPolicy {
            max_attempts: 3,
            timeout: None,
            backoff: Duration::from_millis(4),
        };
        let t0 = Instant::now();
        let out = try_sweep(1, vec![0u64], policy, |_, _, _| {
            Err::<u64, _>(PitonError::transient("always flaky"))
        });
        assert!(out[0].is_err());
        // Two retries: 4 ms + 8 ms of pause at minimum.
        assert!(t0.elapsed() >= Duration::from_millis(12));
    }

    #[test]
    fn journaled_sweep_appends_then_serves_without_recompute() {
        use std::sync::atomic::AtomicUsize;

        let mut path = std::env::temp_dir();
        path.push(format!(
            "piton-runner-journal-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let token = journal::register(journal::Journal::open(&path, "runner-test-ctx").unwrap());
        let calls = AtomicUsize::new(0);
        let f = |_: usize, &x: &u64, _: u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(x as f64 * 0.5)
        };
        let grid: Vec<u64> = (0..6).collect();
        let first = try_sweep_journaled(
            2,
            grid.clone(),
            RetryPolicy::default(),
            "scaling",
            None,
            Some(token),
            f,
        );
        assert_eq!(calls.load(Ordering::Relaxed), 6);
        // Same token again: every point is served, none recomputed,
        // results byte-identical at a different jobs level.
        let second = try_sweep_journaled(
            1,
            grid,
            RetryPolicy::default(),
            "scaling",
            None,
            Some(token),
            f,
        );
        assert_eq!(calls.load(Ordering::Relaxed), 6);
        let unwrap = |v: Vec<Result<f64, PointError>>| -> Vec<f64> {
            v.into_iter().map(Result::unwrap).collect()
        };
        assert_eq!(unwrap(first), unwrap(second));
        let stats = journal::resolve(token).lock().unwrap().stats();
        assert_eq!(stats.appended, 6);
        assert_eq!(stats.served, 6);
        // The records are durable: a fresh open recovers all of them.
        let reopened = journal::Journal::open(&path, "runner-test-ctx").unwrap();
        assert_eq!(reopened.stats().recovered, 6);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journaled_sweep_without_token_matches_try_sweep() {
        let f = |i: usize, &x: &u64, attempt: u32| {
            if i == 2 && attempt == 0 {
                return Err(PitonError::transient("glitch"));
            }
            Ok(x as f64 + f64::from(attempt))
        };
        let grid: Vec<u64> = (0..8).collect();
        let plain = try_sweep(4, grid.clone(), RetryPolicy::default(), f);
        let journaled =
            try_sweep_journaled(4, grid, RetryPolicy::default(), "scaling", None, None, f);
        assert_eq!(plain, journaled);
    }

    #[test]
    fn point_errors_render_their_story() {
        let e = PointError {
            index: 7,
            attempts: 3,
            failure: PointFailure::Failed(PitonError::transient("injected flaky grid point")),
        };
        let s = e.to_string();
        assert!(s.contains("point 7") && s.contains("3 attempt"), "{s}");
    }

    #[test]
    fn stats_accumulate_and_reset() {
        // Other tests run concurrently in this process and also feed
        // the global tally, so only check what this sweep guarantees:
        // afterwards the tally covers at least our points, and taking
        // it twice in a row eventually yields an empty tally.
        let _ = sweep(2, (0u64..5).collect(), |_, x| x);
        let s = take_stats();
        assert!(s.sweeps >= 1);
        assert!(s.points >= 5);
        assert!(s.speedup() >= 0.0);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
