//! The paper's measurement methodology (§III-A, §IV-E, §IV-G).
//!
//! Three formulas drive the characterization:
//!
//! * **EPI** (§IV-E): run the instruction's assembly test on all 25
//!   cores, measure steady-state power, subtract idle, convert to
//!   energy per cycle, multiply by the instruction's latency:
//!
//!   `EPI = (1/25) × (P_inst − P_idle) / f × L`
//!
//! * **EPF** (§IV-G): dummy packets enter through the chip bridge with
//!   seven valid flits every 47 cycles; relative to the zero-hop
//!   baseline:
//!
//!   `EPF = (47/7) × (P_hop − P_base) / f`
//!
//! * **Energy per completed operation** (used for Table VII, where the
//!   L2-miss path serializes): `E = (P − P_idle) × t_window / n_ops`,
//!   which reduces to the EPI formula whenever the chip completes 25
//!   concurrent operations per latency window.

use piton_arch::error::PitonError;
use piton_arch::units::{Hertz, Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Core count of the EPI methodology.
pub const EPI_CORES: f64 = 25.0;

/// Bridge pattern constants of the EPF methodology.
pub const EPF_PATTERN_CYCLES: f64 = 47.0;
/// Valid flits per bridge pattern.
pub const EPF_PATTERN_FLITS: f64 = 7.0;

/// A value with a propagated standard deviation, as every measurement
/// in the paper is reported.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WithError {
    /// Mean value.
    pub value: f64,
    /// One standard deviation.
    pub error: f64,
}

impl WithError {
    /// Creates a value ± error.
    #[must_use]
    pub fn new(value: f64, error: f64) -> Self {
        Self { value, error }
    }
}

impl std::fmt::Display for WithError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let prec = f.precision().unwrap_or(2);
        write!(f, "{:.*}±{:.*}", prec, self.value, prec, self.error)
    }
}

/// §IV-E EPI formula. Powers in watts, frequency in hertz, latency in
/// cycles; returns picojoules.
#[must_use]
pub fn epi_pj(p_inst: Watts, p_idle: Watts, f: Hertz, latency: u64) -> f64 {
    let per_cycle = (p_inst.0 - p_idle.0) / f.0 / EPI_CORES;
    per_cycle * latency as f64 * 1e12
}

/// §IV-E EPI formula with error propagation (errors add in quadrature
/// through the subtraction).
#[must_use]
pub fn epi_with_error(
    p_inst: Watts,
    p_inst_err: Watts,
    p_idle: Watts,
    p_idle_err: Watts,
    f: Hertz,
    latency: u64,
) -> WithError {
    let value = epi_pj(p_inst, p_idle, f, latency);
    let sigma_p = (p_inst_err.0.powi(2) + p_idle_err.0.powi(2)).sqrt();
    let error = sigma_p / f.0 / EPI_CORES * latency as f64 * 1e12;
    WithError::new(value, error)
}

/// §IV-G EPF formula: picojoules per flit from the hop-count power
/// delta.
#[must_use]
pub fn epf_pj(p_hop: Watts, p_base: Watts, f: Hertz) -> f64 {
    (EPF_PATTERN_CYCLES / EPF_PATTERN_FLITS) * (p_hop.0 - p_base.0) / f.0 * 1e12
}

/// Energy per completed operation: `(P − P_idle) × t / n`, in
/// nanojoules.
#[must_use]
pub fn energy_per_op_nj(p: Watts, p_idle: Watts, window: Seconds, ops: u64) -> f64 {
    assert!(ops > 0, "no operations completed");
    let e: Joules = (p - p_idle) * window;
    e.as_nj() / ops as f64
}

/// Ordinary least-squares line fit `y = a + b·x`; returns `(a, b)`.
///
/// Used for the paper's trendlines (pJ/hop in Figure 12, mW/core in
/// Figure 13). A fault-holed sweep can leave too few surviving points,
/// so the degenerate cases are reported, not panicked.
///
/// # Errors
///
/// [`PitonError::DegenerateFit`] with fewer than two points or zero
/// x-variance.
pub fn linear_fit(points: &[(f64, f64)]) -> Result<(f64, f64), PitonError> {
    if points.len() < 2 {
        return Err(PitonError::DegenerateFit {
            points: points.len(),
            reason: "need at least two points to fit",
        });
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() <= 1e-12 {
        return Err(PitonError::DegenerateFit {
            points: points.len(),
            reason: "degenerate x values",
        });
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    Ok((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epi_formula_matches_hand_computation() {
        // 25 cores, 1.194 W over idle at 500.05 MHz, L=3:
        // (1/25) x 1.194/500.05e6 x 3 = 286.5 pJ (the ldx anchor).
        let e = epi_pj(
            Watts(2.0153 + 1.194),
            Watts(2.0153),
            Hertz::from_mhz(500.05),
            3,
        );
        assert!((e - 286.5).abs() < 1.0, "epi {e}");
    }

    #[test]
    fn epi_error_propagates_in_quadrature() {
        let we = epi_with_error(
            Watts(3.0),
            Watts(0.003),
            Watts(2.0),
            Watts(0.004),
            Hertz::from_mhz(500.0),
            10,
        );
        let expected_err =
            (0.003f64.powi(2) + 0.004f64.powi(2)).sqrt() / 500.0e6 / 25.0 * 10.0 * 1e12;
        assert!((we.error - expected_err).abs() < 1e-9);
        assert!(we.value > 0.0);
    }

    #[test]
    fn epf_formula_matches_hand_computation() {
        // 11.16 pJ/flit at 4 hops = 44.64 pJ -> ΔP = 44.64 x 7/47 x f.
        let f = Hertz::from_mhz(500.05);
        let dp = 44.64e-12 * 7.0 / 47.0 * f.0;
        let e = epf_pj(Watts(2.0 + dp), Watts(2.0), f);
        assert!((e - 44.64).abs() < 0.01, "epf {e}");
    }

    #[test]
    fn energy_per_op_reduces_to_epi_under_concurrency() {
        // 25 concurrent ops of latency L: n = 25 x t x f / L.
        let f = Hertz::from_mhz(500.0);
        let window = Seconds(1.0);
        let latency = 3u64;
        let n = (25.0 * window.0 * f.0 / latency as f64) as u64;
        let p_delta = Watts(1.194);
        let per_op = energy_per_op_nj(Watts(2.0) + p_delta, Watts(2.0), window, n);
        let epi = epi_pj(Watts(2.0) + p_delta, Watts(2.0), f, latency) / 1e3;
        assert!((per_op - epi).abs() / epi < 1e-6);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let pts: Vec<(f64, f64)> = (0..9)
            .map(|x| (x as f64, 3.58 + 11.16 * x as f64))
            .collect();
        let (a, b) = linear_fit(&pts).unwrap();
        assert!((a - 3.58).abs() < 1e-9);
        assert!((b - 11.16).abs() < 1e-9);
    }

    #[test]
    fn fit_reports_degenerate_inputs_instead_of_panicking() {
        assert_eq!(
            linear_fit(&[(1.0, 1.0)]).unwrap_err(),
            PitonError::DegenerateFit {
                points: 1,
                reason: "need at least two points to fit"
            }
        );
        // Two points at the same x: zero x-variance.
        let e = linear_fit(&[(2.0, 1.0), (2.0, 5.0)]).unwrap_err();
        assert!(
            matches!(
                e,
                PitonError::DegenerateFit {
                    points: 2,
                    reason: "degenerate x values"
                }
            ),
            "{e}"
        );
    }

    #[test]
    fn with_error_displays() {
        let w = WithError::new(286.46, 0.89);
        assert_eq!(format!("{w:.2}"), "286.46±0.89");
    }
}
