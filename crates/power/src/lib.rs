//! Power, energy, leakage, thermal and voltage/frequency models for the
//! Piton manycore, calibrated to the HPCA'18 silicon measurements.
//!
//! The crate layers four models:
//!
//! * [`tech`] — 32 nm SOI scaling laws (V² dynamic energy, alpha-power
//!   delay, exponential leakage-versus-temperature);
//! * [`calibration`] — per-event energy coefficients fitted to the
//!   paper's published numbers (Table V idle/static, Figure 11 EPI,
//!   Table VII memory energy, Figure 12 NoC trendlines);
//! * [`model`] — [`model::PowerModel`], which converts a simulator
//!   activity window into the three rail powers (VDD/VCS/VIO) at any
//!   operating point, per die process corner;
//! * [`thermal`] and [`vf`] — the package/cooling RC network and the
//!   maximum-frequency solver that together reproduce Figure 9's
//!   thermal roll-off and §IV-J's power/temperature feedback.
//!
//! # Examples
//!
//! ```
//! use piton_power::model::{OperatingPoint, PowerModel};
//! use piton_sim::events::ActivityCounters;
//!
//! let model = PowerModel::nominal();
//! let mut window = ActivityCounters::default();
//! window.cycles = 1_000_000;
//! // Idle chips self-heat to a ~35 °C junction (Table V conditions).
//! let op = OperatingPoint::table_iii().with_junction(35.3);
//! let idle = model.power(&window, op);
//! assert!(idle.total().as_mw() > 1_900.0); // Table V: ~2015 mW
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod governor;
pub mod model;
pub mod tech;
pub mod thermal;
pub mod vf;

pub use calibration::Calibration;
pub use governor::{Governor, GovernorConfig, GovernorStats, OperatingChoice};
pub use model::{ChipCorner, OperatingPoint, PowerModel, RailPower};
pub use tech::TechModel;
pub use thermal::{Cooling, ThermalModel, ThermalStep};
pub use vf::{VfPoint, VfSolver};
