//! Technology-level scaling laws for the 32 nm SOI process.
//!
//! Two relations underpin the whole power model:
//!
//! * **Dynamic energy** scales with the square of the supply voltage
//!   (`E = α·C·V²`): every calibrated per-event energy is referenced to
//!   the nominal supplies of Table III and scaled by `(V/V_nom)²` at
//!   other operating points.
//! * **Gate delay** follows the alpha-power law, so the maximum
//!   operating frequency rises with voltage as
//!   `f_max ∝ (V − V_t)^α / V`. The paper's Figure 9 (maximum frequency
//!   at which Linux boots versus VDD) is the observable of this law,
//!   moderated by IR drop and thermal limits.
//!
//! # Examples
//!
//! ```
//! use piton_arch::units::Volts;
//! use piton_power::tech::TechModel;
//!
//! let tech = TechModel::ibm32soi();
//! // Dynamic energy at 0.8 V is (0.8)² = 0.64 of nominal.
//! let s = tech.dynamic_scale(Volts(0.8), Volts(1.0));
//! assert!((s - 0.64).abs() < 1e-12);
//! ```

use piton_arch::units::{Hertz, Volts};
use serde::{Deserialize, Serialize};

/// Process-level constants of the IBM 32 nm SOI technology model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechModel {
    /// Effective threshold voltage for the alpha-power delay law.
    pub v_threshold: Volts,
    /// Velocity-saturation exponent α of the alpha-power law.
    pub alpha: f64,
    /// Frequency the delay law is calibrated to at `v_calibration`.
    pub f_calibration: Hertz,
    /// Supply voltage of the calibration point (at the *die*, after IR
    /// drop).
    pub v_calibration: Volts,
    /// Leakage voltage exponent (`P_leak ∝ V^γ`).
    pub leakage_gamma: f64,
    /// Leakage temperature e-folding constant in kelvin
    /// (`P_leak ∝ exp((T − T₀)/T_k)`).
    pub leakage_t_k: f64,
}

impl TechModel {
    /// The calibrated Piton process model.
    ///
    /// `v_threshold` and `alpha` are fitted to the Figure 9 frequency
    /// ratios (f(1.0 V)/f(0.8 V) ≈ 1.8, f(1.15 V)/f(1.0 V) ≈ 1.2);
    /// the calibration point is Chip #2's 514.33 MHz at 1.0 V.
    #[must_use]
    pub fn ibm32soi() -> Self {
        Self {
            v_threshold: Volts(0.60),
            alpha: 1.2,
            f_calibration: Hertz::from_mhz(514.33),
            v_calibration: Volts(1.0),
            leakage_gamma: 4.5,
            leakage_t_k: 35.0,
        }
    }

    /// Dynamic-energy scale factor for operating at `v` relative to the
    /// nominal `v_nom`: `(v / v_nom)²`.
    #[must_use]
    pub fn dynamic_scale(&self, v: Volts, v_nom: Volts) -> f64 {
        let r = v.0 / v_nom.0;
        r * r
    }

    /// Leakage-power scale for voltage `v` relative to `v_nom`:
    /// `(v / v_nom)^γ`.
    #[must_use]
    pub fn leakage_voltage_scale(&self, v: Volts, v_nom: Volts) -> f64 {
        (v.0 / v_nom.0).powf(self.leakage_gamma)
    }

    /// Leakage-power scale for junction temperature `t_c` (°C) relative
    /// to the calibration temperature `t0_c`.
    #[must_use]
    pub fn leakage_temperature_scale(&self, t_c: f64, t0_c: f64) -> f64 {
        ((t_c - t0_c) / self.leakage_t_k).exp()
    }

    /// Alpha-power-law maximum frequency at die voltage `v` (before
    /// quantization and thermal limiting). Returns zero at or below
    /// threshold.
    #[must_use]
    pub fn fmax(&self, v: Volts) -> Hertz {
        if v.0 <= self.v_threshold.0 {
            return Hertz(0.0);
        }
        let drive = |vv: f64| (vv - self.v_threshold.0).powf(self.alpha) / vv;
        let k = self.f_calibration.0 / drive(self.v_calibration.0);
        Hertz(k * drive(v.0))
    }
}

impl Default for TechModel {
    fn default() -> Self {
        Self::ibm32soi()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_energy_is_quadratic() {
        let t = TechModel::ibm32soi();
        assert!((t.dynamic_scale(Volts(1.2), Volts(1.0)) - 1.44).abs() < 1e-12);
        assert!((t.dynamic_scale(Volts(1.0), Volts(1.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fmax_matches_figure9_ratios() {
        let t = TechModel::ibm32soi();
        let f08 = t.fmax(Volts(0.8)).as_mhz();
        let f10 = t.fmax(Volts(1.0)).as_mhz();
        let f115 = t.fmax(Volts(1.15)).as_mhz();
        // Calibration point.
        assert!((f10 - 514.33).abs() < 0.01);
        // Paper: 514.33 / 285.74 ≈ 1.80.
        let low_ratio = f10 / f08;
        assert!((1.6..=2.0).contains(&low_ratio), "ratio {low_ratio}");
        // Paper: 621.49 / 514.33 ≈ 1.21.
        let high_ratio = f115 / f10;
        assert!((1.1..=1.35).contains(&high_ratio), "ratio {high_ratio}");
    }

    #[test]
    fn fmax_is_zero_below_threshold() {
        let t = TechModel::ibm32soi();
        assert_eq!(t.fmax(Volts(0.5)), Hertz(0.0));
        assert_eq!(t.fmax(Volts(0.6)), Hertz(0.0));
    }

    #[test]
    fn fmax_is_monotonic_in_voltage() {
        let t = TechModel::ibm32soi();
        let mut prev = 0.0;
        for mv in (650..1300).step_by(25) {
            let f = t.fmax(Volts(f64::from(mv) / 1000.0)).0;
            assert!(f > prev, "non-monotonic at {mv} mV");
            prev = f;
        }
    }

    #[test]
    fn leakage_scales() {
        let t = TechModel::ibm32soi();
        // One e-folding per 35 °C.
        let s = t.leakage_temperature_scale(60.0, 25.0);
        assert!((s - std::f64::consts::E).abs() < 1e-9);
        // Cooler than calibration shrinks leakage.
        assert!(t.leakage_temperature_scale(15.0, 25.0) < 1.0);
        // Higher voltage leaks more than linearly.
        assert!(t.leakage_voltage_scale(Volts(1.2), Volts(1.0)) > 1.2);
    }
}
