//! Calibrated per-event energies.
//!
//! The power model multiplies simulator activity counters by the
//! coefficients in [`Calibration`]. All values are picojoules at the
//! nominal supplies of Table III (1.0 V VDD / 1.05 V VCS) and are scaled
//! quadratically with voltage at other operating points.
//!
//! ## Where the numbers come from
//!
//! Piton's silicon is the ground truth; the coefficients below are fitted
//! so that the *experiments of this repository reproduce the paper's
//! published measurements*:
//!
//! * the chip-wide idle clock energy reproduces Table V
//!   (idle − static = 1626 mW at 500.05 MHz ⇒ ≈ 3252 pJ/cycle);
//! * per-instruction base + operand-value coefficients reproduce the
//!   Figure 11 EPI bars, including the 3 × `add` ≈ 1 × `ldx` insight
//!   (`ldx` L1 hit anchored at 286.46 pJ, Table VII);
//! * cache and off-chip coefficients reproduce the Table VII
//!   memory-energy ladder (1.54 nJ local L2, ≈ 309 nJ L2 miss);
//! * NoC coefficients reproduce the Figure 12 trendlines
//!   (≈ 3.58 pJ/hop NSW fixed cost, ≈ 0.205 pJ per switched bit,
//!   a small coupling adder for FSWA).

use piton_arch::error::PitonError;
use piton_arch::isa::Opcode;
use serde::{Deserialize, Serialize};

/// Per-opcode energy: a fixed base plus a term proportional to the
/// operand-value activity factor in `[0, 1]`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstrEnergy {
    /// Energy at all-zero operands, in pJ.
    pub base_pj: f64,
    /// Additional energy at all-ones operands, in pJ (scaled by the
    /// activity factor in between).
    pub value_pj: f64,
}

impl InstrEnergy {
    /// Energy for a given operand-activity factor.
    #[must_use]
    pub fn at(self, activity: f64) -> f64 {
        self.base_pj + self.value_pj * activity
    }
}

/// The full coefficient table of the power model. All energies in pJ at
/// nominal voltage; all rails referenced to Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Per-opcode issue energies (indexed by [`Opcode::index`]); VDD.
    pub instr: [InstrEnergy; Opcode::COUNT],

    /// Chip-wide clock-tree + always-on energy per cycle, VDD share.
    pub clock_vdd_pj_per_cycle: f64,
    /// Chip-wide clock/array-precharge energy per cycle, VCS share.
    pub clock_vcs_pj_per_cycle: f64,
    /// Extra energy per active core per cycle (issue logic, thread
    /// scheduler), VDD.
    pub active_core_pj_per_cycle: f64,
    /// Energy per stalled thread-cycle (pipeline holding state), VDD.
    pub stall_pj_per_cycle: f64,
    /// Extra energy per core-cycle with two runnable threads resident —
    /// the hardware thread-switching overhead §IV-H2 finds "comparable
    /// to the active power of an extra core", VDD.
    pub dual_thread_pj_per_cycle: f64,
    /// Front-end energy saved per Execution-Drafting hit (shared
    /// fetch/decode when the two threads issue identical instructions
    /// from the same PC, §II), VDD.
    pub execd_saving_pj: f64,

    /// L1I fetch, VCS.
    pub l1i_pj: f64,
    /// L1D read, VCS.
    pub l1d_read_pj: f64,
    /// L1D write, VCS.
    pub l1d_write_pj: f64,
    /// L1.5 read, VCS.
    pub l15_read_pj: f64,
    /// L1.5 write, VCS.
    pub l15_write_pj: f64,
    /// L1.5 miss handling (MSHR, replay queues, fill), VDD.
    pub l15_miss_pj: f64,
    /// L1.5 dirty write-back, VCS.
    pub l15_writeback_pj: f64,
    /// L2 slice read (tag + data), VCS.
    pub l2_read_pj: f64,
    /// L2 slice write, VCS.
    pub l2_write_pj: f64,
    /// Directory-cache lookup/update, VCS.
    pub dir_pj: f64,
    /// Invalidation delivery at an L1.5, VDD.
    pub invalidation_pj: f64,

    /// Load roll-back (flush + replay), VDD.
    pub load_rollback_pj: f64,
    /// Store roll-back, VDD.
    pub store_rollback_pj: f64,
    /// Store-buffer enqueue, VDD.
    pub sb_enqueue_pj: f64,

    /// Router + link traversal per flit per hop with no bit switching
    /// (the Figure 12 NSW trendline), VDD.
    pub noc_flit_hop_pj: f64,
    /// Energy per switched NoC data bit (Figure 12 FSW slope), VDD.
    pub noc_bit_switch_pj: f64,
    /// Extra energy per coupling-aggressor transition (FSWA − FSW), VDD.
    pub noc_coupling_pj: f64,
    /// Head-flit route computation, VDD.
    pub noc_route_pj: f64,

    /// Chip-side energy of one off-chip memory request (serdes, buffer
    /// FFs, request/response handling — excludes DRAM device energy per
    /// the paper's note), VDD.
    pub offchip_request_pj: f64,
    /// Chip-bridge flit transfer, VDD share.
    pub bridge_flit_vdd_pj: f64,
    /// Chip-bridge flit pad driving, VIO share.
    pub bridge_flit_vio_pj: f64,
    /// I/O transaction (SD/UART), VIO.
    pub io_transaction_pj: f64,

    /// Static (leakage) power at nominal voltage and the calibration
    /// temperature, VDD share, in mW.
    pub static_vdd_mw: f64,
    /// Static power, VCS share, in mW.
    pub static_vcs_mw: f64,
    /// Static + quiescent VIO power in mW.
    pub static_vio_mw: f64,
    /// Junction temperature (°C) at which the static split was measured.
    pub static_calibration_temp_c: f64,
}

impl Calibration {
    /// The coefficient set fitted to the paper (see module docs).
    #[must_use]
    pub fn piton_hpca18() -> Self {
        let mut instr = [InstrEnergy::default(); Opcode::COUNT];
        let mut set = |op: Opcode, base: f64, value: f64| {
            instr[op.index()] = InstrEnergy {
                base_pj: base,
                value_pj: value,
            };
        };
        set(Opcode::Nop, 25.0, 0.0);
        set(Opcode::And, 45.0, 60.0);
        set(Opcode::Add, 50.0, 60.0);
        set(Opcode::Sub, 50.0, 60.0);
        set(Opcode::Movi, 35.0, 0.0);
        set(Opcode::Mulx, 280.0, 250.0);
        set(Opcode::Sdivx, 620.0, 370.0);
        set(Opcode::Faddd, 405.0, 240.0);
        set(Opcode::Fmuld, 455.0, 260.0);
        set(Opcode::Fdivd, 705.0, 380.0);
        set(Opcode::Fadds, 325.0, 200.0);
        set(Opcode::Fmuls, 365.0, 220.0);
        set(Opcode::Fdivs, 465.0, 260.0);
        set(Opcode::Ldx, 171.5, 80.0);
        set(Opcode::Stx, 135.0, 80.0);
        set(Opcode::Casx, 300.0, 80.0);
        set(Opcode::Beq, 135.0, 60.0);
        set(Opcode::Bne, 125.0, 60.0);
        set(Opcode::Membar, 30.0, 0.0);
        set(Opcode::Halt, 10.0, 0.0);

        Self {
            instr,
            // Fitted so the assembled system (including leakage
            // self-heating to a ~35 °C idle junction) measures the
            // Table V idle power of 2015.3 mW at 500.05 MHz.
            clock_vdd_pj_per_cycle: 2483.0,
            clock_vcs_pj_per_cycle: 500.0,
            active_core_pj_per_cycle: 0.8,
            stall_pj_per_cycle: 0.3,
            dual_thread_pj_per_cycle: 60.0,
            execd_saving_pj: 30.0,

            l1i_pj: 15.0,
            l1d_read_pj: 60.0,
            l1d_write_pj: 70.0,
            l15_read_pj: 80.0,
            l15_write_pj: 90.0,
            l15_miss_pj: 600.0,
            l15_writeback_pj: 100.0,
            l2_read_pj: 350.0,
            l2_write_pj: 380.0,
            dir_pj: 40.0,
            invalidation_pj: 20.0,

            load_rollback_pj: 150.0,
            store_rollback_pj: 150.0,
            sb_enqueue_pj: 25.0,

            noc_flit_hop_pj: 3.58,
            noc_bit_switch_pj: 0.2047,
            noc_coupling_pj: 0.005,
            noc_route_pj: 1.0,

            offchip_request_pj: 215_000.0,
            bridge_flit_vdd_pj: 6_000.0,
            bridge_flit_vio_pj: 5_000.0,
            io_transaction_pj: 50_000.0,

            static_vdd_mw: 220.0,
            static_vcs_mw: 169.3,
            static_vio_mw: 100.0,
            static_calibration_temp_c: 25.0,
        }
    }

    /// Model EPI of one instruction class at a given operand activity,
    /// including the instruction fetch — the quantity the Figure 11
    /// experiment should report for non-memory instructions.
    #[must_use]
    pub fn model_epi_pj(&self, op: Opcode, activity: f64) -> f64 {
        self.instr[op.index()].at(activity) + self.l1i_pj
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Self::piton_hpca18()
    }
}

/// Ordinary least squares over arbitrary feature rows: finds `x`
/// minimising `‖A·x − b‖²` via column-scaled normal equations and
/// Gaussian elimination with partial pivoting.
///
/// Columns that are identically zero across every row carry no
/// information; they are pruned before the solve and come back with a
/// zero coefficient. Rank-deficient inputs — fewer rows than active
/// columns, or a pivot collapse from linearly dependent columns — fail
/// with [`PitonError::DegenerateFit`], mirroring the contract of
/// [`crate::vf`]'s trendline fits.
///
/// # Errors
///
/// [`PitonError::DegenerateFit`] as above; the `points` field carries
/// the row count that proved insufficient.
pub fn least_squares(rows: &[Vec<f64>], targets: &[f64]) -> Result<Vec<f64>, PitonError> {
    least_squares_damped(rows, targets, 0.0)
}

/// [`least_squares`] with Tikhonov damping `λ · trace(AᵀA)/n` added to
/// the normal-equation diagonal.
///
/// A tiny relative `lambda` (e.g. `1e-9`) keeps the solve well-posed
/// when physical counters are collinear over the probe battery (a store
/// and its buffer enqueue, say): the minimiser splits the shared energy
/// across the aliased columns, which leaves every in-span prediction
/// unchanged. `lambda = 0.0` is the undamped solve, where true rank
/// deficiency is reported instead of regularised away.
///
/// # Errors
///
/// [`PitonError::DegenerateFit`] on rank-deficient inputs (see
/// [`least_squares`]).
// In-place elimination reads one row of `g` while mutating another, so
// the index loops cannot become iterators without `split_at_mut` noise.
#[allow(clippy::needless_range_loop)]
pub fn least_squares_damped(
    rows: &[Vec<f64>],
    targets: &[f64],
    lambda: f64,
) -> Result<Vec<f64>, PitonError> {
    assert_eq!(rows.len(), targets.len(), "one target per feature row");
    let width = rows.first().map_or(0, Vec::len);
    assert!(rows.iter().all(|r| r.len() == width), "ragged feature rows");
    // Prune columns with no support: they are unobservable and would
    // otherwise make every fit degenerate.
    let active: Vec<usize> = (0..width)
        .filter(|&j| rows.iter().any(|r| r[j] != 0.0))
        .collect();
    let n = active.len();
    if n == 0 {
        return Ok(vec![0.0; width]);
    }
    if rows.len() < n {
        return Err(PitonError::DegenerateFit {
            points: rows.len(),
            reason: "fewer rows than active columns",
        });
    }
    // Scale each active column to unit infinity-norm so the pivot
    // threshold is meaningful across wildly different counter ranges.
    let scale: Vec<f64> = active
        .iter()
        .map(|&j| {
            rows.iter()
                .map(|r| r[j].abs())
                .fold(0.0_f64, f64::max)
                .recip()
        })
        .collect();
    // Normal equations on the scaled system: G = AᵀA, rhs = Aᵀb.
    let mut g = vec![vec![0.0_f64; n]; n];
    let mut rhs = vec![0.0_f64; n];
    for (row, &b) in rows.iter().zip(targets) {
        for (p, &jp) in active.iter().enumerate() {
            let ap = row[jp] * scale[p];
            rhs[p] += ap * b;
            for (q, &jq) in active.iter().enumerate().skip(p) {
                g[p][q] += ap * row[jq] * scale[q];
            }
        }
    }
    for p in 0..n {
        for q in 0..p {
            g[p][q] = g[q][p];
        }
    }
    if lambda > 0.0 {
        let damp = lambda * (0..n).map(|p| g[p][p]).sum::<f64>() / n as f64;
        for (p, row) in g.iter_mut().enumerate() {
            row[p] += damp;
        }
    }
    // Gaussian elimination with partial pivoting.
    let mut x = rhs;
    for col in 0..n {
        let (pivot_row, pivot) = (col..n)
            .map(|r| (r, g[r][col].abs()))
            .fold((col, -1.0), |acc, c| if c.1 > acc.1 { c } else { acc });
        if pivot < 1e-12 {
            return Err(PitonError::DegenerateFit {
                points: rows.len(),
                reason: "linearly dependent feature columns",
            });
        }
        g.swap(col, pivot_row);
        x.swap(col, pivot_row);
        for r in col + 1..n {
            let f = g[r][col] / g[col][col];
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                g[r][c] -= f * g[col][c];
            }
            x[r] -= f * x[col];
        }
    }
    for col in (0..n).rev() {
        for r in col + 1..n {
            x[col] -= g[col][r] * x[r];
        }
        x[col] /= g[col][col];
    }
    // Undo the column scaling and scatter back over pruned columns.
    let mut out = vec![0.0_f64; width];
    for (p, &j) in active.iter().enumerate() {
        out[j] = x[p] * scale[p];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_clock_energy_is_consistent_with_table_v() {
        // Table V: idle − static = 1626 mW at 500.05 MHz, i.e. up to
        // 3252 pJ/cycle *including* the leakage growth from idle
        // self-heating. The pure clock energy is therefore below that
        // bound but above ~85% of it.
        let c = Calibration::piton_hpca18();
        let per_cycle = c.clock_vdd_pj_per_cycle + c.clock_vcs_pj_per_cycle;
        assert!(per_cycle < 3252.0);
        assert!(per_cycle > 0.85 * 3252.0);
    }

    #[test]
    fn static_split_matches_table_v() {
        let c = Calibration::piton_hpca18();
        assert!((c.static_vdd_mw + c.static_vcs_mw - 389.3).abs() < 0.1);
    }

    #[test]
    fn three_adds_equal_one_l1_load() {
        // §IV-E: "three add instructions can be executed with the same
        // amount of energy and latency as a ldx that hits in the L1".
        let c = Calibration::piton_hpca18();
        let add = c.model_epi_pj(Opcode::Add, 0.5);
        let ldx = c.model_epi_pj(Opcode::Ldx, 0.5) + c.l1d_read_pj;
        let ratio = ldx / add;
        assert!((2.5..=3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn operand_values_change_epi_substantially() {
        let c = Calibration::piton_hpca18();
        for op in [Opcode::Add, Opcode::Mulx, Opcode::Sdivx, Opcode::Faddd] {
            let min = c.model_epi_pj(op, 0.0);
            let max = c.model_epi_pj(op, 1.0);
            assert!(max > 1.2 * min, "{op}: {min} vs {max}");
        }
        // nop has no operands.
        assert_eq!(
            c.model_epi_pj(Opcode::Nop, 0.0),
            c.model_epi_pj(Opcode::Nop, 1.0)
        );
    }

    #[test]
    fn longest_latency_instructions_cost_most() {
        let c = Calibration::piton_hpca18();
        let e = |op| c.model_epi_pj(op, 0.5);
        assert!(e(Opcode::Sdivx) > e(Opcode::Mulx));
        assert!(e(Opcode::Mulx) > e(Opcode::Add));
        assert!(e(Opcode::Fdivd) > e(Opcode::Faddd));
        assert!(e(Opcode::Fdivd) > e(Opcode::Fdivs));
    }

    #[test]
    fn noc_trendline_coefficients_match_figure_12() {
        let c = Calibration::piton_hpca18();
        // NSW per flit-hop.
        assert!((c.noc_flit_hop_pj - 3.58).abs() < 0.01);
        // HSW: 32 switched bits.
        let hsw = c.noc_flit_hop_pj + 32.0 * c.noc_bit_switch_pj;
        assert!((9.0..=12.0).contains(&hsw), "HSW {hsw}");
        // FSW: 64 switched bits ≈ 16.68.
        let fsw = c.noc_flit_hop_pj + 64.0 * c.noc_bit_switch_pj;
        assert!((fsw - 16.68).abs() < 0.2, "FSW {fsw}");
        // FSWA: slightly above FSW.
        let fswa = fsw + 63.0 * c.noc_coupling_pj;
        assert!(fswa > fsw && fswa < fsw + 1.0);
    }

    #[test]
    fn least_squares_recovers_planted_coefficients() {
        // y = 2·a + 0.5·b − 3·c over a deterministic grid.
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for i in 0..12_u32 {
            let a = f64::from(i % 4);
            let b = f64::from(i / 4) * 10.0;
            let c = f64::from(i % 3) * 0.1;
            rows.push(vec![a, b, c]);
            targets.push(2.0 * a + 0.5 * b - 3.0 * c);
        }
        let x = least_squares(&rows, &targets).expect("well-posed fit");
        assert!((x[0] - 2.0).abs() < 1e-9, "{x:?}");
        assert!((x[1] - 0.5).abs() < 1e-9, "{x:?}");
        assert!((x[2] + 3.0).abs() < 1e-9, "{x:?}");
    }

    #[test]
    fn least_squares_prunes_dead_columns() {
        let rows = vec![
            vec![1.0, 0.0, 2.0],
            vec![2.0, 0.0, 1.0],
            vec![3.0, 0.0, 5.0],
        ];
        let targets = vec![7.0, 8.0, 16.0];
        let x = least_squares(&rows, &targets).expect("dead column is pruned");
        assert_eq!(x[1], 0.0);
        assert_eq!(x.len(), 3);
        // All-zero matrix: nothing to fit, all-zero coefficients.
        let zero = least_squares(&[vec![0.0, 0.0]], &[0.0]).unwrap();
        assert_eq!(zero, vec![0.0, 0.0]);
    }

    #[test]
    fn least_squares_reports_rank_deficiency() {
        // Two active columns, one row.
        let under = least_squares(&[vec![1.0, 2.0]], &[3.0]);
        assert!(matches!(
            under,
            Err(PitonError::DegenerateFit { points: 1, .. })
        ));
        // Exactly collinear columns collapse a pivot…
        let rows = vec![vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]];
        let collinear = least_squares(&rows, &[1.0, 2.0, 3.0]);
        assert!(matches!(collinear, Err(PitonError::DegenerateFit { .. })));
        // …while a damped solve stays well-posed and in-span accurate.
        let x = least_squares_damped(&rows, &[1.0, 2.0, 3.0], 1e-9).unwrap();
        let predict = |r: &[f64]| r[0] * x[0] + r[1] * x[1];
        for (r, want) in rows.iter().zip([1.0, 2.0, 3.0]) {
            assert!((predict(r) - want).abs() < 1e-6);
        }
    }
}
