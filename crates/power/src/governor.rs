//! Closed-loop DVFS + thermal governor.
//!
//! The paper's Figure 9 annotations ("thermally limited at 1.2 V") and
//! the Figure 18 hysteresis study are the visible traces of a feedback
//! loop: frequency capability rolls off as the die heats, leakage grows
//! with temperature, and the operating point the chip can actually hold
//! is the fixed point of that loop. [`Governor`] closes it explicitly —
//! a deterministic, fixed-timestep controller in the THEAS style
//! (power management as a feedback controller over live activity):
//! per control step it reads the simulated junction temperature and the
//! last activity window, consults the V/F capability curve
//! ([`crate::vf::VfSolver::capability`]), and picks the next operating
//! point from a [`GovernorConfig`] policy.
//!
//! The controller's state is a PLL **ladder index** (integer), not a
//! raw frequency — transitions are exact integer arithmetic, so the
//! production controller and the step-by-step [`Reference`] controller
//! (compiled in like `Machine::run_naive`, for the determinism
//! property test) can be compared for equality, bit for bit.
//!
//! Invariants the conformance suite pins (`tests/governor_properties.rs`):
//!
//! 1. **Capability bound** — the chosen frequency never exceeds the
//!    quantized V/F capability at the current junction temperature.
//! 2. **Monotone** — from identical controller state, a hotter die
//!    never yields a higher chosen frequency.
//! 3. **Fixed point** — under constant load the closed loop converges
//!    to one operating point and stays there.
//! 4. **Determinism** — identical to the reference controller, and
//!    byte-identical across sweep-worker counts.

use piton_arch::units::{Hertz, Volts};
use piton_sim::events::ActivityCounters;
use serde::{Deserialize, Serialize};

use crate::model::OperatingPoint;
use crate::vf::{PllLadder, VfSolver, T_JUNCTION_LIMIT_C};

/// Hysteresis band below [`T_JUNCTION_LIMIT_C`]: the throttle policy
/// only *raises* frequency while the junction sits at least this far
/// under the boot limit, so one ladder step's worth of extra heat
/// cannot ping-pong the controller across the limit.
pub const THROTTLE_HEADROOM_C: f64 = 4.0;

/// Relative improvement the energy-frontier policy demands before
/// leaving its current operating point (switching hysteresis — without
/// it, two grid points with near-equal energy could trade places every
/// control step as the die temperature breathes).
pub const FRONTIER_SWITCH_MARGIN: f64 = 0.02;

/// Governor policy knob, carried on `Fidelity`. `Off` (the default)
/// keeps every historical code path byte-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum GovernorConfig {
    /// No governor: open-loop operation, exactly as before this module
    /// existed.
    #[default]
    Off,
    /// Paper-faithful Figure 9 behaviour: hold the highest frequency at
    /// which the junction stays bootable, walking one PLL step at a
    /// time with a hysteresis band (the chip "throttles on boot"). The
    /// boot PLL setpoint is a *ceiling*: the policy throttles below it
    /// and recovers at most back to it, never past it.
    ThrottleOnBoot,
    /// Jump straight to the capability curve every step (finish fast,
    /// then idle), backing off only when the junction crosses the boot
    /// limit.
    RaceToHalt,
    /// Search the VDD grid for the feasible operating point with the
    /// lowest energy per cycle of the *current* workload — no paper
    /// analogue; the frontier Figure 9 never measured.
    EnergyFrontier,
}

impl GovernorConfig {
    /// Is the governor disabled?
    #[must_use]
    pub fn is_off(self) -> bool {
        self == GovernorConfig::Off
    }

    /// Stable CLI/spec name (`--governor=NAME`).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            GovernorConfig::Off => "off",
            GovernorConfig::ThrottleOnBoot => "throttle-on-boot",
            GovernorConfig::RaceToHalt => "race-to-halt",
            GovernorConfig::EnergyFrontier => "energy-frontier",
        }
    }

    /// Parses a [`Self::label`] name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim() {
            "off" => Ok(GovernorConfig::Off),
            "throttle-on-boot" => Ok(GovernorConfig::ThrottleOnBoot),
            "race-to-halt" => Ok(GovernorConfig::RaceToHalt),
            "energy-frontier" => Ok(GovernorConfig::EnergyFrontier),
            other => Err(format!(
                "unknown governor policy '{other}' \
                 (expected off, throttle-on-boot, race-to-halt or energy-frontier)"
            )),
        }
    }
}

impl std::fmt::Display for GovernorConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One control decision: the operating point to hold for the next
/// control step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingChoice {
    /// Core rail setpoint (VCS tracks at +0.05 V).
    pub vdd: Volts,
    /// Chosen (ladder-quantized) core clock.
    pub freq: Hertz,
    /// Whether this step was limited by temperature rather than by the
    /// capability curve — the junction was at or above the boot limit.
    pub thermally_limited: bool,
}

/// Lifetime accounting of one governor instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GovernorStats {
    /// Control steps taken.
    pub steps: u64,
    /// Steps whose decision changed the operating point.
    pub transitions: u64,
    /// Steps decided at or above the thermal limit (throttle residency).
    pub throttled_steps: u64,
}

/// The VDD grid the energy-frontier policy searches: the Figure 9
/// sweep's nine points, 0.8 V to 1.2 V in 50 mV steps.
fn vdd_grid() -> impl Iterator<Item = Volts> {
    (0..=8).map(|i| Volts(0.8 + 0.05 * f64::from(i)))
}

/// Controller state shared by the production and reference
/// implementations: everything a decision depends on besides the
/// inputs of the step itself.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ControlState {
    vdd: Volts,
    /// Current PLL ladder index (integer operating point).
    index: u32,
}

/// The closed-loop governor. Owns the capability model; the thermal
/// state stays with the system driving the loop, which feeds the
/// junction temperature in each step.
#[derive(Debug, Clone)]
pub struct Governor {
    policy: GovernorConfig,
    solver: VfSolver,
    state: ControlState,
    /// The boot-programmed ladder index: [`GovernorConfig::ThrottleOnBoot`]
    /// never climbs above it (the PLL setpoint is the chip's maximum;
    /// the governor only throttles below it and recovers back).
    ceiling: u32,
    stats: GovernorStats,
}

impl Governor {
    /// A governor running `policy` over the capability model `solver`,
    /// starting at rail `vdd` and the highest ladder step not exceeding
    /// `start_freq`.
    ///
    /// # Panics
    ///
    /// Panics if `policy` is [`GovernorConfig::Off`] (an off governor
    /// must never be constructed — the caller gates on `is_off`), or if
    /// `start_freq` is below the PLL ladder.
    #[must_use]
    pub fn new(policy: GovernorConfig, solver: VfSolver, vdd: Volts, start_freq: Hertz) -> Self {
        assert!(!policy.is_off(), "cannot construct an Off governor");
        let index = solver.ladder().index_of(start_freq);
        Self {
            policy,
            solver,
            state: ControlState { vdd, index },
            ceiling: index,
            stats: GovernorStats::default(),
        }
    }

    /// The policy in force.
    #[must_use]
    pub fn policy(&self) -> GovernorConfig {
        self.policy
    }

    /// Current rail setpoint.
    #[must_use]
    pub fn vdd(&self) -> Volts {
        self.state.vdd
    }

    /// Current chosen frequency (a PLL ladder point).
    #[must_use]
    pub fn frequency(&self) -> Hertz {
        self.solver.ladder().frequency(self.state.index)
    }

    /// The capability model.
    #[must_use]
    pub fn solver(&self) -> &VfSolver {
        &self.solver
    }

    /// Lifetime statistics.
    #[must_use]
    pub fn stats(&self) -> GovernorStats {
        self.stats
    }

    /// One fixed-timestep control decision from the current junction
    /// temperature and the last activity window.
    pub fn step(&mut self, t_junction_c: f64, window: &ActivityCounters) -> OperatingChoice {
        self.step_sagged(t_junction_c, window, 1.0)
    }

    /// [`Self::step`] under a supply brownout: the rails deliver `sag`
    /// (≤ 1.0) of their setpoints, so the capability curve is evaluated
    /// at the sagged voltage — a mid-run brownout *lowers* what the
    /// governor may choose.
    pub fn step_sagged(
        &mut self,
        t_junction_c: f64,
        window: &ActivityCounters,
        sag: f64,
    ) -> OperatingChoice {
        let (next, limited) = decide(
            self.policy,
            &self.solver,
            self.state,
            self.ceiling,
            t_junction_c,
            window,
            sag,
        );
        self.stats.steps += 1;
        self.stats.throttled_steps += u64::from(limited);
        if next != self.state {
            self.stats.transitions += 1;
        }
        self.state = next;
        OperatingChoice {
            vdd: self.state.vdd,
            freq: self.frequency(),
            thermally_limited: limited,
        }
    }
}

/// Ladder index of the quantized capability at `(vdd × sag, t_j)`,
/// computed via the closed-form [`PllLadder::index_of`].
fn capability_index(solver: &VfSolver, ladder: PllLadder, vdd: Volts, t_j: f64, sag: f64) -> u32 {
    ladder.index_of(solver.capability(Volts(vdd.0 * sag), t_j))
}

/// Energy per cycle (J) of `window` replayed at ladder step `index` of
/// rail `vdd`, junction `t_j` — the frontier policy's ranking metric.
/// Dynamic energy per cycle is frequency-independent; leakage energy
/// per cycle shrinks as frequency rises, which is what makes the
/// frontier non-trivial.
fn energy_per_cycle(
    solver: &VfSolver,
    ladder: PllLadder,
    vdd: Volts,
    index: u32,
    t_j: f64,
    window: &ActivityCounters,
) -> f64 {
    let f = ladder.frequency(index);
    let op = OperatingPoint::table_iii()
        .with_vdd_tracked(vdd)
        .with_freq(f)
        .with_junction(t_j);
    let p = solver.model().power(window, op).total();
    p.0 / f.0
}

/// Thermal feasibility of holding ladder step `index` at rail `vdd`:
/// the boot-workload equilibrium junction must stay bootable. Depends
/// only on `(vdd, index)` — not on the instantaneous temperature — so
/// the feasible set cannot flap as the die breathes.
fn frontier_feasible(solver: &VfSolver, ladder: PllLadder, vdd: Volts, index: u32) -> bool {
    solver.equilibrium_junction(vdd, ladder.frequency(index)) <= T_JUNCTION_LIMIT_C
}

/// The pure control law: next state and throttle flag from the current
/// state and step inputs. Shared by [`Governor::step_sagged`]; the
/// [`Reference`] controller re-derives the same semantics
/// independently (linear ladder scans, reversed grid iteration) so the
/// determinism property test compares two genuinely different
/// computations.
fn decide(
    policy: GovernorConfig,
    solver: &VfSolver,
    state: ControlState,
    ceiling: u32,
    t_j: f64,
    window: &ActivityCounters,
    sag: f64,
) -> (ControlState, bool) {
    let ladder = solver.ladder();
    let cap = capability_index(solver, ladder, state.vdd, t_j, sag);
    match policy {
        GovernorConfig::Off => unreachable!("Off governors are never constructed"),
        GovernorConfig::ThrottleOnBoot => {
            let hot = t_j >= T_JUNCTION_LIMIT_C;
            let cool = t_j <= T_JUNCTION_LIMIT_C - THROTTLE_HEADROOM_C;
            let walked = if hot {
                state.index.saturating_sub(1)
            } else if cool && state.index < cap.min(ceiling) {
                state.index + 1
            } else {
                state.index
            };
            (
                ControlState {
                    vdd: state.vdd,
                    index: walked.min(cap).min(ceiling),
                },
                hot,
            )
        }
        GovernorConfig::RaceToHalt => {
            let hot = t_j >= T_JUNCTION_LIMIT_C;
            let index = if hot {
                state.index.min(cap).saturating_sub(1)
            } else {
                cap
            };
            (
                ControlState {
                    vdd: state.vdd,
                    index,
                },
                hot,
            )
        }
        GovernorConfig::EnergyFrontier => {
            // Rank the VDD grid (each at its own quantized capability,
            // feasibility-filtered) by energy per cycle, ascending VDD
            // with strict improvement — ties resolve to the lowest
            // rail.
            let mut best: Option<(Volts, u32, f64)> = None;
            for v in vdd_grid() {
                let idx = capability_index(solver, ladder, v, t_j, sag);
                if !frontier_feasible(solver, ladder, v, idx) {
                    continue;
                }
                let e = energy_per_cycle(solver, ladder, v, idx, t_j, window);
                if best.is_none_or(|(_, _, be)| e < be) {
                    best = Some((v, idx, e));
                }
            }
            let Some((bv, bi, be)) = best else {
                // Nothing on the grid holds the boot limit (a pathological
                // cooling setup): throttle in place like the boot policy.
                let hot = t_j >= T_JUNCTION_LIMIT_C;
                let index = if hot {
                    state.index.min(cap).saturating_sub(1)
                } else {
                    state.index.min(cap)
                };
                return (
                    ControlState {
                        vdd: state.vdd,
                        index,
                    },
                    true,
                );
            };
            // Switching hysteresis: hold the current point unless the
            // winner improves on it by the margin. The current point is
            // re-clamped to its own capability first (never exceed the
            // curve, even while holding).
            let held = ControlState {
                vdd: state.vdd,
                index: state.index.min(cap),
            };
            let here = energy_per_cycle(solver, ladder, held.vdd, held.index, t_j, window);
            let switch =
                (bv, bi) != (held.vdd, held.index) && be < here * (1.0 - FRONTIER_SWITCH_MARGIN);
            let next = if switch {
                ControlState { vdd: bv, index: bi }
            } else {
                held
            };
            (next, t_j >= T_JUNCTION_LIMIT_C)
        }
    }
}

/// The step-by-step reference controller, compiled in for tests and the
/// `naive-engine` feature exactly like `Machine::run_naive`: same
/// semantics as [`Governor`], independently re-derived — capability
/// indices by linear ladder scan instead of the closed-form floor, the
/// frontier grid walked in descending order with a mirrored tie-break.
/// The determinism property test locksteps the two and requires equal
/// decisions at every step.
#[cfg(any(test, feature = "naive-engine"))]
#[derive(Debug, Clone)]
pub struct Reference {
    policy: GovernorConfig,
    solver: VfSolver,
    state: ControlState,
    /// Boot setpoint ceiling, mirroring [`Governor::new`]'s capture.
    ceiling: u32,
}

#[cfg(any(test, feature = "naive-engine"))]
impl Reference {
    /// Mirror of [`Governor::new`].
    ///
    /// # Panics
    ///
    /// Panics if `policy` is `Off` (mirroring [`Governor::new`]).
    #[must_use]
    pub fn new(policy: GovernorConfig, solver: VfSolver, vdd: Volts, start_freq: Hertz) -> Self {
        assert!(!policy.is_off(), "cannot construct an Off reference");
        let index = Self::scan_index(&solver, start_freq);
        Self {
            policy,
            solver,
            state: ControlState { vdd, index },
            ceiling: index,
        }
    }

    /// Largest ladder index whose frequency does not exceed `f`, by
    /// linear scan from the base (the definitional form of
    /// [`PllLadder::index_of`]).
    fn scan_index(solver: &VfSolver, f: Hertz) -> u32 {
        let ladder = solver.ladder();
        let mut i = 0u32;
        while ladder.frequency(i + 1).0 <= f.0 {
            i += 1;
        }
        i
    }

    /// Current chosen frequency.
    #[must_use]
    pub fn frequency(&self) -> Hertz {
        self.solver.ladder().frequency(self.state.index)
    }

    /// Mirror of [`Governor::step_sagged`].
    pub fn step_sagged(
        &mut self,
        t_j: f64,
        window: &ActivityCounters,
        sag: f64,
    ) -> OperatingChoice {
        let ladder = self.solver.ladder();
        let cap = Self::scan_index(
            &self.solver,
            self.solver.capability(Volts(self.state.vdd.0 * sag), t_j),
        );
        let (next, limited) = match self.policy {
            GovernorConfig::Off => unreachable!("Off references are never constructed"),
            GovernorConfig::ThrottleOnBoot => {
                let hot = t_j >= T_JUNCTION_LIMIT_C;
                let cool = t_j <= T_JUNCTION_LIMIT_C - THROTTLE_HEADROOM_C;
                let walked = if hot {
                    self.state.index.saturating_sub(1)
                } else if cool && self.state.index < cap.min(self.ceiling) {
                    self.state.index + 1
                } else {
                    self.state.index
                };
                (
                    ControlState {
                        vdd: self.state.vdd,
                        index: walked.min(cap).min(self.ceiling),
                    },
                    hot,
                )
            }
            GovernorConfig::RaceToHalt => {
                let hot = t_j >= T_JUNCTION_LIMIT_C;
                let index = if hot {
                    self.state.index.min(cap).saturating_sub(1)
                } else {
                    cap
                };
                (
                    ControlState {
                        vdd: self.state.vdd,
                        index,
                    },
                    hot,
                )
            }
            GovernorConfig::EnergyFrontier => {
                // Descending grid walk keeping better-or-equal: the
                // winner is the lowest-VDD point of minimal energy —
                // the same point the ascending strict walk selects.
                let mut best: Option<(Volts, u32, f64)> = None;
                let grid: Vec<Volts> = vdd_grid().collect();
                for &v in grid.iter().rev() {
                    let idx = Self::scan_index(
                        &self.solver,
                        self.solver.capability(Volts(v.0 * sag), t_j),
                    );
                    if !frontier_feasible(&self.solver, ladder, v, idx) {
                        continue;
                    }
                    let e = energy_per_cycle(&self.solver, ladder, v, idx, t_j, window);
                    if best.is_none_or(|(_, _, be)| e <= be) {
                        best = Some((v, idx, e));
                    }
                }
                match best {
                    Some((bv, bi, be)) => {
                        let held = ControlState {
                            vdd: self.state.vdd,
                            index: self.state.index.min(cap),
                        };
                        let here = energy_per_cycle(
                            &self.solver,
                            ladder,
                            held.vdd,
                            held.index,
                            t_j,
                            window,
                        );
                        let switch = (bv, bi) != (held.vdd, held.index)
                            && be < here * (1.0 - FRONTIER_SWITCH_MARGIN);
                        (
                            if switch {
                                ControlState { vdd: bv, index: bi }
                            } else {
                                held
                            },
                            t_j >= T_JUNCTION_LIMIT_C,
                        )
                    }
                    None => {
                        let hot = t_j >= T_JUNCTION_LIMIT_C;
                        let index = if hot {
                            self.state.index.min(cap).saturating_sub(1)
                        } else {
                            self.state.index.min(cap)
                        };
                        (
                            ControlState {
                                vdd: self.state.vdd,
                                index,
                            },
                            true,
                        )
                    }
                }
            }
        };
        self.state = next;
        OperatingChoice {
            vdd: self.state.vdd,
            freq: self.frequency(),
            thermally_limited: limited,
        }
    }
}

/// A small idle-shaped activity window for callers that need a decision
/// before any cycles ran (e.g. the first control step after reset).
#[must_use]
pub fn idle_window(cycles: u64) -> ActivityCounters {
    ActivityCounters {
        cycles: cycles.max(1),
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Calibration;
    use crate::model::{ChipCorner, PowerModel};
    use crate::tech::TechModel;

    fn solver(speed: f64, leakage: f64, dynamic: f64) -> VfSolver {
        VfSolver::new(
            PowerModel::new(
                Calibration::piton_hpca18(),
                TechModel::ibm32soi(),
                ChipCorner {
                    speed,
                    leakage,
                    dynamic,
                },
            ),
            20.0,
        )
    }

    fn window() -> ActivityCounters {
        idle_window(10_000)
    }

    #[test]
    fn config_labels_round_trip() {
        for c in [
            GovernorConfig::Off,
            GovernorConfig::ThrottleOnBoot,
            GovernorConfig::RaceToHalt,
            GovernorConfig::EnergyFrontier,
        ] {
            assert_eq!(GovernorConfig::parse(c.label()).unwrap(), c);
        }
        assert!(GovernorConfig::parse("turbo").is_err());
        assert!(GovernorConfig::default().is_off());
    }

    #[test]
    #[should_panic(expected = "cannot construct an Off governor")]
    fn off_governor_is_unconstructible() {
        let _ = Governor::new(
            GovernorConfig::Off,
            solver(1.0, 1.0, 1.0),
            Volts(1.0),
            Hertz::from_mhz(500.0),
        );
    }

    #[test]
    fn throttle_walks_down_when_hot_and_up_when_cool() {
        let s = solver(1.0, 1.0, 1.0);
        let mut g = Governor::new(
            GovernorConfig::ThrottleOnBoot,
            s,
            Volts(1.0),
            Hertz::from_mhz(400.0),
        );
        let f0 = g.frequency();
        let hot = g.step(T_JUNCTION_LIMIT_C + 5.0, &window());
        assert!(hot.thermally_limited);
        assert!(hot.freq.0 < f0.0, "hot step must lower frequency");
        let f1 = g.frequency();
        let cool = g.step(30.0, &window());
        assert!(!cool.thermally_limited);
        assert!(cool.freq.0 > f1.0, "cool step must raise frequency");
        assert_eq!(g.stats().steps, 2);
        assert_eq!(g.stats().throttled_steps, 1);
        assert_eq!(g.stats().transitions, 2);
    }

    #[test]
    fn throttle_holds_inside_the_hysteresis_band() {
        let s = solver(1.0, 1.0, 1.0);
        let mut g = Governor::new(
            GovernorConfig::ThrottleOnBoot,
            s,
            Volts(1.0),
            Hertz::from_mhz(300.0),
        );
        let before = g.frequency();
        // Inside the band: neither hot enough to throttle nor cool
        // enough to raise.
        let c = g.step(T_JUNCTION_LIMIT_C - THROTTLE_HEADROOM_C / 2.0, &window());
        assert_eq!(c.freq, before);
        assert_eq!(g.stats().transitions, 0);
    }

    #[test]
    fn race_to_halt_jumps_to_capability() {
        let s = solver(1.0, 1.0, 1.0);
        let cap = s.ladder().index_of(s.capability(Volts(1.0), 40.0));
        let mut g = Governor::new(
            GovernorConfig::RaceToHalt,
            s,
            Volts(1.0),
            Hertz::from_mhz(60.0),
        );
        let c = g.step(40.0, &window());
        assert_eq!(c.freq, g.solver().ladder().frequency(cap));
    }

    #[test]
    fn brownout_sag_lowers_the_choice() {
        let s = solver(1.0, 1.0, 1.0);
        let mut nominal = Governor::new(
            GovernorConfig::RaceToHalt,
            s.clone(),
            Volts(1.0),
            Hertz::from_mhz(300.0),
        );
        let mut sagged = Governor::new(
            GovernorConfig::RaceToHalt,
            s,
            Volts(1.0),
            Hertz::from_mhz(300.0),
        );
        let full = nominal.step(40.0, &window());
        let brown = sagged.step_sagged(40.0, &window(), 0.85);
        assert!(
            brown.freq.0 < full.freq.0,
            "sagged capability must be lower: {} vs {}",
            brown.freq,
            full.freq
        );
    }

    #[test]
    fn energy_frontier_picks_a_feasible_grid_point() {
        let s = solver(1.0, 1.0, 1.0);
        let mut g = Governor::new(
            GovernorConfig::EnergyFrontier,
            s,
            Volts(1.0),
            Hertz::from_mhz(300.0),
        );
        let c = g.step(45.0, &window());
        // The chosen point must respect its own capability curve.
        let cap = g.solver().capability(c.vdd, 45.0);
        assert!(c.freq.0 <= cap.0);
        assert!(!c.thermally_limited);
    }

    #[test]
    fn reference_matches_production_on_a_mixed_trajectory() {
        for policy in [
            GovernorConfig::ThrottleOnBoot,
            GovernorConfig::RaceToHalt,
            GovernorConfig::EnergyFrontier,
        ] {
            let s = solver(1.06, 1.45, 1.12);
            let mut prod = Governor::new(policy, s.clone(), Volts(1.1), Hertz::from_mhz(450.0));
            let mut refc = Reference::new(policy, s, Volts(1.1), Hertz::from_mhz(450.0));
            let temps = [30.0, 60.0, 96.0, 97.0, 94.0, 80.0, 91.5, 99.0, 40.0, 25.0];
            for (k, &t) in temps.iter().enumerate() {
                let sag = if k % 3 == 2 { 0.9 } else { 1.0 };
                let a = prod.step_sagged(t, &window(), sag);
                let b = refc.step_sagged(t, &window(), sag);
                assert_eq!(a, b, "{policy} diverged at step {k} (t={t})");
            }
        }
    }
}
