//! The chip power model: activity window → per-rail power.
//!
//! [`PowerModel::power`] converts an [`ActivityCounters`] window from the
//! simulator into the three rail powers a Piton test board measures
//! through its sense resistors: VDD (core logic), VCS (SRAM arrays) and
//! VIO (I/O pads). Dynamic energy scales quadratically with voltage,
//! leakage scales polynomially with voltage and exponentially with
//! junction temperature, and each physical chip carries a process corner
//! that multiplies its speed, leakage and dynamic energy — the source of
//! the chip-to-chip differences in Figures 9 and 10.
//!
//! # Examples
//!
//! ```
//! use piton_power::model::{ChipCorner, OperatingPoint, PowerModel};
//! use piton_sim::events::ActivityCounters;
//!
//! let model = PowerModel::nominal();
//! let mut idle = ActivityCounters::default();
//! idle.cycles = 500_050; // 1 ms at 500.05 MHz
//! // Idle chips self-heat to a ~35 °C junction (Table V conditions).
//! let p = model.power(&idle, OperatingPoint::table_iii().with_junction(35.3));
//! // Table V: idle power ≈ 2015 mW.
//! assert!((p.total().as_mw() - 2015.3).abs() < 30.0);
//! ```

use piton_arch::config::MeasurementDefaults;
use piton_arch::isa::Opcode;
use piton_arch::units::{Hertz, Joules, Seconds, Volts, Watts};
use piton_sim::events::ActivityCounters;
use serde::{Deserialize, Serialize};

use crate::calibration::Calibration;
use crate::tech::TechModel;

/// The electrical/thermal operating point of a measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Core supply at the socket pins.
    pub vdd: Volts,
    /// SRAM supply at the socket pins.
    pub vcs: Volts,
    /// I/O supply.
    pub vio: Volts,
    /// Core clock frequency.
    pub freq: Hertz,
    /// Junction temperature in °C.
    pub junction_c: f64,
}

impl OperatingPoint {
    /// The Table III defaults at a typical heat-sunk junction
    /// temperature.
    #[must_use]
    pub fn table_iii() -> Self {
        let d = MeasurementDefaults::table_iii();
        Self {
            vdd: d.vdd,
            vcs: d.vcs,
            vio: d.vio,
            freq: d.core_clock,
            junction_c: 25.0,
        }
    }

    /// Same supplies with a different junction temperature.
    #[must_use]
    pub fn with_junction(mut self, t_c: f64) -> Self {
        self.junction_c = t_c;
        self
    }

    /// Same operating point at another VDD, tracking the paper's
    /// `VCS = VDD + 0.05 V` convention.
    #[must_use]
    pub fn with_vdd_tracked(mut self, vdd: Volts) -> Self {
        self.vdd = vdd;
        self.vcs = MeasurementDefaults::vcs_for(vdd);
        self
    }

    /// Same operating point at another frequency.
    #[must_use]
    pub fn with_freq(mut self, f: Hertz) -> Self {
        self.freq = f;
        self
    }
}

/// Process corner of one physical die: multipliers applied on top of the
/// nominal model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipCorner {
    /// Transistor speed multiplier (fast chips boot Linux at higher
    /// frequencies).
    pub speed: f64,
    /// Leakage multiplier (fast chips usually leak more).
    pub leakage: f64,
    /// Dynamic-energy multiplier (effective switched capacitance).
    pub dynamic: f64,
}

impl ChipCorner {
    /// The typical corner (Chip #2, the paper's workhorse die).
    #[must_use]
    pub fn typical() -> Self {
        Self {
            speed: 1.0,
            leakage: 1.0,
            dynamic: 1.0,
        }
    }
}

impl Default for ChipCorner {
    fn default() -> Self {
        Self::typical()
    }
}

/// Power broken down by supply rail — what the board's three sense
/// resistors report.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RailPower {
    /// Core-logic rail.
    pub vdd: Watts,
    /// SRAM rail.
    pub vcs: Watts,
    /// I/O rail.
    pub vio: Watts,
}

impl RailPower {
    /// VDD + VCS — the chip power the paper reports (VIO excluded from
    /// EPI/idle numbers).
    #[must_use]
    pub fn total(&self) -> Watts {
        self.vdd + self.vcs
    }

    /// All three rails.
    #[must_use]
    pub fn total_with_io(&self) -> Watts {
        self.vdd + self.vcs + self.vio
    }
}

/// The calibrated chip power model for one die.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    calib: Calibration,
    tech: TechModel,
    corner: ChipCorner,
}

impl PowerModel {
    /// Model for a die at the given process corner.
    #[must_use]
    pub fn new(calib: Calibration, tech: TechModel, corner: ChipCorner) -> Self {
        Self {
            calib,
            tech,
            corner,
        }
    }

    /// The nominal (Chip #2-like) model with the paper calibration.
    #[must_use]
    pub fn nominal() -> Self {
        Self::new(
            Calibration::piton_hpca18(),
            TechModel::ibm32soi(),
            ChipCorner::typical(),
        )
    }

    /// The calibration table.
    #[must_use]
    pub fn calibration(&self) -> &Calibration {
        &self.calib
    }

    /// The technology model.
    #[must_use]
    pub fn tech(&self) -> &TechModel {
        &self.tech
    }

    /// The die's process corner.
    #[must_use]
    pub fn corner(&self) -> ChipCorner {
        self.corner
    }

    /// Dynamic energy consumed by an activity window, split by rail, at
    /// nominal voltage (pJ).
    fn dynamic_energy_nominal_pj(&self, a: &ActivityCounters) -> (f64, f64, f64) {
        let c = &self.calib;
        let mut vdd = 0.0;

        for op in Opcode::ALL {
            let i = op.index();
            let n = a.issues[i] as f64;
            if n > 0.0 {
                vdd += n * c.instr[i].base_pj + a.operand_activity[i] * c.instr[i].value_pj;
            }
        }
        vdd += a.cycles as f64 * c.clock_vdd_pj_per_cycle;
        vdd += a.core_active_cycles as f64 * c.active_core_pj_per_cycle;
        vdd += a.mem_stall_cycles as f64 * c.stall_pj_per_cycle;
        vdd += a.dual_thread_cycles as f64 * c.dual_thread_pj_per_cycle;
        // Execution Drafting shares the front end; clamp so pathological
        // coefficient choices can never produce negative energy.
        vdd = (vdd - a.drafted_issues as f64 * c.execd_saving_pj).max(0.0);
        vdd += a.l15_misses as f64 * c.l15_miss_pj;
        vdd += a.invalidations as f64 * c.invalidation_pj;
        vdd += a.load_rollbacks as f64 * c.load_rollback_pj;
        vdd += a.store_rollbacks as f64 * c.store_rollback_pj;
        vdd += a.sb_enqueues as f64 * c.sb_enqueue_pj;
        vdd += a.noc_flit_hops as f64 * c.noc_flit_hop_pj;
        vdd += a.noc_bit_switches as f64 * c.noc_bit_switch_pj;
        vdd += a.noc_coupling_switches as f64 * c.noc_coupling_pj;
        vdd += a.noc_route_computes as f64 * c.noc_route_pj;
        vdd += a.offchip_requests as f64 * c.offchip_request_pj;
        vdd += a.chip_bridge_flits as f64 * c.bridge_flit_vdd_pj;

        let mut vcs = 0.0;
        vcs += a.cycles as f64 * c.clock_vcs_pj_per_cycle;
        vcs += a.l1i_accesses as f64 * c.l1i_pj;
        vcs += a.l1d_reads as f64 * c.l1d_read_pj;
        vcs += a.l1d_writes as f64 * c.l1d_write_pj;
        vcs += a.l15_reads as f64 * c.l15_read_pj;
        vcs += a.l15_writes as f64 * c.l15_write_pj;
        vcs += a.l15_writebacks as f64 * c.l15_writeback_pj;
        vcs += a.l2_reads as f64 * c.l2_read_pj;
        vcs += a.l2_writes as f64 * c.l2_write_pj;
        vcs += a.dir_lookups as f64 * c.dir_pj;

        let mut vio = 0.0;
        vio += a.chip_bridge_flits as f64 * c.bridge_flit_vio_pj;
        vio += a.io_transactions as f64 * c.io_transaction_pj;

        (vdd, vcs, vio)
    }

    /// Static (leakage) power at an operating point.
    ///
    /// The junction temperature is clamped to the thermal model's
    /// physical ceiling so runaway feedback loops saturate rather than
    /// diverge.
    #[must_use]
    pub fn static_power(&self, op: OperatingPoint) -> RailPower {
        let c = &self.calib;
        let t_scale = self.tech.leakage_temperature_scale(
            op.junction_c.min(crate::thermal::T_CLAMP_C),
            c.static_calibration_temp_c,
        ) * self.corner.leakage;
        let vdd_scale = self.tech.leakage_voltage_scale(op.vdd, Volts(1.0));
        let vcs_scale = self.tech.leakage_voltage_scale(op.vcs, Volts(1.05));
        RailPower {
            vdd: Watts::from_mw(c.static_vdd_mw * vdd_scale * t_scale),
            vcs: Watts::from_mw(c.static_vcs_mw * vcs_scale * t_scale),
            vio: Watts::from_mw(c.static_vio_mw),
        }
    }

    /// Total rail power of an activity window at an operating point.
    ///
    /// The window's wall time is `a.cycles / op.freq`; dynamic energy is
    /// voltage-scaled and spread over that window, then leakage is added.
    ///
    /// # Panics
    ///
    /// Panics if the window contains no cycles.
    #[must_use]
    pub fn power(&self, a: &ActivityCounters, op: OperatingPoint) -> RailPower {
        assert!(a.cycles > 0, "empty activity window");
        let (vdd_pj, vcs_pj, vio_pj) = self.dynamic_energy_nominal_pj(a);
        let window: Seconds = op.freq.period() * a.cycles as f64;

        let vdd_scale = self.tech.dynamic_scale(op.vdd, Volts(1.0)) * self.corner.dynamic;
        let vcs_scale = self.tech.dynamic_scale(op.vcs, Volts(1.05)) * self.corner.dynamic;
        let vio_scale = self.tech.dynamic_scale(op.vio, Volts(1.8));

        let dyn_power = RailPower {
            vdd: Joules::from_pj(vdd_pj * vdd_scale) / window,
            vcs: Joules::from_pj(vcs_pj * vcs_scale) / window,
            vio: Joules::from_pj(vio_pj * vio_scale) / window,
        };
        let leak = self.static_power(op);
        RailPower {
            vdd: dyn_power.vdd + leak.vdd,
            vcs: dyn_power.vcs + leak.vcs,
            vio: dyn_power.vio + leak.vio,
        }
    }

    /// Total chip energy (VDD + VCS) of a window — power × window time.
    #[must_use]
    pub fn energy(&self, a: &ActivityCounters, op: OperatingPoint) -> Joules {
        let window: Seconds = op.freq.period() * a.cycles as f64;
        self.power(a, op).total() * window
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle_window(cycles: u64) -> ActivityCounters {
        ActivityCounters {
            cycles,
            ..Default::default()
        }
    }

    #[test]
    fn idle_power_matches_table_v_at_idle_junction() {
        // An idle chip under the §III-C cooling self-heats to ≈ 35 °C;
        // Table V's 2015.3 mW is measured there.
        let m = PowerModel::nominal();
        let op = OperatingPoint::table_iii().with_junction(35.3);
        let p = m.power(&idle_window(1_000_000), op);
        assert!(
            (p.total().as_mw() - 2015.3).abs() < 30.0,
            "idle {} mW",
            p.total().as_mw()
        );
    }

    #[test]
    fn static_power_matches_table_v() {
        let m = PowerModel::nominal();
        let s = m.static_power(OperatingPoint::table_iii());
        assert!(
            (s.total().as_mw() - 389.3).abs() < 1.0,
            "static {} mW",
            s.total().as_mw()
        );
    }

    #[test]
    fn idle_power_scales_with_frequency() {
        let m = PowerModel::nominal();
        let op = OperatingPoint::table_iii();
        let half = op.with_freq(Hertz::from_mhz(250.0));
        let p_full = m.power(&idle_window(1_000_000), op);
        let p_half = m.power(&idle_window(1_000_000), half);
        // Dynamic halves; static unchanged.
        let dyn_full = p_full.total().as_mw() - 389.3;
        let dyn_half = p_half.total().as_mw() - 389.3;
        assert!((dyn_half / dyn_full - 0.5).abs() < 0.02);
    }

    #[test]
    fn power_scales_quadratically_with_voltage() {
        let m = PowerModel::nominal();
        let base = OperatingPoint::table_iii();
        let hi = base.with_vdd_tracked(Volts(1.2));
        let p_base = m.power(&idle_window(100_000), base);
        let p_hi = m.power(&idle_window(100_000), hi);
        assert!(p_hi.total() > p_base.total() * 1.3);
    }

    #[test]
    fn leakage_rises_exponentially_with_temperature() {
        let m = PowerModel::nominal();
        let cold = m.static_power(OperatingPoint::table_iii().with_junction(25.0));
        let warm = m.static_power(OperatingPoint::table_iii().with_junction(55.0));
        let hot = m.static_power(OperatingPoint::table_iii().with_junction(85.0));
        let r1 = warm.total() / cold.total();
        let r2 = hot.total() / warm.total();
        assert!((r1 - r2).abs() < 0.02, "not exponential: {r1} vs {r2}");
        assert!(r1 > 2.0);
    }

    #[test]
    fn leaky_corner_raises_static_only() {
        let leaky = PowerModel::new(
            Calibration::piton_hpca18(),
            TechModel::ibm32soi(),
            ChipCorner {
                speed: 1.05,
                leakage: 1.4,
                dynamic: 1.0,
            },
        );
        let nominal = PowerModel::nominal();
        let op = OperatingPoint::table_iii();
        let s_ratio = leaky.static_power(op).total() / nominal.static_power(op).total();
        assert!((s_ratio - 1.4).abs() < 1e-9);
    }

    #[test]
    fn instructions_add_power_over_idle() {
        let m = PowerModel::nominal();
        let op = OperatingPoint::table_iii();
        let mut busy = idle_window(1_000_000);
        // 25 cores issuing an add every cycle with random operands.
        for _ in 0..25 {
            for _ in 0..10 {
                busy.record_issue(Opcode::Add, 1, 0.5);
            }
        }
        busy.issues[Opcode::Add.index()] = 25_000_000;
        busy.operand_activity[Opcode::Add.index()] = 12_500_000.0;
        busy.l1i_accesses = 25_000_000;
        let p_busy = m.power(&busy, op);
        let p_idle = m.power(&idle_window(1_000_000), op);
        let delta = p_busy.total() - p_idle.total();
        // 25 cores × ~95 pJ/add + fetch ≈ 25 × 110 pJ/cycle × 500 MHz ≈ 1.4 W.
        assert!((1.0..2.0).contains(&delta.0), "delta {} W", delta.0);
    }

    #[test]
    #[should_panic(expected = "empty activity window")]
    fn empty_window_panics() {
        let m = PowerModel::nominal();
        let _ = m.power(&ActivityCounters::default(), OperatingPoint::table_iii());
    }

    #[test]
    fn vio_power_tracks_bridge_traffic() {
        let m = PowerModel::nominal();
        let op = OperatingPoint::table_iii();
        let mut a = idle_window(1_000_000);
        a.chip_bridge_flits = 100_000;
        let p = m.power(&a, op);
        let p_idle = m.power(&idle_window(1_000_000), op);
        assert!(p.vio > p_idle.vio);
    }
}
