//! Lumped-RC thermal model of the packaged Piton die and its cooling.
//!
//! The paper's §IV-J thermal study (and the thermal limiting visible in
//! Figure 9) hinge on the package: the die is wire-bonded cavity-up under
//! epoxy in a socketed ceramic QFP, so the junction-to-surface thermal
//! resistance is high, and the removable heat-sink/fan stack (§III-C)
//! sets the surface-to-ambient resistance. We model two thermal nodes:
//!
//! * the **junction** (die + cavity), low capacitance, coupled to
//! * the **surface** (package/spreader/heat-sink mass), high capacitance,
//!   convecting to ambient.
//!
//! Fan airflow (or, in the Figure 17 experiment, fan *angle*) modulates
//! the convective resistance. The power↔temperature feedback loop —
//! leakage rises with temperature, raising power, raising temperature —
//! is closed by [`ThermalModel::equilibrium`], and its transient form
//! produces the Figure 18 hysteresis.
//!
//! # Examples
//!
//! ```
//! use piton_power::thermal::{Cooling, ThermalModel};
//! use piton_arch::units::Watts;
//!
//! let mut t = ThermalModel::new(Cooling::HeatsinkFan, 20.0);
//! let (junction, _surface) = t.steady_state(Watts(2.0));
//! assert!(junction > 20.0 && junction < 60.0);
//! ```

use piton_arch::units::{Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Physical ceiling of the model: beyond this the real part would have
/// shut down (or desoldered itself); the transient clamps here so
/// unstable operating points saturate instead of running away to
/// infinity.
pub const T_CLAMP_C: f64 = 125.0;

/// Cooling configuration of the test setup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Cooling {
    /// The §III-C stock heat sink with aluminium spacers plus the 44 cfm
    /// case fan (the default for every study except §IV-J).
    HeatsinkFan,
    /// Heat sink removed, fan aimed at the bare package with the given
    /// effectiveness in `[0, 1]` (1 = fan square-on, 0 = fan turned
    /// away) — the Figure 17 temperature-sweep mechanism.
    BarePackageFan {
        /// Fractional fan effectiveness.
        effectiveness: f64,
    },
}

impl Cooling {
    /// Junction-to-surface thermal resistance in °C/W (package-internal:
    /// die, epoxy, spreader).
    #[must_use]
    pub fn r_junction_surface(self) -> f64 {
        5.0
    }

    /// Surface-to-ambient convective resistance in °C/W.
    #[must_use]
    pub fn r_surface_ambient(self) -> f64 {
        match self {
            Cooling::HeatsinkFan => 3.0,
            Cooling::BarePackageFan { effectiveness } => {
                let e = effectiveness.clamp(0.0, 1.0);
                // Fan square-on: ~16 °C/W; turned away: ~26 °C/W
                // (fitted to the Figure 17 temperature band; the bare
                // ceramic package under direct airflow).
                26.0 - 10.0 * e
            }
        }
    }

    /// Thermal capacitance of the surface node in J/°C (heat-sink mass
    /// versus bare ceramic package).
    #[must_use]
    pub fn c_surface(self) -> f64 {
        match self {
            Cooling::HeatsinkFan => 20.0,
            Cooling::BarePackageFan { .. } => 5.0,
        }
    }
}

/// The two-node transient thermal model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    cooling: Cooling,
    ambient_c: f64,
    /// Junction node capacitance in J/°C.
    c_junction: f64,
    t_junction: f64,
    t_surface: f64,
}

impl ThermalModel {
    /// Creates a model at thermal equilibrium with the ambient.
    #[must_use]
    pub fn new(cooling: Cooling, ambient_c: f64) -> Self {
        Self {
            cooling,
            ambient_c,
            c_junction: 0.2,
            t_junction: ambient_c,
            t_surface: ambient_c,
        }
    }

    /// The cooling configuration.
    #[must_use]
    pub fn cooling(&self) -> Cooling {
        self.cooling
    }

    /// Replaces the cooling configuration (e.g. adjusting the fan angle
    /// mid-experiment), preserving current temperatures.
    pub fn set_cooling(&mut self, cooling: Cooling) {
        self.cooling = cooling;
    }

    /// Ambient temperature in °C.
    #[must_use]
    pub fn ambient_c(&self) -> f64 {
        self.ambient_c
    }

    /// Current junction temperature in °C.
    #[must_use]
    pub fn junction_c(&self) -> f64 {
        self.t_junction
    }

    /// Current package-surface temperature in °C (what the FLIR camera
    /// of §IV-J images).
    #[must_use]
    pub fn surface_c(&self) -> f64 {
        self.t_surface
    }

    /// Advances the transient model by `dt` with dissipated power `p`.
    ///
    /// Uses sub-stepping to stay stable for large `dt`.
    pub fn step(&mut self, p: Watts, dt: Seconds) {
        let r_js = self.cooling.r_junction_surface();
        let r_sa = self.cooling.r_surface_ambient();
        let c_s = self.cooling.c_surface();

        // Sub-step at a fraction of the fastest time constant.
        let tau_fast = (r_js * self.c_junction).min(r_sa * c_s);
        let max_h = (tau_fast / 4.0).max(1e-3);
        let mut remaining = dt.0.max(0.0);
        while remaining > 0.0 {
            let h = remaining.min(max_h);
            let q_js = (self.t_junction - self.t_surface) / r_js;
            let q_sa = (self.t_surface - self.ambient_c) / r_sa;
            self.t_junction = (self.t_junction + h * (p.0 - q_js) / self.c_junction)
                .clamp(self.ambient_c.min(self.t_junction), T_CLAMP_C);
            self.t_surface = (self.t_surface + h * (q_js - q_sa) / c_s)
                .clamp(self.ambient_c.min(self.t_surface), T_CLAMP_C);
            remaining -= h;
        }
    }

    /// Steady-state `(junction, surface)` temperatures for constant
    /// power `p` (without leakage feedback).
    #[must_use]
    pub fn steady_state(&self, p: Watts) -> (f64, f64) {
        let surface = self.ambient_c + p.0 * self.cooling.r_surface_ambient();
        let junction = surface + p.0 * self.cooling.r_junction_surface();
        (junction, surface)
    }

    /// Jumps the model to the steady state of power `p`.
    pub fn settle(&mut self, p: Watts) {
        let (j, s) = self.steady_state(p);
        self.t_junction = j;
        self.t_surface = s;
    }

    /// Jumps the model to the steady-state profile whose junction sits
    /// at `t_j` (used when an equilibrium solve already found the
    /// junction temperature).
    pub fn settle_to_junction(&mut self, t_j: f64) {
        let r_sa = self.cooling.r_surface_ambient();
        let r_js = self.cooling.r_junction_surface();
        self.t_junction = t_j;
        self.t_surface = self.ambient_c + (t_j - self.ambient_c) * r_sa / (r_sa + r_js);
    }

    /// Closes the power↔temperature feedback loop: `power_at(t_junction)`
    /// gives the chip's power at a junction temperature (leakage rises
    /// with temperature); the fixed point is the thermal equilibrium.
    ///
    /// Returns `(junction_c, power)`; diverging loops (thermal runaway)
    /// are capped at `t_max_c` and reported at that temperature.
    pub fn equilibrium<F>(&self, power_at: F, t_max_c: f64) -> (f64, Watts)
    where
        F: Fn(f64) -> Watts,
    {
        let mut t = self.ambient_c;
        for _ in 0..200 {
            let p = power_at(t);
            let (j, _) = self.steady_state(p);
            let next = t + 0.5 * (j - t); // damped iteration
            if next >= t_max_c {
                return (t_max_c, power_at(t_max_c));
            }
            if (next - t).abs() < 1e-4 {
                return (next, power_at(next));
            }
            t = next;
        }
        (t, power_at(t))
    }
}

/// Fixed-timestep integrator over a [`ThermalModel`] — the single
/// shared way the thermal-camera example, the Figure 17/18 experiments
/// and the closed-loop governor advance the RC model, so every consumer
/// integrates the exact same transient (no hand-rolled Euler steps to
/// drift apart).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalStep {
    dt: Seconds,
}

impl ThermalStep {
    /// A stepper with timestep `dt_seconds`.
    ///
    /// # Panics
    ///
    /// Panics if the timestep is not strictly positive.
    #[must_use]
    pub fn new(dt_seconds: f64) -> Self {
        assert!(
            dt_seconds > 0.0,
            "thermal timestep must be positive, got {dt_seconds}"
        );
        Self {
            dt: Seconds(dt_seconds),
        }
    }

    /// The fixed timestep.
    #[must_use]
    pub fn dt(&self) -> Seconds {
        self.dt
    }

    /// Advances `model` by one timestep with dissipated power `p`,
    /// returning the resulting `(junction_c, surface_c)`.
    pub fn advance(&self, model: &mut ThermalModel, p: Watts) -> (f64, f64) {
        model.step(p, self.dt);
        (model.junction_c(), model.surface_c())
    }

    /// Integrates a whole power trace, returning the `(junction_c,
    /// surface_c)` trajectory (one entry per input power, after that
    /// step). The thermal-camera example plots exactly this.
    #[must_use]
    pub fn trajectory(&self, model: &mut ThermalModel, powers: &[Watts]) -> Vec<(f64, f64)> {
        powers.iter().map(|&p| self.advance(model, p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_scales_with_power_and_resistance() {
        let t = ThermalModel::new(Cooling::HeatsinkFan, 20.0);
        let (j2, s2) = t.steady_state(Watts(2.0));
        assert!((s2 - 26.0).abs() < 1e-9); // 20 + 2*3
        assert!((j2 - 36.0).abs() < 1e-9); // 26 + 2*5

        let bare = ThermalModel::new(Cooling::BarePackageFan { effectiveness: 0.0 }, 20.0);
        let (j_bare, _) = bare.steady_state(Watts(0.6));
        assert!(j_bare > 35.0, "bare package runs hot: {j_bare}");
    }

    #[test]
    fn fan_effectiveness_cools_the_package() {
        let on = Cooling::BarePackageFan { effectiveness: 1.0 };
        let off = Cooling::BarePackageFan { effectiveness: 0.0 };
        assert!(on.r_surface_ambient() < off.r_surface_ambient());
        // Heat sink beats any bare-package fan setting.
        assert!(Cooling::HeatsinkFan.r_surface_ambient() < on.r_surface_ambient());
    }

    #[test]
    fn transient_approaches_steady_state() {
        let mut t = ThermalModel::new(Cooling::HeatsinkFan, 20.0);
        let p = Watts(2.0);
        for _ in 0..5_000 {
            t.step(p, Seconds(0.1));
        }
        let (j, s) = t.steady_state(p);
        assert!(
            (t.junction_c() - j).abs() < 0.2,
            "{} vs {j}",
            t.junction_c()
        );
        assert!((t.surface_c() - s).abs() < 0.2);
    }

    #[test]
    fn transient_lags_behind_steps() {
        // The thermal mass means the surface moves slowly — the substrate
        // of the Figure 18 hysteresis.
        let mut t = ThermalModel::new(Cooling::BarePackageFan { effectiveness: 0.5 }, 20.0);
        t.settle(Watts(0.6));
        let before = t.surface_c();
        t.step(Watts(0.9), Seconds(1.0));
        let after = t.surface_c();
        let (_, target) = t.steady_state(Watts(0.9));
        assert!(after > before);
        assert!(after < target, "surface jumped instantly");
    }

    #[test]
    fn equilibrium_finds_leakage_fixed_point() {
        let t = ThermalModel::new(Cooling::HeatsinkFan, 20.0);
        // Power rises gently with temperature: stable fixed point.
        let (tj, p) = t.equilibrium(|tc| Watts(2.0 + 0.005 * (tc - 20.0)), 120.0);
        assert!(tj > 20.0 && tj < 60.0, "tj {tj}");
        assert!(p.0 > 2.0);
        // Steady state at the fixed point is self-consistent.
        let (j, _) = t.steady_state(p);
        assert!((j - tj).abs() < 0.5);
    }

    #[test]
    fn runaway_is_capped() {
        let t = ThermalModel::new(Cooling::BarePackageFan { effectiveness: 0.0 }, 20.0);
        // Strongly temperature-dependent power: runaway.
        let (tj, _) = t.equilibrium(|tc| Watts(1.0 * ((tc - 20.0) / 30.0).exp()), 95.0);
        assert_eq!(tj, 95.0);
    }

    #[test]
    fn thermal_step_matches_direct_stepping() {
        // The shared integrator must be bit-identical to calling
        // `ThermalModel::step` directly — it is the same integration,
        // packaged once.
        let powers: Vec<Watts> = (0..40)
            .map(|i| Watts(0.5 + 0.4 * f64::from(i % 7)))
            .collect();
        let mut direct = ThermalModel::new(Cooling::BarePackageFan { effectiveness: 0.5 }, 20.0);
        let mut stepped = direct.clone();
        let traj = ThermalStep::new(1.0).trajectory(&mut stepped, &powers);
        for (k, &p) in powers.iter().enumerate() {
            direct.step(p, Seconds(1.0));
            assert_eq!(traj[k], (direct.junction_c(), direct.surface_c()));
        }
        assert_eq!(stepped, direct);
    }

    #[test]
    #[should_panic(expected = "timestep must be positive")]
    fn thermal_step_rejects_zero_dt() {
        let _ = ThermalStep::new(0.0);
    }

    #[test]
    fn settle_matches_steady_state() {
        let mut t = ThermalModel::new(Cooling::HeatsinkFan, 22.0);
        t.settle(Watts(3.0));
        let (j, s) = t.steady_state(Watts(3.0));
        assert_eq!(t.junction_c(), j);
        assert_eq!(t.surface_c(), s);
    }
}
