//! Voltage-versus-frequency solver — the model behind Figure 9.
//!
//! The paper measures, per chip, the maximum core clock at which Debian
//! Linux boots for VDD from 0.8 V to 1.2 V (VCS = VDD + 0.05 V). Three
//! effects shape the curve:
//!
//! 1. the **alpha-power delay law** sets the analog maximum frequency of
//!    the die's critical path (rising with voltage, falling slightly
//!    with temperature);
//! 2. **IR drop** across socket, pins, wirebonds and die lowers the
//!    voltage the transistors actually see below the socket-pin voltage
//!    (§IV-C's packaging discussion);
//! 3. the **thermal limit**: at high voltage a fast, leaky die (Chip #1)
//!    reaches the maximum heat the package can transfer, and frequency
//!    must drop to keep the die at a bootable temperature — the Figure 9
//!    roll-off at 1.2 V.
//!
//! The PLL reference clock is discretized, so the reported frequency is
//! quantized onto a ladder and the distance to the next step is the
//! "quantization noise" error bar of Figure 9.

use piton_arch::units::{Hertz, Volts, Watts};
use piton_sim::events::ActivityCounters;
use serde::{Deserialize, Serialize};

use crate::model::{OperatingPoint, PowerModel};
use crate::thermal::{Cooling, ThermalModel};

/// Maximum junction temperature at which the stability workload (a
/// Linux boot) still passes.
pub const T_JUNCTION_LIMIT_C: f64 = 95.0;

/// Frequency derating per °C of junction temperature above 25 °C (hot
/// transistors switch slower).
pub const FREQ_TEMP_DERATE_PER_C: f64 = 8.0e-4;

/// Effective supply-network resistance (socket + wirebond + die grid) in
/// ohms, per rail.
pub const R_SUPPLY_OHMS: f64 = 0.008;

/// One point of the Figure 9 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VfPoint {
    /// Socket-pin core voltage.
    pub vdd: Volts,
    /// Maximum stable (quantized) frequency.
    pub freq: Hertz,
    /// The next PLL step above `freq` — the chip failed there or was
    /// never tried, giving the Figure 9 error bar.
    pub next_step: Hertz,
    /// Whether the point was limited by temperature rather than timing.
    pub thermally_limited: bool,
    /// Junction temperature at the solution.
    pub junction_c: f64,
}

/// The PLL frequency ladder: a geometric grid of achievable core clocks
/// (discretized reference clock × integer dividers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PllLadder {
    base: Hertz,
    ratio: f64,
}

impl PllLadder {
    /// The gateway-FPGA reference ladder: ~3.5% steps from 50 MHz.
    #[must_use]
    pub fn piton() -> Self {
        Self {
            base: Hertz::from_mhz(50.0),
            ratio: 1.035,
        }
    }

    /// Largest ladder frequency ≤ `f`, and the following step.
    ///
    /// # Panics
    ///
    /// Panics if `f` is below the bottom of the ladder.
    #[must_use]
    pub fn quantize(&self, f: Hertz) -> (Hertz, Hertz) {
        let q = self.frequency(self.index_of(f));
        (q, Hertz(q.0 * self.ratio))
    }

    /// The ladder frequency at integer step `index` (step 0 is the
    /// base). The governor tracks its operating point as a ladder index
    /// so state transitions are exact integer arithmetic.
    #[must_use]
    pub fn frequency(&self, index: u32) -> Hertz {
        Hertz(self.base.0 * self.ratio.powf(f64::from(index)))
    }

    /// Largest step index whose frequency does not exceed `f`.
    ///
    /// The closed-form floor is corrected against [`Self::frequency`] at
    /// the boundaries, so this agrees exactly with a linear scan of the
    /// ladder (the governor's reference controller does exactly that
    /// scan).
    ///
    /// # Panics
    ///
    /// Panics if `f` is below the bottom of the ladder.
    #[must_use]
    pub fn index_of(&self, f: Hertz) -> u32 {
        assert!(
            f.0 >= self.base.0,
            "frequency {} below PLL ladder base {}",
            f,
            self.base
        );
        let mut n = ((f.0 / self.base.0).ln() / self.ratio.ln())
            .floor()
            .max(0.0) as u32;
        while self.frequency(n + 1).0 <= f.0 {
            n += 1;
        }
        while n > 0 && self.frequency(n).0 > f.0 {
            n -= 1;
        }
        n
    }
}

impl Default for PllLadder {
    fn default() -> Self {
        Self::piton()
    }
}

/// Solves the maximum bootable frequency across a VDD sweep for one die.
#[derive(Debug, Clone)]
pub struct VfSolver {
    model: PowerModel,
    thermal: ThermalModel,
    ladder: PllLadder,
    /// Activity of the stability workload relative to idle (a Linux boot
    /// keeps roughly one core busy: a small bump over pure clock power).
    boot_activity_factor: f64,
}

impl VfSolver {
    /// Solver for a die with the default heat-sink cooling at the given
    /// ambient temperature.
    #[must_use]
    pub fn new(model: PowerModel, ambient_c: f64) -> Self {
        Self {
            model,
            thermal: ThermalModel::new(Cooling::HeatsinkFan, ambient_c),
            ladder: PllLadder::piton(),
            boot_activity_factor: 1.10,
        }
    }

    /// Chip power of the boot workload at `(vdd, f, junction)`.
    fn boot_power(&self, vdd: Volts, f: Hertz, junction_c: f64) -> Watts {
        let op = OperatingPoint::table_iii()
            .with_vdd_tracked(vdd)
            .with_freq(f)
            .with_junction(junction_c);
        if f.0 <= 0.0 {
            // Clock stopped: static power only.
            return self.model.static_power(op).total();
        }
        let idle = ActivityCounters {
            cycles: 100_000,
            ..Default::default()
        };
        let p = self.model.power(&idle, op);
        let dynamic = p.total() - self.model.static_power(op).total();
        dynamic * self.boot_activity_factor + self.model.static_power(op).total()
    }

    /// The power model of the die being solved.
    #[must_use]
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// The thermal model (heat-sink cooling at the solver's ambient)
    /// used for equilibrium solves.
    #[must_use]
    pub fn thermal(&self) -> &ThermalModel {
        &self.thermal
    }

    /// The PLL frequency ladder.
    #[must_use]
    pub fn ladder(&self) -> PllLadder {
        self.ladder
    }

    /// The V/F capability curve: analog (pre-quantization) maximum
    /// frequency at pin voltage `vdd` and junction temperature `t_j`,
    /// accounting for IR drop and the thermal derate.
    ///
    /// Monotone nonincreasing in `t_j`: a hotter die both switches
    /// slower (derate) and leaks more (deeper IR drop), so the closed-
    /// loop governor can never be *raised* by a temperature increase.
    #[must_use]
    pub fn capability(&self, vdd: Volts, t_j: f64) -> Hertz {
        self.analog_fmax(vdd, t_j)
    }

    /// Analog (pre-quantization) maximum frequency at pin voltage `vdd`
    /// and junction temperature `t_j`, accounting for IR drop.
    fn analog_fmax(&self, vdd: Volts, t_j: f64) -> Hertz {
        // Iterate the IR-drop fixed point: higher f -> more current ->
        // larger drop -> lower die voltage -> lower f.
        let corner = self.model.corner();
        let mut f = self.model.tech().fmax(vdd) * corner.speed;
        for _ in 0..10 {
            let p = self.boot_power(vdd, f, t_j);
            let current = p / vdd;
            // The die voltage cannot collapse below threshold in a
            // functioning system; the thermal walk handles infeasible
            // points.
            let v_die = Volts(
                (vdd.0 - current.0 * R_SUPPLY_OHMS).max(self.model.tech().v_threshold.0 + 0.02),
            );
            let derate = 1.0 - FREQ_TEMP_DERATE_PER_C * (t_j - 25.0).max(0.0);
            f = Hertz(
                (self.model.tech().fmax(v_die) * corner.speed * derate)
                    .0
                    .max(self.ladder.base.0),
            );
        }
        f
    }

    /// Junction temperature at thermal equilibrium for `(vdd, f)` under
    /// the boot workload — the feasibility oracle the governor's
    /// energy-frontier policy consults before committing to a point.
    #[must_use]
    pub fn equilibrium_junction(&self, vdd: Volts, f: Hertz) -> f64 {
        let (t_j, _) = self
            .thermal
            .equilibrium(|t| self.boot_power(vdd, f, t), 120.0);
        t_j
    }

    /// Maximum stable frequency at one pin voltage.
    #[must_use]
    pub fn max_frequency(&self, vdd: Volts) -> VfPoint {
        // Timing limit at the thermal equilibrium of the timing limit.
        let mut t_j = self.thermal.ambient_c() + 10.0;
        let mut f = self.analog_fmax(vdd, t_j);
        for _ in 0..20 {
            t_j = self.equilibrium_junction(vdd, f);
            let next = self.analog_fmax(vdd, t_j.min(150.0));
            if (next.0 - f.0).abs() < 1e4 {
                f = next;
                break;
            }
            f = next;
        }

        // Thermal limit: if the equilibrium junction exceeds the boot
        // limit, walk the frequency down until it doesn't.
        let mut thermally_limited = false;
        let mut t_eq = self.equilibrium_junction(vdd, f);
        while t_eq > T_JUNCTION_LIMIT_C && f.0 > self.ladder.base.0 * 1.1 {
            thermally_limited = true;
            f = Hertz(f.0 * 0.97);
            t_eq = self.equilibrium_junction(vdd, f);
        }

        let (q, next) = self.ladder.quantize(f);
        VfPoint {
            vdd,
            freq: q,
            next_step: next,
            thermally_limited,
            junction_c: t_eq,
        }
    }

    /// The full Figure 9 sweep: VDD from 0.8 V to 1.2 V in 50 mV steps.
    #[must_use]
    pub fn sweep(&self) -> Vec<VfPoint> {
        (0..=8)
            .map(|i| self.max_frequency(Volts(0.8 + 0.05 * f64::from(i))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Calibration;
    use crate::model::ChipCorner;
    use crate::tech::TechModel;

    fn chip(speed: f64, leakage: f64, dynamic: f64) -> PowerModel {
        PowerModel::new(
            Calibration::piton_hpca18(),
            TechModel::ibm32soi(),
            ChipCorner {
                speed,
                leakage,
                dynamic,
            },
        )
    }

    #[test]
    fn pll_ladder_quantizes_down() {
        let l = PllLadder::piton();
        let (q, next) = l.quantize(Hertz::from_mhz(514.0));
        assert!(q.as_mhz() <= 514.0);
        assert!(next.as_mhz() > 514.0);
        assert!((next.as_mhz() / q.as_mhz() - 1.035).abs() < 1e-9);
    }

    #[test]
    fn nominal_chip_matches_figure9_anchor() {
        let solver = VfSolver::new(chip(1.0, 1.0, 1.0), 20.0);
        let p = solver.max_frequency(Volts(1.0));
        // Chip #2 boots at ~514 MHz at 1.0 V (within quantization and IR
        // drop of the analog model).
        assert!(
            (430.0..530.0).contains(&p.freq.as_mhz()),
            "fmax {} MHz",
            p.freq.as_mhz()
        );
        assert!(!p.thermally_limited);
    }

    #[test]
    fn frequency_rises_with_voltage_for_typical_die() {
        let solver = VfSolver::new(chip(1.0, 1.0, 1.0), 20.0);
        let sweep = solver.sweep();
        for pair in sweep.windows(2) {
            assert!(
                pair[1].freq.0 >= pair[0].freq.0 * 0.99,
                "typical die throttled at {} V",
                pair[1].vdd
            );
        }
        // Dynamic range roughly matches the paper (286 -> 620 MHz).
        let ratio = sweep.last().unwrap().freq.0 / sweep[0].freq.0;
        assert!((1.5..=2.6).contains(&ratio), "sweep ratio {ratio}");
    }

    #[test]
    fn fast_leaky_die_throttles_at_high_voltage() {
        // Chip #1: fastest at low voltage, thermally limited at 1.2 V.
        let leaky = VfSolver::new(chip(1.06, 1.45, 1.12), 20.0);
        let typical = VfSolver::new(chip(1.0, 1.0, 1.0), 20.0);

        let low_leaky = leaky.max_frequency(Volts(0.8));
        let low_typ = typical.max_frequency(Volts(0.8));
        assert!(
            low_leaky.freq.0 > low_typ.freq.0,
            "leaky die should be fastest cold"
        );

        let hi = leaky.max_frequency(Volts(1.2));
        assert!(hi.thermally_limited, "no thermal limit at 1.2 V");
        // The paper's Chip #1 peaks before 1.2 V and drops severely
        // there: the 1.2 V point must fall below the sweep's peak.
        let peak = leaky
            .sweep()
            .iter()
            .map(|p| p.freq.0)
            .fold(0.0f64, f64::max);
        assert!(
            hi.freq.0 < 0.97 * peak,
            "frequency must drop at 1.2 V: {} vs peak {}",
            hi.freq.as_mhz(),
            peak / 1e6
        );
    }

    #[test]
    fn junction_temperature_reported_is_consistent() {
        let solver = VfSolver::new(chip(1.0, 1.0, 1.0), 20.0);
        let p = solver.max_frequency(Volts(1.0));
        assert!(p.junction_c > 20.0 && p.junction_c < T_JUNCTION_LIMIT_C + 1.0);
    }

    #[test]
    #[should_panic(expected = "below PLL ladder base")]
    fn quantize_below_ladder_panics() {
        let _ = PllLadder::piton().quantize(Hertz::from_mhz(10.0));
    }
}
