//! Crash and robustness harness for the `piton-serve` binary: the
//! daemon is killed mid-request — by an injected `crash=` abort and by
//! an external SIGKILL — restarted over the same cache directory, and
//! re-asked the same question. Completed shards must be served from
//! cache (never recomputed), the warm client transcript must be
//! byte-identical to a golden never-crashed daemon's, and a hand-torn
//! cache-file tail must be detected, counted and recomputed.
//!
//! Client transcripts (one JSON frame body per line) are the
//! comparison unit: the daemon's frames carry no cache-state-dependent
//! fields, so any two daemons answering the same request must produce
//! identical bytes regardless of crash history.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

use piton_obs::json::{self, Value};

const SERVE: &str = env!("CARGO_BIN_EXE_piton-serve");
const CLIENT: &str = env!("CARGO_BIN_EXE_piton-client");

/// Tiny custom fidelity — milliseconds per grid point.
const FIDELITY: &str = "s=2,c=500,w=2000";

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("piton-serve-crash-{tag}-{}", std::process::id()))
}

struct Daemon {
    child: Child,
    socket: PathBuf,
    stderr_file: PathBuf,
}

impl Daemon {
    /// Starts `piton-serve` over `cache` with 4-point shards, stderr
    /// captured to a file for post-mortem assertions.
    fn start(dir: &Path, tag: &str) -> Self {
        let socket = dir.join(format!("{tag}.sock"));
        let stderr_file = dir.join(format!("{tag}.stderr"));
        let child = Command::new(SERVE)
            .args([
                "--socket",
                socket.to_str().unwrap(),
                "--cache-dir",
                dir.join("cache").to_str().unwrap(),
                "--jobs",
                "2",
                "--shard",
                "4",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::from(
                std::fs::File::create(&stderr_file).expect("stderr file"),
            ))
            .spawn()
            .expect("spawn piton-serve");
        Daemon {
            child,
            socket,
            stderr_file,
        }
    }

    /// Runs `piton-client` against this daemon.
    fn client(&self, requests: &[&str]) -> Output {
        Command::new(CLIENT)
            .args(["--socket", self.socket.to_str().unwrap()])
            .args(requests)
            .output()
            .expect("spawn piton-client")
    }

    /// Reads a `serve.*` counter off a live metrics round-trip.
    fn counter(&self, name: &str) -> u64 {
        let out = self.client(&["metrics"]);
        assert!(out.status.success(), "metrics: {}", stderr(&out));
        let line = String::from_utf8(out.stdout).expect("metrics frame is utf-8");
        let frame = json::parse(line.trim()).expect("metrics frame parses");
        match frame.get("counters").and_then(|c| c.get(name)) {
            Some(Value::Int(n)) => u64::try_from(*n).expect("counter fits u64"),
            other => panic!("counter {name}: {other:?} in {line}"),
        }
    }

    fn stderr_text(&self) -> String {
        std::fs::read_to_string(&self.stderr_file).unwrap_or_default()
    }

    /// Waits for the daemon process to exit (it aborts on injected
    /// crashes; callers send `shutdown` for clean exits).
    fn wait(&mut self) -> std::process::ExitStatus {
        let t0 = Instant::now();
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(120),
                "daemon never exited"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn shutdown(mut self) {
        let out = self.client(&["shutdown"]);
        assert!(out.status.success(), "shutdown: {}", stderr(&out));
        let status = self.wait();
        assert!(status.success(), "clean shutdown exits 0, got {status:?}");
    }
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn run_request(grid: &str, fault: Option<&str>) -> String {
    match fault {
        Some(f) => format!(
            r#"{{"op":"run","section":"scaling","grid":"{grid}","fidelity":"{FIDELITY}","fault":"{f}"}}"#
        ),
        None => {
            format!(r#"{{"op":"run","section":"scaling","grid":"{grid}","fidelity":"{FIDELITY}"}}"#)
        }
    }
}

/// The single per-context cache file of a cache directory that has
/// served exactly one context.
fn cache_file(dir: &Path) -> PathBuf {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir.join("cache"))
        .expect("cache dir")
        .filter_map(|e| Some(e.ok()?.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("ctx-") && n.ends_with(".journal"))
        })
        .collect();
    assert_eq!(files.len(), 1, "one context expected: {files:?}");
    files.pop().expect("one file")
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = tmp(tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create dir");
    dir
}

#[test]
fn injected_crash_resumes_from_cache_byte_identically() {
    // Golden: a never-crashed daemon answers the request cold.
    let golden_dir = fresh_dir("golden");
    let golden = Daemon::start(&golden_dir, "golden");
    let golden_out = golden.client(&[&run_request("0-19", None)]);
    assert!(golden_out.status.success(), "{}", stderr(&golden_out));
    golden.shutdown();

    // Crash run: same request plus `crash=scaling:10`. Crash points
    // are stripped from the cache context, so this shares the golden's
    // context — they decide when the process dies, never what it
    // computes. With 4-point shards the abort fires after the shard
    // holding index 10 (8..=11) is durable: 12 records on disk, the
    // client saw only shards 0..=7 before the daemon died.
    let crash_dir = fresh_dir("crash");
    let mut crashed = Daemon::start(&crash_dir, "cold");
    let crash_out = crashed.client(&[&run_request("0-19", Some("crash=scaling:10"))]);
    assert!(
        !crash_out.status.success(),
        "client must report the daemon dying mid-response"
    );
    let status = crashed.wait();
    assert!(!status.success(), "daemon must abort, got {status:?}");
    assert!(
        crashed
            .stderr_text()
            .contains("injected crash at scaling:10"),
        "{}",
        crashed.stderr_text()
    );

    // Restart over the same cache; the completed shards are served,
    // only the lost tail is computed, and the transcript matches the
    // golden byte-for-byte.
    let warm = Daemon::start(&crash_dir, "warm");
    let warm_out = warm.client(&[&run_request("0-19", None)]);
    assert!(warm_out.status.success(), "{}", stderr(&warm_out));
    assert_eq!(
        golden_out.stdout, warm_out.stdout,
        "post-crash transcript must be byte-identical to the golden"
    );
    assert_eq!(warm.counter("serve.cache_hits"), 12, "durable shards hit");
    assert_eq!(
        warm.counter("serve.points_computed"),
        8,
        "only the lost shards recompute"
    );
    assert_eq!(warm.counter("serve.recovered"), 12, "recovery counted");
    assert_eq!(warm.counter("serve.torn"), 0);

    // A second warm pass serves everything: the crash is fully healed.
    let healed = warm.client(&[&run_request("0-19", None)]);
    assert_eq!(golden_out.stdout, healed.stdout);
    assert_eq!(warm.counter("serve.points_computed"), 8, "no new computes");
    warm.shutdown();

    let _ = std::fs::remove_dir_all(&golden_dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
}

#[test]
fn sigkill_mid_request_loses_nothing_durable() {
    let golden_dir = fresh_dir("sig-golden");
    let golden = Daemon::start(&golden_dir, "golden");
    let golden_out = golden.client(&[&run_request("0-49", None)]);
    assert!(golden_out.status.success(), "{}", stderr(&golden_out));
    golden.shutdown();

    // Fire the same request and SIGKILL the daemon as soon as the
    // cache file shows mid-request progress.
    let dir = fresh_dir("sigkill");
    let mut victim = Daemon::start(&dir, "victim");
    let mut client = Command::new(CLIENT)
        .args(["--socket", victim.socket.to_str().unwrap()])
        .arg(run_request("0-49", None))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn client");
    let file = dir.join("cache");
    let t0 = Instant::now();
    loop {
        let progress = std::fs::read_dir(&file)
            .ok()
            .into_iter()
            .flatten()
            .filter_map(|e| e.ok()?.metadata().ok())
            .map(|m| m.len())
            .sum::<u64>();
        if progress >= 400 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(120),
            "daemon never reached mid-request progress"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    victim.child.kill().expect("SIGKILL daemon");
    let _ = victim.child.wait();
    let _ = client.wait();

    // Restart: every durably-recorded point is served, the remainder
    // recomputed, and the transcript matches the golden exactly.
    let warm = Daemon::start(&dir, "warm");
    let warm_out = warm.client(&[&run_request("0-49", None)]);
    assert!(warm_out.status.success(), "{}", stderr(&warm_out));
    assert_eq!(
        golden_out.stdout, warm_out.stdout,
        "post-SIGKILL transcript must be byte-identical to the golden"
    );
    let hits = warm.counter("serve.cache_hits");
    let computed = warm.counter("serve.points_computed");
    assert!(hits > 0, "the kill landed after durable appends");
    assert_eq!(hits + computed, 50, "every point served exactly once");
    warm.shutdown();

    let _ = std::fs::remove_dir_all(&golden_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_cache_tail_is_counted_and_recomputed() {
    let dir = fresh_dir("torn");
    let daemon = Daemon::start(&dir, "cold");
    let cold_out = daemon.client(&[&run_request("0-9", None)]);
    assert!(cold_out.status.success(), "{}", stderr(&cold_out));
    daemon.shutdown();

    // Tear the cache file mid-record — exactly what a crash inside a
    // `write` leaves behind.
    let file = cache_file(&dir);
    let bytes = std::fs::read(&file).expect("read cache file");
    std::fs::write(&file, &bytes[..bytes.len() - 11]).expect("tear cache file");

    let warm = Daemon::start(&dir, "warm");
    let warm_out = warm.client(&[&run_request("0-9", None)]);
    assert!(warm_out.status.success(), "{}", stderr(&warm_out));
    assert_eq!(
        cold_out.stdout, warm_out.stdout,
        "recovery must not change a single response byte"
    );
    assert!(warm.counter("serve.torn") > 0, "the tear must be counted");
    assert_eq!(warm.counter("serve.recovered"), 9, "intact prefix kept");
    assert_eq!(warm.counter("serve.cache_hits"), 9);
    assert_eq!(
        warm.counter("serve.points_computed"),
        1,
        "exactly the torn record recomputes"
    );
    warm.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_requests_leave_the_daemon_serving() {
    let dir = fresh_dir("malformed");
    let daemon = Daemon::start(&dir, "daemon");

    // One connection: garbage, a refused run, then real work.
    let out = daemon.client(&[
        "definitely not json",
        r#"{"op":"run","section":"flux-capacitor"}"#,
        "ping",
        &run_request("0-3", None),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let transcript = String::from_utf8(out.stdout).expect("utf-8 transcript");
    let kinds: Vec<String> = transcript
        .lines()
        .map(|l| {
            json::parse(l)
                .expect("frame parses")
                .get("frame")
                .and_then(Value::as_str)
                .expect("frame kind")
                .to_owned()
        })
        .collect();
    assert_eq!(
        kinds,
        ["error", "error", "pong", "hello", "result", "result", "result", "result", "done"],
        "{transcript}"
    );
    assert_eq!(daemon.counter("serve.errors"), 2);
    assert_eq!(daemon.counter("serve.points_computed"), 4);
    daemon.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}
