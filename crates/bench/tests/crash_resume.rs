//! Supervisor harness for the durable-sweep contract: a `reproduce`
//! child is killed mid-sweep — by an injected `crash=` abort and by an
//! external wall-clock SIGKILL — and relaunched with `--resume`. In
//! every scenario (including a hand-torn journal tail) the resumed
//! run's stdout and deterministic manifest projection must be
//! **byte-identical** to an uninterrupted, journal-free golden run.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::time::{Duration, Instant};

use piton_obs::manifest::RunManifest;

const BIN: &str = env!("CARGO_BIN_EXE_reproduce");

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("piton-crash-resume-{tag}-{}", std::process::id()))
}

/// Runs the quick reproduction with extra args, capturing everything.
fn reproduce(jobs: &str, extra: &[&str]) -> Output {
    Command::new(BIN)
        .args(["quick", "--jobs", jobs])
        .args(extra)
        .output()
        .expect("spawn reproduce")
}

fn deterministic_projection(manifest_path: &Path) -> String {
    let doc = std::fs::read_to_string(manifest_path).expect("read manifest");
    RunManifest::from_json(&doc)
        .expect("parse manifest")
        .deterministic_json()
}

fn stderr_text(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn crash_sigkill_and_torn_tail_all_resume_byte_identically() {
    let journal = tmp("journal");
    let golden_manifest = tmp("golden.json");
    let _ = std::fs::remove_file(&journal);

    // The golden: uninterrupted, journal-free, jobs=4.
    let golden = reproduce("4", &["--metrics", golden_manifest.to_str().unwrap()]);
    assert!(golden.status.success(), "{}", stderr_text(&golden));
    let golden_projection = deterministic_projection(&golden_manifest);

    // Scenario 1 — injected crash: `crash=scaling:20` hard-aborts the
    // child when that grid point completes, strictly after its record
    // is durably journaled.
    let crash = reproduce(
        "4",
        &[
            "--journal",
            journal.to_str().unwrap(),
            "--fault-plan=crash=scaling:20",
        ],
    );
    assert!(
        !crash.status.success(),
        "the crash run must die, got {:?}",
        crash.status
    );
    assert!(
        stderr_text(&crash).contains("injected crash at scaling:20"),
        "{}",
        stderr_text(&crash)
    );

    // Resume with the *same* plan: scaling:20 is served from the
    // journal, so the crash point is never recomputed and never
    // re-fires — the run completes and matches the golden exactly.
    let resume_manifest = tmp("resume.json");
    let resume = reproduce(
        "1",
        &[
            "--journal",
            journal.to_str().unwrap(),
            "--resume",
            "--fault-plan=crash=scaling:20",
            "--metrics",
            resume_manifest.to_str().unwrap(),
        ],
    );
    assert!(resume.status.success(), "{}", stderr_text(&resume));
    assert!(stderr_text(&resume).contains("(resuming)"));
    assert_eq!(
        golden.stdout, resume.stdout,
        "crash/resume stdout must be byte-identical to the golden"
    );
    assert_eq!(
        golden_projection,
        deterministic_projection(&resume_manifest),
        "deterministic manifest projections must match"
    );

    // Scenario 2 — torn tail: chop bytes off the now-complete journal
    // (a crash mid-append leaves exactly this) and resume at another
    // jobs level. The torn record is discarded and recomputed.
    let bytes = std::fs::read(&journal).unwrap();
    std::fs::write(&journal, &bytes[..bytes.len() - 23]).unwrap();
    let torn_manifest = tmp("torn.json");
    let torn = reproduce(
        "4",
        &[
            "--journal",
            journal.to_str().unwrap(),
            "--resume",
            "--metrics",
            torn_manifest.to_str().unwrap(),
        ],
    );
    assert!(torn.status.success(), "{}", stderr_text(&torn));
    assert!(
        stderr_text(&torn).contains("torn byte(s) discarded"),
        "{}",
        stderr_text(&torn)
    );
    assert_eq!(
        golden.stdout, torn.stdout,
        "torn-tail resume stdout must be byte-identical to the golden"
    );
    assert_eq!(golden_projection, deterministic_projection(&torn_manifest));
    let torn_stats = RunManifest::from_json(&std::fs::read_to_string(&torn_manifest).unwrap())
        .unwrap()
        .journal
        .expect("durable run records journal stats");
    assert!(
        torn_stats.torn > 0,
        "the tear must be detected: {torn_stats:?}"
    );
    assert_eq!(
        torn_stats.appended, 1,
        "exactly the torn record is recomputed: {torn_stats:?}"
    );

    // Scenario 3 — external SIGKILL at a wall-clock instant: spawn a
    // fresh durable run, wait until the journal shows mid-sweep
    // progress, kill it dead, and resume.
    let _ = std::fs::remove_file(&journal);
    let mut child = Command::new(BIN)
        .args([
            "quick",
            "--jobs",
            "4",
            "--journal",
            journal.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn reproduce child");
    let t0 = Instant::now();
    while std::fs::metadata(&journal).map_or(0, |m| m.len()) < 3_000 {
        assert!(
            t0.elapsed() < Duration::from_secs(300),
            "child never reached mid-sweep progress"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    child.kill().expect("SIGKILL the child");
    let _ = child.wait();

    let killed_manifest = tmp("killed.json");
    let resumed = reproduce(
        "4",
        &[
            "--journal",
            journal.to_str().unwrap(),
            "--resume",
            "--metrics",
            killed_manifest.to_str().unwrap(),
        ],
    );
    assert!(resumed.status.success(), "{}", stderr_text(&resumed));
    assert_eq!(
        golden.stdout, resumed.stdout,
        "post-SIGKILL resume stdout must be byte-identical to the golden"
    );
    assert_eq!(
        golden_projection,
        deterministic_projection(&killed_manifest)
    );
    let stats = RunManifest::from_json(&std::fs::read_to_string(&killed_manifest).unwrap())
        .unwrap()
        .journal
        .expect("durable run records journal stats");
    assert!(stats.served > 0, "the kill landed after appends: {stats:?}");
    assert!(stats.appended > 0, "the kill landed mid-sweep: {stats:?}");

    for p in [
        journal,
        golden_manifest,
        resume_manifest,
        torn_manifest,
        killed_manifest,
    ] {
        let _ = std::fs::remove_file(p);
    }
}
