//! The experiment backend is part of the journal context: results a
//! cycle run journaled must never be served to an analytic run (their
//! grids share section names, but the numbers mean different things).
//! A `--resume` under a different backend must be refused outright —
//! exit status 2 and a context-mismatch diagnostic — before any grid
//! point is recomputed or trusted.

use std::path::PathBuf;
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_reproduce");

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "piton-backend-context-{tag}-{}",
        std::process::id()
    ))
}

/// Runs the quick reproduction with extra args, capturing everything.
fn reproduce(extra: &[&str]) -> Output {
    Command::new(BIN)
        .args(["quick", "--jobs", "4"])
        .args(extra)
        .output()
        .expect("spawn reproduce")
}

fn stderr_text(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn cycle_journal_refuses_an_analytic_resume() {
    let journal = tmp("journal");
    let manifest = tmp("manifest.json");
    let _ = std::fs::remove_file(&journal);

    // A journaled cycle run (the default backend).
    let cycle = reproduce(&[
        "--journal",
        journal.to_str().unwrap(),
        "--metrics",
        manifest.to_str().unwrap(),
    ]);
    assert!(cycle.status.success(), "{}", stderr_text(&cycle));

    // Resuming that journal under the analytic backend must be
    // refused before any point is served.
    let refused = reproduce(&[
        "--journal",
        journal.to_str().unwrap(),
        "--resume",
        "--backend",
        "analytic",
        "--metrics",
        manifest.to_str().unwrap(),
    ]);
    assert_eq!(
        refused.status.code(),
        Some(2),
        "stderr: {}",
        stderr_text(&refused)
    );
    let err = stderr_text(&refused);
    assert!(err.contains("context mismatch"), "{err}");
    assert!(
        err.contains("backend=cycle") && err.contains("backend=analytic"),
        "the diagnostic must name both backends: {err}"
    );

    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&manifest);
}

#[test]
fn unknown_backend_exits_2_listing_the_accepted_forms() {
    let out = reproduce(&["--backend", "warp"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr_text(&out));
    let err = stderr_text(&out);
    assert!(
        err.contains("cycle") && err.contains("analytic") && err.contains("both"),
        "{err}"
    );
}
