//! Shared plumbing for the benchmark harness.
//!
//! Each Criterion bench target regenerates one table or figure of the
//! paper (see `benches/`), timing the full experiment pipeline at a
//! reduced fidelity and printing the regenerated rows once per run.
//! The `reproduce` binary (`cargo run --release -p piton-bench --bin
//! reproduce`) runs everything at paper fidelity and emits the complete
//! EXPERIMENTS.md body.

use std::sync::Once;

use criterion::Criterion;
use piton_core::Fidelity;

/// Fidelity used inside timing loops: small enough that Criterion can
/// collect several samples.
#[must_use]
pub fn bench_fidelity() -> Fidelity {
    Fidelity {
        samples: 8,
        chunk_cycles: 2_000,
        warmup_cycles: 20_000,
        jobs: 1,
        fault: None,
        governor: piton_core::GovernorConfig::Off,
        journal: None,
        backend: piton_core::experiments::Backend::Cycle,
    }
}

/// Fidelity used for the one-shot table printout accompanying a bench.
#[must_use]
pub fn print_fidelity() -> Fidelity {
    Fidelity::quick()
}

/// Prints a regenerated table once per process (so repeated Criterion
/// iterations don't spam).
pub fn print_once(once: &'static Once, render: impl FnOnce() -> String) {
    once.call_once(|| {
        println!("\n{}", render());
    });
}

/// A Criterion instance tuned for experiment-scale benchmarks (seconds
/// per iteration rather than nanoseconds).
#[must_use]
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelities_are_ordered() {
        let b = bench_fidelity();
        let p = print_fidelity();
        assert!(b.samples <= p.samples);
        assert!(b.chunk_cycles <= p.chunk_cycles);
    }

    #[test]
    fn print_once_prints_once() {
        static ONCE: Once = Once::new();
        let mut calls = 0;
        for _ in 0..3 {
            print_once(&ONCE, || {
                calls += 1;
                String::new()
            });
        }
        assert_eq!(calls, 1);
    }
}
