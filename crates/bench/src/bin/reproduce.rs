//! Regenerates every table and figure of the paper's evaluation and
//! prints them in EXPERIMENTS.md form.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p piton-bench --bin reproduce              # full fidelity
//! cargo run --release -p piton-bench --bin reproduce -- quick     # reduced fidelity
//! cargo run --release -p piton-bench --bin reproduce -- csv=DIR   # also export CSV datasets
//! cargo run --release -p piton-bench --bin reproduce -- --jobs 8  # sweep worker threads
//! ```
//!
//! Sweep parallelism defaults to the machine's available cores and can
//! be overridden with `--jobs N` (or the `PITON_JOBS` environment
//! variable). Results are byte-identical at every jobs level; a
//! per-section speedup table is printed to stderr at the end.
//!
//! Fault injection (see `piton_board::fault`) is enabled with
//! `--fault-plan=SPEC`, the `PITON_FAULT_PLAN` environment variable
//! (same spec syntax), or `PITON_FAULT_SEED=N` (a bare seed with
//! default monitor-fault rates). Grid points that fail permanently are
//! rendered as explicitly-marked holes and the process exits nonzero so
//! a partially-failed reproduction cannot pass silently.
//!
//! The closed-loop DVFS/thermal governor family (see
//! `piton_core::experiments::governor`) is off by default — the stdout
//! of an ungoverned run is byte-identical to builds that predate the
//! governor. `--governor=POLICY` (or `PITON_GOVERNOR`), with POLICY one
//! of `throttle-on-boot`, `race-to-halt` or `energy-frontier`, appends
//! the closed-loop Figure 9/18 reproductions and the energy-frontier
//! race, and records the policy in the run manifest.
//!
//! Durable runs (see `piton_core::journal`): `--journal PATH` (or
//! `PITON_JOURNAL`) appends every completed grid point of the
//! journaled sweep sections (`epi`, `noc`, `scaling`) to a write-ahead
//! `piton-journal/v1` file, fsync'd at sweep boundaries. Adding
//! `--resume` serves completed points from an existing journal and
//! recomputes only the missing ones — the stdout, tables and
//! deterministic manifest projection are byte-identical to an
//! uninterrupted run at any `--jobs` level. Torn or truncated trailing
//! records are detected by checksum, discarded and recomputed, never
//! trusted. Deterministic crash injection for the recovery harness:
//! a `crash=SECTION:IDX` fault-plan entry hard-aborts the process when
//! that grid point completes, strictly *after* its record is durably
//! on disk.
//!
//! Backend selection (see `piton_core::analytic`): `--backend cycle`
//! (the default; stdout is byte-identical to builds that predate the
//! knob), `--backend analytic`, or `--backend both` — also settable
//! via `PITON_BACKEND`. The analytic backend calibrates a closed-form
//! power model against a battery of cycle-level probes, reproduces the
//! power figures from three dot products per point, and finishes with
//! the `design_space` mega-sweep the cycle engine could never run.
//! `both` runs the full cycle flow *and* the analytic backend on the
//! same grid and appends a per-figure analytic-vs-cycle error table;
//! any figure over its committed error budget fails the run. The
//! backend is part of the journal context, so a journal recorded under
//! one backend refuses to resume under another. Analytic and `both`
//! runs record the backend, fitted coefficients and fit residuals in
//! the run manifest.
//!
//! Observability (see `piton_obs`): `--trace SPEC` (or `PITON_TRACE`)
//! streams structured simulator events to a JSONL file — spec grammar
//! in `piton_obs::trace::TraceSpec` — and every invocation writes a
//! `piton-run-manifest/v1` run manifest (section timings, sweep
//! holes, and the full metrics-registry snapshot) to
//! `piton-run-manifest.json`, overridable with `--metrics PATH` or
//! `PITON_METRICS`. Neither touches stdout: the rendered tables stay
//! byte-identical with and without them.

use std::time::{Duration, Instant};

use piton_board::fault::{self, FaultPlan};
use piton_core::analytic::{self, compare, predict};
use piton_core::experiments::{
    ablations, area, core_scaling, design_space, epi, governor, mem_latency, memory_energy,
    mt_vs_mc, noc_energy, specint, static_idle, thermal, vf_sweep, yield_stats, Backend, Fidelity,
};
use piton_core::journal;
use piton_core::report::Hole;
use piton_core::runner;
use piton_core::GovernorConfig;
use piton_obs::manifest::{CalibrationRecord, HoleRecord, RunManifest, SectionRecord};
use piton_obs::metrics;
use piton_obs::trace::{self, TraceSpec};
use piton_sim::watchdog;

/// Wall/busy timing of one reproduced section.
struct SectionTiming {
    title: &'static str,
    wall: Duration,
    stats: runner::SweepStats,
}

fn parse_jobs() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if let Some(n) = a
            .strip_prefix("--jobs=")
            .or_else(|| a.strip_prefix("jobs="))
        {
            return n
                .parse()
                .map_or_else(|_| runner::default_jobs(), |n: usize| n.max(1));
        }
        if a == "--jobs" {
            if let Some(n) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                return n.max(1);
            }
        }
    }
    runner::default_jobs()
}

/// Resolves the fault plan from `--fault-plan=SPEC`, `PITON_FAULT_PLAN`
/// (same spec), or `PITON_FAULT_SEED` (bare seed, default rates) — in
/// that order of precedence. Exits with status 2 on a malformed spec.
fn parse_fault_plan() -> Option<FaultPlan> {
    let args: Vec<String> = std::env::args().collect();
    let spec = args
        .iter()
        .enumerate()
        .find_map(|(i, a)| {
            a.strip_prefix("--fault-plan=")
                .map(str::to_owned)
                .or_else(|| {
                    (a == "--fault-plan")
                        .then(|| args.get(i + 1).cloned())
                        .flatten()
                })
        })
        .or_else(|| std::env::var("PITON_FAULT_PLAN").ok());
    if let Some(spec) = spec {
        match FaultPlan::parse(&spec) {
            Ok(plan) => return Some(plan),
            Err(e) => {
                eprintln!("reproduce: {e}");
                std::process::exit(2);
            }
        }
    }
    match std::env::var("PITON_FAULT_SEED").ok() {
        Some(seed) => match seed.parse() {
            Ok(seed) => Some(FaultPlan::with_seed(seed)),
            Err(_) => {
                eprintln!("reproduce: PITON_FAULT_SEED must be a u64, got {seed:?}");
                std::process::exit(2);
            }
        },
        None => None,
    }
}

/// Resolves the governor policy from `--governor=POLICY` /
/// `--governor POLICY` or `PITON_GOVERNOR` (default off). Exits with
/// status 2 on an unknown policy name.
fn parse_governor() -> GovernorConfig {
    let args: Vec<String> = std::env::args().collect();
    let spec = args
        .iter()
        .enumerate()
        .find_map(|(i, a)| {
            a.strip_prefix("--governor=")
                .map(str::to_owned)
                .or_else(|| {
                    (a == "--governor")
                        .then(|| args.get(i + 1).cloned())
                        .flatten()
                })
        })
        .or_else(|| std::env::var("PITON_GOVERNOR").ok());
    match spec {
        None => GovernorConfig::Off,
        Some(spec) => match GovernorConfig::parse(&spec) {
            Ok(policy) => policy,
            Err(e) => {
                eprintln!("reproduce: bad --governor policy: {e}");
                std::process::exit(2);
            }
        },
    }
}

/// Resolves the backend from `--backend=NAME` / `--backend NAME` or
/// `PITON_BACKEND` (default `cycle`). Exits with status 2 on an
/// unknown backend name.
fn parse_backend() -> Backend {
    let args: Vec<String> = std::env::args().collect();
    let spec = args
        .iter()
        .enumerate()
        .find_map(|(i, a)| {
            a.strip_prefix("--backend=").map(str::to_owned).or_else(|| {
                (a == "--backend")
                    .then(|| args.get(i + 1).cloned())
                    .flatten()
            })
        })
        .or_else(|| std::env::var("PITON_BACKEND").ok());
    match spec {
        None => Backend::Cycle,
        Some(spec) => match Backend::parse(&spec) {
            Ok(backend) => backend,
            Err(e) => {
                eprintln!("reproduce: bad --backend: {e}");
                std::process::exit(2);
            }
        },
    }
}

/// Resolves the trace spec from `--trace=SPEC` / `--trace SPEC` or
/// `PITON_TRACE`. Exits with status 2 on a malformed spec.
fn parse_trace_spec() -> Option<TraceSpec> {
    let args: Vec<String> = std::env::args().collect();
    let spec = args
        .iter()
        .enumerate()
        .find_map(|(i, a)| {
            a.strip_prefix("--trace=")
                .map(str::to_owned)
                .or_else(|| (a == "--trace").then(|| args.get(i + 1).cloned()).flatten())
        })
        .or_else(|| std::env::var("PITON_TRACE").ok())?;
    match TraceSpec::parse(&spec) {
        Ok(spec) => Some(spec),
        Err(e) => {
            eprintln!("reproduce: bad --trace spec: {e}");
            std::process::exit(2);
        }
    }
}

/// Resolves the run-manifest output path from `--metrics=PATH` /
/// `--metrics PATH` or `PITON_METRICS` (default
/// `piton-run-manifest.json`).
fn parse_manifest_path() -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .enumerate()
        .find_map(|(i, a)| {
            a.strip_prefix("--metrics=").map(str::to_owned).or_else(|| {
                (a == "--metrics")
                    .then(|| args.get(i + 1).cloned())
                    .flatten()
            })
        })
        .or_else(|| std::env::var("PITON_METRICS").ok())
        .unwrap_or_else(|| "piton-run-manifest.json".to_owned())
}

/// Resolves the result-journal path from `--journal=PATH` /
/// `--journal PATH` or `PITON_JOURNAL`, plus whether `--resume` was
/// requested. `--resume` without a journal path exits 2: there is
/// nothing to resume from.
fn parse_journal() -> (Option<String>, bool) {
    let args: Vec<String> = std::env::args().collect();
    let path = args
        .iter()
        .enumerate()
        .find_map(|(i, a)| {
            a.strip_prefix("--journal=").map(str::to_owned).or_else(|| {
                (a == "--journal")
                    .then(|| args.get(i + 1).cloned())
                    .flatten()
            })
        })
        .or_else(|| std::env::var("PITON_JOURNAL").ok());
    let resume = args.iter().any(|a| a == "--resume");
    if resume && path.is_none() {
        eprintln!("reproduce: --resume requires --journal PATH (or PITON_JOURNAL)");
        std::process::exit(2);
    }
    (path, resume)
}

/// The journal context spec — the shared [`journal::run_context`]
/// keyed on this run's fidelity label, fault effects and backend. The
/// serve daemon derives cache contexts through the same function, so a
/// `--journal` file and a `piton-serve` cache entry for the same
/// configuration carry byte-identical context strings.
fn journal_context(quick: bool, plan: Option<&FaultPlan>, backend: Backend) -> String {
    journal::run_context(if quick { "quick" } else { "full" }, plan, backend)
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick");
    let jobs = parse_jobs();
    let backend = parse_backend();
    let governor_policy = parse_governor();
    let fault_plan = parse_fault_plan();
    let trace_spec = parse_trace_spec();
    let manifest_path = parse_manifest_path();
    let (journal_path, resume) = parse_journal();
    // The registry only accumulates (and is drained into the run
    // manifest); nothing printed to stdout depends on it.
    metrics::enable();
    // Record the effective watchdog knobs so an archived run is
    // attributable to its hang-detection configuration.
    #[allow(clippy::cast_precision_loss)]
    {
        metrics::gauge_set("watchdog.chunk_cycles", watchdog::chunk_cycles() as f64);
        metrics::gauge_set("watchdog.limit_cycles", watchdog::limit_cycles() as f64);
    }
    if let Some(spec) = &trace_spec {
        trace::install_sink(&spec.out);
        trace::set_worker_spec(Some(spec.clone()));
        trace::install(spec, true);
    }
    let csv_dir: Option<std::path::PathBuf> =
        std::env::args().find_map(|a| a.strip_prefix("csv=").map(std::path::PathBuf::from));
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv directory");
    }
    let write_csv = |name: &str, data: String| {
        if let Some(dir) = &csv_dir {
            std::fs::write(dir.join(name), data).expect("write csv");
        }
    };
    let mut fidelity = if quick {
        Fidelity::quick()
    } else {
        Fidelity::full()
    }
    .with_jobs(jobs)
    .with_backend(backend)
    .with_governor(governor_policy);
    if let Some(plan) = &fault_plan {
        fidelity = fidelity.with_fault(fault::register(plan.clone()));
    }
    let journal_token = journal_path.as_ref().map(|path| {
        let context = journal_context(quick, fault_plan.as_ref(), backend);
        if !resume {
            // A fresh durable run starts from a clean slate; only
            // `--resume` trusts (and recovers) an existing journal.
            let _ = std::fs::remove_file(path);
        }
        match journal::Journal::open(std::path::Path::new(path), &context) {
            Ok(j) => {
                let s = j.stats();
                eprintln!(
                    "reproduce: journal {path}: {} point(s) recovered, {} torn byte(s) discarded{}",
                    s.recovered,
                    s.torn,
                    if resume { " (resuming)" } else { "" }
                );
                journal::register(j)
            }
            Err(e) => {
                eprintln!("reproduce: {e}");
                std::process::exit(2);
            }
        }
    });
    if let Some(token) = journal_token {
        fidelity = fidelity.with_journal(token);
    }
    eprintln!(
        "reproduce: {} fidelity, {jobs} sweep worker(s)",
        if quick { "quick" } else { "full" }
    );
    if backend != Backend::Cycle {
        eprintln!("reproduce: backend {}", backend.label());
    }
    if !governor_policy.is_off() {
        eprintln!("reproduce: closed-loop governor family enabled (policy {governor_policy})");
    }
    if let Some(plan) = &fault_plan {
        eprintln!(
            "reproduce: fault plan active (seed {}, drop {}, stuck {}, glitch {}, {} sabotage(s), {} crash point(s))",
            plan.seed,
            plan.drop_rate,
            plan.stuck_rate,
            plan.glitch_rate,
            plan.sabotage.len(),
            plan.crash.len()
        );
    }

    let t0 = Instant::now();
    let mut timings: Vec<SectionTiming> = Vec::new();
    let mut section = |title: &'static str, body: String| {
        println!("\n# {title}\n");
        println!("{body}");
        // `body` was produced before entry; charge the elapsed time
        // since the previous section to this one.
        let wall = t0.elapsed() - timings.iter().map(|t| t.wall).sum::<Duration>();
        let stats = runner::take_stats();
        eprintln!("[{:7.1?}] {title} done", t0.elapsed());
        timings.push(SectionTiming { title, wall, stats });
    };

    section(
        "Table IV — chip testing statistics",
        yield_stats::run().render(),
    );
    section("Figure 8 — area breakdown", area::run().render());
    section(
        "Figure 9 — voltage versus frequency",
        vf_sweep::run_with_jobs(jobs).render(),
    );
    let mut holes = 0usize;
    let mut hole_records: Vec<HoleRecord> = Vec::new();
    let record_holes = |records: &mut Vec<HoleRecord>, hs: &[Hole]| {
        records.extend(hs.iter().map(|h| HoleRecord {
            section: h.section.clone(),
            index: h.index,
            point: h.point.clone(),
            attempts: h.attempts,
            error: h.error.clone(),
        }));
    };
    // Calibrate the analytic backend up front so the per-figure
    // comparisons can ride along as each cycle result lands.
    let cal = if backend.runs_analytic() {
        let t_cal = Instant::now();
        match analytic::calibrate(fidelity) {
            Ok(cal) => {
                eprintln!(
                    "reproduce: analytic model fitted against {} cycle-level probe(s) in {:.1?}",
                    cal.report.probes,
                    t_cal.elapsed()
                );
                section(
                    "Calibration — closed-form fit vs cycle-level probes",
                    analytic::render_calibration(&cal),
                );
                Some(cal)
            }
            Err(e) => {
                eprintln!("reproduce: calibration failed: {e}");
                std::process::exit(2);
            }
        }
    } else {
        None
    };
    let mut comparisons: Vec<compare::FigureComparison> = Vec::new();
    let mut fig13_wall: Option<Duration> = None;
    if backend.runs_cycle() {
        let static_result = static_idle::run(fidelity);
        if let Some(cal) = &cal {
            comparisons.extend(compare::compare_static_idle(&static_result, cal));
        }
        section(
            "Figure 10 + Table V — static and idle power",
            static_result.render(),
        );
        let epi_result = epi::run(fidelity);
        holes += epi_result.holes.len();
        record_holes(&mut hole_records, &epi_result.holes);
        write_csv("figure11_epi.csv", epi_result.to_csv());
        if let Some(cal) = &cal {
            comparisons.push(compare::compare_epi(&epi_result, cal));
        }
        section(
            "Figure 11 + Table VI — energy per instruction",
            epi_result.render(),
        );
        let mem_result = memory_energy::run(fidelity);
        write_csv("table7_memory_energy.csv", mem_result.to_csv());
        section("Table VII — memory system energy", mem_result.render());
        let noc_result = noc_energy::run(fidelity);
        holes += noc_result.holes.len();
        record_holes(&mut hole_records, &noc_result.holes);
        write_csv("figure12_noc_epf.csv", noc_result.to_csv());
        if let Some(cal) = &cal {
            comparisons.push(compare::compare_noc(&noc_result, cal));
        }
        section("Figure 12 — NoC energy per flit", noc_result.render());
        let cores: Vec<usize> = if quick {
            vec![1, 5, 9, 13, 17, 21, 25]
        } else {
            (1..=25).collect()
        };
        let t_fig13 = Instant::now();
        let scaling_result = core_scaling::run_with_cores(&cores, fidelity);
        fig13_wall = Some(t_fig13.elapsed());
        holes += scaling_result.holes.len();
        record_holes(&mut hole_records, &scaling_result.holes);
        if let Some(cal) = &cal {
            comparisons.push(compare::compare_core_scaling(&scaling_result, cal));
        }
        section(
            "Figure 13 — power scaling with core count",
            scaling_result.render(),
        );
        let threads: Vec<usize> = if quick {
            vec![8, 16, 24]
        } else {
            (1..=12).map(|k| 2 * k).collect()
        };
        let mt_result = mt_vs_mc::run_with_threads(&threads, fidelity);
        if let Some(cal) = &cal {
            comparisons.push(compare::compare_mt_vs_mc(&mt_result, cal));
        }
        section(
            "Figure 14 — multithreading versus multicore",
            mt_result.render(),
        );
        section(
            "Table VIII — system specifications",
            specint::SpecResult::render_table_viii(),
        );
        let spec_result = specint::run(fidelity);
        write_csv("table9_specint.csv", spec_result.to_csv());
        section(
            "Table IX — SPECint 2006 performance, power, and energy",
            spec_result.render(),
        );
        section(
            "Figure 15 — memory latency breakdown",
            mem_latency::run().render(),
        );
        section(
            "Figure 16 — gcc-166 power time series",
            specint::run_timeseries(if quick { 48 } else { 256 }, fidelity).render(),
        );
        let thermal_result = thermal::run_thermal_power(fidelity);
        if let Some(cal) = &cal {
            comparisons.push(compare::compare_thermal(&thermal_result, cal));
        }
        section(
            "Figure 17 — power versus temperature",
            thermal_result.render(),
        );
        section(
            "Figure 18 — scheduling and thermal hysteresis",
            thermal::run_scheduling(if quick { 64 } else { 180 }, 1.0, fidelity).render(),
        );
        if !governor_policy.is_off() {
            section(
                "Figure 9 (closed loop) — governor throttle boundary",
                governor::run_throttle_boundary(fidelity).render(),
            );
            section(
                "Figure 18 (closed loop) — governor scheduling hysteresis",
                governor::run_hysteresis(if quick { 64 } else { 180 }, 1.0, fidelity).render(),
            );
            section(
                "Energy frontier — governor policies racing to completion",
                governor::run_energy_frontier(fidelity).render(),
            );
        }
        section(
            "Ablations — design-choice sweeps (beyond the paper)",
            format!(
                "{}\n{}\n{}\n{}\n{}",
                ablations::slice_mapping().render(),
                ablations::render_store_buffer(&ablations::store_buffer_depth(fidelity)),
                ablations::render_overhead(&ablations::dual_thread_overhead(fidelity)),
                ablations::render_noc_split(&ablations::noc_energy_split(fidelity)),
                ablations::execution_drafting(fidelity).render(),
            ),
        );
    } else if let Some(cal) = &cal {
        // Analytic-only: closed-form reproductions of the power
        // figures (timing/functional studies have no fast path).
        for (title, body) in predict::render_analytic_sections(cal) {
            section(title, body);
        }
    }
    if let Some(cal) = &cal {
        let t_ds = Instant::now();
        let ds = design_space::run(cal, fidelity);
        let ds_wall = t_ds.elapsed();
        holes += ds.holes.len();
        record_holes(&mut hole_records, &ds.holes);
        let evaluated = ds.evaluated();
        section(
            "Design space — analytic V/f/cores/mix mega-sweep",
            ds.render(),
        );
        match fig13_wall {
            Some(w) => eprintln!(
                "reproduce: analytic design_space: {evaluated} point(s) in {ds_wall:.1?} vs cycle Figure 13 {w:.1?}"
            ),
            None => eprintln!(
                "reproduce: analytic design_space: {evaluated} point(s) in {ds_wall:.1?}"
            ),
        }
        if backend == Backend::Both {
            comparisons.push(design_space::cycle_oracle(cal, fidelity));
        }
    }
    if !comparisons.is_empty() {
        section(
            "Analytic vs cycle — per-figure conformance",
            compare::error_table(&comparisons),
        );
    }

    // Per-section sweep speedup: how much grid-point work ran versus
    // the wall-clock the section took.
    eprintln!("\nsweep speedup by section ({jobs} worker(s)):");
    eprintln!(
        "  {:<55} {:>9} {:>9} {:>8}",
        "section", "wall", "busy", "speedup"
    );
    let mut total_busy = Duration::ZERO;
    for t in &timings {
        if t.stats.points == 0 {
            continue; // no sweeps in this section
        }
        total_busy += t.stats.busy;
        eprintln!(
            "  {:<55} {:>8.1?} {:>8.1?} {:>7.2}x",
            t.title,
            t.wall,
            t.stats.busy,
            t.stats.speedup()
        );
    }
    let total = t0.elapsed();
    eprintln!(
        "total: {total:?} (sweep work {total_busy:.1?}, overall speedup {:.2}x)",
        total_busy.as_secs_f64() / total.as_secs_f64()
    );

    // Flush the trace sink (worker collectors flushed as their threads
    // finished; the main thread's collector flushes here).
    if trace_spec.is_some() {
        trace::set_worker_spec(None);
        let _ = trace::uninstall();
        match trace::flush_sink_to_file() {
            Ok(Some((path, lines, dropped))) => {
                eprintln!("reproduce: trace: {lines} event(s) -> {path} ({dropped} ring-dropped)");
            }
            Ok(None) => {}
            Err(e) => eprintln!("reproduce: trace: {e}"),
        }
    }

    // Drain the journal accounting into the metrics registry (before
    // the snapshot below) and the manifest's journal block.
    let journal_stats = journal_token.map(|token| {
        let shared = journal::resolve(token);
        let stats = shared.lock().expect("journal lock").stats();
        metrics::counter_add("journal.served", stats.served);
        metrics::counter_add("journal.appended", stats.appended);
        metrics::counter_add("journal.recovered", stats.recovered);
        metrics::counter_add("journal.torn", stats.torn);
        eprintln!(
            "reproduce: journal: {} served, {} appended, {} recovered, {} torn byte(s)",
            stats.served, stats.appended, stats.recovered, stats.torn
        );
        stats
    });

    // Emit the run manifest: section timings, sweep holes and the full
    // metrics-registry snapshot.
    let manifest = RunManifest {
        fidelity: if quick { "quick" } else { "full" }.to_owned(),
        jobs,
        fault_plan: fault_plan.as_ref().map(FaultPlan::render),
        fault_effects: fault_plan.as_ref().and_then(FaultPlan::render_effects),
        journal: journal_stats,
        governor: (!governor_policy.is_off()).then(|| governor_policy.label().to_owned()),
        backend: (backend != Backend::Cycle).then(|| backend.label().to_owned()),
        calibration: cal.as_ref().map(|cal| {
            let mut coefficients = Vec::new();
            for (names, pj) in [
                (analytic::features::vdd_feature_names(), &cal.model.vdd_pj),
                (analytic::features::vcs_feature_names(), &cal.model.vcs_pj),
                (analytic::features::vio_feature_names(), &cal.model.vio_pj),
            ] {
                coefficients.extend(names.into_iter().zip(pj).map(|(n, &v)| (n, v)));
            }
            CalibrationRecord {
                probes: cal.report.probes as u64,
                residuals: ["VDD", "VCS", "VIO"]
                    .iter()
                    .zip(&cal.report.residuals)
                    .map(|(name, r)| ((*name).to_owned(), r.max_rel, r.mean_rel))
                    .collect(),
                worst: cal
                    .report
                    .worst
                    .clone()
                    .map(|(probe, rail, rel)| (probe, rail.to_owned(), rel)),
                coefficients,
            }
        }),
        total_wall_s: total.as_secs_f64(),
        sections: timings
            .iter()
            .map(|t| SectionRecord {
                title: t.title.to_owned(),
                wall_s: t.wall.as_secs_f64(),
                busy_s: t.stats.busy.as_secs_f64(),
                sweeps: t.stats.sweeps as u64,
                points: t.stats.points as u64,
            })
            .collect(),
        holes: hole_records,
        metrics: metrics::snapshot(),
    };
    if let Err(e) = std::fs::write(&manifest_path, manifest.to_json()) {
        eprintln!("reproduce: writing run manifest {manifest_path}: {e}");
        std::process::exit(2);
    }
    eprintln!("reproduce: run manifest -> {manifest_path}");

    if holes > 0 {
        eprintln!("reproduce: {holes} grid point(s) lost to faults — tables contain marked holes");
        std::process::exit(1);
    }
    let over_budget: Vec<_> = comparisons.iter().filter(|c| !c.within_budget()).collect();
    if !over_budget.is_empty() {
        for c in &over_budget {
            eprintln!(
                "reproduce: {} exceeds its analytic error budget: max {:.3}% > {:.1}%",
                c.figure,
                c.max_rel() * 100.0,
                c.budget * 100.0
            );
        }
        std::process::exit(1);
    }
}
