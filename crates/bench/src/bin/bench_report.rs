//! Bench-report mode: times representative simulator sections and writes
//! a `BENCH_<date>.json` so the performance trajectory is tracked across
//! PRs.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p piton-bench --bin bench_report               # full fidelity
//! cargo run --release -p piton-bench --bin bench_report -- quick      # reduced fidelity
//! cargo run --release -p piton-bench --bin bench_report -- --out=F    # output path
//! ```
//!
//! Five sections cover the engine's distinct regimes:
//!
//! * `epi_single_tile` — the Figure 11 EPI tests on one of 25 tiles: the
//!   partially-idle case the event-driven scheduler exists for.
//! * `core_scaling_25` — all 25 tiles busy (a Figure 13 end point): the
//!   saturated case, bounding scheduler overhead.
//! * `noc_traffic` — the Figure 12 chipset-driven invalidation stream:
//!   the flat directed-link state arrays' hot loop.
//! * `figure13_sweep` / `figure14_mt_mc` — the two actual wall-clock
//!   walls of `reproduce`, timed end to end through the experiment
//!   stack so the saturated-phase engine's effect lands in the report
//!   directly, not just via the 25-core endpoint proxy.
//!
//! When built with `--features naive-engine`, each section is also timed
//! against its seed ("baseline") implementation — the per-cycle-polling
//! `Machine::run_naive` for the first two, the `HashMap`-backed
//! `ReferenceNocFabric` for the third — and the JSON records the
//! speedup. Both implementations produce identical counters (pinned by
//! the equivalence tests in `piton-sim`), so the comparison is pure
//! engine cost.

use std::fmt::Write as _;
use std::time::Instant;

use piton_arch::config::ChipConfig;
use piton_arch::isa::OperandPattern;
use piton_arch::topology::TileId;
use piton_core::experiments::Fidelity;
use piton_sim::machine::{Machine, SwitchPattern};
use piton_workloads::epi::{epi_test, EpiCase};

/// One timed section of the report.
struct Section {
    name: &'static str,
    description: &'static str,
    simulated_cycles: u64,
    wall_s: f64,
    /// `(baseline kind, baseline wall seconds)` when the naive/reference
    /// implementations are compiled in.
    baseline: Option<(&'static str, f64)>,
}

impl Section {
    fn mcps(&self) -> f64 {
        self.simulated_cycles as f64 / self.wall_s / 1e6
    }

    fn speedup(&self) -> Option<f64> {
        self.baseline.map(|(_, b)| b / self.wall_s)
    }
}

/// Cycles driven per measured machine: the experiment stack's warmup
/// plus `samples` measurement chunks (mirroring `PitonSystem::measure`).
fn section_cycles(f: &Fidelity) -> u64 {
    f.warmup_cycles + f.samples as u64 * f.chunk_cycles
}

/// Runs `machine` through the standard warmup + chunked measurement
/// cycle pattern using the selected engine.
fn drive(m: &mut Machine, f: &Fidelity, naive: bool) {
    let _ = naive;
    #[cfg(feature = "naive-engine")]
    if naive {
        m.run_naive(f.warmup_cycles);
        for _ in 0..f.samples {
            m.run_naive(f.chunk_cycles);
        }
        return;
    }
    m.run(f.warmup_cycles);
    for _ in 0..f.samples {
        m.run(f.chunk_cycles);
    }
}

/// The Figure 11 EPI tests (random operands), each on tile 0 only: 24
/// of 25 cores stay idle, the regime the ready calendar accelerates.
fn epi_single_tile_machines() -> Vec<Machine> {
    EpiCase::figure_11()
        .into_iter()
        .map(|case| {
            let mut m = Machine::new(&ChipConfig::piton());
            m.load_thread(TileId::new(0), 0, epi_test(case, OperandPattern::Random, 0));
            m
        })
        .collect()
}

fn time_engine_section(
    f: &Fidelity,
    machines: impl Fn() -> Vec<Machine>,
    naive: bool,
) -> (u64, f64) {
    let mut ms = machines();
    let cycles = section_cycles(f) * ms.len() as u64;
    let start = Instant::now();
    for m in &mut ms {
        drive(m, f, naive);
    }
    let wall = start.elapsed().as_secs_f64();
    // The engines must agree; spot-check the workload actually ran.
    assert!(ms.iter().all(|m| m.counters().cycles >= section_cycles(f)));
    (cycles, wall)
}

fn epi_single_tile(f: &Fidelity) -> Section {
    let (cycles, wall) = time_engine_section(f, epi_single_tile_machines, false);
    let baseline = baseline_engine_wall(f, epi_single_tile_machines);
    Section {
        name: "epi_single_tile",
        description: "Figure 11 EPI tests on 1 of 25 tiles (partially-idle scheduling)",
        simulated_cycles: cycles,
        wall_s: wall,
        baseline,
    }
}

/// The 25-core scaling end point: every core runs the Int EPI test.
fn core_scaling_machines() -> Vec<Machine> {
    let mut m = Machine::new(&ChipConfig::piton());
    for t in 0..25 {
        m.load_thread(
            TileId::new(t),
            0,
            epi_test(
                EpiCase::Plain(piton_arch::isa::Opcode::Add),
                OperandPattern::Random,
                t,
            ),
        );
    }
    vec![m]
}

fn core_scaling_25(f: &Fidelity) -> Section {
    let (cycles, wall) = time_engine_section(f, core_scaling_machines, false);
    let baseline = baseline_engine_wall(f, core_scaling_machines);
    Section {
        name: "core_scaling_25",
        description: "add EPI test on all 25 tiles (saturated scheduling, Figure 13 end point)",
        simulated_cycles: cycles,
        wall_s: wall,
        baseline,
    }
}

#[cfg(feature = "naive-engine")]
fn baseline_engine_wall(
    f: &Fidelity,
    machines: impl Fn() -> Vec<Machine>,
) -> Option<(&'static str, f64)> {
    let (_, wall) = time_engine_section(f, machines, true);
    Some(("naive-engine", wall))
}

#[cfg(not(feature = "naive-engine"))]
fn baseline_engine_wall(
    _f: &Fidelity,
    _machines: impl Fn() -> Vec<Machine>,
) -> Option<(&'static str, f64)> {
    None
}

/// The full Figure 13 core-scaling sweep, end to end through the
/// experiment stack (machines + power model + monitor): the longest
/// wall in `reproduce`, dominated by the saturated dense phase the
/// batched engine targets. `simulated_cycles` counts the measured
/// machines' warmup+sample windows (a lower bound; exec-time reruns
/// are extra), so the rate column is indicative only.
fn figure13_sweep(f: &Fidelity) -> Section {
    let start = Instant::now();
    let r = piton_core::experiments::core_scaling::run(*f);
    let wall = start.elapsed().as_secs_f64();
    let points: u64 = r.series.iter().map(|s| s.points.len() as u64).sum();
    assert!(points > 0, "core-scaling sweep produced no points");
    Section {
        name: "figure13_sweep",
        description: "full Figure 13 core-scaling sweep (3 benchmarks x 2 T/C, end to end)",
        simulated_cycles: points * section_cycles(f),
        wall_s: wall,
        baseline: None,
    }
}

/// The full Figure 14 multithreading-versus-multicore study, end to
/// end — the other saturated-phase wall (`simulated_cycles` is the
/// same lower-bound estimate as `figure13_sweep`).
fn figure14_mt_mc(f: &Fidelity) -> Section {
    let start = Instant::now();
    let r = piton_core::experiments::mt_vs_mc::run(*f);
    let wall = start.elapsed().as_secs_f64();
    let points: u64 = r.series.iter().map(|s| s.points.len() as u64).sum();
    assert!(points > 0, "MT-vs-MC sweep produced no points");
    Section {
        name: "figure14_mt_mc",
        description: "full Figure 14 MT-vs-MC study (3 benchmarks, both configs, end to end)",
        simulated_cycles: points * section_cycles(f),
        wall_s: wall,
        baseline: None,
    }
}

/// The Figure 12 grid: 4 switch patterns x hops 0..=8 of chipset-driven
/// invalidation traffic.
fn noc_traffic(f: &Fidelity) -> Section {
    let mesh = piton_arch::topology::Mesh::piton();
    let mut grid: Vec<(SwitchPattern, TileId)> = Vec::new();
    for &p in &SwitchPattern::ALL {
        for hops in 0..=8usize {
            grid.push((
                p,
                mesh.tile_at_distance(TileId::new(0), hops)
                    .expect("5x5 mesh covers 0..=8 hops"),
            ));
        }
    }
    let per_point = f.warmup_cycles / 4 + f.samples as u64 * f.chunk_cycles;
    let cycles = per_point * grid.len() as u64;

    let start = Instant::now();
    let mut flit_hops = 0;
    for &(pattern, dst) in &grid {
        let mut m = Machine::new(&ChipConfig::piton());
        m.run_invalidation_traffic(dst, pattern, per_point);
        flit_hops += m.counters().noc_flit_hops;
    }
    let wall = start.elapsed().as_secs_f64();
    assert!(flit_hops > 0);

    Section {
        name: "noc_traffic",
        description:
            "Figure 12 invalidation streams, 4 patterns x 9 hop counts (NoC link-state hot loop)",
        simulated_cycles: cycles,
        wall_s: wall,
        baseline: reference_noc_wall(f, &grid, flit_hops),
    }
}

/// Times the same Figure 12 flit stream against the seed
/// `HashMap`-backed fabric (identical accounting, pinned by the
/// `piton-sim` equivalence test).
#[cfg(feature = "naive-engine")]
fn reference_noc_wall(
    f: &Fidelity,
    grid: &[(SwitchPattern, TileId)],
    expect_flit_hops: u64,
) -> Option<(&'static str, f64)> {
    use piton_sim::events::ActivityCounters;
    use piton_sim::machine::{BRIDGE_PATTERN_CYCLES, BRIDGE_PATTERN_FLITS};
    use piton_sim::noc::{NocId, ReferenceNocFabric};

    let per_point = f.warmup_cycles / 4 + f.samples as u64 * f.chunk_cycles;
    let start = Instant::now();
    let mut flit_hops = 0;
    for &(pattern, dst) in grid {
        let mut noc = ReferenceNocFabric::new(piton_arch::topology::Mesh::piton());
        let mut act = ActivityCounters::default();
        let (even, odd) = pattern.flit_pair();
        let entry = TileId::new(0);
        let mut flit_toggle = false;
        let mut now = 0;
        while now < per_point {
            let mut flits = Vec::with_capacity(BRIDGE_PATTERN_FLITS);
            flits.push(dst.index() as u64);
            for _ in 0..BRIDGE_PATTERN_FLITS - 1 {
                flits.push(if flit_toggle { odd } else { even });
                flit_toggle = !flit_toggle;
            }
            noc.send(NocId::Noc2, entry, dst, &flits, &mut act);
            now += BRIDGE_PATTERN_CYCLES.min(per_point - now);
        }
        flit_hops += act.noc_flit_hops;
    }
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(flit_hops, expect_flit_hops, "reference stream diverged");
    Some(("hashmap-noc", wall))
}

#[cfg(not(feature = "naive-engine"))]
fn reference_noc_wall(
    _f: &Fidelity,
    _grid: &[(SwitchPattern, TileId)],
    _expect_flit_hops: u64,
) -> Option<(&'static str, f64)> {
    None
}

/// Civil date from days since the Unix epoch (Howard Hinnant's
/// algorithm; avoids a calendar dependency).
fn civil_from_unix_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (yoe + era * 400 + i64::from(m <= 2), m, d)
}

fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let (y, m, d) = civil_from_unix_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

fn json_f64(v: f64) -> String {
    // Stable, readable fixed precision for wall-clock seconds/rates.
    format!("{v:.6}")
}

fn render_json(date: &str, fidelity_label: &str, sections: &[Section]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"piton-bench-report/v1\",");
    let _ = writeln!(out, "  \"date\": \"{date}\",");
    let _ = writeln!(out, "  \"fidelity\": \"{fidelity_label}\",");
    let _ = writeln!(
        out,
        "  \"baselines_compiled\": {},",
        cfg!(feature = "naive-engine")
    );
    out.push_str("  \"sections\": [\n");
    for (i, s) in sections.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", s.name);
        let _ = writeln!(out, "      \"description\": \"{}\",", s.description);
        let _ = writeln!(out, "      \"simulated_cycles\": {},", s.simulated_cycles);
        let _ = writeln!(out, "      \"wall_s\": {},", json_f64(s.wall_s));
        let _ = writeln!(out, "      \"mcycles_per_s\": {},", json_f64(s.mcps()));
        match (s.baseline, s.speedup()) {
            (Some((kind, wall)), Some(speedup)) => {
                let _ = writeln!(out, "      \"baseline\": \"{kind}\",");
                let _ = writeln!(out, "      \"baseline_wall_s\": {},", json_f64(wall));
                let _ = writeln!(out, "      \"speedup_vs_baseline\": {}", json_f64(speedup));
            }
            _ => {
                let _ = writeln!(out, "      \"baseline\": null");
            }
        }
        out.push_str(if i + 1 == sections.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "quick");
    let fidelity = if quick {
        Fidelity::quick()
    } else {
        Fidelity::full()
    };
    let fidelity_label = if quick { "quick" } else { "full" };
    let date = today();
    let out_path = args
        .iter()
        .find_map(|a| a.strip_prefix("--out=").map(String::from))
        .unwrap_or_else(|| format!("BENCH_{date}.json"));

    eprintln!("bench_report: {fidelity_label} fidelity -> {out_path}");
    let mut sections = Vec::new();
    for (run, label) in [
        (
            epi_single_tile as fn(&Fidelity) -> Section,
            "epi_single_tile",
        ),
        (core_scaling_25, "core_scaling_25"),
        (noc_traffic, "noc_traffic"),
        (figure13_sweep, "figure13_sweep"),
        (figure14_mt_mc, "figure14_mt_mc"),
    ] {
        let s = run(&fidelity);
        match (s.baseline, s.speedup()) {
            (Some((kind, b)), Some(x)) => eprintln!(
                "  {label:<16} {:>9.3}s  ({:.1} Mcyc/s; {kind} {b:.3}s, {x:.2}x)",
                s.wall_s,
                s.mcps()
            ),
            _ => eprintln!("  {label:<16} {:>9.3}s  ({:.1} Mcyc/s)", s.wall_s, s.mcps()),
        }
        sections.push(s);
    }

    let json = render_json(&date, fidelity_label, &sections);
    std::fs::write(&out_path, json).expect("write bench report");
    eprintln!("wrote {out_path}");
}
