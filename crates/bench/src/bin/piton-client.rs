//! `piton-client` — scripting client for the `piton-serve` daemon.
//!
//! Sends each request over one connection and prints every verified
//! response frame's JSON body to stdout, one per line — so two
//! invocations with the same requests against the same daemon can be
//! byte-compared directly (the cold-vs-warm conformance check).
//!
//! Usage:
//!
//! ```text
//! piton-client --socket PATH REQUEST [REQUEST ...]
//! piton-client --socket PATH -            # requests from stdin, one per line
//! ```
//!
//! A REQUEST is either a full JSON request line, or one of the
//! shorthands `ping`, `metrics`, `shutdown`. The client retries the
//! initial connect for ~5 s so scripts can launch it right after the
//! daemon. Frames are checksum-verified before printing; a framing
//! violation, a premature EOF, or a connect failure exits 1. Usage
//! errors exit 2. (Server-side `error` frames are printed and do not
//! change the exit status: refused requests are a daemon behavior
//! scripts assert on, not a client failure.)

use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::time::Duration;

use piton_core::serve::frames::Frame;

fn usage() -> ! {
    eprintln!("usage: piton-client --socket PATH REQUEST [REQUEST ...]   (REQUEST may be '-')");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("piton-client: {msg}");
    std::process::exit(1);
}

/// The daemon may still be binding its socket when a script launches
/// the client; retry briefly before giving up.
fn connect(socket: &str) -> UnixStream {
    let mut last = None;
    for _ in 0..50 {
        match UnixStream::connect(socket) {
            Ok(s) => return s,
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
    fail(&format!(
        "connect {socket}: {}",
        last.expect("at least one attempt")
    ));
}

fn request_line(arg: &str) -> String {
    match arg {
        "ping" | "metrics" | "shutdown" => format!("{{\"op\":\"{arg}\"}}"),
        _ => arg.to_owned(),
    }
}

/// Whether this frame ends a request's response stream.
fn is_terminal(frame: &Frame) -> bool {
    matches!(
        frame,
        Frame::Done { .. }
            | Frame::Error { .. }
            | Frame::Pong { .. }
            | Frame::Metrics { .. }
            | Frame::Bye
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut socket: Option<String> = None;
    let mut requests: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(v) = args[i].strip_prefix("--socket=") {
            socket = Some(v.to_owned());
        } else if args[i] == "--socket" {
            i += 1;
            socket = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
        } else {
            requests.push(args[i].clone());
        }
        i += 1;
    }
    let socket = socket
        .or_else(|| std::env::var("PITON_SERVE_SOCKET").ok())
        .unwrap_or_else(|| usage());
    if requests.is_empty() {
        usage();
    }
    if requests.iter().any(|r| r == "-") {
        let mut stdin = String::new();
        if std::io::stdin().read_to_string(&mut stdin).is_err() {
            fail("could not read stdin");
        }
        let lines: Vec<String> = stdin
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(str::to_owned)
            .collect();
        requests = requests
            .into_iter()
            .flat_map(|r| if r == "-" { lines.clone() } else { vec![r] })
            .collect();
    }

    let stream = connect(&socket);
    let mut writer = stream.try_clone().unwrap_or_else(|e| {
        fail(&format!("clone stream: {e}"));
    });
    let mut reader = BufReader::new(stream);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for req in &requests {
        let line = request_line(req);
        if writer
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            fail("daemon hung up while writing the request");
        }
        // Read frames until this request's terminal frame.
        loop {
            let mut raw = String::new();
            match reader.read_line(&mut raw) {
                Ok(0) => fail("daemon hung up mid-response"),
                Ok(_) => {}
                Err(e) => fail(&format!("read: {e}")),
            }
            let frame = match Frame::decode(raw.as_bytes()) {
                Ok(f) => f,
                Err(e) => fail(&format!("corrupt frame: {e} (line: {})", raw.trim_end())),
            };
            // Print the verified JSON body — checksums are a transport
            // concern; consumers get clean JSONL.
            let done = is_terminal(&frame);
            if writeln!(out, "{}", frame.to_value().render()).is_err() {
                std::process::exit(1);
            }
            if done {
                break;
            }
        }
    }
}
