//! Golden-trace differential driver: runs the same randomized program
//! on the event-driven engine (`Machine::run`) and the reference
//! per-cycle engine (`Machine::run_naive`), aligns the two structured
//! trace streams, and reports the **first divergent event** with
//! context — the tool for bisecting an engine-equivalence failure down
//! to a cycle and a tile.
//!
//! Requires the `naive-engine` feature (the reference engine is
//! compiled out of release builds otherwise):
//!
//! ```text
//! cargo run --release -p piton-bench --features naive-engine --bin trace_diff
//! cargo run ... --bin trace_diff -- --seeds=7,1234 --slots=8 --chunks=500,2000
//! cargo run ... --bin trace_diff -- --desync=1     # deliberate calendar skew
//! ```
//!
//! `--desync=N` delays every event-engine calendar wakeup by N cycles
//! (`Machine::set_calendar_skew`), a deliberate desynchronization whose
//! first divergent event the harness must localize — the self-test the
//! `trace_differential` integration suite runs in CI.
//!
//! Exits 0 when the traces are identical, 1 on divergence, 2 on usage
//! errors.

#[cfg(feature = "naive-engine")]
mod diff_driver {
    use piton_arch::config::ChipConfig;
    use piton_arch::topology::TileId;
    use piton_obs::diff::first_divergence;
    use piton_obs::trace::{self, TraceSpec};
    use piton_sim::machine::Machine;
    use piton_sim::testprog;

    fn arg_value(name: &str) -> Option<String> {
        let args: Vec<String> = std::env::args().collect();
        let eq = format!("--{name}=");
        args.iter().enumerate().find_map(|(i, a)| {
            a.strip_prefix(&eq).map(str::to_owned).or_else(|| {
                (a == &format!("--{name}"))
                    .then(|| args.get(i + 1).cloned())
                    .flatten()
            })
        })
    }

    fn parse_list(name: &str, default: &[u64]) -> Vec<u64> {
        let Some(v) = arg_value(name) else {
            return default.to_vec();
        };
        let parsed: Result<Vec<u64>, _> = v.split(',').map(|p| p.trim().parse::<u64>()).collect();
        match parsed {
            Ok(list) if !list.is_empty() => list,
            _ => {
                eprintln!("trace_diff: --{name} expects a comma-separated u64 list, got {v:?}");
                std::process::exit(2);
            }
        }
    }

    pub fn run() -> i32 {
        let seeds = parse_list("seeds", &[0xC0FF_EE00, 0xBAD_CAB1E]);
        let chunks = parse_list("chunks", &[2_000, 2_000, 2_000]);
        let slots = arg_value("slots").map_or(6, |v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("trace_diff: --slots expects a count, got {v:?}");
                std::process::exit(2);
            })
        });
        let desync: u64 = arg_value("desync").map_or(0, |v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("trace_diff: --desync expects cycles, got {v:?}");
                std::process::exit(2);
            })
        });
        // Engine-mode events are excluded by default: the two engines
        // legitimately differ in how they schedule themselves.
        let spec_text = arg_value("spec").unwrap_or_else(|| "retire,cache,noc".to_owned());
        let spec = TraceSpec::parse(&spec_text).unwrap_or_else(|e| {
            eprintln!("trace_diff: bad --spec: {e}");
            std::process::exit(2);
        });

        let placement = testprog::placement(&seeds, slots);
        let build = || {
            let mut m = Machine::new(&ChipConfig::default());
            for &(tile, thread, ref program) in &placement {
                m.load_thread(TileId::new(tile), thread, program.clone());
            }
            m
        };

        eprintln!(
            "trace_diff: seeds={seeds:?} slots={slots} chunks={chunks:?} desync={desync} \
             spec={spec_text}"
        );
        let (_, event_trace) = trace::capture(&spec, || {
            let mut m = build();
            m.set_calendar_skew(desync);
            for &chunk in &chunks {
                m.run(chunk);
            }
        });
        let (_, naive_trace) = trace::capture(&spec, || {
            let mut m = build();
            for &chunk in &chunks {
                m.run_naive(chunk);
            }
        });

        match first_divergence(&event_trace, &naive_trace) {
            None => {
                println!(
                    "traces identical: {} events from both engines",
                    event_trace.len()
                );
                0
            }
            Some(d) => {
                println!("{d}");
                1
            }
        }
    }
}

#[cfg(feature = "naive-engine")]
fn main() {
    std::process::exit(diff_driver::run());
}

#[cfg(not(feature = "naive-engine"))]
fn main() {
    eprintln!(
        "trace_diff: the reference engine is compiled out of this build; \
         rebuild with `--features naive-engine`"
    );
    std::process::exit(2);
}
