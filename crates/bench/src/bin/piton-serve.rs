//! `piton-serve` — the sweep-as-a-service daemon.
//!
//! Listens on a Unix domain socket for newline-delimited JSON
//! experiment requests, serves every previously-computed grid point
//! from a persistent content-addressed cache, computes only the
//! misses, and streams checksummed result frames back. See
//! `piton_core::serve` for the protocol and invariants.
//!
//! Usage:
//!
//! ```text
//! piton-serve --socket PATH --cache-dir DIR [--jobs N] [--shard N]
//! ```
//!
//! Every flag accepts `--flag VALUE` or `--flag=VALUE`, with
//! environment fallbacks `PITON_SERVE_SOCKET`, `PITON_SERVE_CACHE`,
//! `PITON_JOBS` and `PITON_SERVE_SHARD`. The daemon prints one
//! `listening` line to stderr once the socket is bound (scripts wait
//! for it), runs until a `{"op":"shutdown"}` request arrives, then
//! writes `serve-manifest.json` into the cache directory, removes the
//! socket and prints a counter summary. Exit status: 0 on clean
//! shutdown, 1 on serve failures, 2 on usage errors.

use piton_core::runner;
use piton_core::serve::{Server, ServerConfig};
use piton_obs::metrics;

/// `--NAME VALUE` / `--NAME=VALUE` with an environment fallback.
fn flag_value(name: &str, env: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let long = format!("--{name}");
    let prefixed = format!("--{name}=");
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&prefixed) {
            return Some(v.to_owned());
        }
        if *a == long {
            return args.get(i + 1).cloned();
        }
    }
    std::env::var(env).ok()
}

fn usage() -> ! {
    eprintln!("usage: piton-serve --socket PATH --cache-dir DIR [--jobs N] [--shard N]");
    std::process::exit(2);
}

fn main() {
    let Some(socket) = flag_value("socket", "PITON_SERVE_SOCKET") else {
        usage()
    };
    let Some(cache_dir) = flag_value("cache-dir", "PITON_SERVE_CACHE") else {
        usage()
    };
    let parse_count = |spec: Option<String>, what: &str| -> Option<usize> {
        spec.map(|s| match s.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("piton-serve: {what} {s:?} is not a positive integer");
                std::process::exit(2);
            }
        })
    };
    let jobs = parse_count(flag_value("jobs", "PITON_JOBS"), "--jobs")
        .unwrap_or_else(runner::default_jobs);
    let shard = parse_count(flag_value("shard", "PITON_SERVE_SHARD"), "--shard").unwrap_or(512);

    metrics::enable();
    let config = ServerConfig::new(&socket, &cache_dir)
        .with_jobs(jobs)
        .with_shard_points(shard);
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("piton-serve: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("piton-serve: listening on {socket} (cache {cache_dir}, jobs {jobs}, shard {shard})");
    match server.run() {
        Ok(manifest) => {
            let line = manifest
                .counters
                .iter()
                .map(|(n, v)| format!("{}={v}", n.trim_start_matches("serve.")))
                .collect::<Vec<_>>()
                .join(" ");
            eprintln!("piton-serve: shutdown clean: {line}");
        }
        Err(e) => {
            eprintln!("piton-serve: {e}");
            std::process::exit(1);
        }
    }
}
