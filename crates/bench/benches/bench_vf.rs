//! Figure 9 — maximum frequency vs VDD for three chips.
use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use piton_bench::print_once;
use piton_core::experiments::vf_sweep;

static PRINT: Once = Once::new();

fn bench(c: &mut Criterion) {
    print_once(&PRINT, || vf_sweep::run().render());
    c.bench_function("figure_9_vf_sweep_three_chips", |b| {
        b.iter(|| criterion::black_box(vf_sweep::run()))
    });
}

criterion_group!(name = benches; config = piton_bench::criterion(); targets = bench);
criterion_main!(benches);
