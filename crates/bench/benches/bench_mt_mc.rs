//! Figure 14 — multithreading vs multicore.
use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use piton_bench::{bench_fidelity, print_fidelity, print_once};
use piton_core::experiments::mt_vs_mc;

static PRINT: Once = Once::new();

fn bench(c: &mut Criterion) {
    print_once(&PRINT, || {
        mt_vs_mc::run_with_threads(&[8, 16, 24], print_fidelity()).render()
    });
    c.bench_function("figure_14_mt_vs_mc", |b| {
        b.iter(|| criterion::black_box(mt_vs_mc::run_with_threads(&[16], bench_fidelity())))
    });
}

criterion_group!(name = benches; config = piton_bench::criterion(); targets = bench);
criterion_main!(benches);
