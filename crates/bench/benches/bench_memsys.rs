//! Table VII — memory system energy.
use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use piton_bench::{bench_fidelity, print_fidelity, print_once};
use piton_core::experiments::memory_energy;

static PRINT: Once = Once::new();

fn bench(c: &mut Criterion) {
    print_once(&PRINT, || memory_energy::run(print_fidelity()).render());
    c.bench_function("table_vii_memory_energy_ladder", |b| {
        b.iter(|| criterion::black_box(memory_energy::run(bench_fidelity())))
    });
}

criterion_group!(name = benches; config = piton_bench::criterion(); targets = bench);
criterion_main!(benches);
