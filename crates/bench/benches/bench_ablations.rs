//! Ablation studies (beyond the paper's artifacts).
use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use piton_bench::{bench_fidelity, print_fidelity, print_once};
use piton_core::experiments::ablations;

static PRINT: Once = Once::new();

fn bench(c: &mut Criterion) {
    print_once(&PRINT, || {
        format!(
            "{}\n{}\n{}\n{}\n{}",
            ablations::slice_mapping().render(),
            ablations::render_store_buffer(&ablations::store_buffer_depth(print_fidelity())),
            ablations::render_overhead(&ablations::dual_thread_overhead(print_fidelity())),
            ablations::render_noc_split(&ablations::noc_energy_split(print_fidelity())),
            ablations::execution_drafting(print_fidelity()).render(),
        )
    });
    c.bench_function("ablation_store_buffer_depth", |b| {
        b.iter(|| criterion::black_box(ablations::store_buffer_depth(bench_fidelity())))
    });
    c.bench_function("ablation_noc_energy_split", |b| {
        b.iter(|| criterion::black_box(ablations::noc_energy_split(bench_fidelity())))
    });
}

criterion_group!(name = benches; config = piton_bench::criterion(); targets = bench);
criterion_main!(benches);
