//! Figures 17 & 18 — thermal characterization.
use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use piton_bench::{bench_fidelity, print_fidelity, print_once};
use piton_core::experiments::thermal;

static PRINT: Once = Once::new();

fn bench(c: &mut Criterion) {
    print_once(&PRINT, || {
        format!(
            "{}\n{}",
            thermal::run_thermal_power(print_fidelity()).render(),
            thermal::run_scheduling(48, 1.0, print_fidelity()).render()
        )
    });
    c.bench_function("figure_17_thermal_power_sweep", |b| {
        b.iter(|| criterion::black_box(thermal::run_thermal_power(bench_fidelity())))
    });
    c.bench_function("figure_18_scheduling_hysteresis", |b| {
        b.iter(|| criterion::black_box(thermal::run_scheduling(16, 1.0, bench_fidelity())))
    });
}

criterion_group!(name = benches; config = piton_bench::criterion(); targets = bench);
criterion_main!(benches);
