//! Figure 10 + Table V — static and idle power.
use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use piton_bench::{bench_fidelity, print_fidelity, print_once};
use piton_core::experiments::static_idle;

static PRINT: Once = Once::new();

fn bench(c: &mut Criterion) {
    print_once(&PRINT, || static_idle::run(print_fidelity()).render());
    c.bench_function("figure_10_static_idle_sweep", |b| {
        b.iter(|| criterion::black_box(static_idle::run(bench_fidelity())))
    });
}

criterion_group!(name = benches; config = piton_bench::criterion(); targets = bench);
criterion_main!(benches);
