//! Table IV — chip testing statistics.
use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use piton_bench::print_once;
use piton_core::experiments::yield_stats;

static PRINT: Once = Once::new();

fn bench(c: &mut Criterion) {
    print_once(&PRINT, || yield_stats::run().render());
    c.bench_function("table_iv_yield_campaign", |b| {
        b.iter(|| criterion::black_box(yield_stats::run()))
    });
}

criterion_group!(name = benches; config = piton_bench::criterion(); targets = bench);
criterion_main!(benches);
