//! Tables VIII & IX — the SPECint study.
use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use piton_bench::{bench_fidelity, print_fidelity, print_once};
use piton_core::experiments::specint;

static PRINT: Once = Once::new();

fn bench(c: &mut Criterion) {
    print_once(&PRINT, || {
        format!(
            "{}\n{}",
            specint::SpecResult::render_table_viii(),
            specint::run(print_fidelity()).render()
        )
    });
    c.bench_function("table_ix_specint_thirteen_pairs", |b| {
        b.iter(|| criterion::black_box(specint::run(bench_fidelity())))
    });
}

criterion_group!(name = benches; config = piton_bench::criterion(); targets = bench);
criterion_main!(benches);
