//! Figure 8 — area breakdown.
use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use piton_bench::print_once;
use piton_core::experiments::area;

static PRINT: Once = Once::new();

fn bench(c: &mut Criterion) {
    print_once(&PRINT, || area::run().render());
    c.bench_function("figure_8_area_breakdown", |b| {
        b.iter(|| criterion::black_box(area::run()))
    });
}

criterion_group!(name = benches; config = piton_bench::criterion(); targets = bench);
criterion_main!(benches);
