//! Figure 13 — power scaling with core count.
use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use piton_bench::{bench_fidelity, print_fidelity, print_once};
use piton_core::experiments::core_scaling;

static PRINT: Once = Once::new();

fn bench(c: &mut Criterion) {
    print_once(&PRINT, || {
        core_scaling::run_with_cores(&[1, 5, 9, 13, 17, 21, 25], print_fidelity()).render()
    });
    c.bench_function("figure_13_core_scaling", |b| {
        b.iter(|| {
            criterion::black_box(core_scaling::run_with_cores(&[1, 13, 25], bench_fidelity()))
        })
    });
}

criterion_group!(name = benches; config = piton_bench::criterion(); targets = bench);
criterion_main!(benches);
