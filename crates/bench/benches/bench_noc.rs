//! Figure 12 — NoC energy per flit.
use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use piton_bench::{bench_fidelity, print_fidelity, print_once};
use piton_core::experiments::noc_energy;

static PRINT: Once = Once::new();

fn bench(c: &mut Criterion) {
    print_once(&PRINT, || noc_energy::run(print_fidelity()).render());
    c.bench_function("figure_12_noc_epf_sweep", |b| {
        b.iter(|| criterion::black_box(noc_energy::run(bench_fidelity())))
    });
}

criterion_group!(name = benches; config = piton_bench::criterion(); targets = bench);
criterion_main!(benches);
