//! Figure 16 — gcc-166 rail-power time series.
use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use piton_bench::{bench_fidelity, print_fidelity, print_once};
use piton_core::experiments::specint;

static PRINT: Once = Once::new();

fn bench(c: &mut Criterion) {
    print_once(&PRINT, || {
        specint::run_timeseries(48, print_fidelity()).render()
    });
    c.bench_function("figure_16_gcc166_timeseries", |b| {
        b.iter(|| criterion::black_box(specint::run_timeseries(16, bench_fidelity())))
    });
}

criterion_group!(name = benches; config = piton_bench::criterion(); targets = bench);
criterion_main!(benches);
