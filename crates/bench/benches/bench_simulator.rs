//! Raw simulator throughput (not a paper artifact): cycles simulated
//! per second for a fully-loaded 25-core chip, and the ablation of the
//! fast-forward optimization (memory-stalled chips skip dead cycles).
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use piton_arch::config::ChipConfig;
use piton_sim::machine::Machine;
use piton_workloads::micro::{load_microbenchmark, Microbenchmark, RunLength, ThreadsPerCore};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_throughput");
    group.throughput(Throughput::Elements(100_000));

    group.bench_function("hp_50_threads_100k_cycles", |b| {
        b.iter_batched(
            || {
                let mut m = Machine::new(&ChipConfig::piton());
                load_microbenchmark(
                    &mut m,
                    Microbenchmark::Hp,
                    50,
                    ThreadsPerCore::Two,
                    RunLength::Forever,
                );
                m
            },
            |mut m| {
                m.run(100_000);
                m
            },
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_function("idle_chip_100k_cycles_fast_forward", |b| {
        b.iter_batched(
            || Machine::new(&ChipConfig::piton()),
            |mut m| {
                m.run(100_000);
                m
            },
            criterion::BatchSize::SmallInput,
        )
    });

    group.bench_function("hist_50_threads_100k_cycles", |b| {
        b.iter_batched(
            || {
                let mut m = Machine::new(&ChipConfig::piton());
                load_microbenchmark(
                    &mut m,
                    Microbenchmark::Hist,
                    50,
                    ThreadsPerCore::Two,
                    RunLength::Forever,
                );
                m
            },
            |mut m| {
                m.run(100_000);
                m
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(name = benches; config = piton_bench::criterion(); targets = bench);
criterion_main!(benches);
