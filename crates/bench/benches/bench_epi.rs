//! Figure 11 + Table VI — energy per instruction.
use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use piton_arch::isa::Opcode;
use piton_bench::{bench_fidelity, print_fidelity, print_once};
use piton_core::experiments::epi;
use piton_workloads::epi::EpiCase;

static PRINT: Once = Once::new();

fn bench(c: &mut Criterion) {
    print_once(&PRINT, || epi::run(print_fidelity()).render());
    let cases = [EpiCase::Plain(Opcode::Add), EpiCase::Load];
    c.bench_function("figure_11_epi_add_and_ldx", |b| {
        b.iter(|| criterion::black_box(epi::run_cases(&cases, bench_fidelity())))
    });
}

criterion_group!(name = benches; config = piton_bench::criterion(); targets = bench);
criterion_main!(benches);
