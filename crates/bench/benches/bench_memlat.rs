//! Figure 15 — memory latency breakdown.
use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use piton_bench::print_once;
use piton_core::experiments::mem_latency;

static PRINT: Once = Once::new();

fn bench(c: &mut Criterion) {
    print_once(&PRINT, || mem_latency::run().render());
    c.bench_function("figure_15_memory_latency_walk", |b| {
        b.iter(|| criterion::black_box(mem_latency::run()))
    });
}

criterion_group!(name = benches; config = piton_bench::criterion(); targets = bench);
criterion_main!(benches);
