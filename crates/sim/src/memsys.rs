//! The coherent memory system: L1D, L1.5, distributed L2 slices with an
//! integrated directory, the three NoCs, and the off-chip memory path.
//!
//! Piton keeps coherence with a directory-based MESI protocol at the
//! shared, distributed L2 (§II). Each tile's L1.5 is a private
//! write-back cache wrapping the write-through L1D; the L2 slice that
//! *homes* a line is selected by address (configurable to low/mid/high
//! address bits, which is how the paper's memory-energy experiment steers
//! a load at a local or a remote slice).
//!
//! The model executes transactions synchronously — a load returns its
//! value plus the latency the request would have taken — while updating
//! real MESI state: sharers are tracked per 64 B L2 line, stores upgrade
//! and invalidate, dirty L1.5 lines write back on eviction, and every
//! protocol message is materialized as flits on the correct physical NoC
//! so that link-switching energy is accounted.
//!
//! Latency anchors (Table VII / Figure 15):
//!
//! | scenario | cycles |
//! |---|---|
//! | L1 hit | 3 |
//! | L1 miss, local L2 hit | 34 |
//! | L1 miss, remote L2 hit (4 straight hops) | 42 |
//! | L1 miss, remote L2 hit (8 hops + turns) | 52 |
//! | L1 miss, local L2 miss | ≈ 424 (29 on-chip + ~395 off-chip) |
//!
//! # Mutation-order contract
//!
//! The memory system is a single shared mutable structure; its state
//! (MESI lines, directory sharers, store-buffer drains) and the f64
//! activity sums it accumulates depend on the *order* of transactions.
//! Every engine in [`crate::machine`] must drive it in the canonical
//! order — ascending cycle, then ascending tile index within a cycle.
//! The batched dense engine defers core-issued transactions into
//! per-lane effect buffers during local run-ahead and replays them here
//! in exactly that order at the batch barrier, which is why its results
//! stay bit-identical to the naive engine's.

use piton_arch::config::{ChipConfig, SliceMapping};
use piton_arch::topology::TileId;
use piton_obs::trace::{self, CacheKind, CacheLevel, TraceEvent};
use serde::{Deserialize, Serialize};

use crate::cache::{LineState, SetAssocCache};
use crate::chipset::MemoryPath;
use crate::events::{value_activity, ActivityCounters};
use crate::fastmap::FastMap;
use crate::mem::Memory;
use crate::noc::{NocFabric, NocId};

/// Load latency of an L1 data-cache hit (Table VI).
pub const L1_HIT_CYCLES: u64 = 3;
/// Load latency of an L1 miss that hits the L1.5.
pub const L15_HIT_CYCLES: u64 = 8;
/// Load latency of an L1/L1.5 miss that hits the *local* L2 slice
/// (Table VII).
pub const L2_HIT_CYCLES: u64 = 34;
/// On-chip overhead of an L2 miss beyond the Figure 15 off-chip path
/// (434 − 395 − pipeline; lands the Table VII 424-cycle average).
pub const MISS_OVERHEAD_CYCLES: u64 = 29;
/// Store-buffer drain latency when the L1.5 owns the line (Table VI).
pub const STORE_DRAIN_CYCLES: u64 = 10;
/// Base latency of an atomic performed at the L2 coherence point.
pub const CAS_BASE_CYCLES: u64 = 44;

/// Flits in a coherence request (§IV-G: "a three flit request").
const REQ_FLITS: usize = 3;
/// Flits in a data response.
const RESP_FLITS: usize = 3;
/// Flits in an invalidation.
const INV_FLITS: usize = 2;
/// Flits in an invalidation acknowledgement.
const ACK_FLITS: usize = 1;

/// Outlined cache-transition trace emission — callers gate on
/// [`trace::active`] so the hot path pays one branch when tracing is off.
#[cold]
fn trace_cache(cycle: u64, tile: TileId, level: CacheLevel, kind: CacheKind, addr: u64) {
    trace::emit(TraceEvent::Cache {
        cycle,
        tile: tile.index() as u32,
        level,
        kind,
        addr,
    });
}

/// Where a load was serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HitLevel {
    /// L1 data cache hit.
    L1,
    /// L1 miss, L1.5 hit.
    L15,
    /// L1/L1.5 miss, L2 hit; `hops` is the one-way NoC distance to the
    /// home slice.
    L2 {
        /// One-way hop count to the home L2 slice.
        hops: usize,
    },
    /// Missed everywhere; serviced by DRAM.
    Memory {
        /// One-way hop count to the home L2 slice.
        hops: usize,
    },
}

/// Result of a load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadOutcome {
    /// The 64-bit value read.
    pub value: u64,
    /// Cycles from issue to write-back into the register file.
    pub latency: u64,
    /// Where the request was serviced.
    pub level: HitLevel,
}

/// Directory entry for one 64 B L2 line.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct DirEntry {
    /// Bitmap of tiles with the line in their L1.5.
    sharers: u32,
    /// Tile whose L1.5 may hold the line Modified.
    owner: Option<TileId>,
}

impl DirEntry {
    fn bit(tile: TileId) -> u32 {
        1 << tile.index()
    }

    fn add_sharer(&mut self, tile: TileId) {
        self.sharers |= Self::bit(tile);
    }

    fn sharer_tiles(&self) -> impl Iterator<Item = TileId> + '_ {
        let bits = self.sharers;
        (0..25usize).filter_map(move |i| {
            if bits & (1 << i) != 0 {
                Some(TileId::new(i))
            } else {
                None
            }
        })
    }
}

/// The full coherent memory hierarchy of one Piton chip.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: ChipConfig,
    l1d: Vec<SetAssocCache>,
    l15: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    dir: FastMap<u64, DirEntry>,
    /// The three physical NoCs.
    pub noc: NocFabric,
    /// The off-chip memory path.
    pub path: MemoryPath,
    /// Functional main memory.
    pub mem: Memory,
}

impl MemorySystem {
    /// Builds the hierarchy for a chip configuration.
    #[must_use]
    pub fn new(cfg: &ChipConfig) -> Self {
        let n = cfg.tile_count();
        Self {
            cfg: cfg.clone(),
            l1d: (0..n).map(|_| SetAssocCache::new(cfg.l1d)).collect(),
            l15: (0..n).map(|_| SetAssocCache::new(cfg.l15)).collect(),
            l2: (0..n).map(|_| SetAssocCache::new(cfg.l2)).collect(),
            dir: FastMap::default(),
            noc: NocFabric::new(cfg.topology().clone()),
            path: MemoryPath::new(),
            mem: Memory::new(),
        }
    }

    /// The chip configuration.
    #[must_use]
    pub fn config(&self) -> &ChipConfig {
        &self.cfg
    }

    /// The 64 B L2 line containing `addr`.
    #[must_use]
    pub fn l2_line(&self, addr: u64) -> u64 {
        addr & !(self.cfg.l2.line_bytes - 1)
    }

    /// The tile whose L2 slice homes `addr`, per the configured
    /// line-to-slice mapping.
    #[must_use]
    pub fn home_slice(&self, addr: u64) -> TileId {
        let n = self.cfg.tile_count() as u64;
        let sel = match self.cfg.slice_mapping {
            SliceMapping::Low => addr >> self.cfg.l2.line_bytes.trailing_zeros(),
            SliceMapping::Mid => addr >> 12,
            SliceMapping::High => addr >> 20,
        };
        TileId::new((sel % n) as usize)
    }

    /// One-way (hops + turn) NoC latency between two tiles.
    fn route_cycles(&self, a: TileId, b: TileId) -> u64 {
        self.noc.mesh().route(a, b).latency_cycles()
    }

    fn flit_payloads(addr: u64, value: u64, n: usize) -> Vec<u64> {
        // Header carries the address; body flits carry value-derived
        // words so link switching tracks real data activity.
        (0..n)
            .map(|i| match i {
                0 => addr,
                1 => value,
                _ => value.rotate_left(17 * i as u32) ^ addr,
            })
            .collect()
    }

    /// Invalidates every L1/L1.5 copy of the 64 B line at `tile`
    /// (covering all four 16 B sublines).
    fn invalidate_tile_copies(&mut self, tile: TileId, l2_line: u64, act: &mut ActivityCounters) {
        let sub = self.cfg.l15.line_bytes;
        let mut hit_any = false;
        for k in 0..(self.cfg.l2.line_bytes / sub) {
            let a = l2_line + k * sub;
            self.l1d[tile.index()].invalidate(a);
            if self.l15[tile.index()].invalidate(a).is_some() {
                act.invalidations += 1;
                hit_any = true;
            }
        }
        if hit_any && trace::active() {
            trace_cache(
                trace::ambient_cycle(),
                tile,
                CacheLevel::L15,
                CacheKind::Invalidate,
                l2_line,
            );
        }
    }

    /// Invalidates all remote sharers of a line (directory-driven),
    /// returning the worst-case round-trip invalidation latency.
    fn invalidate_sharers(
        &mut self,
        home: TileId,
        l2_line: u64,
        keep: Option<TileId>,
        act: &mut ActivityCounters,
    ) -> u64 {
        let Some(entry) = self.dir.get(&l2_line).copied() else {
            return 0;
        };
        let mut worst = 0;
        let victims: Vec<TileId> = entry
            .sharer_tiles()
            .chain(entry.owner)
            .filter(|&t| Some(t) != keep)
            .collect();
        let mut seen = [false; 32];
        for t in victims {
            if seen[t.index()] {
                continue;
            }
            seen[t.index()] = true;
            let inv = Self::flit_payloads(l2_line, 0, INV_FLITS);
            self.noc.send(NocId::Noc2, home, t, &inv, act);
            self.invalidate_tile_copies(t, l2_line, act);
            let ack = Self::flit_payloads(l2_line, 0, ACK_FLITS);
            self.noc.send(NocId::Noc3, t, home, &ack, act);
            worst = worst.max(2 * self.route_cycles(home, t));
        }
        if let Some(e) = self.dir.get_mut(&l2_line) {
            let kept = keep.map(DirEntry::bit).unwrap_or(0);
            e.sharers &= kept;
            if e.owner != keep {
                e.owner = None;
            }
        }
        worst
    }

    /// Handles an L2 victim: invalidate chip-wide copies and write dirty
    /// data back to DRAM (buffered — does not block the requestor).
    fn handle_l2_eviction(
        &mut self,
        home: TileId,
        victim_line: u64,
        dirty: bool,
        act: &mut ActivityCounters,
    ) {
        self.invalidate_sharers(home, victim_line, None, act);
        self.dir.remove(&victim_line);
        if dirty {
            // Buffered write-back down the off-chip path.
            act.dram_accesses += 2;
            act.chip_bridge_flits += 12;
        }
    }

    /// Fetches a dirty line from its L1.5 owner back to the home L2
    /// (downgrade-with-data); tolerant of stale owner pointers.
    fn fetch_from_owner(
        &mut self,
        home: TileId,
        l2_line: u64,
        requester: TileId,
        act: &mut ActivityCounters,
    ) -> u64 {
        let Some(entry) = self.dir.get(&l2_line).copied() else {
            return 0;
        };
        let Some(owner) = entry.owner else { return 0 };
        if owner == requester {
            return 0;
        }
        // Probe the owner; a silent L1.5 eviction may have cleared it.
        let sub = self.cfg.l15.line_bytes;
        let mut was_dirty = false;
        for k in 0..(self.cfg.l2.line_bytes / sub) {
            let a = l2_line + k * sub;
            if self.l15[owner.index()].peek(a) == Some(LineState::Modified) {
                self.l15[owner.index()].set_state(a, LineState::Shared);
                was_dirty = true;
            }
        }
        if let Some(e) = self.dir.get_mut(&l2_line) {
            e.owner = None;
            e.add_sharer(owner);
        }
        if !was_dirty {
            return 0;
        }
        let fwd = Self::flit_payloads(l2_line, 0, INV_FLITS);
        self.noc.send(NocId::Noc2, home, owner, &fwd, act);
        let data = Self::flit_payloads(l2_line, self.mem.read(l2_line), RESP_FLITS);
        self.noc.send(NocId::Noc3, owner, home, &data, act);
        act.l15_writebacks += 1;
        act.l2_writes += 1;
        2 * self.route_cycles(home, owner)
    }

    /// Write back an evicted dirty L1.5 line to its home L2.
    fn writeback_l15_victim(&mut self, tile: TileId, line_addr: u64, act: &mut ActivityCounters) {
        if trace::active() {
            trace_cache(
                trace::ambient_cycle(),
                tile,
                CacheLevel::L15,
                CacheKind::Writeback,
                line_addr,
            );
        }
        let l2_line = self.l2_line(line_addr);
        let home = self.home_slice(line_addr);
        let data = Self::flit_payloads(line_addr, self.mem.read(line_addr), RESP_FLITS);
        self.noc.send(NocId::Noc1, tile, home, &data, act);
        act.l15_writebacks += 1;
        act.l2_writes += 1;
        // Mark the L2 copy dirty so its eventual eviction writes to DRAM.
        self.l2[home.index()].set_state(l2_line, LineState::Modified);
        if let Some(e) = self.dir.get_mut(&l2_line) {
            if e.owner == Some(tile) {
                e.owner = None;
                e.add_sharer(tile);
            }
        }
    }

    /// Fill a line into a tile's L1.5 and L1, handling victims.
    fn fill_private(
        &mut self,
        tile: TileId,
        addr: u64,
        state: LineState,
        now: u64,
        act: &mut ActivityCounters,
    ) {
        let l15_line = addr & !(self.cfg.l15.line_bytes - 1);
        if let Some(victim) = self.l15[tile.index()].insert(l15_line, state, now) {
            if victim.state.is_dirty() {
                self.writeback_l15_victim(tile, victim.line_addr, act);
            } else if let Some(e) = self.dir.get_mut(&self.l2_line(victim.line_addr)) {
                // Silent clean eviction; drop sharer lazily if no other
                // subline of the 64B line remains (cheap approximation:
                // leave it — the protocol tolerates stale sharers).
                let _ = e;
            }
        }
        let l1_line = addr & !(self.cfg.l1d.line_bytes - 1);
        // L1 fills are clean (write-through): silent eviction.
        let _ = self.l1d[tile.index()].insert(l1_line, LineState::Shared, now);
    }

    /// Services the home-L2 side of a request; returns
    /// `(latency_beyond_noc, l2_hit)`.
    fn access_home(
        &mut self,
        tile: TileId,
        home: TileId,
        addr: u64,
        for_write: bool,
        now: u64,
        act: &mut ActivityCounters,
    ) -> (u64, bool) {
        let l2_line = self.l2_line(addr);
        act.dir_lookups += 1;
        act.l2_reads += 1;

        let hit = self.l1_5_probe_home(home, l2_line, now);
        if hit {
            let mut extra = self.fetch_from_owner(home, l2_line, tile, act);
            if for_write {
                extra = extra.max(self.invalidate_sharers(home, l2_line, Some(tile), act));
            } else {
                // A second reader demotes any Exclusive copy to Shared.
                let others: Vec<TileId> = self
                    .dir
                    .get(&l2_line)
                    .map(|e| e.sharer_tiles().filter(|&t| t != tile).collect())
                    .unwrap_or_default();
                let sub = self.cfg.l15.line_bytes;
                for o in others {
                    for k in 0..(self.cfg.l2.line_bytes / sub) {
                        let a = l2_line + k * sub;
                        if self.l15[o.index()].peek(a) == Some(LineState::Exclusive) {
                            self.l15[o.index()].set_state(a, LineState::Shared);
                        }
                    }
                }
            }
            let e = self.dir.entry(l2_line).or_default();
            if for_write {
                e.sharers = DirEntry::bit(tile);
                e.owner = Some(tile);
            } else {
                e.add_sharer(tile);
            }
            (L2_HIT_CYCLES + extra, true)
        } else {
            act.l2_misses += 1;
            let path_latency = self.path.access(now, act);
            act.l2_writes += 1; // fill
            if let Some(victim) = self.l2[home.index()].insert(l2_line, LineState::Exclusive, now) {
                self.handle_l2_eviction(home, victim.line_addr, victim.state.is_dirty(), act);
            }
            let mut e = DirEntry::default();
            if for_write {
                e.sharers = DirEntry::bit(tile);
                e.owner = Some(tile);
            } else {
                e.add_sharer(tile);
            }
            self.dir.insert(l2_line, e);
            (MISS_OVERHEAD_CYCLES + path_latency, false)
        }
    }

    fn l1_5_probe_home(&mut self, home: TileId, l2_line: u64, now: u64) -> bool {
        self.l2[home.index()].lookup(l2_line, now).is_some()
    }

    /// Performs a 64-bit load from `tile` at cycle `now`.
    pub fn load(
        &mut self,
        tile: TileId,
        addr: u64,
        now: u64,
        act: &mut ActivityCounters,
    ) -> LoadOutcome {
        act.l1d_reads += 1;
        let value = self.mem.read(addr);
        act.mem_value_activity += value_activity(value);
        let tracing = trace::active();
        if tracing {
            trace::set_cycle(now);
        }

        if self.l1d[tile.index()].lookup(addr, now).is_some() {
            if tracing {
                trace_cache(now, tile, CacheLevel::L1D, CacheKind::Hit, addr);
            }
            return LoadOutcome {
                value,
                latency: L1_HIT_CYCLES,
                level: HitLevel::L1,
            };
        }
        act.l1d_misses += 1;
        act.load_rollbacks += 1; // the core speculated an L1 hit
        act.l15_reads += 1;

        if self.l15[tile.index()].lookup(addr, now).is_some() {
            let l1_line = addr & !(self.cfg.l1d.line_bytes - 1);
            let _ = self.l1d[tile.index()].insert(l1_line, LineState::Shared, now);
            if tracing {
                trace_cache(now, tile, CacheLevel::L15, CacheKind::Hit, addr);
            }
            return LoadOutcome {
                value,
                latency: L15_HIT_CYCLES,
                level: HitLevel::L15,
            };
        }
        act.l15_misses += 1;

        let home = self.home_slice(addr);
        let route = self.noc.mesh().route(tile, home);
        let rt = 2 * route.latency_cycles();
        let req = Self::flit_payloads(addr, tile.index() as u64, REQ_FLITS);
        self.noc.send(NocId::Noc1, tile, home, &req, act);

        let (home_latency, l2_hit) = self.access_home(tile, home, addr, false, now, act);

        let resp = Self::flit_payloads(addr, value, RESP_FLITS);
        self.noc.send(NocId::Noc3, home, tile, &resp, act);

        let entry = self
            .dir
            .get(&self.l2_line(addr))
            .copied()
            .unwrap_or_default();
        let alone = entry.sharers == DirEntry::bit(tile) && entry.owner.is_none();
        let fill_state = if alone {
            LineState::Exclusive
        } else {
            LineState::Shared
        };
        self.fill_private(tile, addr, fill_state, now, act);

        let level = if l2_hit {
            HitLevel::L2 { hops: route.hops }
        } else {
            HitLevel::Memory { hops: route.hops }
        };
        if tracing {
            let (lvl, kind) = if l2_hit {
                (CacheLevel::L2, CacheKind::Hit)
            } else {
                (CacheLevel::Memory, CacheKind::Fill)
            };
            trace_cache(now, tile, lvl, kind, addr);
        }
        LoadOutcome {
            value,
            latency: home_latency + rt,
            level,
        }
    }

    /// Drains one store from a store buffer: write-through the L1, write
    /// the L1.5 (upgrading via the directory when not owned). Returns the
    /// drain latency.
    pub fn store_drain(
        &mut self,
        tile: TileId,
        addr: u64,
        value: u64,
        now: u64,
        act: &mut ActivityCounters,
    ) -> u64 {
        act.l1d_writes += 1;
        act.l15_writes += 1;
        act.mem_value_activity += value_activity(value);
        let tracing = trace::active();
        if tracing {
            trace::set_cycle(now);
        }

        let owned = matches!(
            self.l15[tile.index()].lookup(addr, now),
            Some(LineState::Modified | LineState::Exclusive)
        );
        if tracing {
            let kind = if owned {
                CacheKind::Hit
            } else {
                CacheKind::Upgrade
            };
            trace_cache(now, tile, CacheLevel::L15, kind, addr);
        }
        let latency = if owned {
            self.l15[tile.index()]
                .set_state(addr & !(self.cfg.l15.line_bytes - 1), LineState::Modified);
            STORE_DRAIN_CYCLES
        } else {
            let home = self.home_slice(addr);
            let route = self.noc.mesh().route(tile, home);
            let rt = 2 * route.latency_cycles();
            let req = Self::flit_payloads(addr, value, REQ_FLITS);
            self.noc.send(NocId::Noc1, tile, home, &req, act);
            let (home_latency, _hit) = self.access_home(tile, home, addr, true, now, act);
            let resp = Self::flit_payloads(addr, value, RESP_FLITS);
            self.noc.send(NocId::Noc3, home, tile, &resp, act);
            self.fill_private(tile, addr, LineState::Modified, now, act);
            home_latency + rt
        };

        // Keep the L1 (write-through) coherent with the store.
        let l1_line = addr & !(self.cfg.l1d.line_bytes - 1);
        if self.l1d[tile.index()].peek(l1_line).is_some() {
            let _ = self.l1d[tile.index()].insert(l1_line, LineState::Shared, now);
        }
        if let Some(e) = self.dir.get_mut(&self.l2_line(addr)) {
            e.owner = Some(tile);
            e.add_sharer(tile);
        }
        self.mem.write(addr, value);
        latency
    }

    /// Performs an atomic compare-and-swap at the L2 coherence point.
    /// Returns `(old_value, latency)`.
    pub fn cas(
        &mut self,
        tile: TileId,
        addr: u64,
        expected: u64,
        new: u64,
        now: u64,
        act: &mut ActivityCounters,
    ) -> (u64, u64) {
        act.atomics += 1;
        act.dir_lookups += 1;
        act.l2_reads += 1;
        act.l2_writes += 1;
        if trace::active() {
            trace::set_cycle(now);
            trace_cache(now, tile, CacheLevel::L2, CacheKind::Atomic, addr);
        }

        let l2_line = self.l2_line(addr);
        let home = self.home_slice(addr);
        let route = self.noc.mesh().route(tile, home);
        let rt = 2 * route.latency_cycles();

        let req = Self::flit_payloads(addr, expected ^ new, REQ_FLITS);
        self.noc.send(NocId::Noc1, tile, home, &req, act);

        // Atomics invalidate every private copy (including the
        // requester's) and leave the line dirty at the L2.
        let inv_latency = self.invalidate_sharers(home, l2_line, None, act);
        self.invalidate_tile_copies(tile, l2_line, act);

        let mut miss_latency = 0;
        if self.l2[home.index()].lookup(l2_line, now).is_none() {
            act.l2_misses += 1;
            miss_latency = MISS_OVERHEAD_CYCLES + self.path.access(now, act);
            if let Some(victim) = self.l2[home.index()].insert(l2_line, LineState::Modified, now) {
                self.handle_l2_eviction(home, victim.line_addr, victim.state.is_dirty(), act);
            }
        } else {
            self.l2[home.index()].set_state(l2_line, LineState::Modified);
        }
        self.dir.insert(l2_line, DirEntry::default());

        let old = self.mem.compare_and_swap(addr, expected, new);
        act.mem_value_activity += value_activity(old);

        let resp = Self::flit_payloads(addr, old, RESP_FLITS);
        self.noc.send(NocId::Noc3, home, tile, &resp, act);

        (old, CAS_BASE_CYCLES + rt + inv_latency + miss_latency)
    }

    /// Direct memory write used by program loaders (bypasses caches and
    /// timing, as the serial-port/SD loader would).
    pub fn poke(&mut self, addr: u64, value: u64) {
        self.mem.write(addr, value);
    }

    /// Direct memory read for test inspection.
    #[must_use]
    pub fn peek_mem(&self, addr: u64) -> u64 {
        self.mem.read(addr)
    }

    /// MESI invariant check for tests: at most one L1.5 holds a given
    /// line Modified/Exclusive, and never together with Shared copies
    /// elsewhere.
    #[must_use]
    pub fn coherence_ok(&self, addr: u64) -> bool {
        let line = addr & !(self.cfg.l15.line_bytes - 1);
        let mut exclusive_holders = 0;
        let mut shared_holders = 0;
        for t in 0..self.cfg.tile_count() {
            match self.l15[t].peek(line) {
                Some(LineState::Modified | LineState::Exclusive) => exclusive_holders += 1,
                Some(LineState::Shared) => shared_holders += 1,
                _ => {}
            }
        }
        exclusive_holders <= 1 && (exclusive_holders == 0 || shared_holders == 0)
    }

    /// State of a line in a tile's L1.5 (test inspection).
    #[must_use]
    pub fn l15_state(&self, tile: TileId, addr: u64) -> Option<LineState> {
        self.l15[tile.index()].peek(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> (MemorySystem, ActivityCounters) {
        (
            MemorySystem::new(&ChipConfig::piton()),
            ActivityCounters::default(),
        )
    }

    /// An address whose home slice is the given tile (low-bit mapping:
    /// slice = (addr / 64) mod 25).
    fn addr_homed_at(sys: &MemorySystem, tile: usize) -> u64 {
        let base = 0x10_0000;
        for k in 0..64 {
            let a = base + k * 64;
            if sys.home_slice(a).index() == tile {
                return a;
            }
        }
        panic!("no address homed at tile {tile}");
    }

    #[test]
    fn load_latency_ladder_matches_table_vii() {
        let (mut sys, mut act) = system();
        let t0 = TileId::new(0);
        let a_local = addr_homed_at(&sys, 0);

        // Cold: local L2 miss -> ~424 cycles.
        let miss = sys.load(t0, a_local, 0, &mut act);
        assert!(matches!(miss.level, HitLevel::Memory { hops: 0 }));
        assert!(
            (424..470).contains(&miss.latency),
            "L2 miss latency {}",
            miss.latency
        );

        // Warm L1: 3 cycles.
        let hit = sys.load(t0, a_local, 1000, &mut act);
        assert_eq!(hit.level, HitLevel::L1);
        assert_eq!(hit.latency, 3);
    }

    #[test]
    fn local_l2_hit_is_34_cycles() {
        let (mut sys, mut act) = system();
        let t0 = TileId::new(0);
        let a = addr_homed_at(&sys, 0);
        // Warm the L2 via another tile, then evict nothing: t0's L1/L1.5
        // are still cold, so t0's first load hits only the L2... but the
        // *other* tile must not hold it Modified. A clean load suffices.
        let t9 = TileId::new(9);
        let _ = sys.load(t9, a, 0, &mut act);
        let out = sys.load(t0, a, 2000, &mut act);
        assert_eq!(out.level, HitLevel::L2 { hops: 0 });
        assert_eq!(out.latency, 34);
    }

    #[test]
    fn remote_l2_hits_match_paper_hop_latencies() {
        let (mut sys, mut act) = system();
        // Home at tile4: 4 straight hops from tile0 -> 34 + 8 = 42.
        let a4 = addr_homed_at(&sys, 4);
        let _ = sys.load(TileId::new(4), a4, 0, &mut act); // warm L2
        let out = sys.load(TileId::new(0), a4, 2000, &mut act);
        assert_eq!(out.level, HitLevel::L2 { hops: 4 });
        assert_eq!(out.latency, 42);

        // Home at tile24: 8 hops with a turn each way -> 34 + 18 = 52.
        let a24 = addr_homed_at(&sys, 24);
        let _ = sys.load(TileId::new(24), a24, 4000, &mut act);
        let out = sys.load(TileId::new(0), a24, 6000, &mut act);
        assert_eq!(out.level, HitLevel::L2 { hops: 8 });
        assert_eq!(out.latency, 52);
    }

    #[test]
    fn store_upgrade_invalidates_sharers() {
        let (mut sys, mut act) = system();
        let a = addr_homed_at(&sys, 12);
        let reader = TileId::new(3);
        let writer = TileId::new(7);

        let _ = sys.load(reader, a, 0, &mut act);
        let _ = sys.load(writer, a, 1000, &mut act);
        assert!(sys.l15_state(reader, a).is_some());

        let inv_before = act.invalidations;
        let lat = sys.store_drain(writer, a, 0xFEED, 2000, &mut act);
        assert!(lat > STORE_DRAIN_CYCLES, "upgrade must cost more: {lat}");
        assert!(act.invalidations > inv_before);
        assert_eq!(sys.l15_state(reader, a), None);
        assert_eq!(sys.l15_state(writer, a), Some(LineState::Modified));
        assert!(sys.coherence_ok(a));
        assert_eq!(sys.peek_mem(a), 0xFEED);
    }

    #[test]
    fn owned_store_drains_in_ten_cycles() {
        let (mut sys, mut act) = system();
        let a = addr_homed_at(&sys, 5);
        let t = TileId::new(5);
        let _ = sys.store_drain(t, a, 1, 0, &mut act); // acquire ownership
        let lat = sys.store_drain(t, a, 2, 1000, &mut act);
        assert_eq!(lat, STORE_DRAIN_CYCLES);
    }

    #[test]
    fn dirty_line_fetched_from_owner_on_remote_read() {
        let (mut sys, mut act) = system();
        let a = addr_homed_at(&sys, 10);
        let writer = TileId::new(2);
        let reader = TileId::new(20);

        let _ = sys.store_drain(writer, a, 0xABCD, 0, &mut act);
        assert_eq!(sys.l15_state(writer, a), Some(LineState::Modified));

        let out = sys.load(reader, a, 1000, &mut act);
        assert_eq!(out.value, 0xABCD);
        // Owner downgraded; both now share.
        assert_eq!(sys.l15_state(writer, a), Some(LineState::Shared));
        assert!(sys.coherence_ok(a));
    }

    #[test]
    fn cas_is_atomic_and_invalidates_everyone() {
        let (mut sys, mut act) = system();
        let a = addr_homed_at(&sys, 8);
        let t1 = TileId::new(1);
        let t2 = TileId::new(6);

        let _ = sys.load(t1, a, 0, &mut act);
        let _ = sys.load(t2, a, 100, &mut act);

        let (old, lat) = sys.cas(t1, a, 0, 1, 200, &mut act);
        assert_eq!(old, 0);
        assert!(lat >= CAS_BASE_CYCLES);
        assert_eq!(sys.peek_mem(a), 1);
        assert_eq!(sys.l15_state(t1, a), None);
        assert_eq!(sys.l15_state(t2, a), None);

        // Losing CAS returns the current value without storing.
        let (old2, _) = sys.cas(t2, a, 0, 99, 300, &mut act);
        assert_eq!(old2, 1);
        assert_eq!(sys.peek_mem(a), 1);
    }

    #[test]
    fn exclusive_fill_when_sole_sharer() {
        let (mut sys, mut act) = system();
        let a = addr_homed_at(&sys, 15);
        let t = TileId::new(0);
        let _ = sys.load(t, a, 0, &mut act);
        assert_eq!(sys.l15_state(t, a), Some(LineState::Exclusive));
        // A second reader demotes both to Shared for the new fill.
        let t2 = TileId::new(1);
        let _ = sys.load(t2, a, 100, &mut act);
        assert_eq!(sys.l15_state(t2, a), Some(LineState::Shared));
        assert!(sys.coherence_ok(a));
    }

    #[test]
    fn l2_misses_consume_dram_accesses() {
        let (mut sys, mut act) = system();
        let t = TileId::new(0);
        // Touch many distinct lines: each cold miss costs 2 DRAM accesses.
        for k in 0..10 {
            let _ = sys.load(t, 0x20_0000 + k * 64, k * 2000, &mut act);
        }
        assert_eq!(act.l2_misses, 10);
        assert_eq!(act.dram_accesses, 20);
        assert_eq!(act.offchip_requests, 10);
    }

    #[test]
    fn noc_traffic_flows_for_remote_requests() {
        let (mut sys, mut act) = system();
        let a = addr_homed_at(&sys, 24);
        let _ = sys.load(TileId::new(0), a, 0, &mut act);
        assert!(act.noc_packets >= 2); // request + response at minimum
        assert!(act.noc_flit_hops > 0);
    }

    #[test]
    fn slice_mapping_modes_differ() {
        let mut cfg = ChipConfig::piton();
        cfg.slice_mapping = SliceMapping::Mid;
        let sys_mid = MemorySystem::new(&cfg);
        let sys_low = MemorySystem::new(&ChipConfig::piton());
        // Adjacent lines map to different slices under Low but the same
        // slice under Mid (same 4 KB page).
        let a = 0x40_0000;
        assert_ne!(sys_low.home_slice(a), sys_low.home_slice(a + 64));
        assert_eq!(sys_mid.home_slice(a), sys_mid.home_slice(a + 64));
    }
}
