//! The three physical networks-on-chip.
//!
//! Piton interconnects its tiles with three 64-bit physical NoCs carrying
//! the coherence protocol (NoC1: requests, NoC2: forwards/invalidations,
//! NoC3: responses). Routing is dimension-ordered wormhole with one cycle
//! per hop and an extra cycle on turns.
//!
//! The model here is *transaction-level with per-wire activity*: a packet
//! walks its dimension-ordered route atomically and we account, per
//! physical link, the Hamming distance between consecutive flits — the
//! quantity the NoC energy-per-flit study of §IV-G sweeps with its
//! NSW/HSW/FSW/FSWA bit patterns — plus opposite-direction adjacent-bit
//! transitions (coupling aggressors, the FSWA case). Congestion is not
//! modelled; none of the paper's workloads saturates a NoC (see
//! DESIGN.md).
//!
//! # Examples
//!
//! ```
//! use piton_sim::noc::{NocId, NocFabric};
//! use piton_sim::events::ActivityCounters;
//! use piton_arch::topology::{Mesh, TileId};
//!
//! let mut noc = NocFabric::new(Mesh::piton());
//! let mut act = ActivityCounters::default();
//! let lat = noc.send(
//!     NocId::Noc2,
//!     TileId::new(0),
//!     TileId::new(2),
//!     &[0xFFFF_FFFF_FFFF_FFFF; 7],
//!     &mut act,
//! );
//! assert_eq!(lat, 2); // two straight hops, no turn
//! assert_eq!(act.noc_flit_hops, 14);
//! ```

use std::collections::HashMap;

use piton_arch::topology::{Mesh, TileId};
use serde::{Deserialize, Serialize};

use crate::events::ActivityCounters;

/// Which physical network a message travels on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NocId {
    /// Requests (L1.5 → L2).
    Noc1,
    /// Forwards and invalidations (L2 → L1.5).
    Noc2,
    /// Responses (data, acks).
    Noc3,
}

impl NocId {
    /// All three physical networks.
    pub const ALL: [NocId; 3] = [NocId::Noc1, NocId::Noc2, NocId::Noc3];

    fn index(self) -> usize {
        match self {
            NocId::Noc1 => 0,
            NocId::Noc2 => 1,
            NocId::Noc3 => 2,
        }
    }
}

/// Counts bits that toggled between consecutive flits on a link.
#[must_use]
pub fn hamming(prev: u64, cur: u64) -> u32 {
    (prev ^ cur).count_ones()
}

/// Counts adjacent bit pairs that toggled in *opposite* directions — the
/// coupling-aggressor events that make the paper's FSWA pattern slightly
/// more expensive than FSW.
#[must_use]
pub fn coupling_transitions(prev: u64, cur: u64) -> u32 {
    let changed = prev ^ cur;
    let rising = cur & changed;
    let falling = !cur & changed;
    (rising & (falling >> 1)).count_ones() + (falling & (rising >> 1)).count_ones()
}

/// The three physical mesh networks with per-link wire state.
#[derive(Debug, Clone)]
pub struct NocFabric {
    mesh: Mesh,
    /// Last flit value seen on each directed link, per network.
    link_state: [HashMap<(TileId, TileId), u64>; 3],
}

impl NocFabric {
    /// Creates an idle fabric over a mesh.
    #[must_use]
    pub fn new(mesh: Mesh) -> Self {
        Self {
            mesh,
            link_state: [HashMap::new(), HashMap::new(), HashMap::new()],
        }
    }

    /// The underlying mesh.
    #[must_use]
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Sends one packet (`flits`, header first) from `src` to `dst` on
    /// network `noc`, accounting link activity into `act`.
    ///
    /// Returns the head-flit network latency in cycles: one per hop plus
    /// one per turn (serialization of the body behind the head is folded
    /// into the caller's transaction latency model).
    pub fn send(
        &mut self,
        noc: NocId,
        src: TileId,
        dst: TileId,
        flits: &[u64],
        act: &mut ActivityCounters,
    ) -> u64 {
        let route = self.mesh.route(src, dst);
        act.noc_packets += 1;
        act.noc_route_computes += route.hops as u64;

        if route.hops == 0 {
            // Local delivery still traverses the router's local port once.
            act.noc_flit_hops += flits.len() as u64;
            return 0;
        }

        let mut at = src;
        while let Some(next) = self.mesh.next_hop(at, dst) {
            let state = self.link_state[noc.index()]
                .entry((at, next))
                .or_insert(0u64);
            for &flit in flits {
                act.noc_flit_hops += 1;
                act.noc_bit_switches += u64::from(hamming(*state, flit));
                act.noc_coupling_switches += u64::from(coupling_transitions(*state, flit));
                *state = flit;
            }
            at = next;
        }
        route.latency_cycles()
    }

    /// Resets all link wire state to zero (quiescent network).
    pub fn quiesce(&mut self) {
        for net in &mut self.link_state {
            net.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> (NocFabric, ActivityCounters) {
        (NocFabric::new(Mesh::piton()), ActivityCounters::default())
    }

    #[test]
    fn hamming_and_coupling() {
        assert_eq!(hamming(0, u64::MAX), 64);
        assert_eq!(hamming(0xF0, 0x0F), 8);
        // FSW: all bits rise together -> no opposite-direction pairs.
        assert_eq!(coupling_transitions(0, u64::MAX), 0);
        // FSWA: 0xAAAA.. -> 0x5555..: every adjacent pair is opposite.
        assert_eq!(
            coupling_transitions(0xAAAA_AAAA_AAAA_AAAA, 0x5555_5555_5555_5555),
            63
        );
        // No change -> nothing.
        assert_eq!(coupling_transitions(0x42, 0x42), 0);
    }

    #[test]
    fn zero_hop_delivery_is_free_of_link_switching() {
        let (mut noc, mut act) = fabric();
        let lat = noc.send(
            NocId::Noc1,
            TileId::new(3),
            TileId::new(3),
            &[u64::MAX; 7],
            &mut act,
        );
        assert_eq!(lat, 0);
        assert_eq!(act.noc_bit_switches, 0);
        assert_eq!(act.noc_flit_hops, 7);
    }

    #[test]
    fn switching_scales_with_hops() {
        // Alternating all-ones/all-zeros payload (FSW): 64 switches per
        // flit per link after the first flit primes the wires.
        let flits = [u64::MAX, 0, u64::MAX, 0, u64::MAX, 0, u64::MAX];
        let (mut noc, mut act) = fabric();
        noc.send(
            NocId::Noc1,
            TileId::new(0),
            TileId::new(1),
            &flits,
            &mut act,
        );
        let one_hop = act.noc_bit_switches;

        let (mut noc2, mut act2) = fabric();
        noc2.send(
            NocId::Noc1,
            TileId::new(0),
            TileId::new(4),
            &flits,
            &mut act2,
        );
        let four_hops = act2.noc_bit_switches;
        assert_eq!(four_hops, 4 * one_hop);
        assert_eq!(act2.noc_flit_hops, 4 * 7);
    }

    #[test]
    fn nsw_payload_switches_nothing_on_warm_links() {
        let flits = [0u64; 7];
        let (mut noc, mut act) = fabric();
        // First packet primes (links start at zero so NSW never switches).
        noc.send(
            NocId::Noc1,
            TileId::new(0),
            TileId::new(4),
            &flits,
            &mut act,
        );
        assert_eq!(act.noc_bit_switches, 0);
    }

    #[test]
    fn turn_adds_latency() {
        let (mut noc, mut act) = fabric();
        let straight = noc.send(NocId::Noc1, TileId::new(0), TileId::new(4), &[0], &mut act);
        assert_eq!(straight, 4);
        let turning = noc.send(NocId::Noc1, TileId::new(0), TileId::new(9), &[0], &mut act);
        assert_eq!(turning, 6); // 5 hops + turn
    }

    #[test]
    fn networks_have_independent_wire_state() {
        let (mut noc, mut act) = fabric();
        noc.send(
            NocId::Noc1,
            TileId::new(0),
            TileId::new(1),
            &[u64::MAX],
            &mut act,
        );
        let after_first = act.noc_bit_switches;
        assert_eq!(after_first, 64);
        // Same flit on NoC3: its wires are still at zero, so it switches
        // another 64 bits rather than zero.
        noc.send(
            NocId::Noc3,
            TileId::new(0),
            TileId::new(1),
            &[u64::MAX],
            &mut act,
        );
        assert_eq!(act.noc_bit_switches, 128);
    }

    #[test]
    fn quiesce_clears_wires() {
        let (mut noc, mut act) = fabric();
        noc.send(
            NocId::Noc1,
            TileId::new(0),
            TileId::new(1),
            &[u64::MAX],
            &mut act,
        );
        noc.quiesce();
        noc.send(
            NocId::Noc1,
            TileId::new(0),
            TileId::new(1),
            &[u64::MAX],
            &mut act,
        );
        assert_eq!(act.noc_bit_switches, 128); // switched again after reset
    }
}
