//! The three physical networks-on-chip.
//!
//! Piton interconnects its tiles with three 64-bit physical NoCs carrying
//! the coherence protocol (NoC1: requests, NoC2: forwards/invalidations,
//! NoC3: responses). Routing is dimension-ordered wormhole with one cycle
//! per hop and an extra cycle on turns.
//!
//! The model here is *transaction-level with per-wire activity*: a packet
//! walks its dimension-ordered route atomically and we account, per
//! physical link, the Hamming distance between consecutive flits — the
//! quantity the NoC energy-per-flit study of §IV-G sweeps with its
//! NSW/HSW/FSW/FSWA bit patterns — plus opposite-direction adjacent-bit
//! transitions (coupling aggressors, the FSWA case). Congestion is not
//! modelled; none of the paper's workloads saturates a NoC (see
//! DESIGN.md).
//!
//! Link-switching activity is history-dependent: each physical link
//! remembers its last flit, so the Hamming work a packet charges
//! depends on every packet that crossed that link before it. Engines
//! must therefore issue packets in the canonical machine order
//! (ascending cycle, then ascending tile) — the batched dense engine's
//! barrier replay exists to preserve exactly this ordering.
//!
//! # Examples
//!
//! ```
//! use piton_sim::noc::{NocId, NocFabric};
//! use piton_sim::events::ActivityCounters;
//! use piton_arch::topology::{Mesh, TileId};
//!
//! let mut noc = NocFabric::new(Mesh::piton());
//! let mut act = ActivityCounters::default();
//! let lat = noc.send(
//!     NocId::Noc2,
//!     TileId::new(0),
//!     TileId::new(2),
//!     &[0xFFFF_FFFF_FFFF_FFFF; 7],
//!     &mut act,
//! );
//! assert_eq!(lat, 2); // two straight hops, no turn
//! assert_eq!(act.noc_flit_hops, 14);
//! ```

use piton_arch::topology::{Mesh, TileId};
use piton_obs::trace::{self, TraceEvent};
use serde::{Deserialize, Serialize};

use crate::events::ActivityCounters;

/// Which physical network a message travels on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NocId {
    /// Requests (L1.5 → L2).
    Noc1,
    /// Forwards and invalidations (L2 → L1.5).
    Noc2,
    /// Responses (data, acks).
    Noc3,
}

impl NocId {
    /// All three physical networks.
    pub const ALL: [NocId; 3] = [NocId::Noc1, NocId::Noc2, NocId::Noc3];

    fn index(self) -> usize {
        match self {
            NocId::Noc1 => 0,
            NocId::Noc2 => 1,
            NocId::Noc3 => 2,
        }
    }
}

/// Outlined per-hop trace emission — callers gate on [`trace::active`]
/// so the per-flit accounting loop stays branch-cheap when tracing is
/// off. The cycle stamp is the ambient clock set by the memory system
/// (the fabric API itself is untimed).
#[cold]
fn trace_hop(noc: NocId, from: TileId, to: TileId, flits: usize) {
    trace::emit(TraceEvent::NocHop {
        cycle: trace::ambient_cycle(),
        noc: noc.index() as u32,
        from: from.index() as u32,
        to: to.index() as u32,
        flits: flits as u32,
    });
}

/// Emits one hop event per link of a precomputed plan, reconstructing
/// the endpoints from the flat link index (`tile * 4 + dir`, E/W/S/N).
#[cold]
fn trace_planned_hops(noc: NocId, links: &[usize], width: usize, flits: usize) {
    for &l in links {
        let from = l / 4;
        let to = match l % 4 {
            0 => from + 1,
            1 => from - 1,
            2 => from + width,
            _ => from - width,
        };
        trace_hop(noc, TileId::new(from), TileId::new(to), flits);
    }
}

/// Counts bits that toggled between consecutive flits on a link.
#[must_use]
pub fn hamming(prev: u64, cur: u64) -> u32 {
    (prev ^ cur).count_ones()
}

/// Counts adjacent bit pairs that toggled in *opposite* directions — the
/// coupling-aggressor events that make the paper's FSWA pattern slightly
/// more expensive than FSW.
#[must_use]
pub fn coupling_transitions(prev: u64, cur: u64) -> u32 {
    let changed = prev ^ cur;
    let rising = cur & changed;
    let falling = !cur & changed;
    (rising & (falling >> 1)).count_ones() + (falling & (rising >> 1)).count_ones()
}

/// The three physical mesh networks with per-link wire state.
#[derive(Debug, Clone)]
pub struct NocFabric {
    mesh: Mesh,
    /// Mesh width, cached for the hot link-index computation.
    width: usize,
    /// Last flit value seen on each directed link, per network, in flat
    /// arrays indexed by [`link_index`](Self::link_index): the per-flit
    /// tuple-hash lookup of the old `HashMap<(TileId, TileId), u64>` was
    /// the hottest line of the NoC energy experiment.
    link_state: [Vec<u64>; 3],
}

impl NocFabric {
    /// Creates an idle fabric over a mesh.
    #[must_use]
    pub fn new(mesh: Mesh) -> Self {
        // Four outbound directions per tile; links off the mesh edge are
        // dead slots that never get indexed.
        let links = mesh.tile_count() * 4;
        let width = mesh.width();
        Self {
            mesh,
            width,
            link_state: [vec![0; links], vec![0; links], vec![0; links]],
        }
    }

    /// Flat index of the directed link `from → to` (which must be mesh
    /// neighbours): four outbound slots per tile, ordered E/W/S/N.
    #[inline]
    fn link_index(width: usize, from: TileId, to: TileId) -> usize {
        let (f, t) = (from.index(), to.index());
        let dir = if t == f + 1 {
            0 // east
        } else if t + 1 == f {
            1 // west
        } else if t == f + width {
            2 // south
        } else {
            debug_assert_eq!(t + width, f, "link {f}->{t} is not a mesh hop");
            3 // north
        };
        f * 4 + dir
    }

    /// The underlying mesh.
    #[must_use]
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Sends one packet (`flits`, header first) from `src` to `dst` on
    /// network `noc`, accounting link activity into `act`.
    ///
    /// Returns the head-flit network latency in cycles: one per hop plus
    /// one per turn (serialization of the body behind the head is folded
    /// into the caller's transaction latency model).
    pub fn send(
        &mut self,
        noc: NocId,
        src: TileId,
        dst: TileId,
        flits: &[u64],
        act: &mut ActivityCounters,
    ) -> u64 {
        let route = self.mesh.route(src, dst);
        act.noc_packets += 1;
        act.noc_route_computes += route.hops as u64;

        if route.hops == 0 {
            // Local delivery still traverses the router's local port once.
            act.noc_flit_hops += flits.len() as u64;
            return 0;
        }

        let tracing = trace::active();
        let net = &mut self.link_state[noc.index()];
        let mut at = src;
        while let Some(next) = self.mesh.next_hop(at, dst) {
            let state = &mut net[Self::link_index(self.width, at, next)];
            for &flit in flits {
                act.noc_flit_hops += 1;
                act.noc_bit_switches += u64::from(hamming(*state, flit));
                act.noc_coupling_switches += u64::from(coupling_transitions(*state, flit));
                *state = flit;
            }
            if tracing {
                trace_hop(noc, at, next, flits.len());
            }
            at = next;
        }
        route.latency_cycles()
    }

    /// Precomputes the route `src → dst` on `noc` for a constant packet
    /// stream (e.g. the Figure 12 bridge traffic): the dimension-ordered
    /// walk and link indices are resolved once instead of per packet.
    #[must_use]
    pub fn plan(&self, noc: NocId, src: TileId, dst: TileId) -> SendPlan {
        let route = self.mesh.route(src, dst);
        let mut links = Vec::with_capacity(route.hops);
        let mut at = src;
        while let Some(next) = self.mesh.next_hop(at, dst) {
            links.push(Self::link_index(self.width, at, next));
            at = next;
        }
        debug_assert_eq!(links.len(), route.hops);
        SendPlan {
            noc,
            links,
            latency: route.latency_cycles(),
        }
    }

    /// Sends one packet along a precomputed [`SendPlan`] — identical
    /// accounting and wire-state effects to [`NocFabric::send`] with the
    /// plan's endpoints, cheaper for repeated traffic: besides skipping
    /// the route walk, when every link on the plan holds the same wire
    /// state (always true for a stream that owns its route) the
    /// switching chain is computed once and applied per hop, making a
    /// packet O(hops + flits) instead of O(hops × flits).
    pub fn send_planned(
        &mut self,
        plan: &SendPlan,
        flits: &[u64],
        act: &mut ActivityCounters,
    ) -> u64 {
        act.noc_packets += 1;
        act.noc_route_computes += plan.links.len() as u64;

        if plan.links.is_empty() {
            // Local delivery still traverses the router's local port once.
            act.noc_flit_hops += flits.len() as u64;
            return 0;
        }

        if trace::active() {
            trace_planned_hops(plan.noc, &plan.links, self.width, flits.len());
        }
        let net = &mut self.link_state[plan.noc.index()];
        let first = net[plan.links[0]];
        if plan.links.iter().all(|&l| net[l] == first) {
            // Per-link switching depends only on (prior state, flits),
            // so equal priors mean every link switches identically.
            let mut bits = 0u64;
            let mut coupling = 0u64;
            let mut state = first;
            for &flit in flits {
                bits += u64::from(hamming(state, flit));
                coupling += u64::from(coupling_transitions(state, flit));
                state = flit;
            }
            let hops = plan.links.len() as u64;
            act.noc_flit_hops += flits.len() as u64 * hops;
            act.noc_bit_switches += bits * hops;
            act.noc_coupling_switches += coupling * hops;
            for &l in &plan.links {
                net[l] = state;
            }
        } else {
            for &l in &plan.links {
                let state = &mut net[l];
                for &flit in flits {
                    act.noc_flit_hops += 1;
                    act.noc_bit_switches += u64::from(hamming(*state, flit));
                    act.noc_coupling_switches += u64::from(coupling_transitions(*state, flit));
                    *state = flit;
                }
            }
        }
        plan.latency
    }

    /// Resets all link wire state to zero (quiescent network).
    pub fn quiesce(&mut self) {
        for net in &mut self.link_state {
            net.fill(0);
        }
    }
}

/// A precomputed unicast route for [`NocFabric::send_planned`].
#[derive(Debug, Clone)]
pub struct SendPlan {
    noc: NocId,
    /// Directed-link indices along the dimension-ordered route.
    links: Vec<usize>,
    latency: u64,
}

/// The seed NoC implementation, with `HashMap`-backed link state. Kept
/// as the reference the flat-array [`NocFabric`] is equivalence-tested
/// against (and for `--features naive-engine` benchmarking).
#[cfg(any(test, feature = "naive-engine"))]
#[derive(Debug, Clone)]
pub struct ReferenceNocFabric {
    mesh: Mesh,
    link_state: [std::collections::HashMap<(TileId, TileId), u64>; 3],
}

#[cfg(any(test, feature = "naive-engine"))]
impl ReferenceNocFabric {
    /// Creates an idle reference fabric over a mesh.
    #[must_use]
    pub fn new(mesh: Mesh) -> Self {
        Self {
            mesh,
            link_state: [
                std::collections::HashMap::new(),
                std::collections::HashMap::new(),
                std::collections::HashMap::new(),
            ],
        }
    }

    /// Sends one packet, accounting link activity — the seed
    /// implementation of [`NocFabric::send`], byte-for-byte.
    pub fn send(
        &mut self,
        noc: NocId,
        src: TileId,
        dst: TileId,
        flits: &[u64],
        act: &mut ActivityCounters,
    ) -> u64 {
        let route = self.mesh.route(src, dst);
        act.noc_packets += 1;
        act.noc_route_computes += route.hops as u64;

        if route.hops == 0 {
            act.noc_flit_hops += flits.len() as u64;
            return 0;
        }

        let mut at = src;
        while let Some(next) = self.mesh.next_hop(at, dst) {
            let state = self.link_state[noc.index()]
                .entry((at, next))
                .or_insert(0u64);
            for &flit in flits {
                act.noc_flit_hops += 1;
                act.noc_bit_switches += u64::from(hamming(*state, flit));
                act.noc_coupling_switches += u64::from(coupling_transitions(*state, flit));
                *state = flit;
            }
            at = next;
        }
        route.latency_cycles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> (NocFabric, ActivityCounters) {
        (NocFabric::new(Mesh::piton()), ActivityCounters::default())
    }

    #[test]
    fn hamming_and_coupling() {
        assert_eq!(hamming(0, u64::MAX), 64);
        assert_eq!(hamming(0xF0, 0x0F), 8);
        // FSW: all bits rise together -> no opposite-direction pairs.
        assert_eq!(coupling_transitions(0, u64::MAX), 0);
        // FSWA: 0xAAAA.. -> 0x5555..: every adjacent pair is opposite.
        assert_eq!(
            coupling_transitions(0xAAAA_AAAA_AAAA_AAAA, 0x5555_5555_5555_5555),
            63
        );
        // No change -> nothing.
        assert_eq!(coupling_transitions(0x42, 0x42), 0);
    }

    #[test]
    fn zero_hop_delivery_is_free_of_link_switching() {
        let (mut noc, mut act) = fabric();
        let lat = noc.send(
            NocId::Noc1,
            TileId::new(3),
            TileId::new(3),
            &[u64::MAX; 7],
            &mut act,
        );
        assert_eq!(lat, 0);
        assert_eq!(act.noc_bit_switches, 0);
        assert_eq!(act.noc_flit_hops, 7);
    }

    #[test]
    fn switching_scales_with_hops() {
        // Alternating all-ones/all-zeros payload (FSW): 64 switches per
        // flit per link after the first flit primes the wires.
        let flits = [u64::MAX, 0, u64::MAX, 0, u64::MAX, 0, u64::MAX];
        let (mut noc, mut act) = fabric();
        noc.send(
            NocId::Noc1,
            TileId::new(0),
            TileId::new(1),
            &flits,
            &mut act,
        );
        let one_hop = act.noc_bit_switches;

        let (mut noc2, mut act2) = fabric();
        noc2.send(
            NocId::Noc1,
            TileId::new(0),
            TileId::new(4),
            &flits,
            &mut act2,
        );
        let four_hops = act2.noc_bit_switches;
        assert_eq!(four_hops, 4 * one_hop);
        assert_eq!(act2.noc_flit_hops, 4 * 7);
    }

    #[test]
    fn nsw_payload_switches_nothing_on_warm_links() {
        let flits = [0u64; 7];
        let (mut noc, mut act) = fabric();
        // First packet primes (links start at zero so NSW never switches).
        noc.send(
            NocId::Noc1,
            TileId::new(0),
            TileId::new(4),
            &flits,
            &mut act,
        );
        assert_eq!(act.noc_bit_switches, 0);
    }

    #[test]
    fn turn_adds_latency() {
        let (mut noc, mut act) = fabric();
        let straight = noc.send(NocId::Noc1, TileId::new(0), TileId::new(4), &[0], &mut act);
        assert_eq!(straight, 4);
        let turning = noc.send(NocId::Noc1, TileId::new(0), TileId::new(9), &[0], &mut act);
        assert_eq!(turning, 6); // 5 hops + turn
    }

    #[test]
    fn networks_have_independent_wire_state() {
        let (mut noc, mut act) = fabric();
        noc.send(
            NocId::Noc1,
            TileId::new(0),
            TileId::new(1),
            &[u64::MAX],
            &mut act,
        );
        let after_first = act.noc_bit_switches;
        assert_eq!(after_first, 64);
        // Same flit on NoC3: its wires are still at zero, so it switches
        // another 64 bits rather than zero.
        noc.send(
            NocId::Noc3,
            TileId::new(0),
            TileId::new(1),
            &[u64::MAX],
            &mut act,
        );
        assert_eq!(act.noc_bit_switches, 128);
    }

    #[test]
    fn flat_link_state_matches_reference_on_random_traffic() {
        // The flat directed-link arrays must account identically to the
        // seed HashMap implementation for any packet stream.
        let mut flat = NocFabric::new(Mesh::piton());
        let mut reference = ReferenceNocFabric::new(Mesh::piton());
        let (mut act_flat, mut act_ref) =
            (ActivityCounters::default(), ActivityCounters::default());
        // A deterministic pseudo-random stream over all 25x25 pairs.
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for i in 0..600 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let src = TileId::new((x >> 8) as usize % 25);
            let dst = TileId::new((x >> 16) as usize % 25);
            let noc = NocId::ALL[i % 3];
            let flits = [x, !x, x.rotate_left(17), 0, u64::MAX];
            let l1 = flat.send(noc, src, dst, &flits, &mut act_flat);
            let l2 = reference.send(noc, src, dst, &flits, &mut act_ref);
            assert_eq!(l1, l2);
        }
        assert_eq!(act_flat, act_ref);
        assert!(act_flat.noc_bit_switches > 0);
    }

    #[test]
    fn planned_send_matches_send_exactly() {
        // `send_planned` must be indistinguishable from `send` with the
        // plan's endpoints — both on the uniform fast path (a stream
        // that owns its route) and after cross traffic desynchronizes
        // the links on the route (the per-link fallback).
        let mut planned = NocFabric::new(Mesh::piton());
        let mut plain = NocFabric::new(Mesh::piton());
        let (mut act_planned, mut act_plain) =
            (ActivityCounters::default(), ActivityCounters::default());
        let (src, dst) = (TileId::new(0), TileId::new(14)); // 4 hops + turn
        let plan = planned.plan(NocId::Noc2, src, dst);

        let mut x = 0x0123_4567_89ab_cdefu64;
        for i in 0..200u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let flits = [dst.index() as u64, x, !x, x.rotate_left(i as u32 % 63), 0];
            let l1 = planned.send_planned(&plan, &flits, &mut act_planned);
            let l2 = plain.send(NocId::Noc2, src, dst, &flits, &mut act_plain);
            assert_eq!(l1, l2);
            if i % 17 == 0 {
                // Cross traffic over a prefix of the same route leaves
                // the plan's links in *different* states, forcing the
                // per-link path on the next planned packet.
                let mid = TileId::new(4);
                planned.send(NocId::Noc2, src, mid, &[x, x ^ 0xFF], &mut act_planned);
                plain.send(NocId::Noc2, src, mid, &[x, x ^ 0xFF], &mut act_plain);
            }
        }
        assert_eq!(act_planned, act_plain);
        assert!(act_planned.noc_bit_switches > 0);

        // Zero-hop plans account the local-port traversal like `send`.
        let zero = planned.plan(NocId::Noc1, src, src);
        assert_eq!(zero.links.len(), 0);
        assert_eq!(planned.send_planned(&zero, &[1, 2, 3], &mut act_planned), 0);
        assert_eq!(
            plain.send(NocId::Noc1, src, src, &[1, 2, 3], &mut act_plain),
            0
        );
        assert_eq!(act_planned, act_plain);
    }

    #[test]
    fn quiesce_clears_wires() {
        let (mut noc, mut act) = fabric();
        noc.send(
            NocId::Noc1,
            TileId::new(0),
            TileId::new(1),
            &[u64::MAX],
            &mut act,
        );
        noc.quiesce();
        noc.send(
            NocId::Noc1,
            TileId::new(0),
            TileId::new(1),
            &[u64::MAX],
            &mut act,
        );
        assert_eq!(act.noc_bit_switches, 128); // switched again after reset
    }
}
