//! Deterministic randomized-program generators for engine differential
//! testing.
//!
//! The engine-equivalence proptests, the golden-trace differential
//! tests (`tests/trace_differential.rs`) and the `trace_diff` dev
//! binary all need the *same* family of randomized programs: seeds in,
//! scheduler-stressing instruction mixes out, with no dependency on
//! the (vendored, stub) proptest RNG so a failing seed can be replayed
//! verbatim from any of the three harnesses.
//!
//! The mix covers every scheduler-relevant instruction class: 1-cycle
//! ALU ops, long execute occupancy (`sdivx`), memory waits
//! (`ldx`/`casx`), store-buffer pressure (`stx`/`membar`) and control
//! flow (loops included, so programs may run forever and must be
//! driven with bounded cycle budgets).

use piton_arch::isa::{Instruction, Opcode, Reg};

use crate::program::Program;

/// Mixes a seed word with a position (SplitMix64 finalizer) so every
/// `(slot, pc)` gets an independent instruction word.
#[must_use]
pub fn mix(seed: u64, slot: usize, i: usize) -> u64 {
    let mut z = seed ^ (slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add((i as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Decodes one instruction from a random word.
#[must_use]
pub fn decode(word: u64, len: usize) -> Instruction {
    let r = |sh: u32| Reg::new(1 + ((word >> sh) as u8 % 6));
    // Word-aligned offsets within a few pages keeps some address
    // sharing across cores (coherence traffic) while mulx-fed bases
    // also reach far pages.
    let imm = ((word >> 32) & 0x1FF) as i64 * 8;
    match word % 12 {
        0 => Instruction::nop(),
        1 | 2 => Instruction::movi(r(8), ((word >> 24) & 0xFFFF) as i64),
        3 => Instruction::alu(Opcode::Add, r(8), r(12), r(16)),
        4 => Instruction::alu(Opcode::Mulx, r(8), r(12), r(16)),
        5 => Instruction::alu(Opcode::Sdivx, r(8), r(12), r(16)),
        6 => Instruction::ldx(r(8), r(12), imm),
        7 | 8 => Instruction::stx(r(8), r(12), imm),
        9 => Instruction::casx(r(8), r(12), r(16)),
        10 => Instruction::membar(),
        _ => Instruction::branch(
            if word & 0x400 == 0 {
                Opcode::Bne
            } else {
                Opcode::Beq
            },
            r(8),
            r(12),
            (word >> 44) as usize % (len + 1),
        ),
    }
}

/// Builds the program for placement slot `slot` from a seed pool:
/// 4–17 instructions, fully determined by `(seeds, slot)`.
#[must_use]
pub fn decode_program(seeds: &[u64], slot: usize) -> Program {
    let seed = seeds[slot % seeds.len()];
    let len = 4 + (mix(seed, slot, 0) as usize % 14);
    let instrs = (0..len)
        .map(|i| decode(mix(seed, slot, i + 1), len))
        .collect();
    Program::from_instructions(instrs)
}

/// The standard randomized placement for a seed pool: tiles and
/// threads derived from the seeds themselves, `n_slots` programs.
/// Returns `(tile, thread, program)` triples, ready for
/// `Machine::load_thread`.
#[must_use]
pub fn placement(seeds: &[u64], n_slots: usize) -> Vec<(usize, usize, Program)> {
    (0..n_slots)
        .map(|slot| {
            let w = mix(seeds[slot % seeds.len()], slot, usize::MAX / 2);
            (
                (w % 25) as usize,
                ((w >> 8) % 2) as usize,
                decode_program(seeds, slot),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let seeds = [7, 11, 13];
        assert_eq!(mix(7, 3, 9), mix(7, 3, 9));
        let a = decode_program(&seeds, 2);
        let b = decode_program(&seeds, 2);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(placement(&seeds, 6).len(), 6);
        let p1 = placement(&seeds, 6);
        let p2 = placement(&seeds, 6);
        for (x, y) in p1.iter().zip(&p2) {
            assert_eq!((x.0, x.1), (y.0, y.1));
            assert_eq!(x.2.instructions, y.2.instructions);
        }
    }

    #[test]
    fn programs_cover_scheduler_classes() {
        // Over a modest seed pool the decoder must emit memory ops and
        // long-latency ops — the classes the calendar engine cares
        // about.
        let seeds: Vec<u64> = (0..32).map(|i| mix(0xABCD, 0, i)).collect();
        let mut classes = std::collections::BTreeSet::new();
        for slot in 0..32 {
            for instr in &decode_program(&seeds, slot).instructions {
                classes.insert(format!("{:?}", instr.opcode.class()));
            }
        }
        assert!(classes.len() >= 4, "instruction classes seen: {classes:?}");
    }
}
