//! MITTS — the Memory Inter-arrival Time Traffic Shaper.
//!
//! Each Piton tile contains a MITTS unit (Zhou & Wentzlaff, ISCA'16)
//! that fits the core's memory traffic into a configured inter-arrival
//! time distribution, enabling memory-bandwidth sharing in multi-tenant
//! systems. The characterization paper does not exercise MITTS (it is
//! 0.17% of tile area, Figure 8) but it is part of the tile, so the
//! shaper is modelled here: a set of inter-arrival-time *bins*, each with
//! a refilling credit budget; a memory request must claim a credit from
//! the bin matching the time since the previous request, otherwise it is
//! delayed until some bin can admit it.
//!
//! # Examples
//!
//! ```
//! use piton_sim::mitts::MittsShaper;
//!
//! // Unlimited shaper: everything passes immediately.
//! let mut mitts = MittsShaper::unlimited();
//! assert_eq!(mitts.admit(100), 100);
//! ```

use serde::{Deserialize, Serialize};

/// One inter-arrival-time bin: requests arriving within
/// `[min_gap, next bin's min_gap)` cycles of the previous request draw
/// from this bin's credits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MittsBin {
    /// Minimum inter-arrival gap (cycles) for this bin.
    pub min_gap: u64,
    /// Credits granted per replenish period.
    pub credits: u64,
}

/// The per-tile traffic shaper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MittsShaper {
    bins: Vec<MittsBin>,
    /// Credits remaining this period, one slot per bin.
    remaining: Vec<u64>,
    /// Replenish period in cycles.
    period: u64,
    /// Start of the current period.
    period_start: u64,
    /// Cycle of the previous admitted request.
    last_request: u64,
    enabled: bool,
}

impl MittsShaper {
    /// A disabled shaper that admits every request immediately (the
    /// default configuration in the characterized system).
    #[must_use]
    pub fn unlimited() -> Self {
        Self {
            bins: Vec::new(),
            remaining: Vec::new(),
            period: u64::MAX,
            period_start: 0,
            last_request: 0,
            enabled: false,
        }
    }

    /// A shaper with the given bins (sorted by `min_gap`) and replenish
    /// period.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is empty, unsorted, or `period` is zero.
    #[must_use]
    pub fn with_bins(bins: Vec<MittsBin>, period: u64) -> Self {
        assert!(!bins.is_empty(), "MITTS needs at least one bin");
        assert!(period > 0, "replenish period must be non-zero");
        assert!(
            bins.windows(2).all(|w| w[0].min_gap < w[1].min_gap),
            "bins must be sorted by ascending min_gap"
        );
        let remaining = bins.iter().map(|b| b.credits).collect();
        Self {
            bins,
            remaining,
            period,
            period_start: 0,
            last_request: 0,
            enabled: true,
        }
    }

    /// Whether shaping is active.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn replenish(&mut self, now: u64) {
        if now >= self.period_start + self.period {
            let periods = (now - self.period_start) / self.period;
            self.period_start += periods * self.period;
            for (slot, bin) in self.remaining.iter_mut().zip(&self.bins) {
                *slot = bin.credits;
            }
        }
    }

    /// Bin index admitting a request with inter-arrival `gap`, i.e. the
    /// largest bin whose `min_gap <= gap` with credits left.
    fn claim(&mut self, gap: u64) -> bool {
        for i in (0..self.bins.len()).rev() {
            if self.bins[i].min_gap <= gap && self.remaining[i] > 0 {
                self.remaining[i] -= 1;
                return true;
            }
        }
        false
    }

    /// Admits a memory request arriving at cycle `now`, returning the
    /// cycle at which it may proceed (equal to `now` when unshaped or
    /// credits are available; later when the request must wait).
    pub fn admit(&mut self, now: u64) -> u64 {
        if !self.enabled {
            self.last_request = now;
            return now;
        }
        self.replenish(now);
        let gap = now.saturating_sub(self.last_request);
        if self.claim(gap) {
            self.last_request = now;
            return now;
        }
        // Stall: wait for a bin with a larger gap requirement, or for the
        // next replenish, whichever is sooner.
        let next_gap_bin = self
            .bins
            .iter()
            .zip(&self.remaining)
            .filter(|(b, &r)| b.min_gap > gap && r > 0)
            .map(|(b, _)| self.last_request + b.min_gap)
            .min();
        let next_period = self.period_start + self.period;
        let when = next_gap_bin
            .unwrap_or(next_period)
            .min(next_period)
            .max(now + 1);
        self.replenish(when);
        let gap2 = when.saturating_sub(self.last_request);
        let _ = self.claim(gap2); // bins refilled or gap satisfied
        self.last_request = when;
        when
    }
}

impl Default for MittsShaper {
    fn default() -> Self {
        Self::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_is_transparent() {
        let mut m = MittsShaper::unlimited();
        assert!(!m.is_enabled());
        for t in [0, 1, 2, 100] {
            assert_eq!(m.admit(t), t);
        }
    }

    #[test]
    fn credits_admit_then_exhaust() {
        // One bin: gaps >= 0, 2 credits per 100-cycle period.
        let mut m = MittsShaper::with_bins(
            vec![MittsBin {
                min_gap: 0,
                credits: 2,
            }],
            100,
        );
        assert_eq!(m.admit(0), 0);
        assert_eq!(m.admit(1), 1);
        // Third request must wait for the period replenish.
        let t = m.admit(2);
        assert_eq!(t, 100);
    }

    #[test]
    fn large_gap_bin_prefers_patient_requests() {
        // Two bins: fast gaps (>=0) have 1 credit, slow gaps (>=50) have 4.
        let mut m = MittsShaper::with_bins(
            vec![
                MittsBin {
                    min_gap: 0,
                    credits: 1,
                },
                MittsBin {
                    min_gap: 50,
                    credits: 4,
                },
            ],
            1_000,
        );
        assert_eq!(m.admit(0), 0); // fast credit
                                   // Back-to-back request: fast bin empty, must wait for gap 50.
        assert_eq!(m.admit(1), 50);
        // A naturally slow request (gap >= 50) passes immediately.
        assert_eq!(m.admit(120), 120);
    }

    #[test]
    fn replenish_restores_credits() {
        let mut m = MittsShaper::with_bins(
            vec![MittsBin {
                min_gap: 0,
                credits: 1,
            }],
            10,
        );
        assert_eq!(m.admit(0), 0);
        assert_eq!(m.admit(25), 25); // two periods later: refilled
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn empty_bins_panics() {
        let _ = MittsShaper::with_bins(vec![], 100);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_bins_panics() {
        let _ = MittsShaper::with_bins(
            vec![
                MittsBin {
                    min_gap: 10,
                    credits: 1,
                },
                MittsBin {
                    min_gap: 5,
                    credits: 1,
                },
            ],
            100,
        );
    }
}
