//! Activity counters — the interface between the simulator and the power
//! model.
//!
//! The power model of `piton-power` is an *event-energy* model: every
//! dynamic-energy-consuming action in the chip (an instruction issue, a
//! cache array access, a router traversal, a NoC wire toggling, a
//! store-buffer roll-back, a DRAM-path transaction) increments a counter
//! here, and the power model later multiplies counter deltas by calibrated
//! per-event energies. The counters are plain dense integers so the
//! simulator's inner loop stays branch-light and allocation-free.
//!
//! # Examples
//!
//! ```
//! use piton_sim::events::ActivityCounters;
//! use piton_arch::isa::Opcode;
//!
//! let mut a = ActivityCounters::default();
//! a.record_issue(Opcode::Add, 1, 0.5);
//! assert_eq!(a.issues[Opcode::Add.index()], 1);
//! let b = ActivityCounters::default();
//! let delta = a.delta_since(&b);
//! assert_eq!(delta.total_issues(), 1);
//! ```

use piton_arch::isa::Opcode;
use serde::{Deserialize, Serialize};

/// Dense per-event activity counters for a measurement window.
///
/// All counters are cumulative; take [`ActivityCounters::delta_since`] to
/// obtain the activity of a window.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityCounters {
    /// Chip cycles elapsed.
    pub cycles: u64,
    /// Instruction issues per opcode (indexed by [`Opcode::index`]).
    pub issues: [u64; Opcode::COUNT],
    /// Sum of issue-occupancy cycles per opcode (latency each issue held
    /// its thread slot).
    pub occupancy_cycles: [u64; Opcode::COUNT],
    /// Sum of operand-value activity factors per opcode, each in `[0, 1]`
    /// (0 = all-zero operands, 1 = all-ones; drives the Figure 11
    /// min/random/max effect).
    pub operand_activity: [f64; Opcode::COUNT],
    /// Cycles during which at least one thread of a core was running
    /// (summed over cores).
    pub core_active_cycles: u64,
    /// Core-cycles with two runnable threads resident (fine-grained
    /// thread-switching overhead, §IV-H2).
    pub dual_thread_cycles: u64,
    /// Issues that drafted behind the other thread's identical
    /// instruction (Execution Drafting, §II): the front end is shared,
    /// saving fetch/decode energy.
    pub drafted_issues: u64,
    /// Thread-cycles spent stalled on the memory system.
    pub mem_stall_cycles: u64,

    /// L1 instruction cache fetches.
    pub l1i_accesses: u64,
    /// L1 data cache reads (hits and misses both probe the array).
    pub l1d_reads: u64,
    /// L1 data cache writes (write-through traffic).
    pub l1d_writes: u64,
    /// L1 data cache read misses.
    pub l1d_misses: u64,
    /// L1.5 cache reads.
    pub l15_reads: u64,
    /// L1.5 cache writes (store-buffer drains).
    pub l15_writes: u64,
    /// L1.5 read misses.
    pub l15_misses: u64,
    /// L1.5 dirty-line write-backs to the L2.
    pub l15_writebacks: u64,
    /// L2 slice reads (data + tag).
    pub l2_reads: u64,
    /// L2 slice writes (fills, write-backs, stores).
    pub l2_writes: u64,
    /// L2 misses (requests that left the chip).
    pub l2_misses: u64,
    /// Directory-cache lookups/updates at the L2.
    pub dir_lookups: u64,
    /// Invalidation messages delivered to L1.5 caches.
    pub invalidations: u64,
    /// Sum of value-bit activity of data words moved by loads/stores
    /// (popcount/64 per 64-bit word).
    pub mem_value_activity: f64,

    /// Store-buffer enqueues.
    pub sb_enqueues: u64,
    /// Store roll-backs (speculative issue found the buffer full).
    pub store_rollbacks: u64,
    /// Load roll-backs (speculative L1-hit assumption failed).
    pub load_rollbacks: u64,
    /// Atomic (casx) operations performed at the L2.
    pub atomics: u64,

    /// Flit-hops: one flit traversing one router+link.
    pub noc_flit_hops: u64,
    /// Router head-of-packet route computations.
    pub noc_route_computes: u64,
    /// Total data bits toggled on NoC links (Hamming distance between
    /// consecutive flits on each physical link).
    pub noc_bit_switches: u64,
    /// Adjacent-bit opposite-direction toggles (coupling aggressors, the
    /// FSWA case of Figure 12).
    pub noc_coupling_switches: u64,
    /// Packets injected into the NoCs.
    pub noc_packets: u64,

    /// Requests sent down the chip-bridge/chipset path (off-chip).
    pub offchip_requests: u64,
    /// DRAM device accesses (two per memory request: 32-bit interface).
    pub dram_accesses: u64,
    /// Flits crossing the chip bridge (each direction).
    pub chip_bridge_flits: u64,
    /// I/O transactions (SD card, UART — drives VIO activity).
    pub io_transactions: u64,
}

impl ActivityCounters {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an instruction issue with its occupancy latency and
    /// operand-value activity factor.
    pub fn record_issue(&mut self, op: Opcode, occupancy: u64, value_activity: f64) {
        debug_assert!((0.0..=1.0).contains(&value_activity));
        let i = op.index();
        self.issues[i] += 1;
        self.occupancy_cycles[i] += occupancy;
        self.operand_activity[i] += value_activity;
    }

    /// Total instructions issued across all opcodes.
    #[must_use]
    pub fn total_issues(&self) -> u64 {
        self.issues.iter().sum()
    }

    /// Counter values of this window relative to an earlier snapshot.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `earlier` is not actually earlier,
    /// i.e. any counter would go negative.
    #[must_use]
    pub fn delta_since(&self, earlier: &ActivityCounters) -> ActivityCounters {
        let mut d = ActivityCounters::default();
        macro_rules! sub {
            ($($field:ident),* $(,)?) => {
                $( d.$field = self.$field - earlier.$field; )*
            };
        }
        sub!(
            cycles,
            core_active_cycles,
            dual_thread_cycles,
            drafted_issues,
            mem_stall_cycles,
            l1i_accesses,
            l1d_reads,
            l1d_writes,
            l1d_misses,
            l15_reads,
            l15_writes,
            l15_misses,
            l15_writebacks,
            l2_reads,
            l2_writes,
            l2_misses,
            dir_lookups,
            invalidations,
            sb_enqueues,
            store_rollbacks,
            load_rollbacks,
            atomics,
            noc_flit_hops,
            noc_route_computes,
            noc_bit_switches,
            noc_coupling_switches,
            noc_packets,
            offchip_requests,
            dram_accesses,
            chip_bridge_flits,
            io_transactions,
        );
        for i in 0..Opcode::COUNT {
            d.issues[i] = self.issues[i] - earlier.issues[i];
            d.occupancy_cycles[i] = self.occupancy_cycles[i] - earlier.occupancy_cycles[i];
            d.operand_activity[i] = self.operand_activity[i] - earlier.operand_activity[i];
        }
        d.mem_value_activity = self.mem_value_activity - earlier.mem_value_activity;
        d
    }

    /// Mean operand-activity factor for one opcode over this window, or
    /// `None` if it never issued.
    #[must_use]
    pub fn mean_operand_activity(&self, op: Opcode) -> Option<f64> {
        let i = op.index();
        if self.issues[i] == 0 {
            None
        } else {
            Some(self.operand_activity[i] / self.issues[i] as f64)
        }
    }
}

/// Value-activity factor of a 64-bit datapath value: the fraction of bits
/// set. All-zero operands (the paper's "minimum") score 0, all-ones
/// ("maximum") score 1 and uniform random values score ≈ 0.5, which is
/// what makes the Figure 11 operand-value effect emerge mechanically.
#[must_use]
pub fn value_activity(value: u64) -> f64 {
    f64::from(value.count_ones()) / 64.0
}

/// Combined activity factor of an instruction's datapath traffic: the two
/// source operands and the result, averaged.
#[must_use]
pub fn datapath_activity(a: u64, b: u64, result: u64) -> f64 {
    (value_activity(a) + value_activity(b) + value_activity(result)) / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_activity_extremes() {
        assert_eq!(value_activity(0), 0.0);
        assert_eq!(value_activity(u64::MAX), 1.0);
        assert_eq!(value_activity(0x3333_3333_3333_3333), 0.5);
    }

    #[test]
    fn datapath_activity_averages() {
        assert_eq!(datapath_activity(0, 0, 0), 0.0);
        assert_eq!(datapath_activity(u64::MAX, u64::MAX, u64::MAX), 1.0);
        let mid = datapath_activity(u64::MAX, 0, 0);
        assert!((mid - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn record_and_delta() {
        let mut a = ActivityCounters::new();
        a.cycles = 100;
        a.record_issue(Opcode::Add, 1, 0.5);
        a.record_issue(Opcode::Add, 1, 0.7);
        a.record_issue(Opcode::Sdivx, 72, 1.0);
        a.l1d_reads = 5;

        let snap = a.clone();
        a.cycles = 250;
        a.record_issue(Opcode::Add, 1, 0.1);
        a.l1d_reads = 9;

        let d = a.delta_since(&snap);
        assert_eq!(d.cycles, 150);
        assert_eq!(d.issues[Opcode::Add.index()], 1);
        assert_eq!(d.issues[Opcode::Sdivx.index()], 0);
        assert_eq!(d.l1d_reads, 4);
        assert!((d.operand_activity[Opcode::Add.index()] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mean_operand_activity_handles_zero_issues() {
        let mut a = ActivityCounters::new();
        assert_eq!(a.mean_operand_activity(Opcode::Add), None);
        a.record_issue(Opcode::Add, 1, 0.25);
        a.record_issue(Opcode::Add, 1, 0.75);
        assert!((a.mean_operand_activity(Opcode::Add).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn opcode_all_indices_are_dense() {
        for (pos, op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(op.index(), pos, "{op} index mismatch");
        }
    }
}
