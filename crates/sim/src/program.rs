//! Programs: instruction sequences plus initial data images.
//!
//! A [`Program`] is what a hardware thread executes — a flat vector of
//! decoded instructions (the PC is an index into it) plus the data words
//! the test loader would have written to DRAM before releasing resets.

use piton_arch::isa::Instruction;
use serde::{Deserialize, Serialize};

/// An executable image for one hardware thread.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Decoded instruction stream; the PC indexes this vector.
    pub instructions: Vec<Instruction>,
    /// Initial data image: `(address, value)` words loaded before start.
    pub data: Vec<(u64, u64)>,
}

impl Program {
    /// Creates an empty program.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a program from an instruction stream with no data image.
    #[must_use]
    pub fn from_instructions(instructions: Vec<Instruction>) -> Self {
        Self {
            instructions,
            data: Vec::new(),
        }
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Code footprint in bytes (for checking the paper's "fits in the L1
    /// caches" precondition of the EPI study).
    #[must_use]
    pub fn code_bytes(&self) -> u64 {
        self.instructions.len() as u64 * Instruction::SIZE_BYTES
    }

    /// Whether the code fits within `capacity_bytes` (e.g. the 16 KB L1I).
    #[must_use]
    pub fn fits_in(&self, capacity_bytes: u64) -> bool {
        self.code_bytes() <= capacity_bytes
    }
}

impl FromIterator<Instruction> for Program {
    fn from_iter<T: IntoIterator<Item = Instruction>>(iter: T) -> Self {
        Self::from_instructions(iter.into_iter().collect())
    }
}

impl Extend<Instruction> for Program {
    fn extend<T: IntoIterator<Item = Instruction>>(&mut self, iter: T) {
        self.instructions.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piton_arch::isa::{Instruction, Opcode, Reg};

    #[test]
    fn footprint_accounting() {
        let p: Program = (0..100).map(|_| Instruction::nop()).collect();
        assert_eq!(p.len(), 100);
        assert_eq!(p.code_bytes(), 400);
        assert!(p.fits_in(16 * 1024));
        assert!(!p.fits_in(256));
    }

    #[test]
    fn extend_appends() {
        let mut p = Program::from_instructions(vec![Instruction::nop()]);
        p.extend([Instruction::alu(
            Opcode::Add,
            Reg::new(1),
            Reg::new(2),
            Reg::new(3),
        )]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }
}
