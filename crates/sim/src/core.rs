//! The modified OpenSPARC T1 core model.
//!
//! Single-issue, six-stage, in-order, with two-way fine-grained
//! multithreading: each cycle the core issues from one *ready* thread,
//! rotating round-robin between ready threads, so two threads running
//! 1-cycle integer ops each achieve half throughput — exactly the
//! behaviour behind the paper's multithreading-versus-multicore study
//! (the Int multithreading/multicore execution-time ratio of two, §IV-H2).
//!
//! Two speculation mechanisms the paper calls out are modelled because
//! they *pollute energy measurements* (§IV-E):
//!
//! * **Store roll-back** — the core speculatively issues stores assuming
//!   the 8-entry store buffer has space; when it is full the store and
//!   subsequent instructions roll back and re-execute, costing extra
//!   energy (the `stx (F)` case of Figure 11).
//! * **Load roll-back** — the thread scheduler speculates that loads hit
//!   the L1; a miss rolls back younger instructions and stalls the
//!   thread until the fill returns.

use std::collections::VecDeque;
use std::sync::Arc;

use piton_arch::isa::{Opcode, Reg};
use piton_arch::topology::TileId;
use piton_obs::trace::{self, TraceEvent};

use crate::events::{datapath_activity, value_activity, ActivityCounters};
use crate::memsys::MemorySystem;
use crate::program::Program;

/// Pipeline-flush penalty of a store roll-back, in cycles (refill a
/// six-stage pipeline plus refetch).
pub const ROLLBACK_PENALTY_CYCLES: u64 = 8;

/// Opcode slot of an [`IssueRecord`] for a fall-off-the-end halt: the
/// issue slot was consumed (the machine must count the cycle as
/// issuing) but no instruction was fetched, so nothing folds into the
/// per-opcode counters.
pub const PHANTOM_OP: u16 = u16::MAX;

/// One instruction issue deferred by [`Core::run_local`].
///
/// Everything *order-sensitive* about an issue travels here: the
/// per-opcode operand-activity accumulation is the one `f64` the
/// engines must fold in the naive engine's global (cycle, core) order,
/// since floating-point addition does not associate. Order-free `u64`
/// tallies travel in [`LocalCharges`] instead and fold at the batch
/// barrier in any order.
#[derive(Debug, Clone, Copy)]
pub struct IssueRecord {
    /// Cycle of the issue, as an offset from the local run's start.
    pub offset: u32,
    /// Dense opcode index ([`piton_arch::isa::Opcode::index`]), or
    /// [`PHANTOM_OP`] for a fall-off-the-end halt.
    pub op: u16,
    /// Operand-value activity of the issue (what `record_issue` would
    /// have added to `operand_activity`), already clamped to `[0, 1]`.
    pub activity: f64,
}

/// Order-free activity accumulated by [`Core::run_local`] over a local
/// span, folded into the machine's [`ActivityCounters`] at the batch
/// barrier. Integer addition is exact and commutative, so per-core
/// batch aggregation is bit-identical to the naive engine's per-cycle
/// charging no matter how lanes interleave.
#[derive(Debug, Clone, Default)]
pub struct LocalCharges {
    /// `core_active_cycles` charged over the span.
    pub active: u64,
    /// `mem_stall_cycles` charged over the span.
    pub mem_stall: u64,
    /// `dual_thread_cycles` charged over the span.
    pub dual: u64,
    /// `drafted_issues` charged over the span.
    pub drafted: u64,
    /// `l1i_accesses` charged over the span.
    pub l1i: u64,
    /// `sb_enqueues` charged over the span.
    pub sb_enqueues: u64,
    /// Per-opcode issue counts (`ActivityCounters::issues`).
    pub issues: [u64; Opcode::COUNT],
    /// Per-opcode occupancy totals
    /// (`ActivityCounters::occupancy_cycles`).
    pub occupancy: [u64; Opcode::COUNT],
}

impl LocalCharges {
    /// Zeroes every field for buffer reuse.
    pub fn clear(&mut self) {
        *self = LocalCharges::default();
    }
}

/// Execution state of one hardware thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// No program loaded.
    Idle,
    /// Executing.
    Running,
    /// Executed `halt`.
    Halted,
}

/// What a thread's current occupancy (`busy_until`) is waiting on.
///
/// [`ActivityCounters::mem_stall_cycles`] charges only memory-system
/// waits, so every site that sets `busy_until` must record why: a
/// divide's execute occupancy or a store-buffer roll-back holds the
/// thread just as long, but is not a memory stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitKind {
    /// Pipeline occupancy of a non-memory instruction (ALU, FPU,
    /// branch, nop).
    Execute,
    /// A memory-system round trip (load or atomic).
    Memory,
    /// The store buffer: a roll-back penalty or a `membar` drain wait.
    StoreDrain,
}

/// One hardware thread context.
#[derive(Debug, Clone)]
struct Thread {
    regs: [u64; Reg::COUNT],
    pc: usize,
    busy_until: u64,
    /// Why the thread is occupied until `busy_until`.
    wait: WaitKind,
    state: ThreadState,
    program: Option<Arc<Program>>,
    /// Retired instruction count (for IPC / progress measurements).
    retired: u64,
}

impl Thread {
    fn new() -> Self {
        Self {
            regs: [0; Reg::COUNT],
            pc: 0,
            busy_until: 0,
            wait: WaitKind::Execute,
            state: ThreadState::Idle,
            program: None,
            retired: 0,
        }
    }

    /// Whether the thread is running but held by a memory-system wait
    /// at `now`.
    fn memory_waiting(&self, now: u64) -> bool {
        self.state == ThreadState::Running && self.busy_until > now && self.wait == WaitKind::Memory
    }

    fn read(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    fn write(&mut self, r: Reg, v: u64) {
        if r != Reg::G0 {
            self.regs[r.index()] = v;
        }
    }
}

/// One pending store-buffer entry.
#[derive(Debug, Clone, Copy)]
struct StoreEntry {
    addr: u64,
    value: u64,
    enqueued_at: u64,
}

/// The per-core eight-entry store buffer, drained serially to the L1.5.
#[derive(Debug, Clone)]
struct StoreBuffer {
    entries: VecDeque<StoreEntry>,
    capacity: usize,
    /// Cycle at which the drain port is next free.
    drain_free_at: u64,
}

impl StoreBuffer {
    fn new(capacity: usize) -> Self {
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            drain_free_at: 0,
        }
    }

    /// Retires every entry whose drain completes by `now`.
    fn advance(
        &mut self,
        tile: TileId,
        now: u64,
        memsys: &mut MemorySystem,
        act: &mut ActivityCounters,
    ) {
        while let Some(head) = self.entries.front().copied() {
            let start = self.drain_free_at.max(head.enqueued_at);
            if start >= now {
                break;
            }
            let latency = memsys.store_drain(tile, head.addr, head.value, start, act);
            let done = start + latency;
            if done > now {
                // Commit the drain (it is in flight) but keep the slot
                // occupied until it completes.
                self.drain_free_at = done;
                self.entries.pop_front();
                // Occupancy is approximated by the port-busy time; the
                // next entry cannot start before `done`.
                break;
            }
            self.drain_free_at = done;
            self.entries.pop_front();
        }
    }

    fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    fn push(&mut self, addr: u64, value: u64, now: u64) {
        debug_assert!(!self.is_full());
        self.entries.push_back(StoreEntry {
            addr,
            value,
            enqueued_at: now,
        });
    }

    /// Earliest cycle by which all current entries will have drained
    /// (used by `membar`). A loose upper bound is fine.
    fn drained_by(&self, now: u64) -> u64 {
        let mut t = self.drain_free_at.max(now);
        for e in &self.entries {
            t = t.max(e.enqueued_at) + crate::memsys::STORE_DRAIN_CYCLES;
        }
        t
    }
}

/// One Piton core: two hardware threads, a store buffer, and issue logic.
#[derive(Debug, Clone)]
pub struct Core {
    tile: TileId,
    threads: Vec<Thread>,
    store_buffer: StoreBuffer,
    /// Round-robin pointer for fine-grained thread selection.
    next_thread: usize,
    /// `(thread, pc, opcode)` of the previous issue — Execution
    /// Drafting (§II) lets the next thread reuse the front-end work
    /// when it issues the same instruction from the same PC.
    last_issue: Option<(usize, usize, Opcode)>,
    /// Whether the core is fused on. The paper ran chips with faulty
    /// cores as 24-core parts: the core is disabled but its tile's
    /// router keeps forwarding, which is exactly what a disabled `Core`
    /// does (the NoC lives in the memory system, not here).
    enabled: bool,
}

impl Core {
    /// Creates an idle core on `tile` with `threads_per_core` contexts
    /// and a store buffer of `sb_entries`.
    #[must_use]
    pub fn new(tile: TileId, threads_per_core: usize, sb_entries: usize) -> Self {
        Self {
            tile,
            threads: (0..threads_per_core).map(|_| Thread::new()).collect(),
            store_buffer: StoreBuffer::new(sb_entries),
            next_thread: 0,
            last_issue: None,
            enabled: true,
        }
    }

    /// The tile this core lives on.
    #[must_use]
    pub fn tile(&self) -> TileId {
        self.tile
    }

    /// Whether the core is fused on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Fuses the core on or off. Disabling resets every thread to idle
    /// and empties the store buffer — fused-off silicon holds no state —
    /// so a disabled core contributes zero activity from this cycle on.
    pub fn set_enabled(&mut self, enabled: bool) {
        if !enabled {
            for t in &mut self.threads {
                *t = Thread::new();
            }
            self.store_buffer = StoreBuffer::new(self.store_buffer.capacity);
            self.next_thread = 0;
            self.last_issue = None;
        }
        self.enabled = enabled;
    }

    /// Loads a program onto a hardware thread and marks it runnable.
    /// Silently ignored on a fused-off core, matching the real bench:
    /// software simply cannot target a disabled core.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn load_thread(&mut self, thread: usize, program: Arc<Program>) {
        assert!(thread < self.threads.len(), "thread index out of range");
        if !self.enabled {
            return;
        }
        let t = &mut self.threads[thread];
        *t = Thread::new();
        t.program = Some(program);
        t.state = ThreadState::Running;
    }

    /// State of a hardware thread.
    #[must_use]
    pub fn thread_state(&self, thread: usize) -> ThreadState {
        self.threads[thread].state
    }

    /// Whether any thread is still running.
    #[must_use]
    pub fn any_running(&self) -> bool {
        self.threads.iter().any(|t| t.state == ThreadState::Running)
    }

    /// Total instructions retired by all threads.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.threads.iter().map(|t| t.retired).sum()
    }

    /// Register value of a thread (test inspection).
    #[must_use]
    pub fn reg(&self, thread: usize, r: Reg) -> u64 {
        self.threads[thread].read(r)
    }

    /// The earliest cycle at which this core can next issue, or `None`
    /// when no thread is running (lets the machine skip dead cycles).
    #[must_use]
    pub fn next_ready_at(&self) -> Option<u64> {
        self.threads
            .iter()
            .filter(|t| t.state == ThreadState::Running)
            .map(|t| t.busy_until)
            .min()
    }

    /// Whether the store buffer still holds entries to drain. The
    /// event-driven machine must keep stepping such a core every cycle —
    /// even when no thread can issue — so its background drains reach
    /// the memory system at the same cycles, in the same core order, as
    /// under per-cycle polling.
    #[must_use]
    pub fn has_pending_stores(&self) -> bool {
        !self.store_buffer.entries.is_empty()
    }

    /// Number of running threads held by a memory-system wait at `now`
    /// (the machine's fast-forward path charges these per skipped
    /// cycle).
    #[must_use]
    pub fn memory_waiting_threads(&self, now: u64) -> u64 {
        self.threads
            .iter()
            .filter(|t| t.memory_waiting(now))
            .count() as u64
    }

    /// Store-buffer entries still waiting to drain (hang diagnosis).
    #[must_use]
    pub fn pending_stores(&self) -> usize {
        self.store_buffer.entries.len()
    }

    /// The running threads currently held by an occupancy, as
    /// `(thread, wait kind, busy-until cycle)` — what a hang report
    /// names when the machine stops retiring.
    #[must_use]
    pub fn waiting_threads(&self, now: u64) -> Vec<(usize, WaitKind, u64)> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == ThreadState::Running && t.busy_until > now)
            .map(|(i, t)| (i, t.wait, t.busy_until))
            .collect()
    }

    /// Advances the core by one cycle: drain the store buffer, pick a
    /// ready thread round-robin, and issue its next instruction.
    ///
    /// Returns `true` if an instruction issued this cycle.
    pub fn step(
        &mut self,
        now: u64,
        memsys: &mut MemorySystem,
        act: &mut ActivityCounters,
    ) -> bool {
        if !self.enabled {
            return false;
        }
        self.store_buffer.advance(self.tile, now, memsys, act);

        if !self.any_running() {
            return false;
        }
        act.core_active_cycles += 1;
        // Memory stalls are charged per thread-cycle actually spent
        // waiting on the memory system — not for execute occupancy,
        // store-buffer drains or losing the round-robin, and regardless
        // of whether the sibling thread issues this cycle.
        act.mem_stall_cycles += self
            .threads
            .iter()
            .filter(|t| t.memory_waiting(now))
            .count() as u64;
        let dual = self
            .threads
            .iter()
            .filter(|t| t.state == ThreadState::Running)
            .count()
            >= 2;

        let n = self.threads.len();
        let mut chosen = None;
        for k in 0..n {
            let idx = (self.next_thread + k) % n;
            let t = &self.threads[idx];
            if t.state == ThreadState::Running && t.busy_until <= now {
                chosen = Some(idx);
                break;
            }
        }
        let Some(idx) = chosen else {
            return false;
        };
        self.next_thread = (idx + 1) % n;
        if dual {
            // Thread-switching overhead is paid when the dual-threaded
            // front end actually issues (§IV-H2).
            act.dual_thread_cycles += 1;
        }
        // Execution Drafting (§II): if this thread issues the same
        // instruction from the same PC the other thread just issued,
        // the shared front end drafts it.
        let t = &self.threads[idx];
        let here = t
            .program
            .as_ref()
            .and_then(|p| p.instructions.get(t.pc))
            .map(|i| (idx, t.pc, i.opcode));
        if let (Some((prev_t, prev_pc, prev_op)), Some((_, pc, op))) = (self.last_issue, here) {
            if prev_t != idx && prev_pc == pc && prev_op == op {
                act.drafted_issues += 1;
            }
        }
        self.last_issue = here;
        self.issue(idx, now, memsys, act);
        true
    }

    /// Number of threads currently in the running state.
    fn running_threads(&self) -> usize {
        self.threads
            .iter()
            .filter(|t| t.state == ThreadState::Running)
            .count()
    }

    /// An opaque identity for the program this core is executing:
    /// `Arc` pointer identity of the first running thread's program, so
    /// cores loaded from one shared decode (`load_on_tiles`, or the
    /// shared microbenchmark images) compare equal. The batched dense
    /// engine groups same-program lanes onto one worker so the shared
    /// instruction stream stays hot in that worker's cache. Zero when
    /// nothing is loaded.
    #[must_use]
    pub fn program_identity(&self) -> usize {
        self.threads
            .iter()
            .find(|t| t.state == ThreadState::Running)
            .and_then(|t| t.program.as_ref())
            .map_or(0, |p| Arc::as_ptr(p) as usize)
    }

    /// Batch-steps this core over `[start, end)` while its cycles stay
    /// *local* — touching only its own threads, registers and (empty)
    /// store buffer, never the shared memory system — and returns the
    /// first cycle it could not cover (its *horizon*).
    ///
    /// Order-free integer charges accrue into `charges`; each issue
    /// appends an [`IssueRecord`] to `records` so the machine can fold
    /// the order-sensitive operand-activity `f64`s (and count issuing
    /// cycles) in the naive engine's global (cycle, core) order. The
    /// run stops:
    ///
    /// * **before** a `ldx`/`casx` issue (horizon = that cycle, none of
    ///   that cycle's charges applied): the access must reach the
    ///   memory system through a real [`Core::step`] in global core
    ///   order;
    /// * **after** an `stx` (horizon = cycle + 1): the push itself is
    ///   local, but the enqueued drain makes the following cycle's
    ///   buffer advance a memory-system mutation;
    /// * at `end`, or when every thread has halted (horizon = `end`;
    ///   remaining cycles charge nothing, exactly like a [`Core::step`]
    ///   of a fully-halted core).
    ///
    /// Stall spans are bulk-charged at frozen rates, mirroring the
    /// machine's fast-forward: while no thread can issue, no thread
    /// state changes, so the active/memory-stall rates are constants of
    /// the span.
    ///
    /// The caller must ensure the core is enabled, the store buffer is
    /// empty, and tracing is inactive (deferred issues emit no trace
    /// events); `Machine::run_dense_batched` guards all three.
    #[allow(clippy::too_many_lines, clippy::cast_possible_truncation)]
    pub fn run_local(
        &mut self,
        start: u64,
        end: u64,
        records: &mut Vec<IssueRecord>,
        charges: &mut LocalCharges,
    ) -> u64 {
        debug_assert!(self.enabled, "run_local on a fused-off core");
        debug_assert!(
            self.store_buffer.entries.is_empty(),
            "run_local with pending stores"
        );
        // The saturated sweeps this engine exists for run one thread
        // per core: a specialized loop keeps that thread's state in
        // locals and skips the round-robin/dual/memory-wait scans
        // (with one running thread, the issuing thread is never
        // memory-waiting at its own issue cycle, nothing drafts after
        // the first issue, and there is no dual-thread charge).
        {
            let mut running = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.state == ThreadState::Running);
            if let (Some((only, _)), None) = (running.next(), running.next()) {
                return self.run_local_single(only, start, end, records, charges);
            }
        }
        let n = self.threads.len();
        let mut now = start;
        while now < end {
            let mut chosen = None;
            for k in 0..n {
                let idx = (self.next_thread + k) % n;
                let t = &self.threads[idx];
                if t.state == ThreadState::Running && t.busy_until <= now {
                    chosen = Some(idx);
                    break;
                }
            }
            let mem_waiting = self
                .threads
                .iter()
                .filter(|t| t.memory_waiting(now))
                .count() as u64;
            let Some(idx) = chosen else {
                // Stall span: no thread can issue before the earliest
                // `busy_until`, and no state changes until then, so
                // both charge rates are frozen — bulk them and jump.
                let Some(wake) = self.next_ready_at() else {
                    return end; // every thread halted
                };
                let wake = wake.min(end);
                let span = wake - now;
                charges.active += span;
                charges.mem_stall += span * mem_waiting;
                now = wake;
                continue;
            };
            let pc = self.threads[idx].pc;
            let instr = self.threads[idx]
                .program
                .as_ref()
                .expect("running thread has a program")
                .instructions
                .get(pc)
                .copied();
            let offset = (now - start) as u32;
            let dual = self.running_threads() >= 2;
            let Some(instr) = instr else {
                // Fell off the end: an issuing step that fetches and
                // records nothing, halting the thread.
                charges.active += 1;
                charges.mem_stall += mem_waiting;
                if dual {
                    charges.dual += 1;
                }
                self.next_thread = (idx + 1) % n;
                self.last_issue = None;
                self.threads[idx].state = ThreadState::Halted;
                records.push(IssueRecord {
                    offset,
                    op: PHANTOM_OP,
                    activity: 0.0,
                });
                now += 1;
                continue;
            };
            let op = instr.opcode;
            if matches!(op, Opcode::Ldx | Opcode::Casx) {
                // Hand the whole cycle back before committing any of
                // its charges: the machine redoes it via `step`.
                return now;
            }
            charges.active += 1;
            charges.mem_stall += mem_waiting;
            self.next_thread = (idx + 1) % n;
            if dual {
                charges.dual += 1;
            }
            if let Some((prev_t, prev_pc, prev_op)) = self.last_issue {
                if prev_t != idx && prev_pc == pc && prev_op == op {
                    charges.drafted += 1;
                }
            }
            self.last_issue = Some((idx, pc, op));
            charges.l1i += 1;

            let emit = |records: &mut Vec<IssueRecord>,
                        charges: &mut LocalCharges,
                        occupancy: u64,
                        activity: f64|
             -> u64 {
                let occupancy = occupancy.max(1);
                let i = op.index();
                charges.issues[i] += 1;
                charges.occupancy[i] += occupancy;
                records.push(IssueRecord {
                    offset,
                    op: i as u16,
                    activity: activity.clamp(0.0, 1.0),
                });
                occupancy
            };
            let occupy = |t: &mut Thread, occupancy: u64, wait: WaitKind, target: Option<usize>| {
                t.busy_until = now + occupancy;
                t.wait = wait;
                t.pc = target.unwrap_or(t.pc + 1);
                t.retired += 1;
            };

            match op {
                Opcode::Nop => {
                    let occ = emit(records, charges, 1, 0.0);
                    occupy(&mut self.threads[idx], occ, WaitKind::Execute, None);
                }
                Opcode::Movi => {
                    let v = instr.imm as u64;
                    self.threads[idx].write(instr.rd, v);
                    let occ = emit(records, charges, 1, 0.0);
                    occupy(&mut self.threads[idx], occ, WaitKind::Execute, None);
                }
                Opcode::And | Opcode::Add | Opcode::Sub | Opcode::Mulx | Opcode::Sdivx => {
                    let a = self.threads[idx].read(instr.rs1);
                    let b = self.threads[idx].read(instr.rs2);
                    let r = match op {
                        Opcode::And => a & b,
                        Opcode::Add => a.wrapping_add(b),
                        Opcode::Sub => a.wrapping_sub(b),
                        Opcode::Mulx => a.wrapping_mul(b),
                        Opcode::Sdivx => {
                            if b == 0 {
                                u64::MAX
                            } else {
                                ((a as i64).wrapping_div(b as i64)) as u64
                            }
                        }
                        _ => unreachable!(),
                    };
                    self.threads[idx].write(instr.rd, r);
                    let occ = emit(
                        records,
                        charges,
                        op.base_latency(),
                        datapath_activity(a, b, r),
                    );
                    occupy(&mut self.threads[idx], occ, WaitKind::Execute, None);
                }
                Opcode::Faddd | Opcode::Fmuld | Opcode::Fdivd => {
                    let a = f64::from_bits(self.threads[idx].read(instr.rs1));
                    let b = f64::from_bits(self.threads[idx].read(instr.rs2));
                    let r = match op {
                        Opcode::Faddd => a + b,
                        Opcode::Fmuld => a * b,
                        Opcode::Fdivd => a / b,
                        _ => unreachable!(),
                    };
                    let bits = r.to_bits();
                    self.threads[idx].write(instr.rd, bits);
                    let occ = emit(
                        records,
                        charges,
                        op.base_latency(),
                        datapath_activity(a.to_bits(), b.to_bits(), bits),
                    );
                    occupy(&mut self.threads[idx], occ, WaitKind::Execute, None);
                }
                Opcode::Fadds | Opcode::Fmuls | Opcode::Fdivs => {
                    let a = f32::from_bits(self.threads[idx].read(instr.rs1) as u32);
                    let b = f32::from_bits(self.threads[idx].read(instr.rs2) as u32);
                    let r = match op {
                        Opcode::Fadds => a + b,
                        Opcode::Fmuls => a * b,
                        Opcode::Fdivs => a / b,
                        _ => unreachable!(),
                    };
                    let bits = u64::from(r.to_bits());
                    self.threads[idx].write(instr.rd, bits);
                    let occ = emit(
                        records,
                        charges,
                        op.base_latency(),
                        datapath_activity(u64::from(a.to_bits()), u64::from(b.to_bits()), bits),
                    );
                    occupy(&mut self.threads[idx], occ, WaitKind::Execute, None);
                }
                Opcode::Stx => {
                    // The buffer was empty at entry and the run stops
                    // after the first store, so it can never be full
                    // here — no roll-back path in local mode.
                    let addr = self.threads[idx]
                        .read(instr.rs1)
                        .wrapping_add(instr.imm as u64);
                    let value = self.threads[idx].read(instr.rs2);
                    self.store_buffer.push(addr, value, now);
                    charges.sb_enqueues += 1;
                    let occ = emit(records, charges, 1, value_activity(value));
                    occupy(&mut self.threads[idx], occ, WaitKind::Execute, None);
                    // From the next cycle on the pending drain is a
                    // memory-system mutation: hand back.
                    return now + 1;
                }
                Opcode::Beq | Opcode::Bne => {
                    let a = self.threads[idx].read(instr.rs1);
                    let b = self.threads[idx].read(instr.rs2);
                    let taken = (op == Opcode::Beq) == (a == b);
                    let target = if taken {
                        Some(instr.branch_target())
                    } else {
                        None
                    };
                    let occ = emit(
                        records,
                        charges,
                        op.base_latency(),
                        datapath_activity(a, b, u64::from(taken)),
                    );
                    occupy(&mut self.threads[idx], occ, WaitKind::Execute, target);
                }
                Opcode::Membar => {
                    // Empty buffer: only the drain port's residual
                    // busy time can hold the barrier.
                    let done = self.store_buffer.drained_by(now);
                    let occ = emit(records, charges, (done - now).max(op.base_latency()), 0.0);
                    occupy(&mut self.threads[idx], occ, WaitKind::StoreDrain, None);
                }
                Opcode::Halt => {
                    let t = &mut self.threads[idx];
                    t.retired += 1;
                    t.state = ThreadState::Halted;
                    let i = op.index();
                    charges.issues[i] += 1;
                    charges.occupancy[i] += 1;
                    records.push(IssueRecord {
                        offset,
                        op: i as u16,
                        activity: 0.0,
                    });
                }
                Opcode::Ldx | Opcode::Casx => unreachable!("handled above"),
            }
            now += 1;
        }
        end
    }

    /// [`Core::run_local`] specialized for exactly one running thread —
    /// the shape of every saturated-phase sweep (Figures 13/14 run one
    /// software thread per core). The thread's hot state (`pc`,
    /// `busy_until`, wait kind) lives in locals for the whole span and
    /// is flushed once on exit, and the invariants of the single-thread
    /// case delete the per-cycle bookkeeping wholesale: the issuing
    /// thread is never memory-waiting at its own issue cycle, idle and
    /// halted siblings never are, `dual` is statically false, the
    /// round-robin always picks this thread, `next_thread`/`last_issue`
    /// take the same value at every issue (written once at exit), and
    /// only the *first* issue can draft (against a sibling's final
    /// issue from before the span).
    #[allow(clippy::too_many_lines, clippy::cast_possible_truncation)]
    fn run_local_single(
        &mut self,
        idx: usize,
        start: u64,
        end: u64,
        records: &mut Vec<IssueRecord>,
        charges: &mut LocalCharges,
    ) -> u64 {
        let n = self.threads.len();
        let prog = self.threads[idx]
            .program
            .clone()
            .expect("running thread has a program");
        let code = &prog.instructions;
        let t = &mut self.threads[idx];
        let mut pc = t.pc;
        let mut busy = t.busy_until;
        let mut wait = t.wait;
        let mut retired = 0u64;
        // `Some(v)` once any issue slot was consumed: `last_issue`
        // becomes `v` and `next_thread` advances past `idx`, exactly as
        // the final per-cycle issue would have left them.
        let mut new_last: Option<Option<(usize, usize, Opcode)>> = None;
        let mut first = true;
        let mut now = start;
        let horizon = 'run: {
            while now < end {
                if busy > now {
                    // Stall span at frozen rates, as in the generic loop.
                    let wake = busy.min(end);
                    let span = wake - now;
                    charges.active += span;
                    if wait == WaitKind::Memory {
                        charges.mem_stall += span;
                    }
                    now = wake;
                    continue;
                }
                let offset = (now - start) as u32;
                let Some(&instr) = code.get(pc) else {
                    // Fell off the end: phantom issue, then every
                    // remaining cycle charges nothing.
                    charges.active += 1;
                    new_last = Some(None);
                    t.state = ThreadState::Halted;
                    records.push(IssueRecord {
                        offset,
                        op: PHANTOM_OP,
                        activity: 0.0,
                    });
                    break 'run end;
                };
                let op = instr.opcode;
                if matches!(op, Opcode::Ldx | Opcode::Casx) {
                    break 'run now;
                }
                charges.active += 1;
                if first {
                    if let Some((prev_t, prev_pc, prev_op)) = self.last_issue {
                        if prev_t != idx && prev_pc == pc && prev_op == op {
                            charges.drafted += 1;
                        }
                    }
                    first = false;
                }
                new_last = Some(Some((idx, pc, op)));
                charges.l1i += 1;
                let i = op.index();
                match op {
                    Opcode::Nop => {
                        charges.issues[i] += 1;
                        charges.occupancy[i] += 1;
                        records.push(IssueRecord {
                            offset,
                            op: i as u16,
                            activity: 0.0,
                        });
                        busy = now + 1;
                        wait = WaitKind::Execute;
                        pc += 1;
                        retired += 1;
                    }
                    Opcode::Movi => {
                        t.write(instr.rd, instr.imm as u64);
                        charges.issues[i] += 1;
                        charges.occupancy[i] += 1;
                        records.push(IssueRecord {
                            offset,
                            op: i as u16,
                            activity: 0.0,
                        });
                        busy = now + 1;
                        wait = WaitKind::Execute;
                        pc += 1;
                        retired += 1;
                    }
                    Opcode::And | Opcode::Add | Opcode::Sub | Opcode::Mulx | Opcode::Sdivx => {
                        let a = t.read(instr.rs1);
                        let b = t.read(instr.rs2);
                        let r = match op {
                            Opcode::And => a & b,
                            Opcode::Add => a.wrapping_add(b),
                            Opcode::Sub => a.wrapping_sub(b),
                            Opcode::Mulx => a.wrapping_mul(b),
                            Opcode::Sdivx => {
                                if b == 0 {
                                    u64::MAX
                                } else {
                                    ((a as i64).wrapping_div(b as i64)) as u64
                                }
                            }
                            _ => unreachable!(),
                        };
                        t.write(instr.rd, r);
                        let occ = op.base_latency().max(1);
                        charges.issues[i] += 1;
                        charges.occupancy[i] += occ;
                        records.push(IssueRecord {
                            offset,
                            op: i as u16,
                            activity: datapath_activity(a, b, r).clamp(0.0, 1.0),
                        });
                        busy = now + occ;
                        wait = WaitKind::Execute;
                        pc += 1;
                        retired += 1;
                    }
                    Opcode::Faddd | Opcode::Fmuld | Opcode::Fdivd => {
                        let a = f64::from_bits(t.read(instr.rs1));
                        let b = f64::from_bits(t.read(instr.rs2));
                        let r = match op {
                            Opcode::Faddd => a + b,
                            Opcode::Fmuld => a * b,
                            Opcode::Fdivd => a / b,
                            _ => unreachable!(),
                        };
                        let bits = r.to_bits();
                        t.write(instr.rd, bits);
                        let occ = op.base_latency().max(1);
                        charges.issues[i] += 1;
                        charges.occupancy[i] += occ;
                        records.push(IssueRecord {
                            offset,
                            op: i as u16,
                            activity: datapath_activity(a.to_bits(), b.to_bits(), bits)
                                .clamp(0.0, 1.0),
                        });
                        busy = now + occ;
                        wait = WaitKind::Execute;
                        pc += 1;
                        retired += 1;
                    }
                    Opcode::Fadds | Opcode::Fmuls | Opcode::Fdivs => {
                        let a = f32::from_bits(t.read(instr.rs1) as u32);
                        let b = f32::from_bits(t.read(instr.rs2) as u32);
                        let r = match op {
                            Opcode::Fadds => a + b,
                            Opcode::Fmuls => a * b,
                            Opcode::Fdivs => a / b,
                            _ => unreachable!(),
                        };
                        let bits = u64::from(r.to_bits());
                        t.write(instr.rd, bits);
                        let occ = op.base_latency().max(1);
                        charges.issues[i] += 1;
                        charges.occupancy[i] += occ;
                        records.push(IssueRecord {
                            offset,
                            op: i as u16,
                            activity: datapath_activity(
                                u64::from(a.to_bits()),
                                u64::from(b.to_bits()),
                                bits,
                            )
                            .clamp(0.0, 1.0),
                        });
                        busy = now + occ;
                        wait = WaitKind::Execute;
                        pc += 1;
                        retired += 1;
                    }
                    Opcode::Stx => {
                        let addr = t.read(instr.rs1).wrapping_add(instr.imm as u64);
                        let value = t.read(instr.rs2);
                        self.store_buffer.push(addr, value, now);
                        charges.sb_enqueues += 1;
                        charges.issues[i] += 1;
                        charges.occupancy[i] += 1;
                        records.push(IssueRecord {
                            offset,
                            op: i as u16,
                            activity: value_activity(value).clamp(0.0, 1.0),
                        });
                        busy = now + 1;
                        wait = WaitKind::Execute;
                        pc += 1;
                        retired += 1;
                        break 'run now + 1;
                    }
                    Opcode::Beq | Opcode::Bne => {
                        let a = t.read(instr.rs1);
                        let b = t.read(instr.rs2);
                        let taken = (op == Opcode::Beq) == (a == b);
                        let occ = op.base_latency().max(1);
                        charges.issues[i] += 1;
                        charges.occupancy[i] += occ;
                        records.push(IssueRecord {
                            offset,
                            op: i as u16,
                            activity: datapath_activity(a, b, u64::from(taken)).clamp(0.0, 1.0),
                        });
                        busy = now + occ;
                        wait = WaitKind::Execute;
                        pc = if taken { instr.branch_target() } else { pc + 1 };
                        retired += 1;
                    }
                    Opcode::Membar => {
                        // Empty buffer: only residual drain-port busy
                        // time can hold the barrier.
                        let done = self.store_buffer.drained_by(now);
                        let occ = (done - now).max(op.base_latency()).max(1);
                        charges.issues[i] += 1;
                        charges.occupancy[i] += occ;
                        records.push(IssueRecord {
                            offset,
                            op: i as u16,
                            activity: 0.0,
                        });
                        busy = now + occ;
                        wait = WaitKind::StoreDrain;
                        pc += 1;
                        retired += 1;
                    }
                    Opcode::Halt => {
                        retired += 1;
                        t.state = ThreadState::Halted;
                        charges.issues[i] += 1;
                        charges.occupancy[i] += 1;
                        records.push(IssueRecord {
                            offset,
                            op: i as u16,
                            activity: 0.0,
                        });
                        break 'run end;
                    }
                    Opcode::Ldx | Opcode::Casx => unreachable!("handled above"),
                }
                now += 1;
            }
            end
        };
        t.pc = pc;
        t.busy_until = busy;
        t.wait = wait;
        t.retired += retired;
        if let Some(v) = new_last {
            self.last_issue = v;
            self.next_thread = (idx + 1) % n;
        }
        horizon
    }

    /// Issues the next instruction of thread `idx`.
    #[allow(clippy::too_many_lines)]
    fn issue(
        &mut self,
        idx: usize,
        now: u64,
        memsys: &mut MemorySystem,
        act: &mut ActivityCounters,
    ) {
        let (instr, program_len) = {
            let t = &self.threads[idx];
            let program = t.program.as_ref().expect("running thread has a program");
            if t.pc >= program.instructions.len() {
                // Fell off the end: halt.
                let t = &mut self.threads[idx];
                t.state = ThreadState::Halted;
                return;
            }
            (program.instructions[t.pc], program.instructions.len())
        };
        let _ = program_len;
        act.l1i_accesses += 1;

        let op = instr.opcode;
        match op {
            Opcode::Nop => {
                self.finish(idx, now, 1, op, 0.0, None, act);
            }
            Opcode::Movi => {
                let v = instr.imm as u64;
                self.threads[idx].write(instr.rd, v);
                self.finish(idx, now, 1, op, 0.0, None, act);
            }
            Opcode::And | Opcode::Add | Opcode::Sub | Opcode::Mulx | Opcode::Sdivx => {
                let a = self.threads[idx].read(instr.rs1);
                let b = self.threads[idx].read(instr.rs2);
                let r = match op {
                    Opcode::And => a & b,
                    Opcode::Add => a.wrapping_add(b),
                    Opcode::Sub => a.wrapping_sub(b),
                    Opcode::Mulx => a.wrapping_mul(b),
                    Opcode::Sdivx => {
                        if b == 0 {
                            u64::MAX
                        } else {
                            ((a as i64).wrapping_div(b as i64)) as u64
                        }
                    }
                    _ => unreachable!(),
                };
                self.threads[idx].write(instr.rd, r);
                self.finish(
                    idx,
                    now,
                    op.base_latency(),
                    op,
                    datapath_activity(a, b, r),
                    None,
                    act,
                );
            }
            Opcode::Faddd | Opcode::Fmuld | Opcode::Fdivd => {
                let a = f64::from_bits(self.threads[idx].read(instr.rs1));
                let b = f64::from_bits(self.threads[idx].read(instr.rs2));
                let r = match op {
                    Opcode::Faddd => a + b,
                    Opcode::Fmuld => a * b,
                    Opcode::Fdivd => a / b,
                    _ => unreachable!(),
                };
                let bits = r.to_bits();
                self.threads[idx].write(instr.rd, bits);
                self.finish(
                    idx,
                    now,
                    op.base_latency(),
                    op,
                    datapath_activity(a.to_bits(), b.to_bits(), bits),
                    None,
                    act,
                );
            }
            Opcode::Fadds | Opcode::Fmuls | Opcode::Fdivs => {
                let a = f32::from_bits(self.threads[idx].read(instr.rs1) as u32);
                let b = f32::from_bits(self.threads[idx].read(instr.rs2) as u32);
                let r = match op {
                    Opcode::Fadds => a + b,
                    Opcode::Fmuls => a * b,
                    Opcode::Fdivs => a / b,
                    _ => unreachable!(),
                };
                let bits = u64::from(r.to_bits());
                self.threads[idx].write(instr.rd, bits);
                self.finish(
                    idx,
                    now,
                    op.base_latency(),
                    op,
                    datapath_activity(u64::from(a.to_bits()), u64::from(b.to_bits()), bits),
                    None,
                    act,
                );
            }
            Opcode::Ldx => {
                let addr = self.threads[idx]
                    .read(instr.rs1)
                    .wrapping_add(instr.imm as u64);
                let out = memsys.load(self.tile, addr, now, act);
                self.threads[idx].write(instr.rd, out.value);
                self.finish(
                    idx,
                    now,
                    out.latency,
                    op,
                    value_activity(out.value),
                    None,
                    act,
                );
            }
            Opcode::Stx => {
                if self.store_buffer.is_full() {
                    // Speculative issue found the buffer full: roll back
                    // and re-execute (the stx (F) case of Figure 11).
                    act.store_rollbacks += 1;
                    self.threads[idx].busy_until = now + ROLLBACK_PENALTY_CYCLES;
                    self.threads[idx].wait = WaitKind::StoreDrain;
                    return; // PC unchanged: the store retries
                }
                let addr = self.threads[idx]
                    .read(instr.rs1)
                    .wrapping_add(instr.imm as u64);
                let value = self.threads[idx].read(instr.rs2);
                self.store_buffer.push(addr, value, now);
                act.sb_enqueues += 1;
                // The thread continues past the store after one cycle;
                // the buffer drains in the background.
                self.finish(idx, now, 1, op, value_activity(value), None, act);
            }
            Opcode::Casx => {
                let addr = self.threads[idx].read(instr.rs1);
                let expected = self.threads[idx].read(instr.rs2);
                let new = self.threads[idx].read(instr.rd);
                let (old, latency) = memsys.cas(self.tile, addr, expected, new, now, act);
                self.threads[idx].write(instr.rd, old);
                self.finish(
                    idx,
                    now,
                    latency,
                    op,
                    value_activity(old ^ expected),
                    None,
                    act,
                );
            }
            Opcode::Beq | Opcode::Bne => {
                let a = self.threads[idx].read(instr.rs1);
                let b = self.threads[idx].read(instr.rs2);
                let taken = (op == Opcode::Beq) == (a == b);
                let target = if taken {
                    Some(instr.branch_target())
                } else {
                    None
                };
                self.finish(
                    idx,
                    now,
                    op.base_latency(),
                    op,
                    datapath_activity(a, b, u64::from(taken)),
                    target,
                    act,
                );
            }
            Opcode::Membar => {
                let done = self.store_buffer.drained_by(now);
                self.finish(
                    idx,
                    now,
                    (done - now).max(op.base_latency()),
                    op,
                    0.0,
                    None,
                    act,
                );
            }
            Opcode::Halt => {
                let t = &mut self.threads[idx];
                let pc = t.pc as u64;
                t.retired += 1;
                t.state = ThreadState::Halted;
                act.record_issue(op, 1, 0.0);
                if trace::active() {
                    trace::emit(TraceEvent::Retire {
                        cycle: now,
                        tile: self.tile.index() as u32,
                        thread: idx as u32,
                        op: format!("{op:?}"),
                        pc,
                    });
                }
            }
        }
    }

    /// Completes an issued instruction: records its issue and activity,
    /// occupies the thread (tagging what the occupancy waits on) and
    /// advances (or redirects) the PC.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &mut self,
        idx: usize,
        now: u64,
        occupancy: u64,
        op: Opcode,
        activity: f64,
        branch_target: Option<usize>,
        act: &mut ActivityCounters,
    ) {
        let occupancy = occupancy.max(1);
        act.record_issue(op, occupancy, activity.clamp(0.0, 1.0));
        let t = &mut self.threads[idx];
        t.busy_until = now + occupancy;
        t.wait = match op {
            Opcode::Ldx | Opcode::Casx => WaitKind::Memory,
            Opcode::Membar => WaitKind::StoreDrain,
            _ => WaitKind::Execute,
        };
        let pc = t.pc as u64;
        t.pc = branch_target.unwrap_or(t.pc + 1);
        t.retired += 1;
        if trace::active() {
            trace::emit(TraceEvent::Retire {
                cycle: now,
                tile: self.tile.index() as u32,
                thread: idx as u32,
                op: format!("{op:?}"),
                pc,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piton_arch::config::ChipConfig;
    use piton_arch::isa::Instruction;

    fn setup() -> (Core, MemorySystem, ActivityCounters) {
        (
            Core::new(TileId::new(0), 2, 8),
            MemorySystem::new(&ChipConfig::piton()),
            ActivityCounters::default(),
        )
    }

    fn run(core: &mut Core, memsys: &mut MemorySystem, act: &mut ActivityCounters, cycles: u64) {
        for now in 0..cycles {
            core.step(now, memsys, act);
        }
    }

    #[test]
    fn executes_straight_line_arithmetic() {
        let (mut core, mut memsys, mut act) = setup();
        let program = Program::from_instructions(vec![
            Instruction::movi(Reg::new(1), 6),
            Instruction::movi(Reg::new(2), 7),
            Instruction::alu(Opcode::Mulx, Reg::new(3), Reg::new(1), Reg::new(2)),
            Instruction::halt(),
        ]);
        core.load_thread(0, Arc::new(program));
        run(&mut core, &mut memsys, &mut act, 100);
        assert_eq!(core.thread_state(0), ThreadState::Halted);
        assert_eq!(core.reg(0, Reg::new(3)), 42);
    }

    #[test]
    fn g0_stays_zero() {
        let (mut core, mut memsys, mut act) = setup();
        let program =
            Program::from_instructions(vec![Instruction::movi(Reg::G0, 99), Instruction::halt()]);
        core.load_thread(0, Arc::new(program));
        run(&mut core, &mut memsys, &mut act, 50);
        assert_eq!(core.reg(0, Reg::G0), 0);
    }

    #[test]
    fn branch_loop_counts_down() {
        let (mut core, mut memsys, mut act) = setup();
        // r1 = 5; loop: r1 -= 1; bne r1, g0, loop; halt
        let program = Program::from_instructions(vec![
            Instruction::movi(Reg::new(1), 5),
            Instruction::movi(Reg::new(2), 1),
            Instruction::alu(Opcode::Sub, Reg::new(1), Reg::new(1), Reg::new(2)),
            Instruction::branch(Opcode::Bne, Reg::new(1), Reg::G0, 2),
            Instruction::halt(),
        ]);
        core.load_thread(0, Arc::new(program));
        run(&mut core, &mut memsys, &mut act, 200);
        assert_eq!(core.thread_state(0), ThreadState::Halted);
        assert_eq!(core.reg(0, Reg::new(1)), 0);
    }

    #[test]
    fn load_returns_stored_value_through_memory() {
        let (mut core, mut memsys, mut act) = setup();
        memsys.poke(0x1000, 0x1234_5678);
        let program = Program::from_instructions(vec![
            Instruction::movi(Reg::new(1), 0x1000),
            Instruction::ldx(Reg::new(2), Reg::new(1), 0),
            Instruction::halt(),
        ]);
        core.load_thread(0, Arc::new(program));
        run(&mut core, &mut memsys, &mut act, 2000);
        assert_eq!(core.reg(0, Reg::new(2)), 0x1234_5678);
        assert_eq!(act.load_rollbacks, 1); // cold miss rolled back
    }

    #[test]
    fn store_then_load_round_trips() {
        let (mut core, mut memsys, mut act) = setup();
        let program = Program::from_instructions(vec![
            Instruction::movi(Reg::new(1), 0x2000),
            Instruction::movi(Reg::new(2), 0xBEEF),
            Instruction::stx(Reg::new(2), Reg::new(1), 0),
            Instruction::membar(),
            Instruction::ldx(Reg::new(3), Reg::new(1), 0),
            Instruction::halt(),
        ]);
        core.load_thread(0, Arc::new(program));
        run(&mut core, &mut memsys, &mut act, 5000);
        assert_eq!(core.thread_state(0), ThreadState::Halted);
        assert_eq!(core.reg(0, Reg::new(3)), 0xBEEF);
        assert_eq!(memsys.peek_mem(0x2000), 0xBEEF);
    }

    #[test]
    fn back_to_back_stores_fill_buffer_and_roll_back() {
        let (mut core, mut memsys, mut act) = setup();
        // 64 stores back-to-back: issue rate (1/cycle) far exceeds the
        // drain rate (1/10 cycles), so the 8-entry buffer must fill.
        let mut instrs = vec![Instruction::movi(Reg::new(1), 0x3000)];
        for k in 0..64 {
            instrs.push(Instruction::stx(Reg::new(1), Reg::new(1), k * 8));
        }
        instrs.push(Instruction::halt());
        core.load_thread(0, Arc::new(Program::from_instructions(instrs)));
        run(&mut core, &mut memsys, &mut act, 20_000);
        assert_eq!(core.thread_state(0), ThreadState::Halted);
        assert!(act.store_rollbacks > 0, "buffer never filled");
        assert_eq!(act.sb_enqueues, 64);
    }

    #[test]
    fn nine_nops_after_store_avoid_roll_backs() {
        // The paper's EPI trick: nine nops cover the 10-cycle drain.
        // Warm up ownership first (a cold store upgrade takes hundreds of
        // cycles and would legitimately back up the buffer), then run the
        // steady-state pattern the EPI test measures.
        let (mut core, mut memsys, mut act) = setup();
        let mut instrs = vec![
            Instruction::movi(Reg::new(1), 0x4000),
            Instruction::stx(Reg::new(1), Reg::new(1), 0),
            Instruction::membar(),
        ];
        for _ in 0..32 {
            instrs.push(Instruction::stx(Reg::new(1), Reg::new(1), 0));
            for _ in 0..9 {
                instrs.push(Instruction::nop());
            }
        }
        instrs.push(Instruction::halt());
        core.load_thread(0, Arc::new(Program::from_instructions(instrs)));
        run(&mut core, &mut memsys, &mut act, 50_000);
        assert_eq!(core.thread_state(0), ThreadState::Halted);
        assert_eq!(act.store_rollbacks, 0);
    }

    #[test]
    fn two_threads_share_issue_bandwidth() {
        let (mut core, mut memsys, mut act) = setup();
        let loop_program = |iters: i64| {
            Program::from_instructions(vec![
                Instruction::movi(Reg::new(1), iters),
                Instruction::movi(Reg::new(2), 1),
                Instruction::alu(Opcode::Sub, Reg::new(1), Reg::new(1), Reg::new(2)),
                Instruction::branch(Opcode::Bne, Reg::new(1), Reg::G0, 2),
                Instruction::halt(),
            ])
        };
        // One thread alone:
        core.load_thread(0, Arc::new(loop_program(1000)));
        let mut solo_cycles = 0;
        for now in 0..2_000_000u64 {
            core.step(now, &mut memsys, &mut act);
            if !core.any_running() {
                solo_cycles = now;
                break;
            }
        }
        // Two threads together:
        let mut core2 = Core::new(TileId::new(1), 2, 8);
        core2.load_thread(0, Arc::new(loop_program(1000)));
        core2.load_thread(1, Arc::new(loop_program(1000)));
        let mut duo_cycles = 0;
        for now in 0..4_000_000u64 {
            core2.step(now, &mut memsys, &mut act);
            if !core2.any_running() {
                duo_cycles = now;
                break;
            }
        }
        let ratio = duo_cycles as f64 / solo_cycles as f64;
        // Branch shadows leave some slack; the ratio must be well above
        // 1 (threads share the pipe) but at most ~2.
        assert!(
            (1.2..=2.2).contains(&ratio),
            "duo/solo ratio {ratio} (solo {solo_cycles}, duo {duo_cycles})"
        );
    }

    #[test]
    fn casx_spinlock_between_threads() {
        let (mut core, mut memsys, mut act) = setup();
        // Each thread: acquire lock (casx 0->1 at 0x5000), increment
        // counter at 0x5040, release (stx 0). 10 iterations each.
        let worker = || {
            let mut p = vec![
                Instruction::movi(Reg::new(1), 0x5000), // lock addr
                Instruction::movi(Reg::new(2), 0x5040), // counter addr
                Instruction::movi(Reg::new(5), 10),     // iterations
                Instruction::movi(Reg::new(6), 1),
                // 4: acquire
                Instruction::movi(Reg::new(3), 1), // swap-in value
                Instruction::casx(Reg::new(3), Reg::new(1), Reg::G0),
                Instruction::branch(Opcode::Bne, Reg::new(3), Reg::G0, 4),
                // 7: critical section
                Instruction::ldx(Reg::new(4), Reg::new(2), 0),
                Instruction::alu(Opcode::Add, Reg::new(4), Reg::new(4), Reg::new(6)),
                Instruction::stx(Reg::new(4), Reg::new(2), 0),
                Instruction::membar(),
                // release
                Instruction::stx(Reg::G0, Reg::new(1), 0),
                Instruction::membar(),
                Instruction::alu(Opcode::Sub, Reg::new(5), Reg::new(5), Reg::new(6)),
                Instruction::branch(Opcode::Bne, Reg::new(5), Reg::G0, 4),
                Instruction::halt(),
            ];
            p.shrink_to_fit();
            Program::from_instructions(p)
        };
        core.load_thread(0, Arc::new(worker()));
        core.load_thread(1, Arc::new(worker()));
        let mut now = 0;
        while core.any_running() && now < 3_000_000 {
            core.step(now, &mut memsys, &mut act);
            now += 1;
        }
        assert!(!core.any_running(), "deadlocked");
        assert_eq!(memsys.peek_mem(0x5040), 20, "lost updates under the lock");
        assert!(act.atomics >= 20);
    }
}
