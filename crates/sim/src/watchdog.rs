//! Environment-tunable watchdog knobs.
//!
//! The hang watchdog ([`crate::Machine::run_until_halted_watched`])
//! has two operating parameters that long measurement campaigns need
//! to tune without a rebuild:
//!
//! * **chunk** — how many cycles the machine runs between progress
//!   checks (`PITON_WATCHDOG_CHUNK`, default
//!   [`DEFAULT_CHUNK_CYCLES`]). Smaller chunks detect hangs and halts sooner at
//!   slightly more loop overhead; retirement is identical at any chunk
//!   size, though the clock coasts to the next chunk boundary after
//!   the last thread halts.
//! * **limit** — the default no-retirement window after which a run is
//!   declared hung (`PITON_WATCHDOG_LIMIT`, default
//!   [`DEFAULT_LIMIT_CYCLES`]). Must sit above the longest legitimate
//!   wait of the workload (a cold memory miss holds a thread ~424
//!   cycles).
//!
//! Values are read from the environment on every call rather than
//! cached, so tests can set and unset them reliably; the `reproduce`
//! binary records the effective values in the run manifest's metrics
//! so an archived run is attributable to its watchdog configuration.
//!
//! # Examples
//!
//! ```
//! use piton_sim::watchdog;
//!
//! // Unset or garbage environment falls back to the defaults.
//! assert!(watchdog::chunk_cycles() >= 1);
//! assert!(watchdog::limit_cycles() >= 1);
//! ```

/// Cycles per watchdog progress check when `PITON_WATCHDOG_CHUNK` is
/// unset.
pub const DEFAULT_CHUNK_CYCLES: u64 = 1_000;

/// Default no-retirement hang window (cycles) when
/// `PITON_WATCHDOG_LIMIT` is unset.
pub const DEFAULT_LIMIT_CYCLES: u64 = 50_000;

/// Parses a positive cycle count from `var`, falling back to `default`
/// when unset, empty, non-numeric, or zero.
fn env_cycles(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&c| c > 0)
        .unwrap_or(default)
}

/// The effective watchdog chunk size (`PITON_WATCHDOG_CHUNK`).
#[must_use]
pub fn chunk_cycles() -> u64 {
    env_cycles("PITON_WATCHDOG_CHUNK", DEFAULT_CHUNK_CYCLES)
}

/// The effective default hang window (`PITON_WATCHDOG_LIMIT`).
#[must_use]
pub fn limit_cycles() -> u64 {
    env_cycles("PITON_WATCHDOG_LIMIT", DEFAULT_LIMIT_CYCLES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn garbage_and_zero_fall_back_to_defaults() {
        assert_eq!(env_cycles("PITON_WATCHDOG_TEST_UNSET", 17), 17);
        std::env::set_var("PITON_WATCHDOG_TEST_A", "not a number");
        assert_eq!(env_cycles("PITON_WATCHDOG_TEST_A", 17), 17);
        std::env::set_var("PITON_WATCHDOG_TEST_A", "0");
        assert_eq!(env_cycles("PITON_WATCHDOG_TEST_A", 17), 17);
        std::env::set_var("PITON_WATCHDOG_TEST_A", " 250 ");
        assert_eq!(env_cycles("PITON_WATCHDOG_TEST_A", 17), 250);
        std::env::remove_var("PITON_WATCHDOG_TEST_A");
    }
}
