//! Set-associative cache tag arrays.
//!
//! All four cache levels of Piton (L1I, L1D, L1.5, L2 slice) share this
//! structure: a set-associative tag array with LRU replacement and a
//! MESI-compatible per-line state. Data values are *not* stored here —
//! the functional memory owns values — but tags, states and evictions are
//! modelled exactly, because hit/miss behaviour and write-back traffic
//! drive both latency and energy.
//!
//! # Examples
//!
//! ```
//! use piton_sim::cache::{LineState, SetAssocCache};
//! use piton_arch::config::CacheConfig;
//!
//! let mut l1d = SetAssocCache::new(CacheConfig::new(8 * 1024, 4, 16));
//! assert!(l1d.lookup(0x1000, 0).is_none());
//! l1d.insert(0x1000, LineState::Shared, 0);
//! assert_eq!(l1d.lookup(0x1000, 1), Some(LineState::Shared));
//! ```

use piton_arch::config::CacheConfig;
use serde::{Deserialize, Serialize};

/// MESI state of a cache line.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum LineState {
    /// Not present.
    #[default]
    Invalid,
    /// Clean, possibly shared with other caches.
    Shared,
    /// Clean, exclusive to this cache.
    Exclusive,
    /// Dirty, exclusive to this cache.
    Modified,
}

impl LineState {
    /// Whether the line holds valid data.
    #[must_use]
    pub fn is_valid(self) -> bool {
        self != LineState::Invalid
    }

    /// Whether eviction of a line in this state requires a write-back.
    #[must_use]
    pub fn is_dirty(self) -> bool {
        self == LineState::Modified
    }
}

/// A line evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Evicted {
    /// Line-aligned address of the victim.
    pub line_addr: u64,
    /// State the victim held (dirty victims need a write-back).
    pub state: LineState,
}

#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize)]
struct Way {
    tag: u64,
    state: LineState,
    last_used: u64,
}

/// A set-associative tag array with LRU replacement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    line_shift: u32,
    set_count: u64,
    ways: Vec<Way>, // set-major: ways[set * assoc + way]
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let set_count = cfg.sets();
        let assoc = cfg.associativity as usize;
        Self {
            cfg,
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_count,
            ways: vec![Way::default(); set_count as usize * assoc],
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Line-aligned address containing `addr`.
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift << self.line_shift
    }

    /// Set index of `addr`.
    #[must_use]
    pub fn set_index(&self, addr: u64) -> u64 {
        (addr >> self.line_shift) & (self.set_count - 1)
    }

    fn set_range(&self, addr: u64) -> std::ops::Range<usize> {
        let set = self.set_index(addr) as usize;
        let assoc = self.cfg.associativity as usize;
        set * assoc..(set + 1) * assoc
    }

    /// Probes for `addr`; on hit returns the line state and refreshes
    /// LRU.
    pub fn lookup(&mut self, addr: u64, now: u64) -> Option<LineState> {
        let tag = addr >> self.line_shift;
        let range = self.set_range(addr);
        let way = self.ways[range]
            .iter_mut()
            .find(|w| w.state.is_valid() && w.tag == tag)?;
        way.last_used = now;
        Some(way.state)
    }

    /// Probes for `addr` without touching LRU (a snoop).
    #[must_use]
    pub fn peek(&self, addr: u64) -> Option<LineState> {
        let tag = addr >> self.line_shift;
        self.ways[self.set_range(addr)]
            .iter()
            .find(|w| w.state.is_valid() && w.tag == tag)
            .map(|w| w.state)
    }

    /// Upgrades/downgrades the state of a resident line. Returns `false`
    /// if the line is not resident.
    pub fn set_state(&mut self, addr: u64, state: LineState) -> bool {
        let tag = addr >> self.line_shift;
        let range = self.set_range(addr);
        if let Some(way) = self.ways[range]
            .iter_mut()
            .find(|w| w.state.is_valid() && w.tag == tag)
        {
            way.state = state;
            true
        } else {
            false
        }
    }

    /// Fills `addr` with the given state, evicting the LRU way if the
    /// set is full. Returns the evicted line, if any. Filling a line
    /// already resident just updates its state.
    pub fn insert(&mut self, addr: u64, state: LineState, now: u64) -> Option<Evicted> {
        debug_assert!(state.is_valid(), "cannot insert an invalid line");
        let tag = addr >> self.line_shift;
        let range = self.set_range(addr);
        let set = &mut self.ways[range];

        // Already resident: refresh.
        if let Some(way) = set.iter_mut().find(|w| w.state.is_valid() && w.tag == tag) {
            way.state = state;
            way.last_used = now;
            return None;
        }

        // Free way?
        if let Some(way) = set.iter_mut().find(|w| !w.state.is_valid()) {
            *way = Way {
                tag,
                state,
                last_used: now,
            };
            return None;
        }

        // Evict LRU.
        let victim = set
            .iter_mut()
            .min_by_key(|w| w.last_used)
            .expect("associativity >= 1");
        let evicted = Evicted {
            line_addr: victim.tag << self.line_shift,
            state: victim.state,
        };
        *victim = Way {
            tag,
            state,
            last_used: now,
        };
        Some(evicted)
    }

    /// Invalidates `addr` if resident; returns the prior state.
    pub fn invalidate(&mut self, addr: u64) -> Option<LineState> {
        let tag = addr >> self.line_shift;
        let range = self.set_range(addr);
        let way = self.ways[range]
            .iter_mut()
            .find(|w| w.state.is_valid() && w.tag == tag)?;
        let prior = way.state;
        way.state = LineState::Invalid;
        Some(prior)
    }

    /// Number of valid lines (diagnostics).
    #[must_use]
    pub fn valid_lines(&self) -> usize {
        self.ways.iter().filter(|w| w.state.is_valid()).count()
    }

    /// Iterates over all valid line addresses and their states.
    pub fn iter_valid(&self) -> impl Iterator<Item = (u64, LineState)> + '_ {
        let assoc = self.cfg.associativity;
        let shift = self.line_shift;
        let sets = self.set_count;
        self.ways.iter().enumerate().filter_map(move |(i, w)| {
            if w.state.is_valid() {
                let set = (i as u64) / assoc;
                // Reconstruct: tag holds addr >> line_shift; the set index
                // is embedded in the tag's low bits by construction.
                debug_assert_eq!(w.tag & (sets - 1), set);
                Some((w.tag << shift, w.state))
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways x 16B lines = 64B.
        SetAssocCache::new(CacheConfig::new(64, 2, 16))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.lookup(0x100, 0), None);
        assert_eq!(c.insert(0x100, LineState::Shared, 0), None);
        assert_eq!(c.lookup(0x100, 1), Some(LineState::Shared));
        assert_eq!(c.lookup(0x10f, 2), Some(LineState::Shared)); // same line
        assert_eq!(c.lookup(0x110, 3), None); // next line
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three lines aliasing to set 0 (line addr multiples of 32).
        c.insert(0x000, LineState::Shared, 0);
        c.insert(0x020, LineState::Shared, 1);
        // Touch 0x000 so 0x020 becomes LRU.
        c.lookup(0x000, 2);
        let ev = c.insert(0x040, LineState::Shared, 3).expect("must evict");
        assert_eq!(ev.line_addr, 0x020);
        assert_eq!(c.peek(0x000), Some(LineState::Shared));
        assert_eq!(c.peek(0x020), None);
    }

    #[test]
    fn dirty_eviction_reports_modified() {
        let mut c = tiny();
        c.insert(0x000, LineState::Modified, 0);
        c.insert(0x020, LineState::Shared, 1);
        let ev = c.insert(0x040, LineState::Shared, 2).unwrap();
        assert_eq!(ev.state, LineState::Modified);
        assert!(ev.state.is_dirty());
    }

    #[test]
    fn reinsert_updates_state_without_eviction() {
        let mut c = tiny();
        c.insert(0x000, LineState::Shared, 0);
        assert_eq!(c.insert(0x000, LineState::Modified, 1), None);
        assert_eq!(c.peek(0x000), Some(LineState::Modified));
        assert_eq!(c.valid_lines(), 1);
    }

    #[test]
    fn set_state_and_invalidate() {
        let mut c = tiny();
        c.insert(0x000, LineState::Exclusive, 0);
        assert!(c.set_state(0x000, LineState::Modified));
        assert!(!c.set_state(0x040, LineState::Shared));
        assert_eq!(c.invalidate(0x000), Some(LineState::Modified));
        assert_eq!(c.invalidate(0x000), None);
        assert_eq!(c.valid_lines(), 0);
    }

    #[test]
    fn set_index_uses_line_bits() {
        let c = tiny();
        assert_eq!(c.set_index(0x00), 0);
        assert_eq!(c.set_index(0x10), 1);
        assert_eq!(c.set_index(0x20), 0);
        assert_eq!(c.line_addr(0x1f), 0x10);
    }

    #[test]
    fn piton_l1d_geometry() {
        let c = SetAssocCache::new(CacheConfig::new(8 * 1024, 4, 16));
        // 128 sets: addresses 2 KB apart alias to the same set.
        assert_eq!(c.set_index(0x0000), c.set_index(0x0800));
        assert_ne!(c.set_index(0x0000), c.set_index(0x0010));
    }

    #[test]
    fn iter_valid_reports_lines() {
        let mut c = tiny();
        c.insert(0x000, LineState::Shared, 0);
        c.insert(0x030, LineState::Modified, 1);
        let mut lines: Vec<_> = c.iter_valid().collect();
        lines.sort();
        assert_eq!(
            lines,
            vec![(0x000, LineState::Shared), (0x030, LineState::Modified)]
        );
    }
}
