//! Functional main memory.
//!
//! A sparse, word-addressed (64-bit) store backing the whole simulated
//! physical address space. Timing never lives here — the cache hierarchy
//! and chipset models own latency; this module owns *values*, which the
//! power model needs because data-bit activity contributes to energy.
//!
//! Storage is paged: the address space is split into 4 KB pages, each a
//! flat `[u64; 512]` array, held in a [`FastMap`] keyed by page number.
//! Workload footprints are dense within a handful of pages, so reads and
//! writes resolve to one cheap hash (per page, not per word) plus an
//! array index — the per-word SipHash of the old `HashMap<u64, u64>` was
//! one of the hottest paths in the memory-bound EPI sweeps.

use crate::fastmap::FastMap;

/// Words per memory page (4 KB / 8 B).
const PAGE_WORDS: usize = 512;

/// Sparse 64-bit-word main memory. Unwritten locations read as zero, like
//  DRAM after the memory controller's init scrub.
#[derive(Debug, Default, Clone)]
pub struct Memory {
    pages: FastMap<u64, Box<[u64; PAGE_WORDS]>>,
    /// Count of non-zero words resident across all pages.
    resident: usize,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn locate(addr: u64) -> (u64, usize) {
        let word = addr >> 3;
        (word >> 9, (word & 511) as usize)
    }

    /// Reads the 64-bit word containing `addr` (the address is aligned
    /// down to 8 bytes).
    #[must_use]
    pub fn read(&self, addr: u64) -> u64 {
        let (page, slot) = Self::locate(addr);
        self.pages.get(&page).map_or(0, |p| p[slot])
    }

    /// Writes the 64-bit word containing `addr`.
    pub fn write(&mut self, addr: u64, value: u64) {
        let (page, slot) = Self::locate(addr);
        if value == 0 {
            // Avoid materializing a page just to store a zero.
            if let Some(p) = self.pages.get_mut(&page) {
                if p[slot] != 0 {
                    p[slot] = 0;
                    self.resident -= 1;
                }
            }
        } else {
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0; PAGE_WORDS]));
            if p[slot] == 0 {
                self.resident += 1;
            }
            p[slot] = value;
        }
    }

    /// Atomically compares the word at `addr` with `expected`; if equal,
    /// stores `new`. Returns the old value (SPARC `casx` semantics).
    pub fn compare_and_swap(&mut self, addr: u64, expected: u64, new: u64) -> u64 {
        let old = self.read(addr);
        if old == expected {
            self.write(addr, new);
        }
        old
    }

    /// Number of non-zero words resident (for tests/diagnostics).
    #[must_use]
    pub fn resident_words(&self) -> usize {
        self.resident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let m = Memory::new();
        assert_eq!(m.read(0x1000), 0);
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = Memory::new();
        m.write(0x1000, 0xdead_beef);
        assert_eq!(m.read(0x1000), 0xdead_beef);
        // Unaligned access hits the containing word.
        assert_eq!(m.read(0x1004), 0xdead_beef);
        m.write(0x1000, 0);
        assert_eq!(m.read(0x1000), 0);
        assert_eq!(m.resident_words(), 0);
    }

    #[test]
    fn cas_semantics() {
        let mut m = Memory::new();
        m.write(0x40, 1);
        // Mismatch: no store, returns old value.
        assert_eq!(m.compare_and_swap(0x40, 0, 7), 1);
        assert_eq!(m.read(0x40), 1);
        // Match: stores, returns old value.
        assert_eq!(m.compare_and_swap(0x40, 1, 7), 1);
        assert_eq!(m.read(0x40), 7);
    }

    #[test]
    fn page_straddling_addresses_are_independent() {
        let mut m = Memory::new();
        // Last word of page 0 and first word of page 1.
        m.write(4096 - 8, 11);
        m.write(4096, 22);
        assert_eq!(m.read(4096 - 8), 11);
        assert_eq!(m.read(4096), 22);
        assert_eq!(m.resident_words(), 2);
    }

    #[test]
    fn rewriting_a_word_keeps_residency_exact() {
        let mut m = Memory::new();
        m.write(0x100, 1);
        m.write(0x100, 2); // overwrite non-zero with non-zero
        assert_eq!(m.resident_words(), 1);
        m.write(0x108, 0); // zero write to an untouched slot
        assert_eq!(m.resident_words(), 1);
        m.write(0x100, 0);
        m.write(0x100, 0); // double zero write
        assert_eq!(m.resident_words(), 0);
    }
}
