//! Functional main memory.
//!
//! A sparse, word-addressed (64-bit) store backing the whole simulated
//! physical address space. Timing never lives here — the cache hierarchy
//! and chipset models own latency; this module owns *values*, which the
//! power model needs because data-bit activity contributes to energy.

use std::collections::HashMap;

/// Sparse 64-bit-word main memory. Unwritten locations read as zero, like
//  DRAM after the memory controller's init scrub.
#[derive(Debug, Default, Clone)]
pub struct Memory {
    words: HashMap<u64, u64>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the 64-bit word containing `addr` (the address is aligned
    /// down to 8 bytes).
    #[must_use]
    pub fn read(&self, addr: u64) -> u64 {
        self.words.get(&(addr & !7)).copied().unwrap_or(0)
    }

    /// Writes the 64-bit word containing `addr`.
    pub fn write(&mut self, addr: u64, value: u64) {
        let key = addr & !7;
        if value == 0 {
            self.words.remove(&key);
        } else {
            self.words.insert(key, value);
        }
    }

    /// Atomically compares the word at `addr` with `expected`; if equal,
    /// stores `new`. Returns the old value (SPARC `casx` semantics).
    pub fn compare_and_swap(&mut self, addr: u64, expected: u64, new: u64) -> u64 {
        let old = self.read(addr);
        if old == expected {
            self.write(addr, new);
        }
        old
    }

    /// Number of non-zero words resident (for tests/diagnostics).
    #[must_use]
    pub fn resident_words(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let m = Memory::new();
        assert_eq!(m.read(0x1000), 0);
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = Memory::new();
        m.write(0x1000, 0xdead_beef);
        assert_eq!(m.read(0x1000), 0xdead_beef);
        // Unaligned access hits the containing word.
        assert_eq!(m.read(0x1004), 0xdead_beef);
        m.write(0x1000, 0);
        assert_eq!(m.read(0x1000), 0);
        assert_eq!(m.resident_words(), 0);
    }

    #[test]
    fn cas_semantics() {
        let mut m = Memory::new();
        m.write(0x40, 1);
        // Mismatch: no store, returns old value.
        assert_eq!(m.compare_and_swap(0x40, 0, 7), 1);
        assert_eq!(m.read(0x40), 1);
        // Match: stores, returns old value.
        assert_eq!(m.compare_and_swap(0x40, 1, 7), 1);
        assert_eq!(m.read(0x40), 7);
    }
}
