//! Cycle-level simulator of the Piton 25-core manycore.
//!
//! This crate models the chip the HPCA'18 characterization paper
//! measured: 25 tiles in a 5×5 mesh, each with a modified OpenSPARC
//! T1-style core (single-issue, six-stage, two-way fine-grained
//! multithreaded, 8-entry store buffer with speculative issue and
//! roll-back), a write-through L1D wrapped by a private write-back L1.5,
//! a distributed shared L2 with a directory-based MESI protocol, three
//! 64-bit physical NoCs with dimension-ordered wormhole routing, and the
//! off-chip chipset path (gateway FPGA → FMC → chipset FPGA → DDR3
//! DRAM) whose latency pipeline matches Figure 15.
//!
//! The simulator is *functional + timing + activity*: instructions
//! execute over real 64-bit values (so operand-dependent energy emerges),
//! every transaction returns its latency, and all energy-relevant events
//! are tallied into [`events::ActivityCounters`] for the power model in
//! `piton-power`.
//!
//! # Examples
//!
//! ```
//! use piton_sim::machine::Machine;
//! use piton_sim::program::Program;
//! use piton_arch::config::ChipConfig;
//! use piton_arch::isa::{Instruction, Opcode, Reg};
//!
//! // Run an add loop on all 25 cores for a measurement window.
//! let program = Program::from_instructions(vec![
//!     Instruction::movi(Reg::new(1), 0),
//!     Instruction::movi(Reg::new(2), 3),
//!     Instruction::alu(Opcode::Add, Reg::new(1), Reg::new(1), Reg::new(2)),
//!     Instruction::branch(Opcode::Beq, Reg::new(0), Reg::new(0), 2),
//! ]);
//! let mut m = Machine::new(&ChipConfig::default());
//! m.load_on_tiles(25, 0, &program);
//! m.run(10_000);
//! let adds = m.counters().issues[Opcode::Add.index()];
//! assert!(adds > 25 * 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chipset;
pub mod core;
pub mod events;
pub mod fastmap;
pub mod machine;
pub mod mem;
pub mod memsys;
pub mod mitts;
pub mod noc;
pub mod program;
pub mod testprog;
pub mod watchdog;

pub use crate::core::WaitKind;
pub use events::ActivityCounters;
pub use machine::{HangKind, HangReport, Machine, StuckThread};
pub use program::Program;
